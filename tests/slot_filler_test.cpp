// Unit tests for the SlotFiller, the capacity/latency bookkeeping layer
// every scheduler is built on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sbmp/codegen/codegen.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/sched/slot_filler.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kSmall = R"(
doacross I = 1, 10
  A[I] = A[I-1] + B[I]
end
)";

struct Built {
  TacFunction tac;
  Dfg dfg;
  MachineDesc config;
};

Built build(const char* src, MachineDesc config) {
  TacFunction tac = generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
  Dfg dfg(tac, config);
  return {std::move(tac), std::move(dfg), config};
}

TEST(SlotFiller, ReadySlotTracksLatencies) {
  const Built b = build(kSmall, machines::paper(4, 1));
  SlotFiller filler(b.tac, b.dfg, b.config);
  // An instruction with unplaced predecessors is not ready.
  int load_id = 0;
  for (const auto& instr : b.tac.instrs) {
    if (instr.op == Opcode::kLoad && instr.array == "A") load_id = instr.id;
  }
  ASSERT_NE(load_id, 0);
  EXPECT_EQ(filler.ready_slot(load_id), -1);
  // After placing all its predecessors, readiness is their slot + 1.
  filler.place_ancestors_asap(load_id);
  EXPECT_GE(filler.ready_slot(load_id), 1);
}

TEST(SlotFiller, CapacityIssueWidth) {
  MachineDesc config = machines::paper(2, 2);
  const Built b = build(kSmall, config);
  SlotFiller filler(b.tac, b.dfg, b.config);
  // Two independent integer-ish ops fill a 2-wide group; the third must
  // go elsewhere. Use the free address nodes (no predecessors).
  std::vector<int> free_nodes;
  for (const auto& instr : b.tac.instrs) {
    if (b.dfg.is_free(instr.id)) free_nodes.push_back(instr.id);
  }
  ASSERT_GE(free_nodes.size(), 3u);
  EXPECT_EQ(filler.place_earliest(free_nodes[0], 0), 0);
  const int second = filler.place_earliest(free_nodes[1], 0);
  const int third = filler.place_earliest(free_nodes[2], 0);
  // With width 2 at least one of them is pushed past group 0.
  EXPECT_TRUE(second > 0 || third > 0);
}

TEST(SlotFiller, FuConflictSeparatesSameClassOps) {
  // One shifter: the two scaling shifts of two different addresses must
  // land in different groups even with width 4.
  const Built b = build(R"(
do I = 1, 4
  A[I] = B[I-1] + B[I+1]
end
)", machines::paper(4, 1));
  SlotFiller filler(b.tac, b.dfg, b.config);
  std::vector<int> shifts;
  for (const auto& instr : b.tac.instrs) {
    if (instr.op == Opcode::kShl) shifts.push_back(instr.id);
  }
  ASSERT_GE(shifts.size(), 2u);
  std::set<int> slots;
  for (const int id : shifts) {
    filler.place_ancestors_asap(id);
    slots.insert(filler.place_earliest(id, 0));
  }
  EXPECT_EQ(slots.size(), shifts.size());
}

TEST(SlotFiller, SyncOpsNeedNoFuButConsumeSlots) {
  MachineDesc config = machines::paper(1, 1);  // width 1
  const Built b = build(kSmall, config);
  SlotFiller filler(b.tac, b.dfg, b.config);
  int wait_id = 0;
  for (const auto& instr : b.tac.instrs) {
    if (instr.op == Opcode::kWait) wait_id = instr.id;
  }
  const int wait_slot = filler.place_earliest(wait_id, 0);
  // Width 1: nothing else fits in the wait's group.
  std::vector<int> free_nodes;
  for (const auto& instr : b.tac.instrs) {
    if (b.dfg.is_free(instr.id)) free_nodes.push_back(instr.id);
  }
  ASSERT_FALSE(free_nodes.empty());
  EXPECT_NE(filler.place_earliest(free_nodes[0], 0), wait_slot);
}

TEST(SlotFiller, SyncSharesGroupWhenSlotFree) {
  MachineDesc config = machines::paper(4, 1);
  config.sync_consumes_slot = false;
  const Built b = build(kSmall, config);
  SlotFiller filler(b.tac, b.dfg, b.config);
  // With free sync slots, a wait and several ops can share group 0.
  int wait_id = 0;
  for (const auto& instr : b.tac.instrs) {
    if (instr.op == Opcode::kWait) wait_id = instr.id;
  }
  EXPECT_EQ(filler.place_earliest(wait_id, 0), 0);
  int placed_in_zero = 1;
  for (const auto& instr : b.tac.instrs) {
    if (b.dfg.is_free(instr.id)) {
      if (filler.place_earliest(instr.id, 0) == 0) ++placed_in_zero;
    }
  }
  EXPECT_GT(placed_in_zero, 1);
}

TEST(SlotFiller, LatestFreeSlotBefore) {
  const Built b = build(kSmall, machines::paper(4, 1));
  SlotFiller filler(b.tac, b.dfg, b.config);
  int wait_id = 0;
  for (const auto& instr : b.tac.instrs) {
    if (instr.op == Opcode::kWait) wait_id = instr.id;
  }
  // Empty schedule: the latest free slot below 5 is 4.
  EXPECT_EQ(filler.latest_free_slot_before(wait_id, 5), 4);
  EXPECT_EQ(filler.latest_free_slot_before(wait_id, 0), -1);
}

TEST(SlotFiller, TakeRejectsIncompleteSchedules) {
  const Built b = build(kSmall, machines::paper(4, 1));
  SlotFiller filler(b.tac, b.dfg, b.config);
  EXPECT_THROW((void)filler.take(), SbmpError);
}

TEST(SlotFiller, PlacementIsIdempotentPerInstruction) {
  const Built b = build(kSmall, machines::paper(4, 1));
  SlotFiller filler(b.tac, b.dfg, b.config);
  std::vector<int> free_nodes;
  for (const auto& instr : b.tac.instrs) {
    if (b.dfg.is_free(instr.id)) free_nodes.push_back(instr.id);
  }
  ASSERT_FALSE(free_nodes.empty());
  filler.place_earliest(free_nodes[0], 0);
  EXPECT_TRUE(filler.placed(free_nodes[0]));
  EXPECT_EQ(filler.num_placed(), 1);
  // place_ancestors_asap never re-places.
  filler.place_ancestors_asap(free_nodes[0]);
  EXPECT_EQ(filler.num_placed(), 1);
}

}  // namespace
}  // namespace sbmp
