#include <gtest/gtest.h>

#include "sbmp/codegen/codegen.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/regalloc/regalloc.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

struct Built {
  TacFunction tac;
  Dfg dfg;
  MachineDesc config;
  Schedule schedule;
};

Built build(const char* src, SchedulerKind kind = SchedulerKind::kList) {
  const MachineDesc config = machines::paper(4, 1);
  TacFunction tac = generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
  Dfg dfg(tac, config);
  Schedule schedule = run_scheduler(kind, tac, dfg, config, 100);
  return {std::move(tac), std::move(dfg), config, std::move(schedule)};
}

TEST(LiveRanges, DefsAndLiveIns) {
  const Built b = build(kFig1);
  const auto ranges = compute_live_ranges(b.tac, b.schedule);
  // One range per register that appears: 22 temps + I.
  EXPECT_EQ(ranges.size(), 23u);
  int live_ins = 0;
  for (const auto& range : ranges) {
    EXPECT_LE(range.start, range.end);
    EXPECT_GE(range.start, 0);
    EXPECT_LT(range.end, b.schedule.length());
    if (range.live_in) {
      ++live_ins;
      EXPECT_EQ(range.start, 0);
    }
  }
  EXPECT_EQ(live_ins, 1);  // only I; Fig 1 has no scalar parameters
}

TEST(LiveRanges, StartAtDefinitionSlot) {
  const Built b = build(kFig1);
  const auto ranges = compute_live_ranges(b.tac, b.schedule);
  for (const auto& range : ranges) {
    if (range.live_in) continue;
    // Find the defining instruction and compare slots.
    for (const auto& instr : b.tac.instrs) {
      if (instr.dst == range.vreg) {
        EXPECT_EQ(range.start, b.schedule.slot(instr.id));
      }
    }
  }
}

TEST(LiveRanges, SortedByStart) {
  const Built b = build(kFig1);
  const auto ranges = compute_live_ranges(b.tac, b.schedule);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    EXPECT_LE(ranges[i - 1].start, ranges[i].start);
}

TEST(Regalloc, EnoughRegistersMeansNoSpills) {
  const Built b = build(kFig1);
  const RegAllocResult r = allocate_registers(b.tac, b.schedule, 32);
  EXPECT_TRUE(r.fits());
  EXPECT_TRUE(verify_allocation(r).empty());
}

TEST(Regalloc, PressureManyRegistersExactlyFit) {
  const Built b = build(kFig1);
  const RegAllocResult probe = allocate_registers(b.tac, b.schedule, 64);
  const RegAllocResult exact =
      allocate_registers(b.tac, b.schedule, probe.max_pressure);
  EXPECT_TRUE(exact.fits())
      << "linear scan over single-block ranges is optimal: peak pressure "
         "registers suffice";
  EXPECT_TRUE(verify_allocation(exact).empty());
}

TEST(Regalloc, BelowPressureSpills) {
  const Built b = build(kFig1);
  const RegAllocResult probe = allocate_registers(b.tac, b.schedule, 64);
  ASSERT_GT(probe.max_pressure, 2);
  const RegAllocResult tight =
      allocate_registers(b.tac, b.schedule, probe.max_pressure - 1);
  EXPECT_FALSE(tight.fits());
  EXPECT_GT(tight.spill_cost, 0);
  EXPECT_TRUE(verify_allocation(tight).empty());
}

TEST(Regalloc, AssignmentsNeverOverlapAcrossPressures) {
  const Built b = build(kFig1);
  for (const int k : {2, 4, 6, 8, 12, 16}) {
    const RegAllocResult r = allocate_registers(b.tac, b.schedule, k);
    const auto violations = verify_allocation(r);
    EXPECT_TRUE(violations.empty())
        << "k=" << k << ": " << violations.front();
    for (const auto& [vreg, phys] : r.assignment) {
      EXPECT_GE(phys, 0);
      EXPECT_LT(phys, k);
    }
  }
}

TEST(Regalloc, SpilledPlusAssignedCoversAllRanges) {
  const Built b = build(kFig1);
  const RegAllocResult r = allocate_registers(b.tac, b.schedule, 4);
  EXPECT_EQ(r.assignment.size() + r.spilled.size(), r.ranges.size());
}

TEST(Regalloc, SchedulerChangesPressure) {
  // Compacting the synchronization path changes register lifetimes; the
  // allocator must report a (possibly different) consistent pressure for
  // every scheduler.
  for (const auto kind : {SchedulerKind::kInOrder, SchedulerKind::kList,
                          SchedulerKind::kSyncBarrier,
                          SchedulerKind::kSyncAware}) {
    const Built b = build(kFig1, kind);
    const RegAllocResult r = allocate_registers(b.tac, b.schedule, 16);
    EXPECT_GT(r.max_pressure, 0) << scheduler_name(kind);
    EXPECT_TRUE(verify_allocation(r).empty()) << scheduler_name(kind);
  }
}

TEST(Regalloc, ToStringMentionsSpills) {
  const Built b = build(kFig1);
  const RegAllocResult r = allocate_registers(b.tac, b.schedule, 3);
  const std::string text = r.to_string(b.tac);
  EXPECT_NE(text.find("spills"), std::string::npos);
  EXPECT_NE(text.find("peak pressure"), std::string::npos);
}

TEST(Regalloc, ScalarParametersAreLiveIn) {
  const Built b = build(R"(
doacross I = 1, 10
  A[I] = A[I-1] * w + u
end
)");
  const auto ranges = compute_live_ranges(b.tac, b.schedule);
  int live_ins = 0;
  for (const auto& range : ranges) live_ins += range.live_in ? 1 : 0;
  EXPECT_EQ(live_ins, 3);  // I, w, u
}

}  // namespace
}  // namespace sbmp
