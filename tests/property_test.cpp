// Property-based sweeps over randomly generated DOACROSS loops: every
// invariant the system guarantees is checked across seeds, schedulers and
// machine shapes.
#include <gtest/gtest.h>

#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/generator.h"

namespace sbmp {
namespace {

Loop make_loop(std::uint64_t seed, LoopGenConfig config = {}) {
  SplitMix64 rng(seed);
  return generate_random_loop(rng, config);
}

class SeededTest : public ::testing::TestWithParam<int> {};

TEST_P(SeededTest, DependenceAnalysisMatchesBruteForce) {
  LoopGenConfig config;
  config.trip = 9;  // keep the O(n^2 m^2) oracle cheap
  config.max_distance = 4;
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()), config);
  const DepAnalysis fast = analyze_dependences(loop);
  const DepAnalysis slow = analyze_dependences_bruteforce(loop);
  ASSERT_EQ(fast.deps.size(), slow.deps.size()) << loop.to_string();
  for (std::size_t i = 0; i < fast.deps.size(); ++i) {
    EXPECT_EQ(fast.deps[i].to_string(), slow.deps[i].to_string())
        << loop.to_string();
  }
}

TEST_P(SeededTest, GeneratedLoopsAreDoacross) {
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  const DepAnalysis deps = analyze_dependences(loop);
  EXPECT_FALSE(deps.is_doall());
  EXPECT_TRUE(deps.is_synchronizable());
}

TEST_P(SeededTest, GeneratedLoopsRoundTripThroughParser) {
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  const Loop again = parse_single_loop_or_throw(loop.to_string());
  ASSERT_EQ(again.body.size(), loop.body.size());
  for (std::size_t s = 0; s < loop.body.size(); ++s) {
    EXPECT_EQ(statement_to_string(again.body[s], again.iter_var),
              statement_to_string(loop.body[s], loop.iter_var));
  }
}

TEST_P(SeededTest, SyncInsertionCoversEveryCarriedDep) {
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  const DepAnalysis deps = analyze_dependences(loop);
  const SyncedLoop synced = insert_synchronization(loop, deps);
  for (const auto& dep : deps.deps) {
    if (!dep.loop_carried() || !dep.constant_distance) continue;
    bool has_wait = false;
    for (const auto& wait : synced.waits) {
      if (wait.signal_stmt == dep.src_stmt &&
          wait.sink_stmt == dep.snk_stmt && wait.distance == dep.distance)
        has_wait = true;
    }
    EXPECT_TRUE(has_wait) << dep.to_string() << "\n" << loop.to_string();
    EXPECT_TRUE(synced.has_send(dep.src_stmt));
  }
}

TEST_P(SeededTest, AllSchedulersProduceValidSchedulesAndOrdering) {
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  for (const auto kind : {SchedulerKind::kInOrder, SchedulerKind::kList,
                          SchedulerKind::kSyncBarrier,
                          SchedulerKind::kSyncAware}) {
    for (const int width : {2, 4}) {
      PipelineOptions options;
      options.machine = machines::paper(width, 1 + (GetParam() % 2));
      options.scheduler = kind;
      options.iterations = 60;
      options.check_ordering = true;
      const LoopReport report = run_pipeline(loop, options);
      EXPECT_TRUE(report.schedule_violations.empty())
          << scheduler_name(kind) << " w" << width << ": "
          << report.schedule_violations.front() << "\n"
          << loop.to_string();
      EXPECT_TRUE(report.ordering_violations.empty())
          << scheduler_name(kind) << " w" << width << ": "
          << report.ordering_violations.front() << "\n"
          << loop.to_string();
    }
  }
}

TEST_P(SeededTest, SyncAwareNeverSlowerThanList) {
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.iterations = 100;
  const SchedulerComparison cmp = compare_schedulers(loop, options);
  EXPECT_LE(cmp.improved.parallel_time(), cmp.baseline.parallel_time())
      << loop.to_string();
}

TEST_P(SeededTest, AnalyticLowerBoundHolds) {
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  PipelineOptions options;
  options.iterations = 100;
  for (const auto kind : {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
    options.scheduler = kind;
    const LoopReport report = run_pipeline(loop, options);
    EXPECT_GE(report.sim.parallel_time,
              analytic_lower_bound(*report.dfg, report.schedule, 100,
                                   report.sim.iteration_time))
        << loop.to_string();
  }
}

TEST_P(SeededTest, RedundantWaitEliminationPreservesOrdering) {
  // The access-level elimination pass must stay correct under every
  // scheduler: dropping a wait may never let stale data through.
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  PipelineOptions options;
  options.eliminate_redundant_waits = true;
  options.iterations = 60;
  options.check_ordering = true;
  for (const auto kind : {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
    options.scheduler = kind;
    const LoopReport report = run_pipeline(loop, options);
    EXPECT_TRUE(report.ordering_violations.empty())
        << scheduler_name(kind) << ": " << report.ordering_violations.front()
        << "\n" << loop.to_string();
  }
}

TEST_P(SeededTest, FewerProcessorsNeverFaster) {
  const Loop loop = make_loop(static_cast<std::uint64_t>(GetParam()));
  PipelineOptions options;
  options.iterations = 60;
  std::int64_t previous = -1;
  for (const int procs : {4, 16, 60}) {
    options.processors = procs;
    const LoopReport report = run_pipeline(loop, options);
    if (previous >= 0) {
      EXPECT_LE(report.parallel_time(), previous);
    }
    previous = report.parallel_time();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest, ::testing::Range(1, 41));

TEST(Generator, RespectsStatementBounds) {
  LoopGenConfig config;
  config.min_stmts = 3;
  config.max_stmts = 5;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SplitMix64 rng(seed);
    const Loop loop = generate_random_loop(rng, config);
    EXPECT_GE(loop.body.size(), 3u);
    EXPECT_LE(loop.body.size(), 5u);
  }
}

TEST(Generator, DistancesBounded) {
  LoopGenConfig config;
  config.max_distance = 2;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SplitMix64 rng(seed);
    const Loop loop = generate_random_loop(rng, config);
    for (const auto& dep : analyze_dependences(loop).deps) {
      if (dep.loop_carried()) {
        EXPECT_LE(dep.distance, 2);
      }
    }
  }
}

TEST(Generator, DeterministicInSeed) {
  LoopGenConfig config;
  SplitMix64 a(123);
  SplitMix64 b(123);
  const Loop la = generate_random_loop(a, config);
  const Loop lb = generate_random_loop(b, config);
  EXPECT_EQ(la.to_string(), lb.to_string());
}

}  // namespace
}  // namespace sbmp
