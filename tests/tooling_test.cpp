// Tests for the reporting/tooling layers: DOT export, schedule
// statistics and the Fig 4-style schedule rendering.
#include <gtest/gtest.h>

#ifdef SBMPC_PATH
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>
#endif

#include "sbmp/codegen/codegen.h"
#include "sbmp/dfg/export.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sched/stats.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

struct Built {
  TacFunction tac;
  Dfg dfg;
  MachineConfig config;
};

Built build(const char* src, MachineConfig config = MachineConfig::paper(4, 1)) {
  TacFunction tac = generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
  Dfg dfg(tac, config);
  return {std::move(tac), std::move(dfg), config};
}

TEST(DotExport, ContainsAllNodesAndClusters) {
  const Built b = build(kFig1);
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  EXPECT_NE(dot.find("digraph dfg"), std::string::npos);
  for (int id = 1; id <= b.tac.size(); ++id) {
    EXPECT_NE(dot.find("n" + std::to_string(id) + " [label="),
              std::string::npos)
        << id;
  }
  EXPECT_NE(dot.find("Sigwat graph"), std::string::npos);
  EXPECT_NE(dot.find("Wat graph"), std::string::npos);
}

TEST(DotExport, EdgeStylesByKind) {
  const Built b = build(kFig1);
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  // Sync arcs bold red; memory edges dashed.
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // The wait/send triangle markers of the paper's Fig 3.
  EXPECT_NE(dot.find("shape=invtriangle"), std::string::npos);
  EXPECT_NE(dot.find("shape=triangle"), std::string::npos);
}

TEST(DotExport, MultiCycleLatencyLabelled) {
  const Built b = build(R"(
doacross I = 1, 10
  A[I] = A[I-1] * B[I]
end
)");
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  EXPECT_NE(dot.find("[label=\"3\"]"), std::string::npos)
      << "multiplier latency edge";
}

TEST(DotExport, BalancedBracesAndQuotes) {
  const Built b = build(kFig1);
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  int braces = 0;
  int quotes = 0;
  for (const char c : dot) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '"') ++quotes;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST(ScheduleStats, CountsAndUtilization) {
  const Built b = build(kFig1);
  const Schedule s = schedule_list(b.tac, b.dfg, b.config);
  const ScheduleStats stats =
      compute_schedule_stats(b.tac, b.dfg, s, b.config);
  EXPECT_EQ(stats.instructions, 28);
  EXPECT_EQ(stats.groups, s.length());
  EXPECT_GT(stats.issue_utilization, 0.0);
  EXPECT_LE(stats.issue_utilization, 1.0);
  for (const double u : stats.fu_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(ScheduleStats, WorstSpanMatchesAnalytic) {
  const Built b = build(kFig1);
  const Schedule list = schedule_list(b.tac, b.dfg, b.config);
  const Schedule ours = schedule_sync_aware(b.tac, b.dfg, b.config, 100);
  const ScheduleStats sl = compute_schedule_stats(b.tac, b.dfg, list,
                                                  b.config);
  const ScheduleStats so = compute_schedule_stats(b.tac, b.dfg, ours,
                                                  b.config);
  EXPECT_GT(sl.worst_sync_span, so.worst_sync_span);
}

TEST(ScheduleStats, PaddingGroupsCounted) {
  // A divider chain forces latency-padding groups.
  const Built b = build(R"(
doacross I = 1, 10
  A[I] = A[I-1] / B[I]
end
)");
  const Schedule s = schedule_sync_aware(b.tac, b.dfg, b.config, 10);
  const ScheduleStats stats =
      compute_schedule_stats(b.tac, b.dfg, s, b.config);
  EXPECT_GT(stats.empty_groups, 0);
}

TEST(ScheduleStats, ToStringMentionsEveryFuClass) {
  const Built b = build(kFig1);
  const Schedule s = schedule_list(b.tac, b.dfg, b.config);
  const std::string text =
      compute_schedule_stats(b.tac, b.dfg, s, b.config).to_string();
  for (int f = 0; f < kNumFuClasses; ++f) {
    EXPECT_NE(text.find(fu_class_name(static_cast<FuClass>(f))),
              std::string::npos);
  }
  EXPECT_NE(text.find("worst sync span"), std::string::npos);
}

#ifdef SBMPC_PATH

/// Spawns the real sbmpc binary and returns its process exit code —
/// the contract tests below lock the documented mapping (0 ok,
/// 1 input, 2 usage, 3 validation).
int run_sbmpc(const std::string& args) {
  const std::string cmd =
      std::string(SBMPC_PATH) + " " + args + " >/dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

/// Writes the paper example to a temp file once and returns its path.
const std::string& fig1_path() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "sbmpc_fig1.loop";
    std::ofstream out(p);
    out << "doacross I = 1, 100\n"
           "  B[I] = A[I-2] + E[I+1]\n"
           "  G[I-3] = A[I-1] * E[I+2]\n"
           "  A[I] = B[I] + C[I+3]\n"
           "end\n";
    return p;
  }();
  return path;
}

TEST(SbmpcExitCodes, CleanInputExitsZero) {
  EXPECT_EQ(run_sbmpc(fig1_path()), 0);
  EXPECT_EQ(run_sbmpc("--list-benchmarks"), 0);
}

TEST(SbmpcExitCodes, MissingFileIsAnInputError) {
  EXPECT_EQ(run_sbmpc("/nonexistent/no_such_file.loop"), 1);
}

TEST(SbmpcExitCodes, MalformedSourceIsAnInputError) {
  const std::string p = ::testing::TempDir() + "sbmpc_bad.loop";
  std::ofstream(p) << "doacross I = 1,\n  A[I =\n";
  EXPECT_EQ(run_sbmpc(p), 1);
}

TEST(SbmpcExitCodes, BadFlagsAreUsageErrors) {
  EXPECT_EQ(run_sbmpc("--no-such-flag"), 2);
  EXPECT_EQ(run_sbmpc("--mutate melt-cpu " + fig1_path()), 2);
  EXPECT_EQ(run_sbmpc(""), 2);  // no inputs
}

TEST(SbmpcExitCodes, DetectedMutationsExitValidation) {
  for (const char* m : {"hoist-send", "sink-wait", "drop-arc"}) {
    EXPECT_EQ(run_sbmpc("--mutate " + std::string(m) + " " + fig1_path()),
              3)
        << m;
  }
}

TEST(SbmpcExitCodes, OneBadFileInABatchStillRendersTheRest) {
  // Input error wins the fold, but processing must not stop early —
  // locked here only via the exit code; the rendering behavior is
  // asserted by the fold being 1 (not 2/4) with a good file first.
  EXPECT_EQ(run_sbmpc(fig1_path() + " /nonexistent/missing.loop"), 1);
}

#endif  // SBMPC_PATH

}  // namespace
}  // namespace sbmp
