// Tests for the reporting/tooling layers: DOT export, schedule
// statistics and the Fig 4-style schedule rendering.
#include <gtest/gtest.h>

#ifdef SBMPC_PATH
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#endif

#include "sbmp/codegen/codegen.h"
#include "sbmp/dfg/export.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/obs/trace.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sched/stats.h"
#include "sbmp/sync/sync.h"

#ifdef SBMPD_PATH
#include "sbmp/serve/client.h"
#include "sbmp/serve/protocol.h"
#endif

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

struct Built {
  TacFunction tac;
  Dfg dfg;
  MachineDesc config;
};

Built build(const char* src, MachineDesc config = machines::paper(4, 1)) {
  TacFunction tac = generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
  Dfg dfg(tac, config);
  return {std::move(tac), std::move(dfg), config};
}

TEST(DotExport, ContainsAllNodesAndClusters) {
  const Built b = build(kFig1);
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  EXPECT_NE(dot.find("digraph dfg"), std::string::npos);
  for (int id = 1; id <= b.tac.size(); ++id) {
    EXPECT_NE(dot.find("n" + std::to_string(id) + " [label="),
              std::string::npos)
        << id;
  }
  EXPECT_NE(dot.find("Sigwat graph"), std::string::npos);
  EXPECT_NE(dot.find("Wat graph"), std::string::npos);
}

TEST(DotExport, EdgeStylesByKind) {
  const Built b = build(kFig1);
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  // Sync arcs bold red; memory edges dashed.
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // The wait/send triangle markers of the paper's Fig 3.
  EXPECT_NE(dot.find("shape=invtriangle"), std::string::npos);
  EXPECT_NE(dot.find("shape=triangle"), std::string::npos);
}

TEST(DotExport, MultiCycleLatencyLabelled) {
  const Built b = build(R"(
doacross I = 1, 10
  A[I] = A[I-1] * B[I]
end
)");
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  EXPECT_NE(dot.find("[label=\"3\"]"), std::string::npos)
      << "multiplier latency edge";
}

TEST(DotExport, BalancedBracesAndQuotes) {
  const Built b = build(kFig1);
  const std::string dot = dfg_to_dot(b.tac, b.dfg);
  int braces = 0;
  int quotes = 0;
  for (const char c : dot) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '"') ++quotes;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST(ScheduleStats, CountsAndUtilization) {
  const Built b = build(kFig1);
  const Schedule s = schedule_list(b.tac, b.dfg, b.config);
  const ScheduleStats stats =
      compute_schedule_stats(b.tac, b.dfg, s, b.config);
  EXPECT_EQ(stats.instructions, 28);
  EXPECT_EQ(stats.groups, s.length());
  EXPECT_GT(stats.issue_utilization, 0.0);
  EXPECT_LE(stats.issue_utilization, 1.0);
  for (const double u : stats.fu_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(ScheduleStats, WorstSpanMatchesAnalytic) {
  const Built b = build(kFig1);
  const Schedule list = schedule_list(b.tac, b.dfg, b.config);
  const Schedule ours = schedule_sync_aware(b.tac, b.dfg, b.config, 100);
  const ScheduleStats sl = compute_schedule_stats(b.tac, b.dfg, list,
                                                  b.config);
  const ScheduleStats so = compute_schedule_stats(b.tac, b.dfg, ours,
                                                  b.config);
  EXPECT_GT(sl.worst_sync_span, so.worst_sync_span);
}

TEST(ScheduleStats, PaddingGroupsCounted) {
  // A divider chain forces latency-padding groups.
  const Built b = build(R"(
doacross I = 1, 10
  A[I] = A[I-1] / B[I]
end
)");
  const Schedule s = schedule_sync_aware(b.tac, b.dfg, b.config, 10);
  const ScheduleStats stats =
      compute_schedule_stats(b.tac, b.dfg, s, b.config);
  EXPECT_GT(stats.empty_groups, 0);
}

TEST(ScheduleStats, ToStringMentionsEveryFuClass) {
  const Built b = build(kFig1);
  const Schedule s = schedule_list(b.tac, b.dfg, b.config);
  const std::string text =
      compute_schedule_stats(b.tac, b.dfg, s, b.config).to_string();
  for (int f = 0; f < kNumFuClasses; ++f) {
    EXPECT_NE(text.find(fu_class_name(static_cast<FuClass>(f))),
              std::string::npos);
  }
  EXPECT_NE(text.find("worst sync span"), std::string::npos);
}

#ifdef SBMPC_PATH

/// Spawns the real sbmpc binary and returns its process exit code —
/// the contract tests below lock the documented mapping (0 ok,
/// 1 input, 2 usage, 3 validation).
int run_sbmpc(const std::string& args) {
  const std::string cmd =
      std::string(SBMPC_PATH) + " " + args + " >/dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

/// Writes the paper example to a temp file once and returns its path.
const std::string& fig1_path() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "sbmpc_fig1.loop";
    std::ofstream out(p);
    out << "doacross I = 1, 100\n"
           "  B[I] = A[I-2] + E[I+1]\n"
           "  G[I-3] = A[I-1] * E[I+2]\n"
           "  A[I] = B[I] + C[I+3]\n"
           "end\n";
    return p;
  }();
  return path;
}

TEST(SbmpcExitCodes, CleanInputExitsZero) {
  EXPECT_EQ(run_sbmpc(fig1_path()), 0);
  EXPECT_EQ(run_sbmpc("--list-benchmarks"), 0);
}

TEST(SbmpcExitCodes, MissingFileIsAnInputError) {
  EXPECT_EQ(run_sbmpc("/nonexistent/no_such_file.loop"), 1);
}

TEST(SbmpcExitCodes, MalformedSourceIsAnInputError) {
  const std::string p = ::testing::TempDir() + "sbmpc_bad.loop";
  std::ofstream(p) << "doacross I = 1,\n  A[I =\n";
  EXPECT_EQ(run_sbmpc(p), 1);
}

TEST(SbmpcExitCodes, BadFlagsAreUsageErrors) {
  EXPECT_EQ(run_sbmpc("--no-such-flag"), 2);
  EXPECT_EQ(run_sbmpc("--mutate melt-cpu " + fig1_path()), 2);
  EXPECT_EQ(run_sbmpc(""), 2);  // no inputs
}

TEST(SbmpcExitCodes, DetectedMutationsExitValidation) {
  for (const char* m : {"hoist-send", "sink-wait", "drop-arc"}) {
    EXPECT_EQ(run_sbmpc("--mutate " + std::string(m) + " " + fig1_path()),
              3)
        << m;
  }
}

TEST(SbmpcExitCodes, ExecuteCleanRunExitsZero) {
  // The real-thread execution path: run + serial-reference differential
  // check must pass at one and several workers (docs/execution.md).
  EXPECT_EQ(run_sbmpc("--execute " + fig1_path()), 0);
  EXPECT_EQ(run_sbmpc("--execute-threads 4 " + fig1_path()), 0);
}

TEST(SbmpcExitCodes, ExecuteDivergenceIsTyped) {
  // --execute-corrupt flips one result bit after the run; the
  // differential check must catch it and exit with the dedicated code,
  // proving the detector is live (analogue of --mutate exiting 3).
  EXPECT_EQ(run_sbmpc("--execute-corrupt " + fig1_path()), 9);
}

TEST(SbmpcExitCodes, ExecuteResourceRefusalIsTyped) {
  // A thread count above the executor's per-run ceiling is a typed
  // refusal, not a clamp or a crash.
  EXPECT_EQ(run_sbmpc("--execute-threads 0 " + fig1_path()), 2);
  EXPECT_EQ(run_sbmpc("--execute-threads 513 " + fig1_path()), 10);
}

TEST(SbmpcExitCodes, OneBadFileInABatchStillRendersTheRest) {
  // Input error wins the fold, but processing must not stop early —
  // locked here only via the exit code; the rendering behavior is
  // asserted by the fold being 1 (not 2/4) with a good file first.
  EXPECT_EQ(run_sbmpc(fig1_path() + " /nonexistent/missing.loop"), 1);
}

// --- schedule-cache and daemon contracts (docs/serving.md) -----------

/// Like run_sbmpc but captures stdout, so byte-identity across cache
/// states and transports can be asserted, not just exit codes.
int run_sbmpc_capture(const std::string& args, std::string* out) {
  const std::string path = ::testing::TempDir() + "sbmpc_capture.txt";
  const std::string cmd =
      std::string(SBMPC_PATH) + " " + args + " > " + path + " 2>/dev/null";
  const int raw = std::system(cmd.c_str());
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

/// The flag set the cache tests run with — the full rendering surface,
/// so the byte-identity assertion covers every dump path a cached
/// report feeds (schedule, stats, comparison, validation verdicts).
std::string render_flags() {
  return "--compare --dump schedule --dump stats --check ";
}

TEST(SbmpcScheduleCache, WarmRunsAreByteIdenticalToCold) {
  const std::string dir = fresh_dir("sbmpc_cache");
  const std::string args =
      render_flags() + "--cache-dir " + dir + " " + fig1_path();
  std::string cold;
  ASSERT_EQ(run_sbmpc_capture(args, &cold), 0);
  ASSERT_FALSE(cold.empty());
  std::string warm;
  ASSERT_EQ(run_sbmpc_capture(args, &warm), 0);
  EXPECT_EQ(warm, cold);
  // And equal to an uncached local run: the cache may never change the
  // output, only the time it takes.
  std::string uncached;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + fig1_path(), &uncached), 0);
  EXPECT_EQ(uncached, cold);
}

TEST(SbmpcScheduleCache, SuiteWarmRunIsByteIdentical) {
  const std::string dir = fresh_dir("sbmpc_cache_suite");
  const std::string args = "--list-benchmarks --cache-dir " + dir;
  std::string cold;
  ASSERT_EQ(run_sbmpc_capture(args, &cold), 0);
  std::string warm;
  ASSERT_EQ(run_sbmpc_capture(args, &warm), 0);
  EXPECT_EQ(warm, cold);
}

TEST(SbmpcScheduleCache, CorruptedEntriesAreRecompiledNotServed) {
  const std::string dir = fresh_dir("sbmpc_cache_corrupt");
  const std::string args =
      render_flags() + "--cache-dir " + dir + " " + fig1_path();
  std::string cold;
  ASSERT_EQ(run_sbmpc_capture(args, &cold), 0);
  // Deliberately corrupt every stored entry: truncate one, bit-flip
  // another, garbage a third — each must be treated as a miss.
  std::vector<std::string> entries;
  {
    const std::string cmd = "ls " + dir + " > " + dir + ".list";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::ifstream list(dir + ".list");
    for (std::string name; std::getline(list, name);)
      entries.push_back(dir + "/" + name);
  }
  ASSERT_FALSE(entries.empty());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::ifstream in(entries[i]);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    switch (i % 3) {
      case 0: bytes = bytes.substr(0, bytes.size() / 2); break;
      case 1: bytes[bytes.size() / 3] ^= 0x41; break;
      default: bytes = "not a cache entry at all"; break;
    }
    std::ofstream(entries[i], std::ios::trunc) << bytes;
  }
  std::string recompiled;
  ASSERT_EQ(run_sbmpc_capture(args, &recompiled), 0);  // never a crash
  EXPECT_EQ(recompiled, cold);  // and never a wrong schedule
}

#ifdef SBMPD_PATH

/// Starts sbmpd and waits until its socket accepts; kills the daemon in
/// the destructor if the test did not shut it down itself. A non-empty
/// `stdout_path` captures the daemon's stdout (the --metrics-dump
/// channel) into that file.
class DaemonGuard {
 public:
  explicit DaemonGuard(const std::string& extra_args,
                       const std::string& stdout_path = "") {
    socket_ = ::testing::TempDir() + "sbmpd_test_" +
              std::to_string(::getpid()) + ".sock";
    ::unlink(socket_.c_str());
    // Exec the daemon directly — a shell wrapper would make pid_ the
    // shell's, and the SIGTERM below must reach sbmpd itself.
    std::vector<std::string> argv_storage = {SBMPD_PATH, "--socket", socket_};
    std::istringstream extra(extra_args);
    for (std::string word; extra >> word;) argv_storage.push_back(word);
    std::vector<char*> argv;
    for (auto& arg : argv_storage) argv.push_back(arg.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      std::freopen("/dev/null", "w", stderr);
      if (!stdout_path.empty())
        std::freopen(stdout_path.c_str(), "w", stdout);
      ::execv(SBMPD_PATH, argv.data());
      std::_Exit(127);
    }
    for (int i = 0; i < 100 && !ready(); ++i) ::usleep(50 * 1000);
  }

  ~DaemonGuard() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int ignored;
      ::waitpid(pid_, &ignored, 0);
    }
    ::unlink(socket_.c_str());
  }

  [[nodiscard]] bool ready() const {
    struct stat st{};
    return ::stat(socket_.c_str(), &st) == 0;
  }

  [[nodiscard]] const std::string& socket() const { return socket_; }

  /// SIGTERM + wait; returns the daemon's exit code (-1 on signal
  /// death). The graceful-drain contract says this must be 0.
  int terminate() {
    ::kill(pid_, SIGTERM);
    int raw = 0;
    ::waitpid(pid_, &raw, 0);
    pid_ = -1;
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  }

  /// SIGKILL without waiting — simulates the daemon crashing out from
  /// under connected clients (the socket file stays behind, like a real
  /// crash would leave it). The destructor still reaps the zombie.
  void kill_now() {
    if (pid_ > 0) ::kill(pid_, SIGKILL);
  }

  [[nodiscard]] pid_t pid() const { return pid_; }

 private:
  std::string socket_;
  pid_t pid_ = -1;
};

TEST(SbmpdDaemon, RemoteRunsAreByteIdenticalToLocalRuns) {
  DaemonGuard daemon("--jobs 2");
  ASSERT_TRUE(daemon.ready()) << "sbmpd did not come up";
  std::string local;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + fig1_path(), &local), 0);
  std::string remote;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + "--remote " + daemon.socket() +
                                  " " + fig1_path(),
                              &remote),
            0);
  EXPECT_EQ(remote, local);
  // Second client: served from the daemon's caches, still identical.
  std::string remote2;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + "--remote " + daemon.socket() +
                                  " " + fig1_path(),
                              &remote2),
            0);
  EXPECT_EQ(remote2, local);
  EXPECT_EQ(daemon.terminate(), 0);  // graceful drain on SIGTERM
}

TEST(SbmpdDaemon, RemoteSuiteRunIsByteIdentical) {
  const std::string dir = fresh_dir("sbmpd_cache");
  DaemonGuard daemon("--cache-dir " + dir);
  ASSERT_TRUE(daemon.ready()) << "sbmpd did not come up";
  std::string local;
  ASSERT_EQ(run_sbmpc_capture("--list-benchmarks", &local), 0);
  std::string remote;
  ASSERT_EQ(run_sbmpc_capture(
                "--list-benchmarks --remote " + daemon.socket(), &remote),
            0);
  EXPECT_EQ(remote, local);
  EXPECT_EQ(daemon.terminate(), 0);
}

TEST(SbmpdDaemon, MissingDaemonIsUnavailableExitSix) {
  // kUnavailable (6), not an input error: the loop was fine, the daemon
  // was not — the transient class --fallback-local and retries key on.
  EXPECT_EQ(run_sbmpc("--remote /nonexistent/sbmpd.sock --retries 1 " +
                      fig1_path()),
            6);
}

TEST(SbmpdDaemon, FallbackLocalDegradesToExitZeroWithNoDaemon) {
  std::string local;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + fig1_path(), &local), 0);
  std::string degraded;
  // The daemon never existed; every compile falls back. Exit 0 and
  // byte-identical output — degradation changes availability, never
  // the answer.
  ASSERT_EQ(run_sbmpc_capture(render_flags() +
                                  "--remote /nonexistent/sbmpd.sock "
                                  "--retries 1 --fallback-local " +
                                  fig1_path(),
                              &degraded),
            0);
  EXPECT_EQ(degraded, local);
}

TEST(SbmpdDaemon, FallbackLocalSurvivesTheDaemonDyingMidRun) {
  std::string local;
  ASSERT_EQ(run_sbmpc_capture("--list-benchmarks", &local), 0);
  DaemonGuard daemon("--jobs 2");
  ASSERT_TRUE(daemon.ready()) << "sbmpd did not come up";
  // Kill the daemon while the suite run is in flight: whichever
  // requests lose their connection must degrade to local compiles, and
  // the run must still complete the whole corpus with exit 0.
  std::thread assassin([&daemon] {
    ::usleep(30 * 1000);
    daemon.kill_now();
  });
  std::string degraded;
  const int exit_code = run_sbmpc_capture(
      "--list-benchmarks --remote " + daemon.socket() +
          " --retries 2 --retry-backoff-ms 1 --io-timeout-ms 2000 "
          "--fallback-local",
      &degraded);
  assassin.join();
  EXPECT_EQ(exit_code, 0);
  EXPECT_EQ(degraded, local);
}

TEST(SbmpdDaemon, PerConnectionRequestLimitForcesTransparentReconnects) {
  const std::string second = ::testing::TempDir() + "sbmpc_stencil.loop";
  std::ofstream(second) << "doacross I = 1, 100\n"
                           "  U[I] = (U[I-1] + V[I]) * w1 + V[I+1] * w2\n"
                           "  R[I] = V[I-2] * w3 + V[I+2]\n"
                           "end\n";
  std::string local;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + fig1_path() + " " + second,
                              &local),
            0);
  // One request per connection: the daemon hangs up after every
  // compile, so the second request only succeeds if the client
  // reconnects and retries. Output must remain byte-identical.
  DaemonGuard daemon("--max-requests-per-conn 1");
  ASSERT_TRUE(daemon.ready()) << "sbmpd did not come up";
  std::string remote;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + "--remote " + daemon.socket() +
                                  " --retries 10 --retry-backoff-ms 1 " +
                                  fig1_path() + " " + second,
                              &remote),
            0);
  EXPECT_EQ(remote, local);
  EXPECT_EQ(daemon.terminate(), 0);
}

TEST(SbmpdDaemon, SigtermDrainStaysCleanUnderAdmissionLimits) {
  DaemonGuard daemon("--max-inflight 1 --max-queue 2 --io-timeout-ms 2000");
  ASSERT_TRUE(daemon.ready()) << "sbmpd did not come up";
  std::string out;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + "--remote " + daemon.socket() +
                                  " " + fig1_path(),
                              &out),
            0);
  EXPECT_EQ(daemon.terminate(), 0);  // drain exits 0 with limits armed
}

TEST(SbmpdDaemon, StatFrameReturnsAVersionedSnapshot) {
  DaemonGuard daemon("");
  ASSERT_TRUE(daemon.ready()) << "sbmpd did not come up";
  std::string out;
  ASSERT_EQ(run_sbmpc_capture(
                render_flags() + "--remote " + daemon.socket() + " " +
                    fig1_path(),
                &out),
            0);
  RemoteCompiler client(daemon.socket());
  const StatSnapshot snapshot = client.stat();
  EXPECT_EQ(snapshot.version, kStatFormatVersion);
  EXPECT_GE(snapshot.server.requests, 1);
  EXPECT_GE(snapshot.server.compiles, 1);
  const MetricSample* requests =
      snapshot.metrics.find("sbmp_server_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value, snapshot.server.requests);
  // Remote compiles feed the same per-phase histograms a local
  // instrumented run would (the daemon attaches its registry).
  const MetricSample* dep =
      snapshot.metrics.find("sbmp_compile_phase_ns", "phase=\"dep\"");
  ASSERT_NE(dep, nullptr);
  EXPECT_GE(dep->count, 1);
  EXPECT_EQ(daemon.terminate(), 0);
}

TEST(SbmpdDaemon, MetricsDumpEmitsPrometheusTextOnDrain) {
  const std::string dump = ::testing::TempDir() + "sbmpd_metrics.txt";
  ::unlink(dump.c_str());
  {
    DaemonGuard daemon("--metrics-dump", dump);
    ASSERT_TRUE(daemon.ready()) << "sbmpd did not come up";
    std::string out;
    ASSERT_EQ(run_sbmpc_capture(
                  render_flags() + "--remote " + daemon.socket() + " " +
                      fig1_path(),
                  &out),
              0);
    EXPECT_EQ(daemon.terminate(), 0);
  }
  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << "no metrics dump at " << dump;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string prom = buffer.str();
  // The dump must cover the whole registry: serving tallies, cache
  // counters, the request histogram and the per-phase compile
  // histograms, all in parseable exposition format.
  for (const char* needle :
       {"# TYPE sbmp_server_requests_total counter",
        "sbmp_server_requests_total ", "sbmp_result_cache_misses_total",
        "# TYPE sbmp_server_request_ns histogram",
        "sbmp_server_request_ns_count ", "sbmp_compile_phase_ns_bucket",
        "phase=\"dep\"", "le=\"+Inf\""}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
  // Structural sanity: every non-comment line is "name[{labels}] value".
  std::istringstream lines(prom);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NE(line.substr(0, space).find("sbmp_"), std::string::npos)
        << line;
  }
}

#endif  // SBMPD_PATH

TEST(SbmpcTrace, TraceOutEmitsValidatedJsonAndChangesNoOutput) {
  const std::string trace = ::testing::TempDir() + "sbmpc_trace.json";
  ::unlink(trace.c_str());
  std::string untraced;
  ASSERT_EQ(run_sbmpc_capture(render_flags() + fig1_path(), &untraced), 0);
  std::string traced;
  ASSERT_EQ(run_sbmpc_capture(
                render_flags() + "--trace-out " + trace + " " + fig1_path(),
                &traced),
            0);
  // The tracer may never alter what the compiler prints.
  EXPECT_EQ(traced, untraced);
  std::ifstream in(trace);
  ASSERT_TRUE(in.good()) << "no trace written to " << trace;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  ASSERT_TRUE(validate_chrome_trace(json).ok()) << json;
  for (const char* needle : {"\"traceEvents\"", "\"pipeline\"", "\"dep\"",
                             "\"schedule\"", "\"frontend\"", "\"lbd_pairs\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

#endif  // SBMPC_PATH

}  // namespace
}  // namespace sbmp
