#include <gtest/gtest.h>

#include "sbmp/frontend/parser.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

TEST(SyncInsertion, Fig1Placement) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const SyncedLoop synced = insert_synchronization(loop);

  ASSERT_EQ(synced.waits.size(), 2u);
  ASSERT_EQ(synced.sends.size(), 1u);
  EXPECT_TRUE(synced.synchronizable());

  // Wait(S3, I-2) before S1, Wait(S3, I-1) before S2, Send(S3) after S3.
  const auto w1 = synced.waits_before(1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0].signal_stmt, 3);
  EXPECT_EQ(w1[0].distance, 2);
  const auto w2 = synced.waits_before(2);
  ASSERT_EQ(w2.size(), 1u);
  EXPECT_EQ(w2[0].distance, 1);
  EXPECT_TRUE(synced.has_send(3));
  EXPECT_FALSE(synced.has_send(1));
}

TEST(SyncInsertion, Fig1Rendering) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const SyncedLoop synced = insert_synchronization(loop);
  const std::string expected =
      "DOACROSS I = 1, 100\n"
      "  Wait_Signal(S3, I-2);\n"
      "  S1: B[I] = (A[I-2]+E[I+1]);\n"
      "  Wait_Signal(S3, I-1);\n"
      "  S2: G[I-3] = (A[I-1]*E[I+2]);\n"
      "  S3: A[I] = (B[I]+C[I+3]);\n"
      "  Send_Signal(S3);\n"
      "END_DOACROSS\n";
  EXPECT_EQ(synced.to_string(), expected);
}

TEST(SyncInsertion, OneSendServesManyDeps) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const SyncedLoop synced = insert_synchronization(loop);
  EXPECT_EQ(synced.synced.size(), 2u);
  EXPECT_EQ(synced.sends.size(), 1u) << "both deps share source S3";
}

TEST(SyncInsertion, DoallLoopGetsNoSync) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 10
  A[I] = B[I] + 1
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  EXPECT_TRUE(synced.waits.empty());
  EXPECT_TRUE(synced.sends.empty());
}

TEST(SyncInsertion, LoopIndependentDepsNeedNoSync) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 10
  A[I] = B[I] + 1
  C[I] = A[I] * 2
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  EXPECT_TRUE(synced.waits.empty());
}

TEST(SyncInsertion, IrregularDepsReported) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 30
  A[2*I] = A[5*I+1] + 1
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  EXPECT_FALSE(synced.synchronizable());
  EXPECT_FALSE(synced.unsynchronizable.empty());
}

TEST(SyncInsertion, WaitsSortLongestDistanceFirst) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + A[I-3]
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  ASSERT_EQ(synced.waits.size(), 2u);
  EXPECT_EQ(synced.waits[0].distance, 3);
  EXPECT_EQ(synced.waits[1].distance, 1);
}

TEST(SyncInsertion, AntiDependenceGuardsTheWrite) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  B[I] = A[I+2] * 2
  A[I] = C[I] + 1
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  // Anti dep S1 -> S2 distance 2: wait before S2 guards its write; send
  // after S1 guards the read.
  ASSERT_EQ(synced.waits.size(), 1u);
  EXPECT_EQ(synced.waits[0].sink_stmt, 2);
  EXPECT_TRUE(synced.waits[0].sink_is_write);
  ASSERT_EQ(synced.sends.size(), 1u);
  EXPECT_EQ(synced.sends[0].signal_stmt, 1);
  EXPECT_FALSE(synced.sends[0].src_is_write);
}

TEST(SyncRedundancy, ChainedSelfRecurrenceCoversLongerDistance) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + A[I-2]
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  ASSERT_EQ(synced.waits.size(), 2u);
  const auto redundant = find_redundant_waits(synced);
  // The d=2 wait is covered by chaining the d=1 wait twice.
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(synced.waits[redundant[0]].distance, 2);
}

TEST(SyncRedundancy, Fig1WaitsAreBothNeeded) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const SyncedLoop synced = insert_synchronization(loop);
  EXPECT_TRUE(find_redundant_waits(synced).empty())
      << "Wait(S3, I-2) precedes S1, which the I-1 wait (after S1) "
         "cannot cover";
}

TEST(SyncRedundancy, EliminationOptionDropsWaitAndKeepsSend) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + A[I-2]
end
)");
  SyncOptions options;
  options.eliminate_redundant = true;
  const SyncedLoop synced = insert_synchronization(loop, options);
  ASSERT_EQ(synced.waits.size(), 1u);
  EXPECT_EQ(synced.waits[0].distance, 1);
  EXPECT_EQ(synced.sends.size(), 1u);
}

TEST(SyncRedundancy, CoverageByMultipleChainSteps) {
  // Distances 2 and 4: the d=4 wait is covered by chaining the d=2 wait
  // twice, and the send stays because the d=2 wait still consumes it.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-2] + A[I-4]
end
)");
  SyncOptions options;
  options.eliminate_redundant = true;
  const SyncedLoop synced = insert_synchronization(loop, options);
  ASSERT_EQ(synced.waits.size(), 1u);
  EXPECT_EQ(synced.waits[0].distance, 2);
  EXPECT_EQ(synced.sends.size(), 1u) << "send still consumed by d=2 wait";
}

TEST(SyncRedundancy, BackwardChainCoverage) {
  // S2 -> S1 backward deps at distances 1 and 2. The d=2 wait is
  // covered by chaining the d=1 wait: X(i-2) bef send(i-2) bef
  // wait_d1(i-1) bef S2(i-1) bef send(i-1) bef wait_d1(i) bef S1(i).
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  C[I] = X[I-1] + X[I-2]
  X[I] = B[I] + 1
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  ASSERT_EQ(synced.waits.size(), 2u);
  const auto redundant = find_redundant_waits(synced);
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(synced.waits[redundant[0]].distance, 2);
}

TEST(SyncRedundancy, ForwardChainNotCovered) {
  // Forward deps S1 -> S2 at distances 1 and 2: the d=1 wait sits
  // *after* the send in program order, so chaining never reaches back to
  // S1 of two iterations ago; both waits are needed.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  X[I] = B[I] + 1
  C[I] = X[I-1] + X[I-2]
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  ASSERT_EQ(synced.waits.size(), 2u);
  EXPECT_TRUE(find_redundant_waits(synced).empty());
}

}  // namespace
}  // namespace sbmp
