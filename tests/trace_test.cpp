#include <gtest/gtest.h>

#include "sbmp/codegen/codegen.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sim/trace.h"
#include "sbmp/sync/sync.h"
#include "sbmp/support/strings.h"

namespace sbmp {
namespace {

struct Built {
  TacFunction tac;
  Dfg dfg;
  MachineDesc config;
  Schedule schedule;
};

Built build(const char* src, SchedulerKind kind) {
  const MachineDesc config = machines::paper(4, 1);
  TacFunction tac = generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
  Dfg dfg(tac, config);
  Schedule schedule = run_scheduler(kind, tac, dfg, config, 100);
  return {std::move(tac), std::move(dfg), config, std::move(schedule)};
}

SimOptions options(std::int64_t n, int procs = 0) {
  SimOptions o;
  o.iterations = n;
  o.processors = procs;
  return o;
}

TEST(Trace, RowsForRequestedIterations) {
  const Built b = build("doacross I = 1, 100\n A[I] = A[I-1] + B[I]\nend\n",
                        SchedulerKind::kList);
  const std::string text = trace_to_string(b.tac, b.dfg, b.schedule,
                                           b.config, options(100), 5, 200);
  EXPECT_EQ(split(text, '\n').size(), 6u);  // 5 rows + trailing newline
  EXPECT_NE(text.find("iter 0"), std::string::npos);
  EXPECT_NE(text.find("iter 4"), std::string::npos);
}

TEST(Trace, MarksWaitsAndSends) {
  const Built b = build("doacross I = 1, 100\n A[I] = A[I-1] + B[I]\nend\n",
                        SchedulerKind::kList);
  const std::string text = trace_to_string(b.tac, b.dfg, b.schedule,
                                           b.config, options(100), 3, 200);
  EXPECT_NE(text.find('w'), std::string::npos);
  EXPECT_NE(text.find('s'), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Trace, LbdStaircaseVisible) {
  // Under list scheduling the d=1 recurrence serializes: each row's
  // first mark starts strictly later than the previous row's.
  const Built b = build("doacross I = 1, 100\n A[I] = A[I-1] + B[I]\nend\n",
                        SchedulerKind::kList);
  const std::string text = trace_to_string(b.tac, b.dfg, b.schedule,
                                           b.config, options(100), 4, 400);
  std::vector<std::size_t> starts;
  for (const auto line : split(text, '\n')) {
    const auto bar = line.find('|');
    if (bar == std::string_view::npos) continue;
    const auto first = line.find_first_not_of(' ', bar + 1);
    if (first != std::string_view::npos) starts.push_back(first);
  }
  ASSERT_GE(starts.size(), 3u);
  for (std::size_t i = 1; i < starts.size(); ++i)
    EXPECT_GT(starts[i], starts[i - 1]);
}

TEST(Trace, DoallRowsAligned) {
  const Built b = build("do I = 1, 50\n A[I] = B[I] * 2\nend\n",
                        SchedulerKind::kList);
  const std::string text = trace_to_string(b.tac, b.dfg, b.schedule,
                                           b.config, options(50), 3, 100);
  std::vector<std::string> rows;
  for (const auto line : split(text, '\n'))
    if (!line.empty()) rows.emplace_back(line.substr(line.find('|')));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], rows[1]);
  EXPECT_EQ(rows[1], rows[2]);
}

TEST(Trace, TruncationMarked) {
  const Built b = build("doacross I = 1, 100\n A[I] = A[I-1] / B[I]\nend\n",
                        SchedulerKind::kList);
  const std::string text = trace_to_string(b.tac, b.dfg, b.schedule,
                                           b.config, options(100), 8, 30);
  EXPECT_NE(text.find("..."), std::string::npos);
}

TEST(IssueTimes, MatchSimulatorSemantics) {
  const Built b = build("doacross I = 1, 100\n A[I] = A[I-1] + B[I]\nend\n",
                        SchedulerKind::kSyncAware);
  const auto rows = simulate_issue_times(b.tac, b.dfg, b.schedule, b.config,
                                         options(100), 10);
  ASSERT_EQ(rows.size(), 10u);
  // In-order issue within an iteration.
  for (const auto& row : rows) {
    for (std::size_t g = 1; g < row.size(); ++g)
      EXPECT_GT(row[g], row[g - 1]);
  }
  // The wait group of iteration k issues after iteration k-1's send.
  int send_slot = 0;
  int wait_slot = 0;
  for (const auto& instr : b.tac.instrs) {
    if (instr.op == Opcode::kSend) send_slot = b.schedule.slot(instr.id);
    if (instr.op == Opcode::kWait) wait_slot = b.schedule.slot(instr.id);
  }
  for (std::size_t k = 1; k < rows.size(); ++k) {
    EXPECT_GT(rows[k][static_cast<std::size_t>(wait_slot)],
              rows[k - 1][static_cast<std::size_t>(send_slot)]);
  }
}

TEST(IssueTimes, FewerProcessorsDelayLaterIterations) {
  const Built b = build("do I = 1, 50\n A[I] = B[I] * 2\nend\n",
                        SchedulerKind::kList);
  const auto all = simulate_issue_times(b.tac, b.dfg, b.schedule, b.config,
                                        options(50, 0), 4);
  const auto two = simulate_issue_times(b.tac, b.dfg, b.schedule, b.config,
                                        options(50, 2), 4);
  // With unlimited processors every iteration starts at 0; with 2, the
  // third iteration waits for a processor.
  EXPECT_EQ(all[2][0], 0);
  EXPECT_GT(two[2][0], 0);
  EXPECT_EQ(two[0][0], 0);
  EXPECT_EQ(two[1][0], 0);
}

}  // namespace
}  // namespace sbmp
