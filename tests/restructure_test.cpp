#include <gtest/gtest.h>

#include "sbmp/core/pipeline.h"
#include "sbmp/restructure/classify.h"
#include "sbmp/restructure/restructure.h"

namespace sbmp {
namespace {

RestructureResult restructure(const char* src) {
  return restructure_or_throw(parse_single_pre_loop_or_throw(src));
}

std::string loop_body(const RestructureResult& r) {
  std::string out;
  for (const auto& stmt : r.loop.body)
    out += statement_to_string(stmt, r.loop.iter_var) + "\n";
  return out;
}

TEST(PreParser, ScalarStatementsAndInit) {
  const PreLoop pre = parse_single_pre_loop_or_throw(R"(
do I = 1, 100
  init k = 3
  sum = sum + A[I]
  B[I] = sum * 2
  k = k + 2
end
)");
  ASSERT_EQ(pre.body.size(), 3u);
  EXPECT_TRUE(pre.body[0].is_scalar());
  EXPECT_EQ(pre.body[0].scalar_lhs, "sum");
  EXPECT_FALSE(pre.body[1].is_scalar());
  EXPECT_EQ(pre.scalar_inits.at("k"), 3);
}

TEST(PreParser, PlainParserStillRejectsScalars) {
  DiagEngine diags;
  (void)parse_program("do I = 1, 4\n s = B[I]\nend\n", diags);
  EXPECT_FALSE(diags.ok());
}

TEST(PreParser, PreLoopRoundTrips) {
  const PreLoop pre = parse_single_pre_loop_or_throw(R"(
do I = 1, 10
  init k = -2
  k = k + 1
  A[I] = B[I] * k
end
)");
  const PreLoop again = parse_single_pre_loop_or_throw(pre.to_string());
  EXPECT_EQ(again.scalar_inits.at("k"), -2);
  ASSERT_EQ(again.body.size(), pre.body.size());
}

TEST(Restructure, ReductionReplacement) {
  const auto r = restructure(R"(
do I = 1, 100
  sum = sum + A[I] * B[I]
end
)");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.notes.size(), 1u);
  EXPECT_EQ(r.notes[0].kind, RestructureNote::Kind::kReductionReplacement);
  EXPECT_EQ(loop_body(r), "S1: sum_x[I] = (sum_x[I-1]+(A[I]*B[I]))\n");
  // The partial-sum recurrence is a distance-1 LBD DOACROSS loop.
  const DepAnalysis deps = analyze_dependences(r.loop);
  EXPECT_FALSE(deps.is_doall());
  EXPECT_EQ(deps.count_lbd(), 1);
}

TEST(Restructure, ProductReductionToo) {
  const auto r = restructure(R"(
do I = 1, 50
  prod = prod * A[I]
end
)");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.applied(RestructureNote::Kind::kReductionReplacement));
}

TEST(Restructure, ReductionWithOtherUsesBecomesExpansion) {
  const auto r = restructure(R"(
do I = 1, 100
  sum = sum + A[I]
  B[I] = sum / 2
end
)");
  ASSERT_TRUE(r.ok);
  // `sum` is observed each iteration, so this is a running prefix sum:
  // scalar expansion, not reduction replacement.
  EXPECT_TRUE(r.applied(RestructureNote::Kind::kScalarExpansion));
  EXPECT_FALSE(r.applied(RestructureNote::Kind::kReductionReplacement));
  EXPECT_EQ(loop_body(r),
            "S1: sum_x[I] = (sum_x[I-1]+A[I])\n"
            "S2: B[I] = (sum_x[I]/2)\n");
}

TEST(Restructure, ScalarExpansionUsesBeforeDefReadPreviousIteration) {
  const auto r = restructure(R"(
do I = 1, 100
  B[I] = t + A[I]
  t = C[I] * 2
end
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(loop_body(r),
            "S1: B[I] = (t_x[I-1]+A[I])\n"
            "S2: t_x[I] = (C[I]*2)\n");
  // The expanded use creates a genuine backward carried dependence.
  const DepAnalysis deps = analyze_dependences(r.loop);
  EXPECT_EQ(deps.count_lbd(), 1);
}

TEST(Restructure, ScalarExpansionUsesAfterDefStayInIteration) {
  const auto r = restructure(R"(
do I = 1, 100
  t = C[I] * 2
  B[I] = t + A[I]
end
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(loop_body(r),
            "S1: t_x[I] = (C[I]*2)\n"
            "S2: B[I] = (t_x[I]+A[I])\n");
  EXPECT_TRUE(analyze_dependences(r.loop).is_doall());
}

TEST(Restructure, MultipleDefinitionsChainCorrectly) {
  const auto r = restructure(R"(
do I = 1, 100
  t = A[I] + 1
  t = t * B[I]
  C[I] = t - 3
end
)");
  ASSERT_TRUE(r.ok);
  // First def's self-use would read the previous iteration (none here);
  // the second def reads this iteration's first write.
  EXPECT_EQ(loop_body(r),
            "S1: t_x[I] = (A[I]+1)\n"
            "S2: t_x[I] = (t_x[I]*B[I])\n"
            "S3: C[I] = (t_x[I]-3)\n");
}

TEST(Restructure, InductionSubstitutionWithInit) {
  const auto r = restructure(R"(
do I = 1, 100
  init k = 5
  k = k + 2
  B[I] = A[I] * k
end
)");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.notes.size(), 1u);
  EXPECT_EQ(r.notes[0].kind,
            RestructureNote::Kind::kInductionSubstitution);
  // Use after the update in iteration I sees 5 + 2*(I-1+1) = 5 + 2*I.
  EXPECT_EQ(loop_body(r), "S1: B[I] = (A[I]*(5+(2*(I+0))))\n");
  EXPECT_TRUE(analyze_dependences(r.loop).is_doall());
}

TEST(Restructure, InductionUseBeforeUpdate) {
  const auto r = restructure(R"(
do I = 1, 100
  init k = 0
  B[I] = A[I] + k
  k = k + 3
end
)");
  ASSERT_TRUE(r.ok);
  // Use before the update sees 0 + 3*(I-1).
  EXPECT_EQ(loop_body(r), "S1: B[I] = (A[I]+(0+(3*(I-1))))\n");
}

TEST(Restructure, InductionWithoutInitStaysSymbolic) {
  const auto r = restructure(R"(
do I = 1, 100
  k = k - 4
  B[I] = A[I] * k
end
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(loop_body(r), "S1: B[I] = (A[I]*(k+(-4*(I+0))))\n");
}

TEST(Restructure, CombinedTransformations) {
  const auto r = restructure(R"(
do I = 1, 100
  init k = 1
  k = k + 1
  sum = sum + A[I] * k
  t = B[I] - sum
  C[I] = t / 2
end
)");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.applied(RestructureNote::Kind::kInductionSubstitution));
  EXPECT_TRUE(r.applied(RestructureNote::Kind::kScalarExpansion));
  // `sum` is read by the `t` statement, so it expands rather than being
  // a pure reduction.
  const DepAnalysis deps = analyze_dependences(r.loop);
  EXPECT_FALSE(deps.is_doall());
  EXPECT_TRUE(deps.is_synchronizable());
}

TEST(Restructure, NoScalarsIsIdentity) {
  const auto r = restructure(R"(
do I = 1, 10
  A[I] = B[I] + 1
end
)");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.notes.empty());
  EXPECT_EQ(loop_body(r), "S1: A[I] = (B[I]+1)\n");
}

TEST(Restructure, FreshNameAvoidsCollision) {
  const auto r = restructure(R"(
do I = 1, 10
  t = A[I] + 1
  t_x[I] = t * 2
end
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(loop_body(r),
            "S1: t_xx[I] = (A[I]+1)\n"
            "S2: t_x[I] = (t_xx[I]*2)\n");
}

TEST(Restructure, PipelineOverloadCarriesNotes) {
  const PreLoop pre = parse_single_pre_loop_or_throw(R"(
do I = 1, 100
  sum = sum + A[I]
end
)");
  PipelineOptions options;
  options.check_ordering = true;
  const LoopReport report = run_pipeline(pre, options);
  ASSERT_EQ(report.restructure_notes.size(), 1u);
  EXPECT_TRUE(report.valid());
  EXPECT_FALSE(report.doall);
  // The partial-sum recurrence serializes: roughly n * span cycles.
  EXPECT_GT(report.parallel_time(), 100);
}

TEST(Restructure, EndToEndSchedulersCorrectOnRestructuredLoops) {
  const char* sources[] = {
      "do I = 1, 60\n sum = sum + A[I] * B[I]\nend\n",
      "do I = 1, 60\n t = A[I] + 1\n B[I] = t * t\n C[I] = t - B[I]\nend\n",
      "do I = 1, 60\n B[I] = t + A[I]\n t = C[I] * 2\nend\n",
      "do I = 1, 60\n init k = 2\n k = k + 2\n sum = sum + A[I] * "
      "k\nend\n",
  };
  for (const char* src : sources) {
    const PreLoop pre = parse_single_pre_loop_or_throw(src);
    for (const auto kind : {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
      PipelineOptions options;
      options.scheduler = kind;
      options.iterations = 60;
      options.check_ordering = true;
      const LoopReport report = run_pipeline(pre, options);
      EXPECT_TRUE(report.valid()) << src << scheduler_name(kind);
    }
  }
}

TEST(Classify, ReductionLoop) {
  const auto r = restructure("do I = 1, 50\n s = s + A[I]\nend\n");
  const auto types = classify_doacross(r, analyze_dependences(r.loop));
  EXPECT_TRUE(types.count(DoacrossType::kReduction));
  EXPECT_TRUE(types.count(DoacrossType::kSimpleSubscript));
}

TEST(Classify, InductionLoop) {
  const auto r = restructure(
      "do I = 1, 50\n init k = 0\n k = k + 1\n B[I] = A[I] * k\nend\n");
  const auto types = classify_doacross(r, analyze_dependences(r.loop));
  EXPECT_TRUE(types.count(DoacrossType::kInduction));
}

TEST(Classify, AntiOutputLoop) {
  const auto r = restructure(
      "do I = 1, 50\n B[I] = A[I+1]\n A[I] = C[I]\nend\n");
  const auto types = classify_doacross(r, analyze_dependences(r.loop));
  EXPECT_TRUE(types.count(DoacrossType::kAntiOutput));
}

TEST(Classify, DoallRendersEmpty) {
  const auto r = restructure("do I = 1, 50\n A[I] = B[I]\nend\n");
  const auto types = classify_doacross(r, analyze_dependences(r.loop));
  EXPECT_TRUE(types.empty());
  EXPECT_EQ(doacross_types_to_string(types), "doall");
}

TEST(Classify, NonUnitCoefficientIsOther) {
  const auto r = restructure("do I = 1, 50\n A[2*I] = A[2*I-4] + 1\nend\n");
  const auto types = classify_doacross(r, analyze_dependences(r.loop));
  EXPECT_TRUE(types.count(DoacrossType::kOther));
}

}  // namespace
}  // namespace sbmp
