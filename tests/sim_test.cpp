#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "sbmp/codegen/codegen.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sim/analytic.h"
#include "sbmp/sim/simulator.h"
// Internal core, included directly so the test can pin the steady-state
// fast-forward against the forced per-iteration loop.
#include "../src/sim/src/sim_core.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

struct Built {
  TacFunction tac;
  Dfg dfg;
  Schedule schedule;
  MachineDesc config;
  std::vector<Dependence> carried;
};

Built build(const char* src, SchedulerKind kind = SchedulerKind::kSyncAware,
            MachineDesc config = machines::paper(4, 1),
            std::int64_t n = 100) {
  const Loop loop = parse_single_loop_or_throw(src);
  const DepAnalysis deps = analyze_dependences(loop);
  TacFunction tac = generate_tac(insert_synchronization(loop, deps));
  Dfg dfg(tac, config);
  Schedule schedule = run_scheduler(kind, tac, dfg, config, n);
  std::vector<Dependence> carried;
  for (const auto& dep : deps.deps)
    if (dep.loop_carried()) carried.push_back(dep);
  return {std::move(tac), std::move(dfg), std::move(schedule), config,
          std::move(carried)};
}

SimResult run(const Built& b, std::int64_t n, int procs = 0) {
  SimOptions options;
  options.iterations = n;
  options.processors = procs;
  return simulate(b.tac, b.dfg, b.schedule, b.config, options);
}

TEST(Simulator, DoallRunsInOneIterationTime) {
  const Built b = build(R"(
do I = 1, 100
  A[I] = B[I] * 2 + C[I]
end
)");
  const SimResult r = run(b, 100);
  EXPECT_EQ(r.parallel_time, r.iteration_time);
  EXPECT_EQ(r.stall_cycles, 0);
}

TEST(Simulator, SingleIterationMatchesScheduleLength) {
  // Unit latencies only: finish = issue of last group + 1.
  const Built b = build(R"(
do I = 1, 1
  A[I] = B[I] + C[I]
end
)");
  const SimResult r = run(b, 1);
  EXPECT_EQ(r.parallel_time, b.schedule.length());
}

TEST(Simulator, LbdTheoremExact) {
  // One pair, unit latencies: the simulator must match the closed form
  // floor((n-1)/d) * (i-j+1) + l exactly.
  for (const char* src : {
           "doacross I = 1, 100\n A[I] = A[I-1] + B[I]\nend\n",
           "doacross I = 1, 100\n A[I] = A[I-2] + B[I]\nend\n",
           "doacross I = 1, 100\n A[I] = A[I-7] - B[I]\nend\n",
       }) {
    for (const auto kind : {SchedulerKind::kList, SchedulerKind::kInOrder,
                            SchedulerKind::kSyncAware}) {
      const Built b = build(src, kind);
      ASSERT_EQ(b.dfg.pairs().size(), 1u);
      const auto& pair = b.dfg.pairs()[0];
      const SimResult one = run(b, 1);
      const SimResult full = run(b, 100);
      EXPECT_EQ(full.parallel_time,
                lbd_parallel_time(100, pair.distance,
                                  b.schedule.slot(pair.send_instr),
                                  b.schedule.slot(pair.wait_instr),
                                  one.parallel_time))
          << src << " with " << scheduler_name(kind);
    }
  }
}

TEST(Simulator, LfdPairCostsNothing) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = B[I] * 2
  C[I] = A[I-1] + 1
end
)");
  ASSERT_EQ(b.dfg.pairs().size(), 1u);
  const auto& pair = b.dfg.pairs()[0];
  // Sync-aware scheduling keeps the pair LFD...
  EXPECT_LT(b.schedule.slot(pair.send_instr),
            b.schedule.slot(pair.wait_instr));
  // ...so all iterations run fully overlapped.
  const SimResult r = run(b, 100);
  EXPECT_EQ(r.parallel_time, r.iteration_time);
}

TEST(Simulator, EarlyIterationsDoNotWait) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-50] + B[I]
end
)");
  const SimResult two = run(b, 50);
  // With n <= d no wait ever blocks.
  EXPECT_EQ(two.parallel_time, two.iteration_time);
  EXPECT_EQ(two.stall_cycles, 0);
}

TEST(Simulator, SingleProcessorSerializes) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  const SimResult r = run(b, 100, /*procs=*/1);
  const std::int64_t l = b.schedule.length();
  // Iterations issue back to back: n groups of issue plus final drain.
  EXPECT_EQ(r.parallel_time, 100 * l);
  EXPECT_EQ(r.stall_cycles, 0) << "serial execution satisfies all signals";
}

TEST(Simulator, ProcessorsMonotone) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-3] * B[I] + C[I]
end
)");
  std::int64_t prev = -1;
  for (const int procs : {1, 2, 4, 8, 16, 50, 100}) {
    const SimResult r = run(b, 100, procs);
    if (prev >= 0) {
      EXPECT_LE(r.parallel_time, prev) << procs;
    }
    prev = r.parallel_time;
  }
  // And P = n equals the unconstrained run.
  EXPECT_EQ(prev, run(b, 100, 0).parallel_time);
}

TEST(Simulator, MoreIterationsNeverFaster) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-2] + B[I]
end
)");
  std::int64_t prev = 0;
  for (const std::int64_t n : {1, 2, 5, 20, 50, 100}) {
    const SimResult r = run(b, n);
    EXPECT_GE(r.parallel_time, prev);
    prev = r.parallel_time;
  }
}

TEST(Simulator, DividerLatencyStretchesTheIteration) {
  // The 6-cycle divide forces at least 6 groups between the divide and
  // the store that consumes it, and the simulator's iteration time
  // equals the static schedule length (the body ends in a unit-latency
  // store, so drain is one cycle).
  const Built b = build(R"(
do I = 1, 4
  A[I] = B[I] / C[I]
end
)");
  const SimResult r = run(b, 4);
  EXPECT_EQ(r.parallel_time, b.schedule.length());
  EXPECT_GE(b.schedule.length(), 8);
}

TEST(Simulator, StallCyclesPositiveForStretchedLbd) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)", SchedulerKind::kList);
  const SimResult r = run(b, 100);
  EXPECT_GT(r.stall_cycles, 0);
}

TEST(Simulator, MoreProcessorsThanIterationsHarmless) {
  const Built b = build(R"(
doacross I = 1, 40
  A[I] = A[I-2] + B[I]
end
)");
  const SimResult exact = run(b, 40, 40);
  const SimResult extra = run(b, 40, 4000);
  const SimResult unlimited = run(b, 40, 0);
  EXPECT_EQ(exact.parallel_time, unlimited.parallel_time);
  EXPECT_EQ(extra.parallel_time, unlimited.parallel_time);
}

TEST(Simulator, WaitDistanceLargerThanWindowOfProcessors) {
  // d = 7 with only 2 processors: the ring buffer must still see the
  // signal source (window covers max(d, P)).
  const Built b = build(R"(
doacross I = 1, 60
  A[I] = A[I-7] * B[I] + C[I]
end
)");
  const SimResult r = run(b, 60, 2);
  EXPECT_GT(r.parallel_time, 0);
  // Serial-resource bound: at P=2 the machine can at best halve the
  // serial time.
  const SimResult serial = run(b, 60, 1);
  EXPECT_GE(r.parallel_time, serial.parallel_time / 2 - 1);
  EXPECT_LE(r.parallel_time, serial.parallel_time);
}

TEST(Simulator, ZeroIterations) {
  const Built b = build(R"(
do I = 1, 10
  A[I] = B[I]
end
)");
  const SimResult r = run(b, 0);
  EXPECT_EQ(r.parallel_time, 0);
}

TEST(OrderingCheck, PassesForAllSchedulersOnFig1) {
  const char* fig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";
  for (const auto kind : {SchedulerKind::kInOrder, SchedulerKind::kList,
                          SchedulerKind::kSyncAware}) {
    const Built b = build(fig1, kind);
    SimOptions options;
    options.iterations = 100;
    const auto violations = check_cross_iteration_ordering(
        b.tac, b.dfg, b.schedule, b.config, options, b.carried);
    EXPECT_TRUE(violations.empty())
        << scheduler_name(kind) << ": " << violations.front();
  }
}

TEST(OrderingCheck, DetectsMissingSynchronization) {
  // Build the loop, then delete the wait/send pairing by scheduling with
  // a DFG whose sync arcs are intact but simulating with the wait's
  // distance raised beyond reach (simulate a broken signal): simplest
  // robust negative test: drop the sync ops from the pairing by using a
  // schedule from a loop *without* sync against deps that need it.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  const DepAnalysis deps = analyze_dependences(loop);
  // Pretend the loop is Doall: no waits/sends inserted.
  SyncedLoop bare;
  bare.loop = loop;
  const TacFunction tac = generate_tac(bare);
  const MachineDesc config = machines::paper(4, 1);
  const Dfg dfg(tac, config);
  const Schedule schedule = schedule_list(tac, dfg, config);
  std::vector<Dependence> carried;
  for (const auto& dep : deps.deps)
    if (dep.loop_carried()) carried.push_back(dep);
  SimOptions options;
  options.iterations = 100;
  const auto violations = check_cross_iteration_ordering(
      tac, dfg, schedule, config, options, carried);
  EXPECT_FALSE(violations.empty())
      << "unsynchronized carried dependence must be flagged";
}

TEST(Simulator, SignalLatencyExact) {
  // With a slower synchronization network every chain link pays the
  // extra delay; the closed form must still match the simulator exactly.
  for (const int net : {1, 2, 4, 8}) {
    MachineDesc config = machines::paper(4, 1);
    config.signal_latency = net;
    const Loop loop = parse_single_loop_or_throw(
        "doacross I = 1, 100\n A[I] = A[I-2] + B[I]\nend\n");
    const TacFunction tac =
        generate_tac(insert_synchronization(loop));
    const Dfg dfg(tac, config);
    const Schedule schedule = schedule_sync_aware(tac, dfg, config, 100);
    ASSERT_EQ(dfg.pairs().size(), 1u);
    const auto& pair = dfg.pairs()[0];
    SimOptions one;
    one.iterations = 1;
    const std::int64_t l =
        simulate(tac, dfg, schedule, config, one).parallel_time;
    SimOptions full;
    full.iterations = 100;
    EXPECT_EQ(simulate(tac, dfg, schedule, config, full).parallel_time,
              lbd_parallel_time(100, pair.distance,
                                schedule.slot(pair.send_instr),
                                schedule.slot(pair.wait_instr), l, net))
        << "net=" << net;
  }
}

TEST(Simulator, SlowSignalsCanTurnLfdIntoStalls) {
  // A forward pair whose wait sits shortly after the send stalls once
  // the signal takes longer than the slack.
  const char* src = R"(
doacross I = 1, 100
  A[I] = B[I] * 2
  C[I] = A[I-1] + 1
end
)";
  const Loop loop = parse_single_loop_or_throw(src);
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  MachineDesc fast = machines::paper(4, 1);
  const Dfg dfg(tac, fast);
  const Schedule schedule = schedule_sync_aware(tac, dfg, fast, 100);
  SimOptions options;
  options.iterations = 100;
  const auto t_fast = simulate(tac, dfg, schedule, fast, options);
  MachineDesc slow = fast;
  slow.signal_latency = 12;
  const auto t_slow = simulate(tac, dfg, schedule, slow, options);
  EXPECT_EQ(t_fast.stall_cycles, 0);
  EXPECT_GT(t_slow.stall_cycles, 0);
  EXPECT_GT(t_slow.parallel_time, t_fast.parallel_time);
}

TEST(Analytic, LbdFormula) {
  EXPECT_EQ(lbd_parallel_time(100, 1, 11, 0, 12), 99 * 12 + 12);
  EXPECT_EQ(lbd_parallel_time(100, 2, 9, 0, 16), 49 * 10 + 16);
  // LFD: time is just the iteration time.
  EXPECT_EQ(lbd_parallel_time(100, 1, 3, 7, 20), 20);
  // Degenerate cases.
  EXPECT_EQ(lbd_parallel_time(0, 1, 5, 0, 10), 0);
  EXPECT_EQ(lbd_parallel_time(1, 1, 5, 0, 10), 10);
}

TEST(Analytic, WorstSpanZeroWhenAllLfd) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = B[I] * 2
  C[I] = A[I-1] + 1
end
)");
  EXPECT_LE(worst_sync_span(b.dfg, b.schedule), 0);
}

TEST(Analytic, HugeIterationCountSaturatesInsteadOfWrapping) {
  // Regression: the links x shift product for n = 2^40 iterations with a
  // 2^30-slot span exceeds int64 and used to wrap into a small positive
  // "time" (the exact wrapped value: 2^70 mod 2^64 == 0, leaving only
  // the low-order terms). Overflow-checked math saturates, keeping the
  // result a valid upper-dominating bound.
  const std::int64_t n = std::int64_t{1} << 40;
  const std::int64_t huge =
      lbd_parallel_time(n, 1, 1 << 30, 0, 10);
  EXPECT_EQ(huge, std::numeric_limits<std::int64_t>::max());
  // Sane large inputs stay exact: links = (2^40 - 1), shift = 3.
  EXPECT_EQ(lbd_parallel_time(n, 1, 2, 0, 5), (n - 1) * 3 + 5);
  // The result never drops below the iteration time, even at the edge.
  EXPECT_GE(lbd_parallel_time(n, 1, 1 << 30, 0, 10), 10);
}

TEST(Simulator, ZeroTripRunHasDefinedResult) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  const SimResult one = run(b, 1);
  for (const int procs : {0, 1, 8}) {
    const SimResult r = run(b, 0, procs);
    EXPECT_EQ(r.parallel_time, 0);
    EXPECT_EQ(r.stall_cycles, 0);
    EXPECT_EQ(r.schedule_length, b.schedule.length());
    // Regression: iteration_time is a property of the schedule (one
    // iteration in isolation) and used to read as an uninitialized-
    // looking 0 on zero-trip runs.
    EXPECT_EQ(r.iteration_time, one.iteration_time);
    EXPECT_GT(r.iteration_time, 0);
  }
  // Negative iteration counts clamp to the same defined zero-trip run.
  const SimResult negative = run(b, -5);
  EXPECT_EQ(negative.parallel_time, 0);
  EXPECT_EQ(negative.iteration_time, one.iteration_time);
}

TEST(Simulator, SingleIterationIdenticalForAnyProcessorCount) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] * 2 + B[I]
end
)");
  const SimResult base = run(b, 1, 0);
  EXPECT_EQ(base.parallel_time, base.iteration_time);
  for (const int procs : {1, 8}) {  // P == n and P == n + 7
    const SimResult r = run(b, 1, procs);
    EXPECT_EQ(r.parallel_time, base.parallel_time);
    EXPECT_EQ(r.iteration_time, base.iteration_time);
    EXPECT_EQ(r.stall_cycles, base.stall_cycles);
  }
}

TEST(Simulator, SteadyStateFastForwardMatchesTheFullLoopExactly) {
  // run(nullptr) may take the steady-state closed form; a hook (even a
  // no-op) forces the per-iteration loop. The two must agree to the
  // cycle on every field, for every processor count and trip count.
  for (const char* src : {
           "do I = 1, 100\n A[I] = B[I] * 2 + C[I]\nend\n",
           "doacross I = 1, 100\n A[I] = A[I-1] + B[I]\nend\n",
           "doacross I = 1, 100\n A[I] = A[I-3] * B[I]\n D[I] = A[I] / "
           "c1\nend\n",
           "doacross I = 1, 100\n A[I] = B[I-1] + B[I+3]\n B[I] = A[I-2] * "
           "2\nend\n",
       }) {
    for (const auto kind : {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
      const Built b = build(src, kind);
      for (const int procs : {0, 1, 2, 4, 32}) {
        for (const std::int64_t n : {1, 2, 7, 100, 5000}) {
          SimOptions options;
          options.iterations = n;
          options.processors = procs;
          sim_detail::SimCore fast(b.tac, b.dfg, b.schedule, b.config,
                                   options);
          const SimResult f = fast.run(nullptr);
          sim_detail::SimCore slow(b.tac, b.dfg, b.schedule, b.config,
                                   options);
          const SimResult s = slow.run([](std::int64_t) {});
          EXPECT_EQ(f.parallel_time, s.parallel_time) << src << " n=" << n;
          EXPECT_EQ(f.iteration_time, s.iteration_time) << src << " n=" << n;
          EXPECT_EQ(f.stall_cycles, s.stall_cycles) << src << " n=" << n;
        }
      }
    }
  }
}

TEST(Simulator, ProcessorsBeyondIterationsMatchOnePerIteration) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-2] + B[I] * c1
  D[I] = B[I-1] + B[I+3]
end
)");
  const std::int64_t n = 10;
  const SimResult one_per_iter = run(b, n, 0);
  for (const int procs : {static_cast<int>(n), static_cast<int>(n) + 7}) {
    const SimResult r = run(b, n, procs);
    EXPECT_EQ(r.parallel_time, one_per_iter.parallel_time);
    EXPECT_EQ(r.iteration_time, one_per_iter.iteration_time);
    EXPECT_EQ(r.stall_cycles, one_per_iter.stall_cycles);
  }
}

TEST(SimulatorCutoff, DisabledCutoffMatchesUnboundedRunExactly) {
  // cutoff_time <= 0 must be byte-identical to the pre-cutoff simulator.
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-2] + B[I] * c1
  D[I] = B[I-1] + B[I+3]
end
)");
  const SimResult unbounded = run(b, 100);
  for (const std::int64_t off : {std::int64_t{0}, std::int64_t{-5}}) {
    SimOptions options;
    options.iterations = 100;
    options.cutoff_time = off;
    const SimResult r = simulate(b.tac, b.dfg, b.schedule, b.config, options);
    EXPECT_FALSE(r.cutoff_hit);
    EXPECT_EQ(r.parallel_time, unbounded.parallel_time);
    EXPECT_EQ(r.iteration_time, unbounded.iteration_time);
    EXPECT_EQ(r.stall_cycles, unbounded.stall_cycles);
    EXPECT_EQ(r.schedule_length, unbounded.schedule_length);
  }
}

TEST(SimulatorCutoff, UnreachedCutoffCompletesBitIdentical) {
  // The never-degrade guard's contract: a run whose final time stays
  // strictly below the cutoff must finish with cutoff_hit == false and
  // every field equal to the unbounded run — the early exit may only
  // change runs it actually truncates.
  for (const char* src : {
           "doacross I = 1, 100\n  A[I] = A[I-1] + B[I]\nend\n",
           "doacross I = 1, 100\n  A[I] = A[I-3] * B[I] + C[I+2]\nend\n",
       }) {
    const Built b = build(src);
    const SimResult unbounded = run(b, 100);
    SimOptions options;
    options.iterations = 100;
    options.cutoff_time = unbounded.parallel_time + 1;
    const SimResult r = simulate(b.tac, b.dfg, b.schedule, b.config, options);
    EXPECT_FALSE(r.cutoff_hit) << src;
    EXPECT_EQ(r.parallel_time, unbounded.parallel_time) << src;
    EXPECT_EQ(r.iteration_time, unbounded.iteration_time) << src;
    EXPECT_EQ(r.stall_cycles, unbounded.stall_cycles) << src;
  }
}

TEST(SimulatorCutoff, TinyCutoffStopsEarlyWithCertifiedLowerBound) {
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  const SimResult unbounded = run(b, 100);
  ASSERT_GT(unbounded.parallel_time, 2);  // a serial chain: plenty of room
  SimOptions options;
  options.iterations = 100;
  options.cutoff_time = 2;
  const SimResult r = simulate(b.tac, b.dfg, b.schedule, b.config, options);
  EXPECT_TRUE(r.cutoff_hit);
  // parallel_time is a running max, so on a hit it certifies >= cutoff
  // while never exceeding the true final value.
  EXPECT_GE(r.parallel_time, options.cutoff_time);
  EXPECT_LE(r.parallel_time, unbounded.parallel_time);
  // iteration_time is a property of the schedule, final either way.
  EXPECT_EQ(r.iteration_time, unbounded.iteration_time);
}

TEST(SimulatorCutoff, CutoffAtFinalTimeStillAnswersStrictlyFaster) {
  // The guard asks "strictly faster than cutoff". A run whose final
  // time equals the cutoff may either stop early (cutoff_hit) or — when
  // the steady-state fast-forward jumps past the per-iteration check —
  // complete exactly; both answers must deny "strictly faster", and a
  // completed run must be bit-identical to the unbounded one.
  const Built b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  const SimResult unbounded = run(b, 100);
  SimOptions options;
  options.iterations = 100;
  options.cutoff_time = unbounded.parallel_time;
  const SimResult r = simulate(b.tac, b.dfg, b.schedule, b.config, options);
  EXPECT_GE(r.parallel_time, options.cutoff_time);  // never strictly faster
  if (!r.cutoff_hit) {
    EXPECT_EQ(r.parallel_time, unbounded.parallel_time);
    EXPECT_EQ(r.stall_cycles, unbounded.stall_cycles);
  }
}

}  // namespace
}  // namespace sbmp
