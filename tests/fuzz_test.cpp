// Robustness sweeps: the front end must never crash, hang or corrupt
// state on malformed input — it reports diagnostics and moves on.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "sbmp/frontend/lexer.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/support/rng.h"

namespace sbmp {
namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, RandomBytesNeverCrashLexerOrParser) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::string input;
  const auto len = rng.range(0, 400);
  for (std::int64_t i = 0; i < len; ++i) {
    // Printable ASCII plus whitespace, biased toward structure chars.
    const char* pool = "abIk019 []()=+-*/<,\n\t;#!_";
    input += pool[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(std::strlen(pool)) - 1))];
  }
  DiagEngine diags;
  EXPECT_NO_THROW({ (void)parse_pre_program(input, diags); });
}

TEST_P(FuzzSeed, RandomTokenSoupNeverCrashes) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const char* words[] = {"do",  "doacross", "end",  "loop", "init", "int",
                         "I",   "A[I]",     "A[I-1]", "=",  "+",    "*",
                         "1",   "100",      ",",     "(",   ")",    "\n",
                         "real", "<<",      "B[2*I+1]", "c1"};
  std::string input;
  const auto len = rng.range(0, 120);
  for (std::int64_t i = 0; i < len; ++i) {
    input += words[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(std::size(words)) - 1))];
    input += ' ';
  }
  DiagEngine diags;
  EXPECT_NO_THROW({ (void)parse_pre_program(input, diags); });
}

TEST_P(FuzzSeed, MutatedValidProgramNeverCrashes) {
  const std::string base = R"(
loop demo
doacross I = 1, 100
  init k = 2
  k = k + 1
  B[I] = A[I-2] + E[I+1] * k
  A[I] = B[I] + C[I+3]
end
)";
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  std::string input = base;
  for (int m = 0; m < 6; ++m) {
    const auto pos = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(input.size()) - 1));
    switch (rng.range(0, 2)) {
      case 0:
        input[pos] = static_cast<char>('!' + rng.range(0, 80));
        break;
      case 1:
        input.erase(pos, 1);
        break;
      default:
        input.insert(pos, 1, static_cast<char>('!' + rng.range(0, 80)));
        break;
    }
  }
  DiagEngine diags;
  EXPECT_NO_THROW({ (void)parse_pre_program(input, diags); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(1, 26));

TEST(FuzzRegression, DeepNesting) {
  std::string expr(200, '(');
  expr += "1";
  expr += std::string(200, ')');
  DiagEngine diags;
  EXPECT_NO_THROW({
    (void)parse_pre_program("do I = 1, 2\n A[I] = " + expr + "\nend\n",
                            diags);
  });
}

TEST(FuzzRegression, UnterminatedConstructs) {
  for (const char* src : {"do", "do I", "do I =", "do I = 1,", "loop",
                          "doacross I = 1, 5\n A[I", "do I = 1, 5\n A[I] =",
                          "do I = 1, 5\n init", "do I = 1, 5\n init k ="}) {
    DiagEngine diags;
    EXPECT_NO_THROW({ (void)parse_pre_program(src, diags); }) << src;
    EXPECT_FALSE(diags.ok()) << src;
  }
}

}  // namespace
}  // namespace sbmp
