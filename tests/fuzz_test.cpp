// Robustness sweeps: the front end must never crash, hang or corrupt
// state on malformed input — it reports diagnostics and moves on — and
// the whole pipeline (with the cross-layer validator on) must hold its
// invariants on arbitrary generated DOACROSS loops.
//
// Seed counts scale with the SBMP_FUZZ_SEEDS environment variable
// (default 25): `SBMP_FUZZ_SEEDS=500 ctest -L fuzz` runs a deep sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/frontend/lexer.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/perfect/generator.h"
#include "sbmp/sim/fault.h"
#include "sbmp/support/rng.h"

namespace sbmp {
namespace {

/// Seed count for every fuzz suite, overridable via SBMP_FUZZ_SEEDS
/// (clamped to [1, 100000]).
int fuzz_seed_count() {
  const char* env = std::getenv("SBMP_FUZZ_SEEDS");
  if (env == nullptr) return 25;
  const int n = std::atoi(env);
  if (n < 1) return 25;
  return n > 100000 ? 100000 : n;
}

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, RandomBytesNeverCrashLexerOrParser) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::string input;
  const auto len = rng.range(0, 400);
  for (std::int64_t i = 0; i < len; ++i) {
    // Printable ASCII plus whitespace, biased toward structure chars.
    const char* pool = "abIk019 []()=+-*/<,\n\t;#!_";
    input += pool[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(std::strlen(pool)) - 1))];
  }
  DiagEngine diags;
  EXPECT_NO_THROW({ (void)parse_pre_program(input, diags); });
}

TEST_P(FuzzSeed, RandomTokenSoupNeverCrashes) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const char* words[] = {"do",  "doacross", "end",  "loop", "init", "int",
                         "I",   "A[I]",     "A[I-1]", "=",  "+",    "*",
                         "1",   "100",      ",",     "(",   ")",    "\n",
                         "real", "<<",      "B[2*I+1]", "c1"};
  std::string input;
  const auto len = rng.range(0, 120);
  for (std::int64_t i = 0; i < len; ++i) {
    input += words[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(std::size(words)) - 1))];
    input += ' ';
  }
  DiagEngine diags;
  EXPECT_NO_THROW({ (void)parse_pre_program(input, diags); });
}

TEST_P(FuzzSeed, MutatedValidProgramNeverCrashes) {
  const std::string base = R"(
loop demo
doacross I = 1, 100
  init k = 2
  k = k + 1
  B[I] = A[I-2] + E[I+1] * k
  A[I] = B[I] + C[I+3]
end
)";
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  std::string input = base;
  for (int m = 0; m < 6; ++m) {
    const auto pos = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(input.size()) - 1));
    switch (rng.range(0, 2)) {
      case 0:
        input[pos] = static_cast<char>('!' + rng.range(0, 80));
        break;
      case 1:
        input.erase(pos, 1);
        break;
      default:
        input.insert(pos, 1, static_cast<char>('!' + rng.range(0, 80)));
        break;
    }
  }
  DiagEngine diags;
  EXPECT_NO_THROW({ (void)parse_pre_program(input, diags); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Range(1, 1 + fuzz_seed_count()));

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, GeneratedLoopsValidateAndSurviveFaults) {
  // Pipeline-level fuzzing: every generated DOACROSS loop must compile,
  // pass the cross-layer validator, and survive an adversarial fault
  // campaign with zero staleness — the end-to-end robustness invariant.
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  const Loop loop = generate_random_loop(rng, LoopGenConfig{});
  PipelineOptions options;
  options.machine = machines::paper(
      rng.range(0, 1) == 0 ? 2 : 4, static_cast<int>(rng.range(1, 2)));
  options.iterations = 50;
  LoopReport report;
  try {
    report = run_pipeline(loop, options);
  } catch (const StatusError& e) {
    // Irregular carried dependences are a legal refusal, not a crash.
    EXPECT_EQ(e.status().code, StatusCode::kInput) << loop.to_string();
    return;
  }
  EXPECT_TRUE(report.validation_violations.empty())
      << loop.to_string() << "\n"
      << (report.validation_violations.empty()
              ? ""
              : report.validation_violations.front());
  if (report.doall || !report.dfg.has_value()) return;
  SimOptions sim_options;
  sim_options.iterations = options.resolved_iterations(report.loop);
  std::vector<Dependence> carried;
  for (const auto& dep : report.deps.deps)
    if (dep.loop_carried()) carried.push_back(dep);
  const FaultCampaign campaign = run_fault_campaign(
      report.tac, *report.dfg, report.schedule, options.machine,
      sim_options, carried,
      FaultPlan::adversarial(static_cast<std::uint64_t>(GetParam())), 3);
  EXPECT_TRUE(campaign.clean())
      << loop.to_string() << "\n"
      << (campaign.sample.empty() ? "" : campaign.sample.front());
}

TEST_P(PipelineFuzz, ValidationPassIsDeterministic) {
  // The validator must be a pure function of the report: two runs over
  // the same generated loop agree violation-for-violation.
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 40503u);
  const Loop loop = generate_random_loop(rng, LoopGenConfig{});
  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.iterations = 50;
  LoopReport a;
  try {
    a = run_pipeline(loop, options);
  } catch (const StatusError&) {
    return;
  }
  const LoopReport b = run_pipeline(loop, options);
  EXPECT_EQ(a.validation_violations, b.validation_violations);
  EXPECT_EQ(validate_pipeline(a, options), validate_pipeline(b, options));
  EXPECT_EQ(a.parallel_time(), b.parallel_time());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range(1, 1 + fuzz_seed_count()));

TEST(FuzzRegression, DeepNesting) {
  std::string expr(200, '(');
  expr += "1";
  expr += std::string(200, ')');
  DiagEngine diags;
  EXPECT_NO_THROW({
    (void)parse_pre_program("do I = 1, 2\n A[I] = " + expr + "\nend\n",
                            diags);
  });
}

TEST(FuzzRegression, UnterminatedConstructs) {
  for (const char* src : {"do", "do I", "do I =", "do I = 1,", "loop",
                          "doacross I = 1, 5\n A[I", "do I = 1, 5\n A[I] =",
                          "do I = 1, 5\n init", "do I = 1, 5\n init k ="}) {
    DiagEngine diags;
    EXPECT_NO_THROW({ (void)parse_pre_program(src, diags); }) << src;
    EXPECT_FALSE(diags.ok()) << src;
  }
}

}  // namespace
}  // namespace sbmp
