// Tests for the scheduling-as-a-service subsystem (src/serve) and the
// support primitives it is built on: stable hashing, checksummed record
// serialization, crash-safe io, the persistent content-addressed
// DiskCache, the re-validating artifact codec, the two-level
// CachingCompiler, the single-flight ScheduleServer, and the framed
// socket protocol. The central contract — a warm cache or a daemon
// response can only ever reproduce what a cold local run would have
// produced — is locked here at the library level and again end-to-end
// in tooling_test.cpp.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/serve/admission.h"
#include "sbmp/serve/client.h"
#include "sbmp/serve/codec.h"
#include "sbmp/serve/disk_cache.h"
#include "sbmp/serve/protocol.h"
#include "sbmp/serve/server.h"
#include "sbmp/serve/session.h"
#include "sbmp/serve/transport.h"
#include "sbmp/support/deadline.h"
#include "sbmp/support/hash.h"
#include "sbmp/support/io.h"
#include "sbmp/support/rng.h"
#include "sbmp/support/serialize.h"

namespace sbmp {
namespace {

constexpr const char* kPaperExample =
    "doacross I = 1, 100\n"
    "  B[I] = A[I-2] + E[I+1]\n"
    "  G[I-3] = A[I-1] * E[I+2]\n"
    "  A[I] = B[I] + C[I+3]\n"
    "end\n";

constexpr const char* kStencil =
    "doacross I = 1, 100\n"
    "  U[I] = (U[I-1] + V[I]) * w1 + V[I+1] * w2\n"
    "  R[I] = V[I-2] * w3 + V[I+2]\n"
    "end\n";

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

// --- hashing ---------------------------------------------------------

TEST(Hash, PinnedValuesAreStableAcrossPlatforms) {
  // The fingerprint IS the on-disk address: if these values ever move,
  // every existing cache is silently orphaned, so the algorithm is
  // pinned by value, not just by roundtrip.
  EXPECT_EQ(hash_bytes(""), 0xefd01f60ba992926ull);
  EXPECT_EQ(hash_bytes("abc"), 0x33ebaf9927cbc5bdull);
  EXPECT_EQ(fingerprint_bytes("abc").to_hex(),
            "33ebaf9927cbc5bd0fd17d9111492250");
}

TEST(Hash, FingerprintHexRoundTrips) {
  const Fingerprint fp = fingerprint_bytes("schedule cache");
  Fingerprint back;
  ASSERT_TRUE(Fingerprint::from_hex(fp.to_hex(), &back));
  EXPECT_EQ(fp, back);
}

TEST(Hash, FromHexRejectsMalformedInput) {
  Fingerprint fp;
  EXPECT_FALSE(Fingerprint::from_hex("", &fp));
  EXPECT_FALSE(Fingerprint::from_hex("0123", &fp));                 // short
  EXPECT_FALSE(Fingerprint::from_hex(std::string(33, 'a'), &fp));   // long
  EXPECT_FALSE(
      Fingerprint::from_hex("zz" + std::string(30, '0'), &fp));     // non-hex
}

TEST(Hash, LanesAreIndependent) {
  const Fingerprint fp = fingerprint_bytes("x");
  EXPECT_NE(fp.hi, fp.lo);
  EXPECT_NE(fingerprint_bytes("x"), fingerprint_bytes("y"));
}

// --- record serialization --------------------------------------------

TEST(Serialize, RoundTripsIntsAndBinaryStrings) {
  RecordWriter w;
  w.add_int("count", -42);
  w.add_string("bytes", std::string("new\nline\0byte", 13));
  w.add_string("empty", "");
  const std::string payload = w.finish();

  RecordReader r;
  ASSERT_TRUE(RecordReader::open(payload, &r).ok());
  std::int64_t count = 0;
  ASSERT_TRUE(r.read_int("count", &count).ok());
  EXPECT_EQ(count, -42);
  std::string bytes;
  ASSERT_TRUE(r.read_string("bytes", &bytes).ok());
  EXPECT_EQ(bytes, std::string("new\nline\0byte", 13));
  ASSERT_TRUE(r.read_string("empty", &bytes).ok());
  EXPECT_EQ(bytes, "");
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, NestedRecordsSurviveAsStringFields) {
  RecordWriter inner;
  inner.add_int("x", 7);
  const std::string inner_payload = inner.finish();
  RecordWriter outer;
  outer.add_string("inner", inner_payload);
  const std::string payload = outer.finish();

  RecordReader r;
  ASSERT_TRUE(RecordReader::open(payload, &r).ok());
  std::string extracted;
  ASSERT_TRUE(r.read_string("inner", &extracted).ok());
  EXPECT_EQ(extracted, inner_payload);
  RecordReader inner_r;
  ASSERT_TRUE(RecordReader::open(extracted, &inner_r).ok());
}

TEST(Serialize, DetectsTruncationAndBitRot) {
  RecordWriter w;
  w.add_string("data", "payload");
  const std::string payload = w.finish();

  // Truncation at every length must be a structured error, never a
  // crash or a half-parsed record (crash-mid-write leaves prefixes).
  for (std::size_t len = 0; len < payload.size(); ++len) {
    RecordReader r;
    EXPECT_FALSE(RecordReader::open(payload.substr(0, len), &r).ok())
        << "prefix of " << len << " bytes was accepted";
  }
  // A single flipped bit anywhere must fail the checksum.
  for (const std::size_t at : {std::size_t{0}, payload.size() / 2}) {
    std::string bad = payload;
    bad[at] = static_cast<char>(bad[at] ^ 0x20);
    RecordReader r;
    const Status s = RecordReader::open(bad, &r);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code, StatusCode::kInput);
  }
}

TEST(Serialize, FieldNameAndTypeMismatchesAreErrors) {
  RecordWriter w;
  w.add_int("a", 1);
  const std::string payload = w.finish();
  RecordReader r;
  ASSERT_TRUE(RecordReader::open(payload, &r).ok());
  std::string s;
  EXPECT_FALSE(r.read_string("a", &s).ok());  // wrong type
  RecordReader r2;
  ASSERT_TRUE(RecordReader::open(payload, &r2).ok());
  std::int64_t v = 0;
  EXPECT_FALSE(r2.read_int("b", &v).ok());  // wrong name
}

// --- io primitives ---------------------------------------------------

TEST(Io, AtomicWriteThenReadRoundTrips) {
  const std::string dir = fresh_dir("sbmp_io");
  ASSERT_TRUE(ensure_directory(dir).ok());
  const std::string path = dir + "/file.bin";
  const std::string data("binary\0data\n", 12);
  ASSERT_TRUE(write_file_atomic(path, data).ok());
  // Overwrite must replace, not append, and leave no temp files behind.
  ASSERT_TRUE(write_file_atomic(path, data).ok());
  std::string back;
  ASSERT_TRUE(read_file(path, &back).ok());
  EXPECT_EQ(back, data);
  std::vector<DirEntry> entries;
  ASSERT_TRUE(list_directory(dir, &entries).ok());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "file.bin");
  EXPECT_EQ(entries[0].size, 12);
}

TEST(Io, ListDirectoryIsSortedByName) {
  const std::string dir = fresh_dir("sbmp_io_sorted");
  ASSERT_TRUE(ensure_directory(dir).ok());
  for (const char* name : {"c", "a", "b"})
    ASSERT_TRUE(write_file_atomic(dir + "/" + name, "x").ok());
  std::vector<DirEntry> entries;
  ASSERT_TRUE(list_directory(dir, &entries).ok());
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[1].name, "b");
  EXPECT_EQ(entries[2].name, "c");
}

TEST(Io, MissingFilesAreStructuredErrorsNotCrashes) {
  std::string out;
  const Status s = read_file("/nonexistent/nope", &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.stage, "io");
  EXPECT_TRUE(remove_file("/tmp/sbmp_never_existed_12345").ok());
  EXPECT_FALSE(file_exists("/tmp/sbmp_never_existed_12345"));
}

// --- disk cache ------------------------------------------------------

TEST(DiskCacheTest, StoreLoadInvalidateRoundTrip) {
  const std::string dir = fresh_dir("sbmp_disk_cache");
  DiskCache cache(dir, 1 << 20);
  ASSERT_TRUE(cache.init_status().ok());
  const Fingerprint key = fingerprint_bytes("entry");
  EXPECT_FALSE(cache.load(key).has_value());  // miss on empty
  cache.store(key, "artifact-bytes");
  const auto hit = cache.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "artifact-bytes");
  cache.invalidate(key);
  EXPECT_FALSE(cache.load(key).has_value());
  const DiskCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.stores, 1);
}

TEST(DiskCacheTest, PersistsAcrossInstances) {
  const std::string dir = fresh_dir("sbmp_disk_cache_persist");
  const Fingerprint key = fingerprint_bytes("persisted");
  {
    DiskCache cache(dir, 1 << 20);
    cache.store(key, "survives");
  }
  DiskCache cache(dir, 1 << 20);
  const auto hit = cache.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "survives");
}

TEST(DiskCacheTest, EvictionIsDeterministicOldestFirstThenName) {
  const std::string dir = fresh_dir("sbmp_disk_cache_evict");
  DiskCache cache(dir, 64);  // two 30-byte entries fit, three do not
  const std::string payload(30, 'x');
  const Fingerprint a = fingerprint_bytes("a");
  const Fingerprint b = fingerprint_bytes("b");
  const Fingerprint c = fingerprint_bytes("c");
  cache.store(a, payload);
  cache.store(b, payload);
  // Touch `a` (a load refreshes mtime), making `b` the LRU entry.
  ASSERT_TRUE(cache.load(a).has_value());
  // Force distinct mtimes even on coarse-grained filesystems.
  ASSERT_TRUE(touch_file(dir + "/" + a.to_hex() + DiskCache::kEntrySuffix)
                  .ok());
  cache.store(c, payload);
  EXPECT_GE(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.load(c).has_value());  // newest entry always survives
}

TEST(DiskCacheTest, UnwritableDirectoryDegradesToNoop) {
  DiskCache cache("/proc/definitely/not/writable", 1 << 20);
  EXPECT_FALSE(cache.init_status().ok());
  const Fingerprint key = fingerprint_bytes("k");
  cache.store(key, "data");                    // must not crash
  EXPECT_FALSE(cache.load(key).has_value());   // and never hit
}

// --- artifact codec --------------------------------------------------

PipelineOptions codec_options() {
  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;
  return options;
}

TEST(Codec, EncodedReportDecodesToTheSameArtifacts) {
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions options = codec_options();
  const LoopReport cold = run_pipeline(loop, options);
  const Fingerprint fp = schedule_fingerprint(loop, options);

  LoopReport warm;
  ASSERT_TRUE(
      decode_loop_report(encode_loop_report(cold, fp), options, fp, &warm)
          .ok());
  EXPECT_EQ(warm.name, cold.name);
  EXPECT_EQ(warm.schedule.groups, cold.schedule.groups);
  EXPECT_EQ(warm.schedule.slot_of, cold.schedule.slot_of);
  EXPECT_EQ(warm.sim.parallel_time, cold.sim.parallel_time);
  EXPECT_EQ(warm.sim.iteration_time, cold.sim.iteration_time);
  EXPECT_EQ(warm.sim.stall_cycles, cold.sim.stall_cycles);
  EXPECT_EQ(warm.tac.to_string(), cold.tac.to_string());
  EXPECT_EQ(warm.schedule_violations, cold.schedule_violations);
  EXPECT_EQ(warm.validation_violations, cold.validation_violations);
  EXPECT_EQ(warm.status.code, cold.status.code);
  ASSERT_TRUE(warm.dfg.has_value());  // front half fully reconstructed
}

TEST(Codec, FingerprintCoversLoopAndEverySemanticOption) {
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const Loop other = parse_single_loop_or_throw(kStencil);
  const PipelineOptions base = codec_options();
  const Fingerprint fp = schedule_fingerprint(loop, base);
  EXPECT_EQ(fp, schedule_fingerprint(loop, base));  // deterministic
  EXPECT_NE(fp, schedule_fingerprint(other, base));

  const auto differs = [&](auto mutate) {
    PipelineOptions changed = base;
    mutate(changed);
    return schedule_fingerprint(loop, changed) != fp;
  };
  EXPECT_TRUE(differs([](PipelineOptions& o) {
    o.machine = machines::paper(2, 1);
  }));
  EXPECT_TRUE(differs([](PipelineOptions& o) {
    o.scheduler = SchedulerKind::kList;
  }));
  EXPECT_TRUE(differs([](PipelineOptions& o) { o.iterations = 50; }));
  EXPECT_TRUE(differs([](PipelineOptions& o) { o.processors = 4; }));
  EXPECT_TRUE(differs([](PipelineOptions& o) { o.check_ordering = true; }));
  EXPECT_TRUE(
      differs([](PipelineOptions& o) { o.eliminate_redundant_waits = true; }));
  EXPECT_TRUE(differs([](PipelineOptions& o) { o.never_degrade = false; }));
  EXPECT_TRUE(differs([](PipelineOptions& o) { o.validate = false; }));
  EXPECT_TRUE(differs([](PipelineOptions& o) { o.validate_tolerance = 3; }));

  // Where the artifact is stored must never change what it is.
  EXPECT_FALSE(differs([](PipelineOptions& o) { o.cache_dir = "/elsewhere"; }));
  EXPECT_FALSE(differs([](PipelineOptions& o) { o.cache_max_bytes = 1; }));
}

TEST(Codec, RejectsFingerprintMismatch) {
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions options = codec_options();
  const LoopReport report = run_pipeline(loop, options);
  const Fingerprint fp = schedule_fingerprint(loop, options);
  const std::string payload = encode_loop_report(report, fp);

  // Same bytes requested under a different key: the entry must refuse
  // to masquerade (this is what makes the cache content-addressed).
  PipelineOptions other = options;
  other.iterations = 7;
  LoopReport out;
  const Status s = decode_loop_report(payload, options,
                                      schedule_fingerprint(loop, other), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kInput);
}

TEST(Codec, RejectsTamperedSchedule) {
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions options = codec_options();
  LoopReport report = run_pipeline(loop, options);
  const Fingerprint fp = schedule_fingerprint(loop, options);

  // Forge a wrong-but-well-formed artifact: swap the first two issue
  // groups. The stored clean verdict can no longer be reproduced by
  // re-verification, so the decode must reject rather than serve a
  // schedule whose verdict it cannot reproduce.
  ASSERT_GE(report.schedule.groups.size(), 2u);
  std::swap(report.schedule.groups[0], report.schedule.groups[1]);
  LoopReport out;
  EXPECT_FALSE(
      decode_loop_report(encode_loop_report(report, fp), options, fp, &out)
          .ok());
}

TEST(Codec, RejectsOutOfRangeInstructionIds) {
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions options = codec_options();
  LoopReport report = run_pipeline(loop, options);
  const Fingerprint fp = schedule_fingerprint(loop, options);
  ASSERT_FALSE(report.schedule.groups.empty());
  report.schedule.groups[0].push_back(9999);
  LoopReport out;
  EXPECT_FALSE(
      decode_loop_report(encode_loop_report(report, fp), options, fp, &out)
          .ok());
}

TEST(Codec, PipelineOptionsRoundTrip) {
  PipelineOptions options;
  options.machine = machines::paper(2, 2);
  options.machine.signal_latency = 5;
  options.scheduler = SchedulerKind::kList;
  options.iterations = 37;
  options.processors = 9;
  options.check_ordering = true;
  options.eliminate_redundant_waits = true;
  options.never_degrade = false;
  options.validate = false;
  options.validate_tolerance = 11;
  PipelineOptions back;
  ASSERT_TRUE(
      decode_pipeline_options(encode_pipeline_options(options), &back).ok());
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  // Key-equality is the codec's contract: the daemon compiles exactly
  // the run the client fingerprinted.
  EXPECT_EQ(ResultCache::key(loop, back), ResultCache::key(loop, options));
}

TEST(Codec, NonDefaultMachineTravelsTheWireIntact) {
  // Since protocol revision '4' the machine rides as its canonical
  // MachineDesc string, so fields the old per-column encoding never
  // carried (buffer depth, per-opcode latencies, asymmetric FU mixes)
  // must survive the round trip bit for bit.
  PipelineOptions options = codec_options();
  options.machine.issue_width = 8;
  options.machine.fu_counts = {3, 1, 2, 1, 1, 4};
  options.machine.set_latency(Opcode::kLoad, 4);
  options.machine.set_latency(Opcode::kDiv, 12);
  options.machine.sync_consumes_slot = false;
  options.machine.signal_latency = 3;
  options.machine.signal_buffer_depth = 5;
  ASSERT_TRUE(options.machine.validate().ok());
  PipelineOptions back;
  ASSERT_TRUE(
      decode_pipeline_options(encode_pipeline_options(options), &back).ok());
  EXPECT_EQ(back.machine, options.machine);
}

TEST(Codec, MalformedMachineDescInOptionsIsATypedError) {
  // A well-formed record (header and checksum intact) whose machine
  // field is garbage: the decode must fail on the machine grammar, not
  // on framing, and say so in the message.
  RecordWriter w;
  w.add_int("version", kScheduleCacheFormatVersion);
  w.add_string("machine", "zzzzz=4");
  PipelineOptions back;
  const Status s = decode_pipeline_options(w.finish(), &back);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kInput);
  EXPECT_NE(s.message.find("machine"), std::string::npos) << s.message;
}

// --- caching compiler ------------------------------------------------

TEST(CachingCompilerTest, WarmRunIsServedFromDiskAndIdentical) {
  const std::string dir = fresh_dir("sbmp_warm");
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions options = codec_options();

  LoopReport cold;
  {
    DiskCache disk(dir, 1 << 20);
    ResultCache memory;
    CachingCompiler compiler(&memory, &disk);
    cold = compiler.compile(loop, options);
    EXPECT_EQ(compiler.compiles(), 1);
    EXPECT_EQ(disk.stats().stores, 1);
  }
  // Fresh process-equivalent: new in-memory cache over the same dir.
  DiskCache disk(dir, 1 << 20);
  ResultCache memory;
  CachingCompiler compiler(&memory, &disk);
  const LoopReport warm = compiler.compile(loop, options);
  EXPECT_EQ(compiler.compiles(), 0);  // never re-ran the pipeline
  EXPECT_EQ(disk.stats().hits, 1);
  EXPECT_EQ(warm.schedule.groups, cold.schedule.groups);
  EXPECT_EQ(warm.sim.parallel_time, cold.sim.parallel_time);
  // Second call in the same process must come from memory, not disk.
  (void)compiler.compile(loop, options);
  EXPECT_EQ(disk.stats().hits, 1);
  EXPECT_EQ(memory.hits(), 1);
}

TEST(CachingCompilerTest, CorruptEntryIsAMissNeverACrash) {
  const std::string dir = fresh_dir("sbmp_corrupt");
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions options = codec_options();
  LoopReport cold;
  {
    DiskCache disk(dir, 1 << 20);
    ResultCache memory;
    CachingCompiler compiler(&memory, &disk);
    cold = compiler.compile(loop, options);
  }
  // Truncate the entry on disk — the classic crash-mid-write artifact
  // shape (though write_file_atomic itself never leaves one).
  const std::string path = dir + "/" +
                           schedule_fingerprint(loop, options).to_hex() +
                           DiskCache::kEntrySuffix;
  ASSERT_TRUE(file_exists(path));
  std::string bytes;
  ASSERT_TRUE(read_file(path, &bytes).ok());
  ASSERT_TRUE(write_file_atomic(path, bytes.substr(0, bytes.size() / 2)).ok());

  DiskCache disk(dir, 1 << 20);
  ResultCache memory;
  CachingCompiler compiler(&memory, &disk);
  const LoopReport again = compiler.compile(loop, options);
  EXPECT_EQ(compiler.compiles(), 1);         // recompiled
  EXPECT_EQ(compiler.corrupt_entries(), 1);  // and counted the rejection
  EXPECT_FALSE(compiler.last_decode_error().ok());
  EXPECT_EQ(again.schedule.groups, cold.schedule.groups);
  EXPECT_EQ(again.sim.parallel_time, cold.sim.parallel_time);
  // The recompile re-stored a good entry: a third compiler hits disk.
  DiskCache disk2(dir, 1 << 20);
  ResultCache memory2;
  CachingCompiler compiler2(&memory2, &disk2);
  (void)compiler2.compile(loop, options);
  EXPECT_EQ(compiler2.compiles(), 0);
}

// --- schedule server -------------------------------------------------

TEST(ScheduleServerTest, ConcurrentIdenticalRequestsCompileOnce) {
  ScheduleServer server(ServerOptions{});
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions options = codec_options();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> times(kThreads, -1);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        times[static_cast<std::size_t>(t)] =
            server.compile(loop, options).parallel_time();
      } catch (const StatusError&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(times[0], times[t]);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kThreads);
  // Single-flight + memory cache: exactly one pipeline run, every other
  // request either joined the flight or hit the cache.
  EXPECT_EQ(stats.compiles, 1);
  EXPECT_EQ(stats.singleflight_joins + stats.memory_hits, kThreads - 1);
}

TEST(ScheduleServerTest, BatchIsOrderStableAndFailureIsolated) {
  ScheduleServer server(ServerOptions{});
  const PipelineOptions options = codec_options();
  std::vector<CompileRequest> requests;
  requests.push_back({parse_single_loop_or_throw(kPaperExample), options});
  // An irregular carried dependence (5 not a multiple of 2) the
  // pipeline refuses: no uniform Wait(S, i-d) covers it.
  requests.push_back(
      {parse_single_loop_or_throw("doacross I = 1, 30\n"
                                  "  A[2*I] = A[5*I+1] + 1\n"
                                  "end\n"),
       options});
  requests.push_back({parse_single_loop_or_throw(kStencil), options});

  const std::vector<LoopReport> reports = server.compile_batch(requests);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_TRUE(reports[0].status.ok());
  EXPECT_GT(reports[0].parallel_time(), 0);
  EXPECT_FALSE(reports[1].status.ok());  // stub carrying the refusal
  EXPECT_TRUE(reports[2].status.ok());
  // Order stability: result i must describe request i.
  EXPECT_EQ(reports[0].loop.to_string(), requests[0].loop.to_string());
  EXPECT_EQ(reports[2].loop.to_string(), requests[2].loop.to_string());
}

// --- framed protocol -------------------------------------------------

TEST(Protocol, FrameRoundTripsOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload("frame\0bytes", 11);
  ASSERT_TRUE(write_frame(fds[0], FrameType::kCompileRequest, payload).ok());
  Frame frame;
  ASSERT_TRUE(read_frame(fds[1], &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kCompileRequest);
  EXPECT_EQ(frame.payload, payload);
  // Clean EOF between frames is the end-of-session signal, stage "eof".
  ::close(fds[0]);
  const Status s = read_frame(fds[1], &frame);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.stage, "eof");
  ::close(fds[1]);
}

TEST(Protocol, RejectsBadMagicAndOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // 16 junk bytes: not an SBMP header.
  const char junk[16] = {'n', 'o', 't', 'S', 'B', 'M', 'P', 0,
                         0,   0,   0,   0,   0,   0,   0,   0};
  ASSERT_EQ(::write(fds[0], junk, sizeof junk), 16);
  Frame frame;
  EXPECT_FALSE(read_frame(fds[1], &frame).ok());
  ::close(fds[0]);
  ::close(fds[1]);

  // A header declaring a payload beyond the cap must be refused before
  // any allocation.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  char header[16] = {'S', 'B', 'M', 'P', 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  const std::uint64_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 8; ++i)
    header[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  ASSERT_EQ(::write(fds[0], header, sizeof header), 16);
  EXPECT_FALSE(read_frame(fds[1], &frame).ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, CompileRequestAndResponseRoundTrip) {
  const std::string options_payload = encode_pipeline_options(codec_options());
  const std::string request = encode_compile_request(options_payload,
                                                     kPaperExample);
  std::string options_back;
  std::string loop_back;
  ASSERT_TRUE(
      decode_compile_request(request, &options_back, &loop_back).ok());
  EXPECT_EQ(options_back, options_payload);
  EXPECT_EQ(loop_back, kPaperExample);

  const Status failure =
      Status::error(StatusCode::kInput, "parse", "bad loop");
  const std::string response = encode_compile_response(failure, "");
  Status status_back;
  std::string report_back;
  ASSERT_TRUE(
      decode_compile_response(response, &status_back, &report_back).ok());
  EXPECT_EQ(status_back.code, StatusCode::kInput);
  EXPECT_EQ(status_back.stage, "parse");
  EXPECT_EQ(status_back.message, "bad loop");
  EXPECT_TRUE(report_back.empty());
}

TEST(Protocol, RevisionMismatchIsACleanStatusNamingBothRevisions) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A valid frame from a hypothetical revision-'1' build: same "SBM"
  // prefix, different revision byte. The reader must say which
  // revisions disagree instead of calling the peer a non-sbmpd.
  char header[16] = {'S', 'B', 'M', '1', 1, 0, 0, 0,
                     0,   0,   0,   0,   0, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], header, sizeof header), 16);
  Frame frame;
  const Status s = read_frame(fds[1], &frame);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kInput);
  EXPECT_NE(s.message.find("revision mismatch"), std::string::npos);
  EXPECT_NE(s.message.find("'1'"), std::string::npos);
  EXPECT_NE(s.message.find(std::string(1, kProtocolRevision)),
            std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- STAT introspection ----------------------------------------------

TEST(StatProtocol, SnapshotRoundTripsThroughTheWireFormat) {
  MetricsRegistry registry;
  registry.counter("sbmp_result_cache_hits_total")->inc(3);
  registry.gauge("sbmp_inflight")->set(2);
  Histogram* h = compile_phase_histogram(registry, "dep");
  h->observe(1500);
  h->observe(5000000);

  StatSnapshot snapshot;
  snapshot.server.requests = 7;
  snapshot.server.compiles = 4;
  snapshot.server.singleflight_joins = 1;
  snapshot.server.memory_hits = 2;
  snapshot.server.disk_hits = 1;
  snapshot.metrics = registry.snapshot();

  StatSnapshot back;
  ASSERT_TRUE(
      decode_stat_snapshot(encode_stat_snapshot(snapshot), &back).ok());
  EXPECT_EQ(back.version, kStatFormatVersion);
  EXPECT_EQ(back.server.requests, 7);
  EXPECT_EQ(back.server.compiles, 4);
  EXPECT_EQ(back.server.singleflight_joins, 1);
  EXPECT_EQ(back.server.memory_hits, 2);
  EXPECT_EQ(back.server.disk_hits, 1);
  ASSERT_EQ(back.metrics.samples.size(), snapshot.metrics.samples.size());

  const MetricSample* hits =
      back.metrics.find("sbmp_result_cache_hits_total");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(hits->value, 3);
  const MetricSample* phase =
      back.metrics.find("sbmp_compile_phase_ns", "phase=\"dep\"");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(phase->count, 2);
  EXPECT_EQ(phase->sum, 5001500);
  ASSERT_EQ(phase->counts.size(), phase->bounds.size() + 1);
  // The decoded snapshot still renders as Prometheus text: a monitoring
  // client can scrape through the STAT frame without talking HTTP.
  const std::string prom = back.metrics.to_prometheus();
  EXPECT_NE(prom.find("sbmp_compile_phase_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("sbmp_result_cache_hits_total 3"), std::string::npos);
}

TEST(StatProtocol, RejectsVersionMismatchWithACleanStatus) {
  StatSnapshot snapshot;
  snapshot.version = kStatFormatVersion + 1;
  StatSnapshot back;
  const Status s =
      decode_stat_snapshot(encode_stat_snapshot(snapshot), &back);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kInput);
  EXPECT_NE(s.message.find("version mismatch"), std::string::npos);
}

TEST(StatProtocol, RejectsCorruptHistogramArity) {
  StatSnapshot snapshot;
  MetricSample bad;
  bad.name = "sbmp_broken_ns";
  bad.kind = MetricSample::Kind::kHistogram;
  bad.bounds = {10, 100};
  bad.counts = {1, 2};  // must be bounds + 1 = 3
  snapshot.metrics.samples.push_back(bad);
  StatSnapshot back;
  const Status s =
      decode_stat_snapshot(encode_stat_snapshot(snapshot), &back);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message.find("arity mismatch"), std::string::npos);
}

TEST(ScheduleServerTest, StatSnapshotCountsRequestsAndCacheTraffic) {
  ScheduleServer server(ServerOptions{});
  const PipelineOptions options = codec_options();
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  (void)server.compile(loop, options);
  (void)server.compile(loop, options);  // second run: memory-cache hit
  const StatSnapshot snapshot = server.stat_snapshot();
  EXPECT_EQ(snapshot.version, kStatFormatVersion);
  EXPECT_EQ(snapshot.server.requests, 2);
  EXPECT_EQ(snapshot.server.compiles, 1);
  EXPECT_EQ(snapshot.server.memory_hits, 1);
  // The classic accessor is a shim over the same registry — the two
  // views can never disagree.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, snapshot.server.requests);
  EXPECT_EQ(stats.memory_hits, snapshot.server.memory_hits);
  const MetricSample* requests =
      snapshot.metrics.find("sbmp_server_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value, 2);
  const MetricSample* hits =
      snapshot.metrics.find("sbmp_result_cache_hits_total");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->value, 1);
}

TEST(ScheduleServerTest, InjectedRegistryIsTheOnePublishedOn) {
  MetricsRegistry registry;
  ServerOptions options;
  options.metrics = &registry;
  ScheduleServer server(options);
  EXPECT_EQ(&server.metrics(), &registry);
  (void)server.compile(parse_single_loop_or_throw(kPaperExample),
                       codec_options());
  const MetricsSnapshot snapshot = registry.snapshot();
  const MetricSample* requests = snapshot.find("sbmp_server_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value, 1);
}

// --- deadlines -------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.poll_timeout_ms(), -1);  // poll(2) blocks forever
}

TEST(DeadlineTest, ZeroOptMeansNoLimitPositiveArms) {
  EXPECT_TRUE(Deadline::after_ms_opt(0).is_infinite());
  EXPECT_TRUE(Deadline::after_ms_opt(-5).is_infinite());
  const Deadline armed = Deadline::after_ms_opt(60000);
  EXPECT_FALSE(armed.is_infinite());
  EXPECT_FALSE(armed.expired());
  EXPECT_GT(armed.remaining_ms(), 0);
  EXPECT_LE(armed.remaining_ms(), 60000);
}

TEST(DeadlineTest, ExpiresAndClampsRemainingToZero) {
  const Deadline d = Deadline::after_ms(0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
  EXPECT_EQ(d.poll_timeout_ms(), 0);
}

TEST(DeadlineTest, EarlierPicksTheStricterBudget) {
  const Deadline tight = Deadline::after_ms(1);
  const Deadline loose = Deadline::after_ms(60000);
  EXPECT_LE(tight.earlier(loose).remaining_ms(), tight.remaining_ms());
  EXPECT_LE(loose.earlier(tight).remaining_ms(), 1);
  // Infinite folds away: the finite side always wins.
  EXPECT_FALSE(Deadline().earlier(tight).is_infinite());
  EXPECT_FALSE(tight.earlier(Deadline()).is_infinite());
  EXPECT_TRUE(Deadline().earlier(Deadline()).is_infinite());
}

// --- retry classification & backoff ----------------------------------

TEST(RetryTest, OnlyTransientIdempotentSafeClassesAreRetryable) {
  const auto of = [](StatusCode code) {
    return Status::error(code, "s", "m");
  };
  EXPECT_TRUE(retryable_failure(of(StatusCode::kTimeout)));
  EXPECT_TRUE(retryable_failure(of(StatusCode::kUnavailable)));
  EXPECT_TRUE(retryable_failure(of(StatusCode::kOverloaded)));
  // Deterministic failures retry into the identical failure; a
  // frame-too-large refusal means WE sent the bad frame.
  EXPECT_FALSE(retryable_failure(Status::okay()));
  EXPECT_FALSE(retryable_failure(of(StatusCode::kInput)));
  EXPECT_FALSE(retryable_failure(of(StatusCode::kUsage)));
  EXPECT_FALSE(retryable_failure(of(StatusCode::kValidation)));
  EXPECT_FALSE(retryable_failure(of(StatusCode::kInternal)));
  EXPECT_FALSE(retryable_failure(of(StatusCode::kFrameTooLarge)));
}

TEST(RetryTest, BackoffIsFullJitterWithExponentialCap) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 40;
  SplitMix64 rng(42);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const std::int64_t cap =
        std::min<std::int64_t>(policy.initial_backoff_ms << (attempt - 1),
                               policy.max_backoff_ms);
    for (int i = 0; i < 32; ++i) {
      const std::int64_t delay = backoff_delay_ms(policy, attempt, rng);
      EXPECT_GE(delay, 0);
      EXPECT_LE(delay, cap);
    }
  }
  // Deterministic in the rng: same seed, same sequence.
  SplitMix64 a(7), b(7);
  for (int i = 1; i <= 5; ++i)
    EXPECT_EQ(backoff_delay_ms(policy, i, a), backoff_delay_ms(policy, i, b));
}

TEST(RetryTest, StatusCodeNamesCoverTheServingClasses) {
  EXPECT_STREQ(status_code_name(StatusCode::kTimeout), "deadline exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(status_code_name(StatusCode::kOverloaded), "overloaded");
  EXPECT_STREQ(status_code_name(StatusCode::kFrameTooLarge),
               "frame too large");
  EXPECT_EQ(worst_code(StatusCode::kInput, StatusCode::kOverloaded),
            StatusCode::kOverloaded);
}

// --- malformed wire corpus -------------------------------------------

TEST(WireCorpus, TruncatedHeaderIsUnavailableNotAHang) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const char partial[8] = {'S', 'B', 'M', kProtocolRevision, 1, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], partial, sizeof partial), 8);
  ::close(fds[0]);  // dies mid-header
  Frame frame;
  const Status s = read_frame(fds[1], &frame);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kUnavailable);
  ::close(fds[1]);
}

TEST(WireCorpus, TruncatedBodyIsUnavailable) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  char header[16] = {'S', 'B', 'M', kProtocolRevision, 1, 0, 0, 0,
                     100, 0,   0,   0,                 0, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], header, sizeof header), 16);
  ASSERT_EQ(::write(fds[0], "ten bytes.", 10), 10);
  ::close(fds[0]);  // dies mid-payload
  Frame frame;
  const Status s = read_frame(fds[1], &frame);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kUnavailable);
  ::close(fds[1]);
}

TEST(WireCorpus, OversizedFrameIsTypedFrameTooLarge) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  char header[16] = {'S', 'B', 'M', kProtocolRevision, 1, 0, 0, 0,
                     0,   0,   0,   0,                 0, 0, 0, 0};
  const std::uint64_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 8; ++i)
    header[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  ASSERT_EQ(::write(fds[0], header, sizeof header), 16);
  Frame frame;
  const Status s = read_frame(fds[1], &frame);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kFrameTooLarge);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireCorpus, ZeroLengthPayloadRoundTrips) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(write_frame(fds[0], FrameType::kStatRequest, "").ok());
  Frame frame;
  ASSERT_TRUE(read_frame(fds[1], &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kStatRequest);
  EXPECT_TRUE(frame.payload.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireCorpus, CorruptedResponsePayloadFailsDecodeNotValidation) {
  const std::string response =
      encode_compile_response(Status::okay(), "pretend-report");
  std::string corrupt = response;
  corrupt[corrupt.size() / 2] ^= 0x40;  // one flipped bit
  Status status_back;
  std::string report_back;
  EXPECT_FALSE(
      decode_compile_response(corrupt, &status_back, &report_back).ok());
}

TEST(WireCorpus, NegativeAndOutOfRangeStatusCodesAreRejected) {
  // A response claiming a status code outside the enum must not be
  // cast into one. Build the wire record by hand, matching the field
  // order encode_compile_response writes.
  for (const std::int64_t bad :
       {static_cast<std::int64_t>(-1),
        static_cast<std::int64_t>(kMaxStatusCode) + 1}) {
    RecordWriter w;
    w.add_int("code", bad);
    w.add_string("stage", "s");
    w.add_string("message", "m");
    w.add_string("report", "");
    Status status_back;
    std::string report_back;
    EXPECT_FALSE(
        decode_compile_response(w.finish(), &status_back, &report_back).ok())
        << "code " << bad << " must be rejected";
  }
}

TEST(WireCorpus, RequestRejectsNegativeDeadline) {
  const std::string options_payload = encode_pipeline_options(codec_options());
  RecordWriter w;
  w.add_string("options", options_payload);
  w.add_string("loop", kPaperExample);
  w.add_int("deadline_ms", -7);
  std::string options_back, loop_back;
  std::int64_t deadline_back = 0;
  EXPECT_FALSE(decode_compile_request(w.finish(), &options_back, &loop_back,
                                      &deadline_back)
                   .ok());
}

TEST(WireCorpus, DeadlineFieldRoundTripsThroughTheRequest) {
  const std::string options_payload = encode_pipeline_options(codec_options());
  const std::string request =
      encode_compile_request(options_payload, kPaperExample, 1234);
  std::string options_back, loop_back;
  std::int64_t deadline_back = 0;
  ASSERT_TRUE(decode_compile_request(request, &options_back, &loop_back,
                                     &deadline_back)
                  .ok());
  EXPECT_EQ(deadline_back, 1234);
  // Callers that ignore the field still decode (default argument).
  ASSERT_TRUE(decode_compile_request(request, &options_back, &loop_back).ok());
}

// --- transports ------------------------------------------------------

TEST(TransportTest, ReadDeadlineExpiryIsTimeoutNotAHang) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport t(fds[1]);
  char buf[16];
  std::size_t got = 0;
  // Nothing will ever arrive: the deadline must bound the wait.
  const Status s = t.read_some(buf, sizeof buf, &got, Deadline::after_ms(30));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(TransportTest, WriteToAClosedPeerIsUnavailableNotSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  FdTransport t(fds[0]);
  // The first write may land in the buffer; keep writing until the
  // kernel reports the peer is gone. MSG_NOSIGNAL means we observe a
  // typed Status instead of dying on SIGPIPE.
  Status s = Status::okay();
  const std::string chunk(4096, 'x');
  for (int i = 0; i < 256 && s.ok(); ++i) {
    std::size_t put = 0;
    s = t.write_some(chunk.data(), chunk.size(), &put, Deadline::after_ms(500));
  }
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kUnavailable);
  ::close(fds[0]);
}

TEST(TransportTest, WriteDeadlineBoundsAFrameLargerThanTheSocketBuffer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // The peer never reads: the kernel buffer fills mid-frame. POLLOUT
  // only promises *some* space, so a blocking send() would park here
  // until the peer drained — the write must instead take partial
  // writes and surface kTimeout at the deadline.
  FdTransport t(fds[0]);
  const std::string frame(8u << 20, 'x');  // far beyond any socket buffer
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = write_frame(t, FrameType::kCompileRequest, frame,
                               Deadline::after_ms(100));
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code, StatusCode::kTimeout);
  EXPECT_LT(elapsed_ms, 5000);  // bounded by the deadline, not the peer
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(TransportTest, FaultyTransportIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string sent(512, '\0');
    for (std::size_t i = 0; i < sent.size(); ++i)
      sent[i] = static_cast<char>(i * 31 + 7);
    EXPECT_EQ(::write(fds[0], sent.data(), sent.size()),
              static_cast<ssize_t>(sent.size()));
    ::close(fds[0]);

    FdTransport inner(fds[1]);
    NetFaults faults;
    faults.short_pct = 60;
    faults.corrupt_pct = 30;
    faults.truncate_pct = 2;
    FaultyTransport faulty(inner, faults, seed);
    std::string received;
    Status last = Status::okay();
    for (int i = 0; i < 10000; ++i) {
      char buf[64];
      std::size_t got = 0;
      last = faulty.read_some(buf, sizeof buf, &got, Deadline::after_ms(2000));
      if (!last.ok() || got == 0) break;
      received.append(buf, got);
    }
    ::close(fds[1]);
    struct Outcome {
      std::string bytes;
      std::int64_t injected;
      bool ok;
    };
    return Outcome{received, faulty.injected().total(), last.ok()};
  };
  const auto a = run(99), b = run(99), c = run(100);
  // Same seed: bit-identical replay (bytes, faults, outcome).
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_GT(a.injected, 0);  // the fault rates actually fire
  // Different seed: a different schedule of faults.
  EXPECT_TRUE(a.bytes != c.bytes || a.injected != c.injected);
}

TEST(TransportTest, DisconnectFaultIsStickyAndTyped) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdTransport inner(fds[0]);
  NetFaults faults;
  faults.disconnect_pct = 100;
  FaultyTransport faulty(inner, faults, 1);
  std::size_t put = 0;
  const Status first =
      faulty.write_some("x", 1, &put, Deadline::after_ms(100));
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.code, StatusCode::kUnavailable);
  char buf[4];
  std::size_t got = 0;
  const Status second =
      faulty.read_some(buf, sizeof buf, &got, Deadline::after_ms(100));
  EXPECT_FALSE(second.ok());  // a dead socket stays dead
  EXPECT_EQ(second.code, StatusCode::kUnavailable);
  EXPECT_EQ(faulty.injected().disconnects, 1);  // counted once, not per call
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- admission control -----------------------------------------------

TEST(AdmissionTest, UnlimitedByDefault) {
  AdmissionController gate{AdmissionOptions{}};
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(gate.admit(Deadline()).ok());
  EXPECT_EQ(gate.counters().inflight, 32);
  EXPECT_EQ(gate.counters().admitted, 32);
  for (int i = 0; i < 32; ++i) gate.release();
  EXPECT_EQ(gate.counters().inflight, 0);
}

TEST(AdmissionTest, FullQueueShedsImmediatelyAsOverloaded) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;  // nobody waits
  AdmissionController gate(options);
  ASSERT_TRUE(gate.admit(Deadline()).ok());
  const Status shed = gate.admit(Deadline());
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.code, StatusCode::kOverloaded);
  EXPECT_EQ(gate.counters().shed_queue_full, 1);
  gate.release();
  ASSERT_TRUE(gate.admit(Deadline()).ok());  // slot is reusable
  gate.release();
}

TEST(AdmissionTest, QueueTimeoutShedsAsOverloaded) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  options.queue_timeout_ms = 30;
  AdmissionController gate(options);
  ASSERT_TRUE(gate.admit(Deadline()).ok());  // hold the only slot
  const Status shed = gate.admit(Deadline());
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.code, StatusCode::kOverloaded);
  EXPECT_EQ(gate.counters().shed_timeout, 1);
  EXPECT_EQ(gate.counters().queue_depth, 0);  // waiter fully dequeued
  gate.release();
}

TEST(AdmissionTest, CallerDeadlineWhileQueuedIsTimeoutNotOverloaded) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  options.queue_timeout_ms = 10000;  // the queue would happily hold us
  AdmissionController gate(options);
  ASSERT_TRUE(gate.admit(Deadline()).ok());
  const Status expired = gate.admit(Deadline::after_ms(30));
  EXPECT_FALSE(expired.ok());
  EXPECT_EQ(expired.code, StatusCode::kTimeout);
  gate.release();
}

TEST(AdmissionTest, ReleaseHandsTheSlotToTheNewestWaiterFirst) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 2;
  options.queue_timeout_ms = 10000;
  AdmissionController gate(options);
  ASSERT_TRUE(gate.admit(Deadline()).ok());  // hold the slot

  std::mutex order_mu;
  std::vector<int> grant_order;
  std::atomic<int> queued{0};
  const auto waiter = [&](int id) {
    const Status s = gate.admit(Deadline::after_ms(10000));
    EXPECT_TRUE(s.ok());
    {
      std::lock_guard<std::mutex> lock(order_mu);
      grant_order.push_back(id);
    }
    gate.release();
  };
  // Strict arrival order: waiter 1 queues, then waiter 2.
  std::thread t1([&] {
    queued.fetch_add(1);
    waiter(1);
  });
  while (gate.counters().queue_depth < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread t2([&] {
    queued.fetch_add(1);
    waiter(2);
  });
  while (gate.counters().queue_depth < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  gate.release();  // LIFO: waiter 2 (newest) must run first
  t1.join();
  t2.join();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 2);
  EXPECT_EQ(grant_order[1], 1);
  EXPECT_EQ(gate.counters().queued, 2);
  EXPECT_EQ(gate.counters().inflight, 0);
}

// --- serve_session end-to-end ----------------------------------------

namespace {
struct SessionHarness {
  int client_fd = -1;
  std::thread server_thread;
  SessionEnd end = SessionEnd::kPeerClosed;

  SessionHarness(ScheduleServer& server, AdmissionController* admission,
                 const SessionLimits& limits) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd = fds[0];
    const int server_fd = fds[1];
    server_thread = std::thread([this, &server, admission, limits, server_fd] {
      FdTransport transport(server_fd);
      end = serve_session(server, admission, transport, limits);
      ::close(server_fd);
    });
  }
  ~SessionHarness() {
    if (client_fd >= 0) ::close(client_fd);
    if (server_thread.joinable()) server_thread.join();
  }
  void finish() {
    ::close(client_fd);
    client_fd = -1;
    server_thread.join();
  }
};
}  // namespace

TEST(ServeSession, CompileResponseIsByteIdenticalToALocalRun) {
  ScheduleServer server{ServerOptions{}};
  SessionHarness h(server, nullptr, SessionLimits{});

  // Ping first: the liveness probe rides the same session.
  ASSERT_TRUE(write_frame(h.client_fd, FrameType::kPing, "").ok());
  Frame frame;
  ASSERT_TRUE(read_frame(h.client_fd, &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kPong);

  const PipelineOptions options = codec_options();
  const std::string request = encode_compile_request(
      encode_pipeline_options(options), kPaperExample, /*deadline_ms=*/0);
  ASSERT_TRUE(
      write_frame(h.client_fd, FrameType::kCompileRequest, request).ok());
  ASSERT_TRUE(read_frame(h.client_fd, &frame).ok());
  ASSERT_EQ(frame.type, FrameType::kCompileResponse);
  Status status;
  std::string report_payload;
  ASSERT_TRUE(
      decode_compile_response(frame.payload, &status, &report_payload).ok());
  ASSERT_TRUE(status.ok()) << status.to_string();

  // The served artifact must be the byte-identical local artifact.
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const Fingerprint fp = schedule_fingerprint(loop, options);
  const LoopReport local = run_pipeline(loop, options);
  EXPECT_EQ(report_payload, encode_loop_report(local, fp));

  h.finish();
  EXPECT_EQ(h.end, SessionEnd::kPeerClosed);
}

TEST(ServeSession, ShedRequestGetsATypedOverloadedResponse) {
  ScheduleServer server{ServerOptions{}};
  AdmissionOptions admission_options;
  admission_options.max_inflight = 1;
  admission_options.max_queue = 0;
  AdmissionController gate(admission_options);
  ASSERT_TRUE(gate.admit(Deadline()).ok());  // saturate from the outside

  const std::string request = encode_compile_request(
      encode_pipeline_options(codec_options()), kPaperExample, 0);
  const std::string response_payload =
      handle_compile_request(server, &gate, request);
  Status status;
  std::string report_payload;
  ASSERT_TRUE(
      decode_compile_response(response_payload, &status, &report_payload)
          .ok());
  EXPECT_EQ(status.code, StatusCode::kOverloaded);
  EXPECT_TRUE(report_payload.empty());
  gate.release();
}

TEST(ServeSession, QueuedRequestHonorsItsPropagatedDeadline) {
  ScheduleServer server{ServerOptions{}};
  AdmissionOptions admission_options;
  admission_options.max_inflight = 1;
  admission_options.max_queue = 4;
  admission_options.queue_timeout_ms = 10000;
  AdmissionController gate(admission_options);
  ASSERT_TRUE(gate.admit(Deadline()).ok());  // slot stays held throughout

  // The request declares 30ms of remaining budget; queued behind the
  // held slot it must come back kTimeout — the daemon honors the
  // CLIENT'S deadline, not just its own queue timeout.
  const std::string request = encode_compile_request(
      encode_pipeline_options(codec_options()), kPaperExample,
      /*deadline_ms=*/30);
  Status status;
  std::string report_payload;
  ASSERT_TRUE(decode_compile_response(
                  handle_compile_request(server, &gate, request), &status,
                  &report_payload)
                  .ok());
  EXPECT_EQ(status.code, StatusCode::kTimeout);
  gate.release();
}

TEST(ServeSession, MalformedRequestPayloadIsATypedInputError) {
  ScheduleServer server{ServerOptions{}};
  Status status;
  std::string report_payload;
  ASSERT_TRUE(decode_compile_response(
                  handle_compile_request(server, nullptr, "not a record"),
                  &status, &report_payload)
                  .ok());
  EXPECT_EQ(status.code, StatusCode::kInput);
}

TEST(ServeSession, OversizedFrameDrawsATypedRefusalThenTheSessionEnds) {
  ScheduleServer server{ServerOptions{}};
  SessionLimits limits;
  limits.io_timeout_ms = 2000;
  SessionHarness h(server, nullptr, limits);

  char header[16] = {'S', 'B', 'M', kProtocolRevision, 1, 0, 0, 0,
                     0,   0,   0,   0,                 0, 0, 0, 0};
  const std::uint64_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 8; ++i)
    header[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  ASSERT_EQ(::write(h.client_fd, header, sizeof header), 16);

  Frame frame;
  ASSERT_TRUE(read_frame(h.client_fd, &frame).ok());
  ASSERT_EQ(frame.type, FrameType::kCompileResponse);
  Status status;
  std::string report_payload;
  ASSERT_TRUE(
      decode_compile_response(frame.payload, &status, &report_payload).ok());
  EXPECT_EQ(status.code, StatusCode::kFrameTooLarge);
  // Then EOF: the stream cannot resync past an untrusted length.
  EXPECT_FALSE(read_frame(h.client_fd, &frame).ok());

  h.finish();
  EXPECT_EQ(h.end, SessionEnd::kFrameTooLarge);
}

TEST(ServeSession, RequestLimitClosesTheSessionAfterNCompiles) {
  ScheduleServer server{ServerOptions{}};
  SessionLimits limits;
  limits.max_requests = 1;
  SessionHarness h(server, nullptr, limits);

  const std::string request = encode_compile_request(
      encode_pipeline_options(codec_options()), kPaperExample, 0);
  ASSERT_TRUE(
      write_frame(h.client_fd, FrameType::kCompileRequest, request).ok());
  Frame frame;
  ASSERT_TRUE(read_frame(h.client_fd, &frame).ok());
  Status status;
  std::string report_payload;
  ASSERT_TRUE(
      decode_compile_response(frame.payload, &status, &report_payload).ok());
  EXPECT_TRUE(status.ok());
  // The first request was served in full; the session then closed.
  EXPECT_FALSE(read_frame(h.client_fd, &frame).ok());
  h.finish();
  EXPECT_EQ(h.end, SessionEnd::kRequestLimit);
}

TEST(ServeSession, IdleTimeoutReapsASilentConnection) {
  ScheduleServer server{ServerOptions{}};
  SessionLimits limits;
  limits.idle_timeout_ms = 40;
  SessionHarness h(server, nullptr, limits);
  // Send nothing: the reaper must end the session, not leak it.
  h.server_thread.join();
  EXPECT_EQ(h.end, SessionEnd::kIdleTimeout);
  ::close(h.client_fd);
  h.client_fd = -1;
}

TEST(ServeSession, IdleZeroKeepsConnectionsBeyondTheIoBudget) {
  ScheduleServer server{ServerOptions{}};
  SessionLimits limits;
  limits.io_timeout_ms = 40;  // tight io budget; idle stays 0 = keep
  SessionHarness h(server, nullptr, limits);
  // Sit silent for several io budgets: the io clock only runs once a
  // frame's first byte lands, so the documented --idle-timeout-ms 0
  // default must keep the connection, not reap it after io_timeout_ms.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(write_frame(h.client_fd, FrameType::kPing, "").ok());
  Frame frame;
  ASSERT_TRUE(read_frame(h.client_fd, &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kPong);
  h.finish();
  EXPECT_EQ(h.end, SessionEnd::kPeerClosed);
}

TEST(ServeSession, MidFrameStallIsAnIoErrorNotAnIdleTimeout) {
  ScheduleServer server{ServerOptions{}};
  SessionLimits limits;
  limits.io_timeout_ms = 40;
  limits.idle_timeout_ms = 60000;  // the idle reaper must NOT be charged
  SessionHarness h(server, nullptr, limits);
  // One header byte arrives, then the peer stalls: the fresh io budget
  // fires and the ending classifies as an I/O stall — not as the idle
  // reaper, whose allowance the stall must not consume.
  ASSERT_EQ(::send(h.client_fd, "S", 1, MSG_NOSIGNAL), 1);
  h.server_thread.join();
  EXPECT_EQ(h.end, SessionEnd::kIoError);
  ::close(h.client_fd);
  h.client_fd = -1;
}

// --- remote client resilience ----------------------------------------

TEST(RemoteClient, MissingDaemonIsUnavailableAfterBoundedRetries) {
  RemoteOptions options;
  options.socket_path = fresh_dir("sbmp_no_daemon") + "/missing.sock";
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 1;
  options.retry.max_backoff_ms = 2;
  options.jitter_seed = 1;
  RemoteCompiler remote(std::move(options));
  try {
    (void)remote.compile(parse_single_loop_or_throw(kPaperExample),
                         codec_options());
    FAIL() << "compile against a missing daemon must throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code, StatusCode::kUnavailable);
  }
  EXPECT_EQ(remote.tallies().retries, 1);  // 2 attempts = 1 retry
}

TEST(RemoteClient, FallbackCompilerDegradesToLocalAndOpensTheBreaker) {
  RemoteOptions options;
  options.socket_path = fresh_dir("sbmp_fallback") + "/missing.sock";
  options.retry = RetryPolicy::none();
  RemoteCompiler remote(std::move(options));
  DirectCompiler local;
  FallbackCompiler fallback(remote, local);

  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  const PipelineOptions pipeline_options = codec_options();
  const LoopReport direct = run_pipeline(loop, pipeline_options);
  for (int i = 0; i < FallbackCompiler::kBreakerThreshold + 1; ++i) {
    const LoopReport degraded = fallback.compile(loop, pipeline_options);
    // Degradation must not change the answer.
    EXPECT_EQ(degraded.schedule.groups, direct.schedule.groups);
    EXPECT_EQ(degraded.sim.parallel_time, direct.sim.parallel_time);
  }
  EXPECT_EQ(fallback.fallbacks(), FallbackCompiler::kBreakerThreshold + 1);
  EXPECT_TRUE(fallback.breaker_open());
}

TEST(RemoteClient, NonTransientFailuresDoNotFallBack) {
  // A compiler whose failure is deterministic (kInput) must pass
  // through: the fallback would fail identically, and retrying or
  // degrading would only hide the diagnosis.
  class AlwaysInput final : public LoopCompiler {
   public:
    using LoopCompiler::compile;
    LoopReport compile(const Loop&, const PipelineOptions&) override {
      throw StatusError(
          Status::error(StatusCode::kInput, "parse", "bad loop"));
    }
  };
  AlwaysInput primary;
  DirectCompiler local;
  FallbackCompiler fallback(primary, local);
  EXPECT_THROW((void)fallback.compile(parse_single_loop_or_throw(kPaperExample),
                                      codec_options()),
               StatusError);
  EXPECT_EQ(fallback.fallbacks(), 0);
  EXPECT_FALSE(fallback.breaker_open());
}

}  // namespace
}  // namespace sbmp
