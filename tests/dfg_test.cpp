#include <gtest/gtest.h>

#include <set>

#include "sbmp/codegen/codegen.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

struct Built {
  TacFunction tac;
  Dfg dfg;
};

Built build(const char* src, MachineDesc config = machines::paper(4, 1)) {
  TacFunction tac = generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
  Dfg dfg(tac, config);
  return {std::move(tac), std::move(dfg)};
}

bool has_edge(const Dfg& dfg, int from, int to, EdgeKind kind) {
  for (const auto& e : dfg.succs(from)) {
    if (e.to == to && e.kind == kind) return true;
  }
  return false;
}

TEST(Dfg, Fig3SyncArcs) {
  const auto b = build(kFig1);
  // Wait(S3,I-2) -> load A[I-2]; Wait(S3,I-1) -> load A[I-1];
  // store A[I] -> Send(S3).
  EXPECT_TRUE(has_edge(b.dfg, 1, 5, EdgeKind::kSync));
  EXPECT_TRUE(has_edge(b.dfg, 11, 16, EdgeKind::kSync));
  EXPECT_TRUE(has_edge(b.dfg, 27, 28, EdgeKind::kSync));
}

TEST(Dfg, RegisterFlowEdges) {
  const auto b = build(kFig1);
  EXPECT_TRUE(has_edge(b.dfg, 3, 4, EdgeKind::kData));   // t2 -> t3
  EXPECT_TRUE(has_edge(b.dfg, 4, 5, EdgeKind::kData));   // t3 -> load
  EXPECT_TRUE(has_edge(b.dfg, 5, 9, EdgeKind::kData));   // t4 -> add
  EXPECT_TRUE(has_edge(b.dfg, 9, 10, EdgeKind::kData));  // t8 -> store
  EXPECT_TRUE(has_edge(b.dfg, 2, 27, EdgeKind::kData));  // t1 -> store A
}

TEST(Dfg, MemoryEdgeOnlyForAliasingAccesses) {
  const auto b = build(kFig1);
  // Store B[I] (10) -> load B[I] (22): same subscript, edge.
  EXPECT_TRUE(has_edge(b.dfg, 10, 22, EdgeKind::kMem));
  // Store A[I] (27) vs load A[I-2] (5): provably distinct this iteration.
  EXPECT_FALSE(has_edge(b.dfg, 5, 27, EdgeKind::kMem));
  EXPECT_FALSE(has_edge(b.dfg, 16, 27, EdgeKind::kMem));
}

TEST(Dfg, Fig3ComponentPartition) {
  const auto b = build(kFig1);
  // Sigwat graph: S1 + S3 chain with Wait1 and the Send.
  const std::set<int> sigwat{1, 5, 8, 9, 10, 22, 25, 26, 27, 28};
  // Wat graph: S2 with Wait2.
  const std::set<int> wat{11, 16, 19, 20, 21};

  const int comp_sigwat = b.dfg.component_of(1);
  const int comp_wat = b.dfg.component_of(11);
  ASSERT_NE(comp_sigwat, comp_wat);
  EXPECT_EQ(b.dfg.component_kind(comp_sigwat), ComponentKind::kSigwat);
  EXPECT_EQ(b.dfg.component_kind(comp_wat), ComponentKind::kWat);

  for (const int id : sigwat) EXPECT_EQ(b.dfg.component_of(id), comp_sigwat);
  for (const int id : wat) EXPECT_EQ(b.dfg.component_of(id), comp_wat);
}

TEST(Dfg, AddressArithmeticIsFree) {
  const auto b = build(kFig1);
  for (const int id : {2, 3, 4, 6, 7, 12, 13, 14, 15, 17, 18, 23, 24}) {
    EXPECT_TRUE(b.dfg.is_free(id)) << "instr " << id;
    EXPECT_EQ(b.dfg.component_of(id), -1);
  }
  for (const int id : {1, 5, 10, 11, 16, 21, 28}) {
    EXPECT_FALSE(b.dfg.is_free(id)) << "instr " << id;
  }
}

TEST(Dfg, SharedAddressNodesDoNotMergeComponents) {
  // Both statements use subscript [I] (shared scaled address t=4*I) but
  // are otherwise independent; they must stay separate components.
  const auto b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] + 1
  B[I] = X[I] * 2
end
)");
  int stores = 0;
  std::set<int> comps;
  for (const auto& instr : b.tac.instrs) {
    if (instr.op == Opcode::kStore) {
      ++stores;
      comps.insert(b.dfg.component_of(instr.id));
    }
  }
  EXPECT_EQ(stores, 2);
  EXPECT_EQ(comps.size(), 2u);
}

TEST(Dfg, Fig3SynchronizationPath) {
  const auto b = build(kFig1);
  ASSERT_EQ(b.dfg.pairs().size(), 2u);
  // Pair with distance 2: Wait1 (1) to Send (28) through the S1/S3 chain
  // — the paper's path {1,5,9,10,22,26,27} plus the unfused add.
  const SyncPair* p2 = nullptr;
  const SyncPair* p1 = nullptr;
  for (const auto& pair : b.dfg.pairs()) {
    if (pair.distance == 2) p2 = &pair;
    if (pair.distance == 1) p1 = &pair;
  }
  ASSERT_NE(p2, nullptr);
  ASSERT_NE(p1, nullptr);
  const auto path = b.dfg.sync_path(*p2);
  EXPECT_EQ(path, (std::vector<int>{1, 5, 9, 10, 22, 26, 27, 28}));
  // Pair with distance 1 has no directed wait -> send path (Wat graph):
  // it is convertible to LFD.
  EXPECT_TRUE(b.dfg.sync_path(*p1).empty());
}

TEST(Dfg, LatenciesFollowMachineDesc) {
  MachineDesc config = machines::paper(4, 1);
  config.set_latency(Opcode::kMul, 3);
  const auto b = build(R"(
doacross I = 1, 100
  A[I] = A[I-1] * B[I]
end
)", config);
  // Find the mul and its store consumer edge.
  for (const auto& instr : b.tac.instrs) {
    if (instr.op != Opcode::kMul) continue;
    for (const auto& e : b.dfg.succs(instr.id)) {
      if (b.tac.by_id(e.to).op == Opcode::kStore) {
        EXPECT_EQ(e.latency, 3);
      }
    }
  }
}

TEST(Dfg, HeightsAreCriticalPathLengths) {
  const auto b = build(kFig1);
  const auto heights = b.dfg.heights();
  // The send is a sink: height 0. Its guarded store is one above.
  EXPECT_EQ(heights[28], 0);
  EXPECT_EQ(heights[27], 1);
  // Wait1 heads the longest chain: 1->5->9->10->22->26->27->28.
  EXPECT_GE(heights[1], 7);
}

TEST(Dfg, AncestorsTransitive) {
  const auto b = build(kFig1);
  const auto anc = b.dfg.ancestors(9);  // t8 = t4 + t7
  const std::set<int> expect{1, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(std::set<int>(anc.begin(), anc.end()), expect);
}

TEST(Dfg, EdgesAlwaysPointForward) {
  const auto b = build(kFig1);
  for (int id = 1; id <= b.dfg.size(); ++id) {
    for (const auto& e : b.dfg.succs(id)) EXPECT_LT(e.from, e.to);
  }
}

TEST(Dfg, PairsCarryDistances) {
  const auto b = build(kFig1);
  for (const auto& pair : b.dfg.pairs()) {
    EXPECT_EQ(pair.signal_stmt, 3);
    EXPECT_EQ(b.tac.by_id(pair.wait_instr).op, Opcode::kWait);
    EXPECT_EQ(b.tac.by_id(pair.send_instr).op, Opcode::kSend);
  }
}

}  // namespace
}  // namespace sbmp
