// Fault-injection simulator tests: a correctly synchronized schedule
// must survive every legal-timing perturbation with zero staleness
// violations, a deliberately broken one must be caught, and seeded
// plans must replay identically.
#include <gtest/gtest.h>

#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/sim/fault.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

struct Compiled {
  LoopReport report;
  PipelineOptions options;
  SimOptions sim_options;
  std::vector<Dependence> carried;
};

Compiled compile(const char* src, int issue = 4, int fus = 2) {
  Compiled out;
  out.options.machine = machines::paper(issue, fus);
  out.options.iterations = 100;
  out.report = run_pipeline(parse_single_loop_or_throw(src), out.options);
  out.sim_options.iterations =
      out.options.resolved_iterations(out.report.loop);
  out.sim_options.processors = out.options.processors;
  for (const auto& dep : out.report.deps.deps)
    if (dep.loop_carried()) out.carried.push_back(dep);
  return out;
}

TEST(FaultPlan, InactiveByDefaultAdversarialActive) {
  EXPECT_FALSE(FaultPlan{}.active());
  EXPECT_TRUE(FaultPlan::adversarial(1).active());
}

TEST(FaultSim, InactivePlanMatchesBaseSimulatorExactly) {
  const Compiled c = compile(kFig1);
  const FaultSimResult faulted = simulate_with_faults(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, FaultPlan{});
  EXPECT_EQ(faulted.fault_events, 0);
  EXPECT_TRUE(faulted.staleness.empty());
  EXPECT_EQ(faulted.sim.parallel_time, c.report.sim.parallel_time);
  EXPECT_EQ(faulted.sim.iteration_time, c.report.sim.iteration_time);
}

TEST(FaultSim, AdversarialPlanInjectsButOnlyDelays) {
  const Compiled c = compile(kFig1);
  const FaultSimResult faulted = simulate_with_faults(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, FaultPlan::adversarial(7));
  EXPECT_GT(faulted.fault_events, 0);
  // Faults only delay events, so the perturbed run can never beat the
  // unperturbed one.
  EXPECT_GE(faulted.sim.parallel_time, c.report.sim.parallel_time);
  EXPECT_TRUE(faulted.staleness.empty())
      << "valid schedule flagged stale: " << faulted.staleness.front();
}

TEST(FaultSim, SeededPlanReplaysIdentically) {
  const Compiled c = compile(kFig1);
  const FaultPlan plan = FaultPlan::adversarial(42);
  const FaultSimResult a = simulate_with_faults(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, plan);
  const FaultSimResult b = simulate_with_faults(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, plan);
  EXPECT_EQ(a.sim.parallel_time, b.sim.parallel_time);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.staleness, b.staleness);
}

TEST(FaultSim, DifferentSeedsPerturbDifferently) {
  const Compiled c = compile(kFig1);
  const FaultSimResult a = simulate_with_faults(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, FaultPlan::adversarial(1));
  const FaultSimResult b = simulate_with_faults(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, FaultPlan::adversarial(2));
  // Not a hard guarantee for arbitrary seeds, but these two plans are
  // pinned by the test and do diverge.
  EXPECT_NE(a.sim.parallel_time, b.sim.parallel_time);
}

TEST(FaultCampaignTest, CleanOnPaperExample) {
  const Compiled c = compile(kFig1);
  const FaultCampaign campaign = run_fault_campaign(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, FaultPlan::adversarial(1), 25);
  EXPECT_EQ(campaign.trials, 25);
  EXPECT_TRUE(campaign.clean());
  EXPECT_FALSE(campaign.detected());
  EXPECT_GT(campaign.fault_events, 0);
  EXPECT_GT(campaign.base_parallel_time, 0);
  EXPECT_GE(campaign.max_parallel_time, campaign.base_parallel_time);
}

TEST(FaultCampaignTest, CleanOnEveryPerfectDoacrossLoop) {
  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops) {
      if (analyze_dependences(loop).is_doall()) continue;
      PipelineOptions options;
      options.machine = machines::paper(4, 2);
      options.iterations = 100;
      LoopReport report;
      try {
        report = run_pipeline(loop, options);
      } catch (const StatusError&) {
        continue;  // irregular carried deps: nothing to schedule
      }
      ASSERT_TRUE(report.dfg.has_value()) << loop.name;
      EXPECT_TRUE(report.validation_violations.empty()) << loop.name;
      SimOptions sim_options;
      sim_options.iterations = options.resolved_iterations(report.loop);
      std::vector<Dependence> carried;
      for (const auto& dep : report.deps.deps)
        if (dep.loop_carried()) carried.push_back(dep);
      const FaultCampaign campaign = run_fault_campaign(
          report.tac, *report.dfg, report.schedule, options.machine,
          sim_options, carried, FaultPlan::adversarial(3), 5);
      EXPECT_TRUE(campaign.clean())
          << bench.name << "/" << loop.name << ": "
          << (campaign.sample.empty() ? "" : campaign.sample.front());
    }
  }
}

class MutationDetection
    : public ::testing::TestWithParam<ScheduleMutation> {};

TEST_P(MutationDetection, ValidatorOrCampaignCatchesEveryMutation) {
  Compiled c = compile(kFig1);
  ASSERT_TRUE(apply_schedule_mutation(GetParam(), c.report.tac,
                                      c.report.dfg, c.report.schedule,
                                      c.options.machine));
  c.report.sim = simulate(c.report.tac, *c.report.dfg, c.report.schedule,
                          c.options.machine, c.sim_options);
  const std::vector<std::string> violations =
      validate_pipeline(c.report, c.options);
  const FaultCampaign campaign = run_fault_campaign(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, FaultPlan::adversarial(11), 25);
  EXPECT_TRUE(!violations.empty() || campaign.detected())
      << mutation_name(GetParam()) << " slipped through both layers";
}

TEST_P(MutationDetection, HoistAndSinkAreCaughtDynamically) {
  // Timing-level detection (independent of the static validator): the
  // hoisted send / sunk wait breaks ordering that adversarial timing
  // exploits. kDropArc is excluded: its forced exploit is designed to
  // be caught statically by sync condition 2.
  if (GetParam() == ScheduleMutation::kDropArc) GTEST_SKIP();
  Compiled c = compile(kFig1);
  ASSERT_TRUE(apply_schedule_mutation(GetParam(), c.report.tac,
                                      c.report.dfg, c.report.schedule,
                                      c.options.machine));
  const FaultCampaign campaign = run_fault_campaign(
      c.report.tac, *c.report.dfg, c.report.schedule, c.options.machine,
      c.sim_options, c.carried, FaultPlan::adversarial(11), 25);
  EXPECT_TRUE(campaign.detected()) << mutation_name(GetParam());
  EXPECT_FALSE(campaign.sample.empty());
}

INSTANTIATE_TEST_SUITE_P(AllMutations, MutationDetection,
                         ::testing::Values(ScheduleMutation::kHoistSend,
                                           ScheduleMutation::kSinkWait,
                                           ScheduleMutation::kDropArc),
                         [](const auto& info) {
                           std::string name = mutation_name(info.param);
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

TEST(MutationApi, ParseRoundTripsAndRejectsJunk) {
  for (const ScheduleMutation m :
       {ScheduleMutation::kHoistSend, ScheduleMutation::kSinkWait,
        ScheduleMutation::kDropArc}) {
    const auto parsed = parse_mutation(mutation_name(m));
    ASSERT_TRUE(parsed.has_value()) << mutation_name(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_mutation("melt-cpu").has_value());
  EXPECT_FALSE(parse_mutation("").has_value());
}

TEST(MutationApi, NoSyncMeansNothingToBreak) {
  // A Doall-shaped loop compiled directly has no Send/Wait to mutate.
  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 10;
  LoopReport report = run_pipeline(
      parse_single_loop_or_throw("doacross I = 1, 10\n  A[I] = B[I] + 1\nend"),
      options);
  ASSERT_TRUE(report.dfg.has_value());
  EXPECT_FALSE(apply_schedule_mutation(ScheduleMutation::kHoistSend,
                                       report.tac, report.dfg,
                                       report.schedule, options.machine));
}

}  // namespace
}  // namespace sbmp
