// Pipeline-facade behaviour: option plumbing, the never-degrade
// guarantee, program aggregation and error paths, and the ResultCache
// key/memoization contract the serve layer's persistent cache builds on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp {
namespace {

constexpr const char* kChainLoop = R"(
doacross I = 1, 100
  A1[I] = A4[I-3] + 7
  A2[I] = X3[I+1] + c3
  A3[I] = A3[I-3] - X2[I-1]
  A4[I] = (A1[I+3] / X4[I+3] - X1[I+3]) + A4[I-1]
end
)";

TEST(Pipeline, NeverDegradeGuaranteeHolds) {
  // This loop (found by the seeded sweep) is one where the phased
  // placement loses to list scheduling; the fallback must engage.
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  PipelineOptions options;
  options.machine = machines::paper(4, 1);

  PipelineOptions no_guard = options;
  no_guard.never_degrade = false;
  const LoopReport raw = run_pipeline(loop, no_guard);

  const SchedulerComparison cmp = compare_schedulers(loop, options);
  EXPECT_GT(raw.parallel_time(), cmp.baseline.parallel_time())
      << "precondition: the heuristic alone regresses on this loop";
  EXPECT_LE(cmp.improved.parallel_time(), cmp.baseline.parallel_time());
  EXPECT_TRUE(cmp.improved.used_list_fallback);
}

TEST(Pipeline, FallbackNotUsedWhenHeuristicWins) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  B[I] = A[I-1] * 2
  C[I] = X[I] + X[I+1]
  A[I] = C[I] + X[I-2]
end
)");
  PipelineOptions options;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_FALSE(report.used_list_fallback);
}

TEST(Pipeline, SchedulerOptionPlumbing) {
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  PipelineOptions options;
  options.never_degrade = false;
  options.sync_aware.contiguous_paths = false;
  options.sync_aware.convert_lfd = false;
  const LoopReport degraded = run_pipeline(loop, options);
  options.sync_aware.convert_lfd = true;
  options.sync_aware.contiguous_paths = true;
  const LoopReport full = run_pipeline(loop, options);
  // With both levers off, the schedule differs (the options reached the
  // scheduler through the pipeline).
  EXPECT_NE(degraded.schedule.groups, full.schedule.groups);
}

TEST(Pipeline, ProcessorsOptionReachesSimulator) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 50
  A[I] = B[I] * 2
end
)");
  PipelineOptions options;
  options.iterations = 50;
  options.processors = 1;
  const LoopReport serial = run_pipeline(loop, options);
  options.processors = 0;
  const LoopReport parallel = run_pipeline(loop, options);
  EXPECT_GT(serial.parallel_time(), 10 * parallel.parallel_time());
}

TEST(Pipeline, DoallLoopsReported) {
  const ProgramReport report = run_pipeline_source(R"(
do I = 1, 10
  A[I] = B[I]
end
doacross J = 1, 10
  C[J] = C[J-1] + 1
end
)",
                                                   PipelineOptions{});
  EXPECT_EQ(report.doall_loops, 1);
  EXPECT_EQ(report.doacross_loops, 1);
  EXPECT_EQ(report.total_parallel_time, report.loops[1].parallel_time());
}

TEST(Pipeline, SourceErrorsThrow) {
  EXPECT_THROW((void)run_pipeline_source("do I = \nend", PipelineOptions{}),
               SbmpError);
}

TEST(Pipeline, ImprovementSurfacesFailedBaseline) {
  // A zero/negative baseline parallel time means an upstream failure
  // (nothing simulated), not "no improvement": it must never read as
  // 0.0. The optional form is empty and the double form is NaN, so the
  // failure poisons any statistic derived from it.
  SchedulerComparison cmp;
  EXPECT_FALSE(cmp.improvement_opt().has_value());
#ifdef NDEBUG
  EXPECT_TRUE(std::isnan(cmp.improvement()));
#endif
}

TEST(Pipeline, ImprovementDefinedForRealBaseline) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  const SchedulerComparison cmp = compare_schedulers(loop, PipelineOptions{});
  ASSERT_TRUE(cmp.improvement_opt().has_value());
  EXPECT_EQ(*cmp.improvement_opt(), cmp.improvement());
  EXPECT_FALSE(std::isnan(cmp.improvement()));
}

TEST(Pipeline, ResolvedIterationsPinsZeroMeansTripCount) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 20
  A[I] = B[I]
end
)");
  PipelineOptions options;
  options.iterations = 0;
  EXPECT_EQ(options.resolved_iterations(loop), 20);
  options.iterations = 7;
  EXPECT_EQ(options.resolved_iterations(loop), 7);
}

TEST(Pipeline, ReportCarriesAllStageArtifacts) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 20
  A[I] = A[I-2] + B[I]
end
)");
  PipelineOptions options;
  options.iterations = 0;  // use trip count
  options.check_ordering = true;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_FALSE(report.doall);
  EXPECT_EQ(report.deps.count_lbd(), 1);
  EXPECT_EQ(report.synced.waits.size(), 1u);
  EXPECT_GT(report.tac.size(), 0);
  ASSERT_TRUE(report.dfg.has_value());
  EXPECT_EQ(report.dfg->pairs().size(), 1u);
  EXPECT_GT(report.schedule.length(), 0);
  EXPECT_TRUE(report.valid());
  // iterations=0 used the 20-iteration trip count: time is far below a
  // 100-iteration run.
  EXPECT_LT(report.parallel_time(), 200);
}

TEST(ResultCacheTest, HitAndMissCountersTrackLookups) {
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions options;
  ResultCache cache;
  const LoopReport first = run_pipeline_cached(loop, options, &cache);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);
  const LoopReport second = run_pipeline_cached(loop, options, &cache);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(first.parallel_time(), second.parallel_time());
  EXPECT_EQ(first.schedule.groups, second.schedule.groups);
}

TEST(ResultCacheTest, KeyCoversEveryOutputAffectingOption) {
  // Any two option sets that can produce different reports must key
  // differently; a collision here silently serves the wrong schedule.
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions base;
  const std::string base_key = ResultCache::key(loop, base);
  EXPECT_EQ(ResultCache::key(loop, base), base_key);  // deterministic

  const auto changes_key = [&](auto mutate) {
    PipelineOptions changed = base;
    mutate(changed);
    return ResultCache::key(loop, changed) != base_key;
  };
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.machine = machines::paper(2, 1); }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.machine = machines::paper(4, 2); }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.machine.sync_consumes_slot = false; }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.machine.signal_latency = 9; }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.scheduler = SchedulerKind::kList; }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.sync_aware.contiguous_paths = false; }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.sync_aware.convert_lfd = false; }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.sync.eliminate_redundant = true; }));
  EXPECT_TRUE(changes_key([](PipelineOptions& o) { o.iterations = 7; }));
  EXPECT_TRUE(changes_key([](PipelineOptions& o) { o.processors = 3; }));
  EXPECT_TRUE(changes_key([](PipelineOptions& o) { o.check_ordering = true; }));
  EXPECT_TRUE(changes_key(
      [](PipelineOptions& o) { o.eliminate_redundant_waits = true; }));
  EXPECT_TRUE(changes_key([](PipelineOptions& o) { o.never_degrade = false; }));
  EXPECT_TRUE(changes_key([](PipelineOptions& o) { o.validate = false; }));
  EXPECT_TRUE(
      changes_key([](PipelineOptions& o) { o.validate_tolerance = 5; }));

  // The storage knobs cannot change the report, so they must NOT key:
  // otherwise identical artifacts fragment into per-directory key
  // spaces (memory and disk caches would disagree about identity).
  EXPECT_FALSE(changes_key([](PipelineOptions& o) { o.cache_dir = "/d"; }));
  EXPECT_FALSE(changes_key([](PipelineOptions& o) { o.cache_max_bytes = 1; }));

  // The loop text is part of the key too.
  const Loop other = parse_single_loop_or_throw(
      "doacross I = 1, 100\n  A[I] = A[I-1] + 1\nend\n");
  EXPECT_NE(ResultCache::key(other, base), base_key);
}

TEST(ResultCacheTest, KeyCoversEveryMachineDescField) {
  // The declarative MachineDesc added fields the legacy key never
  // encoded (per-opcode latencies, buffer depth); every one of them can
  // change the schedule, so every one must perturb the key.
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions base;
  const std::string base_key = ResultCache::key(loop, base);
  const auto changes_key = [&](auto mutate) {
    PipelineOptions changed = base;
    mutate(changed.machine);
    return ResultCache::key(loop, changed) != base_key;
  };
  EXPECT_TRUE(changes_key([](MachineDesc& m) { m.issue_width = 7; }));
  for (int f = 0; f < kNumFuClasses; ++f) {
    EXPECT_TRUE(changes_key([f](MachineDesc& m) { m.fu_counts[f] = 5; }))
        << "fu class " << f;
  }
  for (int op = 0; op < kNumOpcodes; ++op) {
    EXPECT_TRUE(changes_key([op](MachineDesc& m) { m.latencies[op] = 9; }))
        << "opcode " << opcode_name(static_cast<Opcode>(op));
  }
  EXPECT_TRUE(
      changes_key([](MachineDesc& m) { m.sync_consumes_slot = false; }));
  EXPECT_TRUE(changes_key([](MachineDesc& m) { m.signal_latency = 4; }));
  EXPECT_TRUE(changes_key([](MachineDesc& m) { m.signal_buffer_depth = 2; }));

  // Byte-compat: legacy-expressible machines (the default among them)
  // key exactly as before the redesign — no canonical-desc extension —
  // so warm caches survive the upgrade.
  EXPECT_EQ(base_key.find("m{"), std::string::npos);
  PipelineOptions buffered = base;
  buffered.machine.signal_buffer_depth = 2;
  EXPECT_NE(ResultCache::key(loop, buffered).find("m{"), std::string::npos);
}

TEST(ResultCacheTest, InsertRaceKeepsTheFirstEntry) {
  // Two threads computing the same key race insert; both are the same
  // pure computation, so the loser adopts the winner's report and the
  // table never holds two entries for one key.
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions options;
  ResultCache cache;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> times(4, -1);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      times[static_cast<std::size_t>(t)] =
          run_pipeline_cached(loop, options, &cache).parallel_time();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), 1u);
  for (int t = 1; t < 4; ++t) EXPECT_EQ(times[0], times[t]);
  EXPECT_EQ(cache.hits() + cache.misses(), 4);
}

TEST(ResultCacheLayout, ShardsAreCacheLineAligned) {
  // Adjacent shards hold independently-locked mutexes; without
  // cache-line alignment two workers probing *different* shards bounce
  // one line between cores (false sharing).
  EXPECT_GE(ResultCache::shard_alignment(), 64u);
  EXPECT_EQ(ResultCache::shard_alignment() % 64u, 0u);
}

TEST(ResultCacheLayout, RacingInsertsUnderChunkingKeepFirstWinner) {
  // 4096 racing inserts of one key through the chunked parallel_for
  // (many chunks, shared pool): exactly one entry may land, and every
  // racer — whichever chunk it ran in — must be handed that winner.
  ResultCache cache;
  constexpr int kInserts = 4096;
  std::vector<std::shared_ptr<const LoopReport>> returned(kInserts);
  parallel_for(8, 0, kInserts, [&](std::int64_t i) {
    LoopReport report;
    report.name = "insert-" + std::to_string(i);
    returned[static_cast<std::size_t>(i)] =
        cache.insert("hot-key", std::move(report));
  });
  ASSERT_EQ(cache.size(), 1u);
  const auto winner = cache.lookup("hot-key");
  ASSERT_NE(winner, nullptr);
  for (const auto& entry : returned) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), winner.get());
  }
}

TEST(ResultCacheL1, RepeatLookupsServeFromTheThreadLocalFront) {
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions options;
  ResultCache cache;
  const std::string key = ResultCache::key(loop, options);
  (void)run_pipeline_cached(loop, options, &cache);  // miss; write-through
  const auto first = cache.lookup(key);
  ASSERT_NE(first, nullptr);
  const std::int64_t hits_before = cache.hits();
  const std::int64_t l1_before = cache.l1_hits();
  for (int i = 0; i < 10; ++i) {
    const auto again = cache.lookup(key);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again.get(), first.get());  // the L1 caches the pointer
  }
  // Same thread, same key, nothing else touching the L1 in between:
  // every repeat must be an L1 hit — and L1 hits still count as hits,
  // so the public hit/miss totals are identical to the shard-only path.
  EXPECT_EQ(cache.l1_hits(), l1_before + 10);
  EXPECT_EQ(cache.hits(), hits_before + 10);
}

TEST(ResultCacheL1, GenerationStampIsolatesLiveInstances) {
  // A key hot in one cache's thread-local L1 must never satisfy a
  // lookup against a different cache instance on the same thread.
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions options;
  const std::string key = ResultCache::key(loop, options);
  ResultCache a;
  ResultCache b;
  EXPECT_NE(a.generation(), b.generation());
  (void)run_pipeline_cached(loop, options, &a);
  ASSERT_NE(a.lookup(key), nullptr);  // now hot in this thread's L1
  EXPECT_EQ(b.lookup(key), nullptr);
  EXPECT_EQ(b.hits(), 0);
  EXPECT_EQ(b.l1_hits(), 0);
}

TEST(ResultCacheL1, DeadInstanceEntriesNeverLeakIntoANewCache) {
  // Fresh instances may reuse a destroyed cache's heap address; the
  // process-unique generation stamp must still keep the old thread-local
  // L1 entries from matching (a stale shared_ptr here would resurrect a
  // freed report).
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions options;
  const std::string key = ResultCache::key(loop, options);
  for (int round = 0; round < 4; ++round) {
    ResultCache cache;
    EXPECT_EQ(cache.lookup(key), nullptr) << "round " << round;
    EXPECT_EQ(cache.l1_hits(), 0) << "round " << round;
    (void)run_pipeline_cached(loop, options, &cache);
    ASSERT_NE(cache.lookup(key), nullptr) << "round " << round;
  }
}

TEST(ResultCacheL1, RacingLookupsAcrossThreadsAgreeOnTheShardWinner) {
  // 8 workers hammering one hot key: whatever mix of L1 and shard hits
  // serves them, every thread must see the single shard-resident entry
  // (the L1 is a pure accelerator, never an alternate source of truth).
  const Loop loop = parse_single_loop_or_throw(kChainLoop);
  const PipelineOptions options;
  ResultCache cache;
  const std::string key = ResultCache::key(loop, options);
  (void)run_pipeline_cached(loop, options, &cache);
  const auto winner = cache.lookup(key);
  ASSERT_NE(winner, nullptr);
  parallel_for(8, 0, 512, [&](std::int64_t) {
    const auto got = cache.lookup(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got.get(), winner.get());
  });
  EXPECT_EQ(cache.size(), 1u);
  // Each participating thread misses its L1 once then hits it; with 512
  // lookups over at most 8 threads the L1 serves the overwhelming bulk.
  EXPECT_GT(cache.l1_hits(), 0);
}

}  // namespace
}  // namespace sbmp
