#include <gtest/gtest.h>

#include "sbmp/ir/expr.h"
#include "sbmp/ir/loop.h"

namespace sbmp {
namespace {

TEST(AffineIndex, Eval) {
  const AffineIndex ix{2, -3};
  EXPECT_EQ(ix.eval(0), -3);
  EXPECT_EQ(ix.eval(5), 7);
}

TEST(AffineIndex, ToString) {
  EXPECT_EQ((AffineIndex{1, 0}).to_string("I"), "I");
  EXPECT_EQ((AffineIndex{1, -2}).to_string("I"), "I-2");
  EXPECT_EQ((AffineIndex{1, 3}).to_string("I"), "I+3");
  EXPECT_EQ((AffineIndex{2, 1}).to_string("I"), "2*I+1");
  EXPECT_EQ((AffineIndex{0, 7}).to_string("I"), "7");
}

TEST(Expr, BuildersAndPrinting) {
  const Expr e = make_bin(
      BinOp::kAdd, make_ref("A", -2),
      make_bin(BinOp::kMul, make_scalar("c"), make_const(4)));
  EXPECT_EQ(expr_to_string(e, "I"), "(A[I-2]+(c*4))");
}

TEST(Expr, DeepCopyOnCopyConstruction) {
  Expr original = make_bin(BinOp::kSub, make_ref("A", 0), make_const(1));
  Expr copy = original;
  // Mutate the copy's left subtree; the original must be unaffected.
  auto& bin = std::get<BinaryExpr>(copy);
  *bin.lhs = make_ref("B", 5);
  EXPECT_EQ(expr_to_string(original, "I"), "(A[I]-1)");
  EXPECT_EQ(expr_to_string(copy, "I"), "(B[I+5]-1)");
}

TEST(Expr, EqualityIsStructural) {
  const Expr a = make_bin(BinOp::kAdd, make_ref("A", 1), make_const(2));
  const Expr b = make_bin(BinOp::kAdd, make_ref("A", 1), make_const(2));
  const Expr c = make_bin(BinOp::kAdd, make_ref("A", 1), make_const(3));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Expr, CollectArrayRefsLeftToRight) {
  const Expr e = make_bin(BinOp::kAdd, make_ref("A", -1),
                          make_bin(BinOp::kMul, make_ref("B", 2),
                                   make_ref("A", 0)));
  std::vector<ArrayRef> refs;
  collect_array_refs(e, refs);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].array, "A");
  EXPECT_EQ(refs[0].index.offset, -1);
  EXPECT_EQ(refs[1].array, "B");
  EXPECT_EQ(refs[2].index.offset, 0);
}

TEST(Expr, CollectScalarRefs) {
  const Expr e = make_bin(BinOp::kDiv, make_scalar("x"), make_scalar("y"));
  std::vector<ScalarRef> refs;
  collect_scalar_refs(e, refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].name, "x");
  EXPECT_EQ(refs[1].name, "y");
}

TEST(Expr, BinopSymbols) {
  EXPECT_STREQ(binop_symbol(BinOp::kAdd), "+");
  EXPECT_STREQ(binop_symbol(BinOp::kSub), "-");
  EXPECT_STREQ(binop_symbol(BinOp::kMul), "*");
  EXPECT_STREQ(binop_symbol(BinOp::kDiv), "/");
  EXPECT_STREQ(binop_symbol(BinOp::kShl), "<<");
}

TEST(Loop, TripCount) {
  Loop loop;
  loop.lower = 1;
  loop.upper = 100;
  EXPECT_EQ(loop.trip_count(), 100);
  loop.upper = 0;
  EXPECT_EQ(loop.trip_count(), 0);
}

TEST(Loop, ArrayTypeDefaultsToReal) {
  Loop loop;
  loop.array_types["K"] = ElemType::kInt;
  EXPECT_EQ(loop.array_type("K"), ElemType::kInt);
  EXPECT_EQ(loop.array_type("A"), ElemType::kReal);
}

TEST(Loop, StatementLabel) {
  Statement s;
  s.id = 3;
  EXPECT_EQ(s.label(), "S3");
}

TEST(Loop, ToStringEmitsDeclarationsAndBody) {
  Loop loop;
  loop.iter_var = "I";
  loop.lower = 1;
  loop.upper = 10;
  loop.declared_doacross = true;
  loop.array_types["K"] = ElemType::kInt;
  Statement s;
  s.id = 1;
  s.lhs = ArrayRef{"K", {1, 0}};
  s.rhs = make_bin(BinOp::kAdd, make_ref("K", -1), make_const(1));
  loop.body.push_back(std::move(s));
  const std::string text = loop.to_string();
  EXPECT_NE(text.find("doacross I = 1, 10"), std::string::npos);
  EXPECT_NE(text.find("int K"), std::string::npos);
  EXPECT_NE(text.find("K[I] = (K[I-1]+1)"), std::string::npos);
}

}  // namespace
}  // namespace sbmp
