#include <gtest/gtest.h>

#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/suite.h"

namespace sbmp {
namespace {

TEST(Suite, HasTheFivePaperBenchmarks) {
  const auto& suite = perfect_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "FLQ52");
  EXPECT_EQ(suite[1].name, "QCD");
  EXPECT_EQ(suite[2].name, "MDG");
  EXPECT_EQ(suite[3].name, "TRACK");
  EXPECT_EQ(suite[4].name, "ADM");
}

TEST(Suite, AllSourcesParse) {
  for (const auto& bench : perfect_suite()) {
    EXPECT_NO_THROW({
      const Program program = bench.program();
      EXPECT_FALSE(program.loops.empty()) << bench.name;
    }) << bench.name;
  }
}

TEST(Suite, FindBenchmark) {
  EXPECT_EQ(find_benchmark("QCD").name, "QCD");
  EXPECT_THROW((void)find_benchmark("NOPE"), SbmpError);
}

TEST(Suite, AllLbdBenchmarksMatchTable1) {
  // The paper's Table 1: FLQ52, QCD and TRACK contain only LBDs.
  for (const char* name : {"FLQ52", "QCD", "TRACK"}) {
    const BenchmarkStats stats = compute_stats(find_benchmark(name));
    EXPECT_EQ(stats.lfd, 0) << name;
    EXPECT_GT(stats.lbd, 0) << name;
  }
}

TEST(Suite, MixedBenchmarksHaveBothKinds) {
  for (const char* name : {"MDG", "ADM"}) {
    const BenchmarkStats stats = compute_stats(find_benchmark(name));
    EXPECT_GT(stats.lfd, 0) << name;
    EXPECT_GT(stats.lbd, 0) << name;
  }
}

TEST(Suite, AdmIsTheLargest) {
  int adm_lines = 0;
  int max_other = 0;
  for (const auto& bench : perfect_suite()) {
    const BenchmarkStats stats = compute_stats(bench);
    if (bench.name == "ADM") {
      adm_lines = stats.tac_lines;
    } else {
      max_other = std::max(max_other, stats.tac_lines);
    }
  }
  EXPECT_GT(adm_lines, max_other);
}

TEST(Suite, EveryLoopSynchronizable) {
  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops) {
      EXPECT_TRUE(analyze_dependences(loop).is_synchronizable())
          << bench.name << "/" << loop.name;
    }
  }
}

TEST(Suite, DoallLoopsPresent) {
  for (const char* name : {"FLQ52", "MDG", "TRACK", "ADM"}) {
    EXPECT_GT(compute_stats(find_benchmark(name)).doall_loops, 0) << name;
  }
}

TEST(Suite, StatsAreConsistent) {
  for (const auto& bench : perfect_suite()) {
    const BenchmarkStats stats = compute_stats(bench);
    EXPECT_GT(stats.source_lines, 0);
    EXPECT_GT(stats.total_loops, 0);
    EXPECT_LE(stats.doall_loops, stats.total_loops);
    EXPECT_GT(stats.tac_lines, 0);
  }
}

TEST(Suite, LoopsHaveUniqueNames) {
  for (const auto& bench : perfect_suite()) {
    std::set<std::string> names;
    for (const auto& loop : bench.program().loops) {
      EXPECT_FALSE(loop.name.empty()) << bench.name;
      EXPECT_TRUE(names.insert(loop.name).second)
          << bench.name << "/" << loop.name;
    }
  }
}

TEST(Suite, Deterministic) {
  const BenchmarkStats a = compute_stats(find_benchmark("ADM"));
  const BenchmarkStats b = compute_stats(find_benchmark("ADM"));
  EXPECT_EQ(a.tac_lines, b.tac_lines);
  EXPECT_EQ(a.lfd, b.lfd);
  EXPECT_EQ(a.lbd, b.lbd);
}

TEST(Suite, CarriedDepsAreAlmostAllFlow) {
  // The paper: "almost all LBDs are flow dependences".
  int flow = 0;
  int other = 0;
  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops) {
      const DepAnalysis deps = analyze_dependences(loop);
      flow += deps.count_carried_of(DepKind::kFlow);
      other += deps.count_carried_of(DepKind::kAnti) +
               deps.count_carried_of(DepKind::kOutput);
    }
  }
  EXPECT_GT(flow, 10 * other);
}

TEST(Suite, PipelineValidOnEveryLoopAllConfigs) {
  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops) {
      for (const int width : {2, 4}) {
        for (const int fus : {1, 2}) {
          for (const auto kind :
               {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
            PipelineOptions options;
            options.machine = machines::paper(width, fus);
            options.scheduler = kind;
            options.iterations = 100;
            options.check_ordering = true;
            const LoopReport report = run_pipeline(loop, options);
            EXPECT_TRUE(report.valid())
                << bench.name << "/" << loop.name << " "
                << options.machine.label() << " " << scheduler_name(kind);
          }
        }
      }
    }
  }
}

TEST(Suite, SyncAwareImprovesEveryBenchmark) {
  // Aggregate improvement must be positive for every benchmark at the
  // paper's 4-issue single-FU configuration.
  for (const auto& bench : perfect_suite()) {
    PipelineOptions options;
    options.machine = machines::paper(4, 1);
    options.iterations = 100;
    std::int64_t list_total = 0;
    std::int64_t ours_total = 0;
    for (const auto& loop : bench.program().loops) {
      const DepAnalysis deps = analyze_dependences(loop);
      if (deps.is_doall()) continue;
      const SchedulerComparison cmp = compare_schedulers(loop, options);
      list_total += cmp.baseline.parallel_time();
      ours_total += cmp.improved.parallel_time();
    }
    EXPECT_LT(ours_total, list_total) << bench.name;
  }
}

}  // namespace
}  // namespace sbmp
