// Differential suite for the never-degrade guard's cost shortcuts.
//
// The guard's fast path (the analytic pre-filters, the slots-only list
// build, and the cutoff-bounded fallback simulation) is claimed to be
// *exact*: the compiled artifact — winning schedule, simulated times,
// and the used_list_fallback decision — must be byte-identical to the
// old full-schedule + full-simulate path, which stays reachable through
// PipelineOptions::never_degrade_prefilter = false (sbmpc
// --no-never-degrade-prefilter). These tests force both paths over the
// Perfect corpus and a seed-scaled random sweep and require equality,
// plus pin the soundness properties the shortcuts rest on: both analytic
// lower bounds never exceed the simulated time, and schedule_list_slots
// reproduces schedule_list's placement without materializing it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/generator.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sim/analytic.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/support/rng.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

/// Seed count, overridable via SBMP_FUZZ_SEEDS like the fuzz suites
/// (clamped to [1, 100000]).
int fuzz_seed_count() {
  const char* env = std::getenv("SBMP_FUZZ_SEEDS");
  if (env == nullptr) return 25;
  const int n = std::atoi(env);
  if (n < 1) return 25;
  return n > 100000 ? 100000 : n;
}

/// Asserts the artifact-level equality the prefilter contract promises.
/// The observational skip flags (fallback_prefiltered,
/// fallback_sim_skipped) are deliberately NOT compared — they describe
/// which path ran, which is exactly what differs.
void expect_identical(const LoopReport& a, const LoopReport& b,
                      const std::string& what) {
  EXPECT_EQ(a.used_list_fallback, b.used_list_fallback) << what;
  EXPECT_EQ(a.sim.parallel_time, b.sim.parallel_time) << what;
  EXPECT_EQ(a.sim.iteration_time, b.sim.iteration_time) << what;
  EXPECT_EQ(a.sim.stall_cycles, b.sim.stall_cycles) << what;
  EXPECT_EQ(a.sim.schedule_length, b.sim.schedule_length) << what;
  EXPECT_EQ(a.schedule.groups, b.schedule.groups) << what;
  EXPECT_EQ(a.schedule.slot_of, b.schedule.slot_of) << what;
  EXPECT_EQ(a.waits_eliminated, b.waits_eliminated) << what;
  EXPECT_EQ(a.status.ok(), b.status.ok()) << what;
}

TEST(NeverDegradeDifferential, PerfectCorpusIsIdenticalAtAnyJobsCount) {
  for (const auto& bench : perfect_suite()) {
    const Program program = bench.program();
    std::vector<CompileRequest> fast;
    std::vector<CompileRequest> slow;
    for (const Loop& loop : program.loops) {
      PipelineOptions options;  // defaults: guard + prefilter on
      fast.push_back({loop, options});
      options.never_degrade_prefilter = false;
      slow.push_back({loop, options});
    }
    CompileBatchOptions serial;
    serial.jobs = 1;
    CompileBatchOptions fanned;
    fanned.jobs = 8;
    const ProgramReport f1 = compile(fast, serial);
    const ProgramReport f8 = compile(fast, fanned);
    const ProgramReport s1 = compile(slow, serial);
    const ProgramReport s8 = compile(slow, fanned);
    ASSERT_EQ(f1.loops.size(), program.loops.size()) << bench.name;
    ASSERT_EQ(s1.loops.size(), program.loops.size()) << bench.name;
    for (std::size_t i = 0; i < f1.loops.size(); ++i) {
      const std::string what = bench.name + " loop " + std::to_string(i);
      expect_identical(f1.loops[i], s1.loops[i], what + " fast-vs-slow");
      expect_identical(f1.loops[i], f8.loops[i], what + " jobs1-vs-8");
      expect_identical(f1.loops[i], s8.loops[i], what + " fast1-vs-slow8");
    }
    EXPECT_EQ(f1.total_parallel_time, s1.total_parallel_time) << bench.name;
    EXPECT_EQ(f1.total_parallel_time, f8.total_parallel_time) << bench.name;
  }
}

TEST(NeverDegradeDifferential, PrefilterFlagActuallyControlsTheShortcuts) {
  // The A/B flag must force the old path for real: with it off, no loop
  // may report a skip; with it on (defaults), the corpus is expected to
  // take the shortcut on at least one DOACROSS loop (in practice almost
  // all of them — that is the optimization's whole payoff).
  int skipped = 0;
  for (const auto& bench : perfect_suite()) {
    for (const Loop& loop : bench.program().loops) {
      PipelineOptions fast;
      const LoopReport f = compile(CompileRequest{loop, fast}).report;
      if (f.fallback_prefiltered || f.fallback_sim_skipped) ++skipped;

      PipelineOptions slow;
      slow.never_degrade_prefilter = false;
      const LoopReport s = compile(CompileRequest{loop, slow}).report;
      EXPECT_FALSE(s.fallback_prefiltered) << bench.name;
      EXPECT_FALSE(s.fallback_sim_skipped) << bench.name;
    }
  }
  EXPECT_GT(skipped, 0);
}

TEST(NeverDegradeDifferential, RandomLoopsMatchUnderBothPathsAndOptions) {
  const int seeds = fuzz_seed_count();
  LoopGenConfig config;
  for (int seed = 0; seed < seeds; ++seed) {
    SplitMix64 rng(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ull +
                   0x2545f4914f6cdd1dull);
    const Loop loop = generate_random_loop(rng, config);
    // Both the plain pipeline and the redundancy-elimination variant
    // (which rewrites the TAC in place on the hot path) must stay exact.
    for (const bool eliminate : {false, true}) {
      PipelineOptions fast;
      fast.eliminate_redundant_waits = eliminate;
      PipelineOptions slow = fast;
      slow.never_degrade_prefilter = false;
      const CompileResult f = compile(CompileRequest{loop, fast});
      const CompileResult s = compile(CompileRequest{loop, slow});
      const std::string what = "seed " + std::to_string(seed) +
                               (eliminate ? " +elim" : "");
      EXPECT_EQ(f.ok(), s.ok()) << what;
      expect_identical(f.report, s.report, what);
    }
  }
}

TEST(AnalyticBounds, LowerBoundsNeverExceedTheSimulatedTime) {
  // Soundness of both shortcut predicates, on every scheduler: the
  // schedule-free bound under-approximates ALL schedules, and the
  // scheduled bound under-approximates the given schedule. An
  // over-approximation here would let the guard skip a fallback that
  // actually wins — silently degrading a compile.
  const int seeds = fuzz_seed_count();
  LoopGenConfig config;
  const MachineDesc machine = machines::paper(4, 1);
  const std::int64_t n = 100;
  for (int seed = 0; seed < seeds; ++seed) {
    SplitMix64 rng(0xda942042e4dd58b5ull ^
                   (static_cast<std::uint64_t>(seed) * 7919));
    const Loop loop = generate_random_loop(rng, config);
    const DepAnalysis deps = analyze_dependences(loop);
    if (!deps.is_synchronizable()) continue;
    const TacFunction tac = generate_tac(insert_synchronization(loop, deps));
    const Dfg dfg(tac, machine);
    const std::int64_t free_bound =
        schedule_free_lower_bound(tac, dfg, machine, n);
    for (const SchedulerKind kind :
         {SchedulerKind::kSyncAware, SchedulerKind::kList,
          SchedulerKind::kInOrder}) {
      const Schedule schedule = run_scheduler(kind, tac, dfg, machine, n);
      SimOptions options;
      options.iterations = n;
      const SimResult sim = simulate(tac, dfg, schedule, machine, options);
      EXPECT_LE(free_bound, sim.parallel_time)
          << "seed " << seed << " kind " << static_cast<int>(kind);
      EXPECT_LE(scheduled_lower_bound(tac, dfg, machine, schedule, n),
                sim.parallel_time)
          << "seed " << seed << " kind " << static_cast<int>(kind);
    }
  }
}

TEST(ListScheduleSlots, SlotsOnlyBuildMatchesTheMaterializedSchedule) {
  // The guard evaluates the list schedule's bound from the slots-only
  // build; any placement divergence from schedule_list would make the
  // bound answer a question about the wrong schedule.
  const int seeds = fuzz_seed_count();
  LoopGenConfig config;
  const MachineDesc machine = machines::paper(4, 1);
  std::vector<int> slot_of;
  for (int seed = 0; seed < seeds; ++seed) {
    SplitMix64 rng(0xbf58476d1ce4e5b9ull ^
                   (static_cast<std::uint64_t>(seed) * 104729));
    const Loop loop = generate_random_loop(rng, config);
    const DepAnalysis deps = analyze_dependences(loop);
    if (!deps.is_synchronizable()) continue;
    const TacFunction tac = generate_tac(insert_synchronization(loop, deps));
    const Dfg dfg(tac, machine);
    const Schedule full = schedule_list(tac, dfg, machine);
    const int length = schedule_list_slots(tac, dfg, machine, slot_of);
    EXPECT_EQ(length, full.length()) << "seed " << seed;
    EXPECT_EQ(slot_of, full.slot_of) << "seed " << seed;
    // And the bound agrees between the two representations.
    EXPECT_EQ(scheduled_lower_bound(tac, dfg, machine, slot_of, length, 100),
              scheduled_lower_bound(tac, dfg, machine, full, 100))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace sbmp
