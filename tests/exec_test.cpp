// Real execution backend (src/exec): the DOACROSS executor must produce
// memory byte-identical to the serial interpretation of the same loop at
// every thread count — the runtime analogue of the byte-identity
// contract the parallel compile engine pins. These tests carry the
// `exec` CTest label (run under TSan in CI: the SignalBoard and the
// ring-reuse gate are the concurrency machinery) and the `fuzz` label
// (the differential sweep scales with SBMP_FUZZ_SEEDS).
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/exec/executor.h"
#include "sbmp/exec/interp.h"
#include "sbmp/exec/sync.h"
#include "sbmp/obs/metrics.h"
#include "sbmp/obs/trace.h"
#include "sbmp/perfect/generator.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/support/rng.h"

namespace sbmp {
namespace {

constexpr const char* kPaperExample = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

constexpr const char* kStencil = R"(
doacross I = 1, 100
  U[I] = (U[I-1] + V[I]) * w1 + V[I+1] * w2
  R[I] = V[I-2] * w3 + V[I+2]
  Q[I] = R[I] + V[I] / w4
end
)";

LoopReport compile_one(const char* source) {
  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.iterations = 100;
  ProgramReport report = run_pipeline_source(source, options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.loops.size(), 1u);
  return std::move(report.loops.front());
}

int fuzz_seed_count() {
  const char* env = std::getenv("SBMP_FUZZ_SEEDS");
  if (env == nullptr) return 25;
  const int n = std::atoi(env);
  if (n < 1) return 25;
  return n > 100000 ? 100000 : n;
}

TEST(Executor, PaperExampleMatchesSerialReferenceAtEveryThreadCount) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  ASSERT_TRUE(executor.setup_status().ok())
      << executor.setup_status().to_string();
  ExecOptions options;
  options.iterations = 100;
  const ExecResult reference = executor.run_reference(options);
  ASSERT_TRUE(reference.ok()) << reference.status.to_string();
  for (const int threads : {1, 2, 4, 8}) {
    options.threads = threads;
    const ExecResult result = executor.run(options);
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    EXPECT_EQ(result.fingerprint, reference.fingerprint)
        << "threads=" << threads << ": "
        << ExecMemory::first_difference(result.memory, reference.memory);
    EXPECT_TRUE(LoopExecutor::verify(result, reference).ok());
    EXPECT_EQ(result.stats.iterations, 100);
    EXPECT_EQ(result.stats.threads, threads);
    // The paper example carries real synchronization: every iteration
    // sends and (once the source iteration exists) waits.
    EXPECT_GT(result.stats.sends, 0);
    EXPECT_GT(result.stats.waits, 0);
  }
}

TEST(Executor, StencilRecurrenceMatchesReference) {
  const LoopReport report = compile_one(kStencil);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 100;
  const ExecResult reference = executor.run_reference(options);
  ASSERT_TRUE(reference.ok());
  for (const int threads : {2, 8}) {
    options.threads = threads;
    const ExecResult result = executor.run(options);
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    EXPECT_EQ(result.fingerprint, reference.fingerprint)
        << ExecMemory::first_difference(result.memory, reference.memory);
  }
}

TEST(Executor, HandComputedSemantics) {
  // `I + I` is integer arithmetic converted to the real element type at
  // the store; `I / 2` pins truncating integer division. Both arrays
  // default to real, so the cells must hold exact small doubles.
  const LoopReport report = compile_one(R"(
doacross I = 1, 4
  A[I] = I + I
  B[I] = I / 2
end
)");
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 4;
  options.threads = 2;
  const ExecResult result = executor.run(options);
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  const ExecArray* a = nullptr;
  const ExecArray* b = nullptr;
  for (const auto& arr : result.memory.arrays) {
    if (arr.name == "A") a = &arr;
    if (arr.name == "B") b = &arr;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->first, 1);
  ASSERT_EQ(a->cells.size(), 4u);
  for (std::int64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(a->cells[static_cast<std::size_t>(i - 1)],
              exec_bits_of(static_cast<double>(2 * i)))
        << "A[" << i << "]";
    EXPECT_EQ(b->cells[static_cast<std::size_t>(i - 1)],
              exec_bits_of(static_cast<double>(i / 2)))
        << "B[" << i << "]";
  }
}

TEST(Executor, DeterministicAcrossRepeatedRuns) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 100;
  options.threads = 4;
  const ExecResult first = executor.run(options);
  const ExecResult second = executor.run(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.stats.sends, second.stats.sends);
  EXPECT_EQ(first.stats.waits, second.stats.waits);
}

TEST(Executor, SeedSelectsTheInitialState) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 50;
  const ExecResult a = executor.run(options);
  options.memory_seed ^= 0x1234567;
  const ExecResult b = executor.run(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.fingerprint, b.fingerprint);
  // Same seed again: bit-identical to the first run.
  options.memory_seed ^= 0x1234567;
  const ExecResult c = executor.run(options);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
}

TEST(Executor, ZeroIterationsYieldTheInitialMemory) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 0;
  const ExecResult result = executor.run(options);
  const ExecResult reference = executor.run_reference(options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result.stats.iterations, 0);
  EXPECT_EQ(result.fingerprint, reference.fingerprint);
}

TEST(Executor, ThreadCountAboveCeilingIsATypedRefusal) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.threads = LoopExecutor::kMaxThreads + 1;
  const ExecResult result = executor.run(options);
  EXPECT_EQ(result.status.code, StatusCode::kResource);
  EXPECT_EQ(exit_code(result.status.code), 10);
}

TEST(Executor, MemoryCapIsATypedRefusal) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 100;
  options.max_memory_bytes = 64;  // far below the ~6 arrays x 100 cells
  const ExecResult result = executor.run(options);
  EXPECT_EQ(result.status.code, StatusCode::kResource);
}

TEST(Executor, CorruptProbeIsCaughtByTheDifferentialCheck) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 100;
  const ExecResult reference = executor.run_reference(options);
  options.corrupt_result = true;
  options.threads = 2;
  const ExecResult corrupted = executor.run(options);
  ASSERT_TRUE(corrupted.ok());
  const Status verdict = LoopExecutor::verify(corrupted, reference);
  EXPECT_EQ(verdict.code, StatusCode::kExecDivergence);
  EXPECT_EQ(exit_code(verdict.code), 9);
  EXPECT_NE(verdict.message.find("diverges"), std::string::npos);
}

TEST(Executor, WindowMatchesTheSimulatorSizingFormula) {
  const LoopReport report = compile_one(kPaperExample);
  std::int64_t max_distance = 0;
  for (const auto& instr : report.tac.instrs)
    if (instr.op == Opcode::kWait)
      max_distance = std::max(max_distance, instr.sync_distance);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 100;
  options.threads = 4;
  const ExecResult result = executor.run(options);
  ASSERT_TRUE(result.ok());
  const std::int64_t floor = signal_window_rows(max_distance, 4);
  EXPECT_GE(result.stats.window, floor);
  // Power of two, so ring indexing is a mask.
  EXPECT_EQ(result.stats.window & (result.stats.window - 1), 0);
}

TEST(Executor, UncoveredScheduleIsASetupError) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor broken(report.loop, report.tac, Schedule{});
  EXPECT_EQ(broken.setup_status().code, StatusCode::kInternal);
  const ExecResult result = broken.run(ExecOptions{});
  EXPECT_EQ(result.status.code, StatusCode::kInternal);
}

TEST(Executor, MetricsAndTraceInstrumentation) {
  const LoopReport report = compile_one(kPaperExample);
  const LoopExecutor executor(report);
  MetricsRegistry metrics;
  Tracer tracer;
  ExecOptions options;
  options.iterations = 100;
  options.threads = 2;
  options.metrics = &metrics;
  options.tracer = &tracer;
  const ExecResult result = executor.run(options);
  ASSERT_TRUE(result.ok());
  const MetricsSnapshot snap = metrics.snapshot();
  const MetricSample* runs = snap.find("sbmp_exec_runs_total");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->value, 1);
  const MetricSample* iters = snap.find("sbmp_exec_iterations_total");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->value, 100);
  const MetricSample* sends = snap.find("sbmp_exec_sends_total");
  ASSERT_NE(sends, nullptr);
  EXPECT_EQ(sends->value, result.stats.sends);
  const MetricSample* hist = snap.find("sbmp_exec_run_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1);
  bool saw_run = false;
  bool saw_wave = false;
  for (const auto& event : tracer.events()) {
    if (std::string_view(event.name) == "exec_run") saw_run = true;
    if (std::string_view(event.name) == "exec_wave") saw_wave = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_wave);
  EXPECT_TRUE(validate_chrome_trace(tracer.to_chrome_json()).ok());
}

// The 8-thread stress case CI runs under TSan: long run, every worker
// hammering the SignalBoard, the gate and the shared memory. Any
// missing happens-before edge in the synchronizer shows up here as a
// TSan report or a fingerprint mismatch.
TEST(ExecutorStress, EightThreadsLongRunStaysByteIdentical) {
  const LoopReport report = compile_one(kStencil);
  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = 2000;
  const ExecResult reference = executor.run_reference(options);
  ASSERT_TRUE(reference.ok());
  options.threads = 8;
  for (int rep = 0; rep < 3; ++rep) {
    const ExecResult result = executor.run(options);
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    ASSERT_EQ(result.fingerprint, reference.fingerprint)
        << "rep " << rep << ": "
        << ExecMemory::first_difference(result.memory, reference.memory);
  }
}

TEST(SignalBoard, PostThenAwaitIsSatisfiedImmediately) {
  SignalBoard board(3, 8);
  board.post(2, 5);
  const auto outcome = board.await_signal(2, 5);
  EXPECT_TRUE(outcome.satisfied);
  EXPECT_FALSE(outcome.blocked);
}

TEST(SignalBoard, CrossThreadAwaitIsReleasedByPost) {
  SignalBoard board(1, 4);
  WaitHub::Outcome outcome;
  std::thread waiter([&] { outcome = board.await_signal(0, 7); });
  board.post(0, 7);
  waiter.join();
  EXPECT_TRUE(outcome.satisfied);
}

TEST(SignalBoard, HaltReleasesWaitersUnsatisfied) {
  SignalBoard board(1, 4);
  WaitHub::Outcome outcome{true, false};
  std::thread waiter([&] { outcome = board.await_signal(0, 3); });
  board.hub().halt();
  waiter.join();
  EXPECT_FALSE(outcome.satisfied);
}

TEST(SignalBoard, NewerSequenceValueSatisfiesOlderWaiter) {
  // Ring reuse: iteration 9 re-posts the slot of iteration 1 (rows 8).
  // The gate guarantees iteration 1 completed first, so a late waiter
  // for 1 must accept the newer value.
  SignalBoard board(1, 8);
  board.post(0, 9);
  const auto outcome = board.await_signal(0, 1);
  EXPECT_TRUE(outcome.satisfied);
}

TEST(ExecStatusCodes, AreTypedLikeTheServePath) {
  EXPECT_EQ(exit_code(StatusCode::kExecDivergence), 9);
  EXPECT_EQ(exit_code(StatusCode::kResource), 10);
  EXPECT_STREQ(status_code_name(StatusCode::kExecDivergence),
               "execution divergence");
  EXPECT_STREQ(status_code_name(StatusCode::kResource),
               "resource unavailable");
  EXPECT_EQ(static_cast<int>(kMaxStatusCode), 10);
}

// ---------------------------------------------------------------------
// Differential fuzz sweep (scales with SBMP_FUZZ_SEEDS): every loop the
// compile pipeline accepts — the same corpus the simulator fuzz runs on
// — must execute on live threads with results byte-identical to the
// serial interpretation, at several thread counts.

class ExecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExecFuzz, GeneratedLoopsExecuteByteIdenticalToReference) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 48271u);
  const Loop loop = generate_random_loop(rng, LoopGenConfig{});
  PipelineOptions options;
  options.machine = machines::paper(
      rng.range(0, 1) == 0 ? 2 : 4, static_cast<int>(rng.range(1, 2)));
  options.iterations = 50;
  LoopReport report;
  try {
    report = run_pipeline(loop, options);
  } catch (const StatusError&) {
    return;  // irregular carried dependence: a legal compile refusal
  }
  ASSERT_TRUE(report.status.ok()) << report.status.to_string();
  // The simulator modeled this schedule; the executor must run it.
  ASSERT_GT(report.sim.parallel_time, 0);
  const LoopExecutor executor(report);
  ASSERT_TRUE(executor.setup_status().ok())
      << executor.setup_status().to_string();
  ExecOptions exec_options;
  exec_options.iterations = 50;
  exec_options.memory_seed =
      0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(GetParam());
  const ExecResult reference = executor.run_reference(exec_options);
  ASSERT_TRUE(reference.ok()) << reference.status.to_string();
  for (const int threads : {1, 3, 8}) {
    exec_options.threads = threads;
    const ExecResult result = executor.run(exec_options);
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    ASSERT_EQ(result.fingerprint, reference.fingerprint)
        << "threads=" << threads << " loop:\n"
        << loop.to_string() << "\n"
        << ExecMemory::first_difference(result.memory, reference.memory);
    ASSERT_TRUE(LoopExecutor::verify(result, reference).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecFuzz,
                         ::testing::Range(1, 1 + fuzz_seed_count()));

}  // namespace
}  // namespace sbmp
