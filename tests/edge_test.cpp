// Edge-case sweeps across modules that the mainline suites touch only
// incidentally.
#include <gtest/gtest.h>

#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/generator.h"

namespace sbmp {
namespace {

TEST(GeneratorShapes, LfdBiasProducesForwardDeps) {
  LoopGenConfig config;
  config.lbd_percent = 0;  // carried reads target earlier statements
  config.carried_read_percent = 80;
  config.min_stmts = 4;
  config.max_stmts = 6;
  int lfd = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SplitMix64 rng(seed);
    const Loop loop = generate_random_loop(rng, config);
    lfd += analyze_dependences(loop).count_lfd();
  }
  EXPECT_GT(lfd, 10);
}

TEST(GeneratorShapes, AntiDepsWhenRequested) {
  LoopGenConfig config;
  config.anti_percent = 60;
  config.carried_read_percent = 0;
  int anti = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SplitMix64 rng(seed);
    const Loop loop = generate_random_loop(rng, config);
    anti += analyze_dependences(loop).count_carried_of(DepKind::kAnti);
  }
  EXPECT_GT(anti, 10);
}

TEST(GeneratorShapes, TinyTripClampsDistances) {
  LoopGenConfig config;
  config.trip = 2;
  config.max_distance = 5;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SplitMix64 rng(seed);
    const Loop loop = generate_random_loop(rng, config);
    for (const auto& dep : analyze_dependences(loop).deps) {
      if (dep.loop_carried()) {
        EXPECT_EQ(dep.distance, 1);
      }
    }
  }
}

TEST(DepEdge, SingleIterationLoopHasNoCarriedDeps) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 5, 5
  A[I] = A[I-1] + 1
end
)");
  EXPECT_TRUE(analyze_dependences(loop).is_doall());
}

TEST(DepEdge, NegativeBoundsLoopAnalyzed) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = -10, 10
  A[I] = A[I-3] + B[I]
end
)");
  const DepAnalysis deps = analyze_dependences(loop);
  EXPECT_EQ(deps.count_carried(), 1);
  EXPECT_EQ(deps.deps[0].distance, 3);
}

TEST(DepEdge, ReadOnlyArraysNeverConflict) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 10
  A[I] = B[I] + B[I-1] + B[I+1] + B[2*I]
end
)");
  const DepAnalysis deps = analyze_dependences(loop);
  for (const auto& dep : deps.deps) EXPECT_NE(dep.array(), "B");
}

TEST(PipelineEdge, SingleStatementSingleIteration) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 1
  A[I] = B[I] * 2
end
)");
  PipelineOptions options;
  options.iterations = 0;
  options.check_ordering = true;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_TRUE(report.valid());
  EXPECT_TRUE(report.doall);
  EXPECT_EQ(report.parallel_time(), report.sim.iteration_time);
}

TEST(PipelineEdge, LargeDistanceEqualsTrip) {
  // d == n-1: only one dependent pair (iteration n-1 on iteration 0).
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-99] + B[I]
end
)");
  PipelineOptions options;
  options.check_ordering = true;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_TRUE(report.valid());
  ASSERT_TRUE(report.dfg.has_value());
  ASSERT_EQ(report.dfg->pairs().size(), 1u);
  // One link at most: T <= span + l, way below a d=1 chain.
  EXPECT_LT(report.parallel_time(), 3 * report.sim.iteration_time);
}

TEST(PipelineEdge, WideMachineDegenerate) {
  // Width 8 with 4 units each: everything fits immediately; results
  // must stay valid and at least as fast as the 2-issue machine.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)");
  PipelineOptions wide;
  wide.machine = machines::paper(8, 4);
  wide.check_ordering = true;
  const LoopReport w = run_pipeline(loop, wide);
  PipelineOptions narrow;
  narrow.machine = machines::paper(2, 1);
  const LoopReport n = run_pipeline(loop, narrow);
  EXPECT_TRUE(w.valid());
  EXPECT_LE(w.parallel_time(), n.parallel_time());
}

TEST(AnalyticEdge, LowerBoundOfDoallIsIterationTime) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 50
  A[I] = B[I] + 1
end
)");
  PipelineOptions options;
  options.iterations = 50;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_EQ(analytic_lower_bound(*report.dfg, report.schedule, 50,
                                 report.sim.iteration_time),
            report.sim.iteration_time);
}

TEST(SyncEdge, ManyDistinctSignalsOneLoop) {
  // Five independent recurrences: five sends, five waits, five pairs.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A1[I] = A1[I-1] + X[I]
  A2[I] = A2[I-2] + X[I]
  A3[I] = A3[I-3] + X[I]
  A4[I] = A4[I-4] + X[I]
  A5[I] = A5[I-5] + X[I]
end
)");
  const SyncedLoop synced = insert_synchronization(loop);
  EXPECT_EQ(synced.waits.size(), 5u);
  EXPECT_EQ(synced.sends.size(), 5u);
  PipelineOptions options;
  options.check_ordering = true;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.dfg->pairs().size(), 5u);
}

}  // namespace
}  // namespace sbmp
