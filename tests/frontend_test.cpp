#include <gtest/gtest.h>

#include "sbmp/frontend/lexer.h"
#include "sbmp/frontend/parser.h"

namespace sbmp {
namespace {

// The paper's Fig 1(a) running example.
constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

TEST(Lexer, BasicTokens) {
  DiagEngine diags;
  const auto tokens = lex("A[I-2] = 4 * x", diags);
  EXPECT_TRUE(diags.ok());
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[0].text, "A");
  EXPECT_EQ(tokens[1].kind, TokKind::kLBracket);
  EXPECT_EQ(tokens[2].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[3].kind, TokKind::kMinus);
  EXPECT_EQ(tokens[4].kind, TokKind::kInt);
  EXPECT_EQ(tokens[4].value, 2);
}

TEST(Lexer, CommentsIgnored) {
  DiagEngine diags;
  const auto tokens = lex("x # comment here\n! another\ny", diags);
  EXPECT_TRUE(diags.ok());
  // x NL y NL EOF
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].kind, TokKind::kNewline);
  EXPECT_EQ(tokens[2].text, "y");
}

TEST(Lexer, CollapsesNewlines) {
  DiagEngine diags;
  const auto tokens = lex("a\n\n\nb", diags);
  ASSERT_EQ(tokens.size(), 5u);  // a NL b NL EOF
  EXPECT_EQ(tokens[1].kind, TokKind::kNewline);
  EXPECT_EQ(tokens[2].text, "b");
}

TEST(Lexer, ShiftOperator) {
  DiagEngine diags;
  const auto tokens = lex("a << 2", diags);
  EXPECT_TRUE(diags.ok());
  EXPECT_EQ(tokens[1].kind, TokKind::kShl);
}

TEST(Lexer, TracksLocations) {
  DiagEngine diags;
  const auto tokens = lex("a\n  b", diags);
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.column, 1u);
  EXPECT_EQ(tokens[2].loc.line, 2u);
  EXPECT_EQ(tokens[2].loc.column, 3u);
}

TEST(Lexer, ReportsBadCharacter) {
  DiagEngine diags;
  (void)lex("a @ b", diags);
  EXPECT_FALSE(diags.ok());
}

TEST(Parser, ParsesFig1Loop) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  EXPECT_TRUE(loop.declared_doacross);
  EXPECT_EQ(loop.iter_var, "I");
  EXPECT_EQ(loop.lower, 1);
  EXPECT_EQ(loop.upper, 100);
  EXPECT_EQ(loop.trip_count(), 100);
  ASSERT_EQ(loop.body.size(), 3u);
  EXPECT_EQ(loop.body[0].lhs.array, "B");
  EXPECT_EQ(loop.body[0].lhs.index, (AffineIndex{1, 0}));
  EXPECT_EQ(loop.body[1].lhs.array, "G");
  EXPECT_EQ(loop.body[1].lhs.index, (AffineIndex{1, -3}));
  EXPECT_EQ(loop.body[2].label(), "S3");
}

TEST(Parser, StatementRendering) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  EXPECT_EQ(statement_to_string(loop.body[0], loop.iter_var),
            "S1: B[I] = (A[I-2]+E[I+1])");
  EXPECT_EQ(statement_to_string(loop.body[2], loop.iter_var),
            "S3: A[I] = (B[I]+C[I+3])");
}

TEST(Parser, NamedLoopAndDeclarations) {
  const Loop loop = parse_single_loop_or_throw(R"(
loop demo
do I = 1, 10
  int K
  K[I] = K[I-1] + 1
end
)");
  EXPECT_EQ(loop.name, "demo");
  EXPECT_FALSE(loop.declared_doacross);
  EXPECT_EQ(loop.array_type("K"), ElemType::kInt);
  EXPECT_EQ(loop.array_type("unknown"), ElemType::kReal);
}

TEST(Parser, MultipleLoops) {
  const Program program = parse_program_or_throw(R"(
do I = 1, 5
  A[I] = B[I]
end
doacross J = 1, 7
  C[J] = C[J-1] * 2
end
)");
  ASSERT_EQ(program.loops.size(), 2u);
  EXPECT_EQ(program.loops[1].iter_var, "J");
  EXPECT_EQ(program.loops[1].trip_count(), 7);
}

TEST(Parser, ScaledSubscript) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 8
  A[2*I+1] = B[3*I-2]
end
)");
  EXPECT_EQ(loop.body[0].lhs.index, (AffineIndex{2, 1}));
  std::vector<ArrayRef> reads;
  collect_array_refs(loop.body[0].rhs, reads);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].index, (AffineIndex{3, -2}));
}

TEST(Parser, AffineFoldsArithmetic) {
  // (I+1)*2 - I  =>  coef 1, offset 2
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 8
  A[(I+1)*2-I] = B[I]
end
)");
  EXPECT_EQ(loop.body[0].lhs.index, (AffineIndex{1, 2}));
}

TEST(Parser, RejectsNonAffineSubscript) {
  DiagEngine diags;
  (void)parse_program("do I = 1, 4\n A[I*I] = B[I]\nend\n", diags);
  EXPECT_FALSE(diags.ok());
}

TEST(Parser, RejectsScalarLhs) {
  DiagEngine diags;
  (void)parse_program("do I = 1, 4\n s = B[I]\nend\n", diags);
  EXPECT_FALSE(diags.ok());
}

TEST(Parser, RejectsMissingEnd) {
  DiagEngine diags;
  (void)parse_program("do I = 1, 4\n A[I] = B[I]\n", diags);
  EXPECT_FALSE(diags.ok());
}

TEST(Parser, NegativeBounds) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = -3, 3
  A[I] = B[I]
end
)");
  EXPECT_EQ(loop.lower, -3);
  EXPECT_EQ(loop.trip_count(), 7);
}

TEST(Parser, UnaryMinusFoldsIntoConstant) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 4
  A[I] = B[I] * -2
end
)");
  const auto& bin = std::get<BinaryExpr>(loop.body[0].rhs);
  const auto& rhs = std::get<IntConst>(*bin.rhs);
  EXPECT_EQ(rhs.value, -2);
}

TEST(Parser, UnaryMinusOnExpressionLowersAsSubtraction) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 4
  A[I] = -B[I]
end
)");
  const auto& bin = std::get<BinaryExpr>(loop.body[0].rhs);
  EXPECT_EQ(bin.op, BinOp::kSub);
  EXPECT_EQ(std::get<IntConst>(*bin.lhs).value, 0);
}

TEST(Parser, SemicolonSeparatesStatements) {
  const Loop loop = parse_single_loop_or_throw(
      "do I = 1, 4\n A[I] = B[I]; C[I] = A[I]\nend\n");
  EXPECT_EQ(loop.body.size(), 2u);
}

TEST(Parser, SingleLoopHelperRejectsMany) {
  EXPECT_THROW((void)parse_single_loop_or_throw(R"(
do I = 1, 2
  A[I] = B[I]
end
do J = 1, 2
  C[J] = D[J]
end
)"),
               SbmpError);
}

TEST(Parser, LoopRoundTripsThroughToString) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const Loop again = parse_single_loop_or_throw(loop.to_string());
  ASSERT_EQ(again.body.size(), loop.body.size());
  for (std::size_t s = 0; s < loop.body.size(); ++s) {
    EXPECT_EQ(statement_to_string(again.body[s], again.iter_var),
              statement_to_string(loop.body[s], loop.iter_var));
  }
}

TEST(ExtractAffine, NonAffineShapes) {
  const Expr quad =
      make_bin(BinOp::kMul, Expr{IterVar{}}, Expr{IterVar{}});
  EXPECT_FALSE(extract_affine(quad, "I").has_value());
  const Expr scalar = make_scalar("s");
  EXPECT_FALSE(extract_affine(scalar, "I").has_value());
  const Expr div = make_bin(BinOp::kDiv, Expr{IterVar{}}, make_const(2));
  EXPECT_FALSE(extract_affine(div, "I").has_value());
}

TEST(ExtractAffine, ShiftScales) {
  const Expr shifted = make_bin(BinOp::kShl, Expr{IterVar{}}, make_const(3));
  const auto affine = extract_affine(shifted, "I");
  ASSERT_TRUE(affine.has_value());
  EXPECT_EQ(*affine, (AffineIndex{8, 0}));
}

}  // namespace
}  // namespace sbmp
