// Parallel pipeline engine: byte-identical agreement with the serial
// engine across job counts, cache correctness, and determinism of the
// aggregated ProgramReport. Labeled `parallel` in CTest so sanitizer
// builds (-DSBMP_SANITIZE=thread) can target exactly these tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp {
namespace {

/// Renders every field of a report that the paper's tables consume —
/// loop order, times, schedules, violation lists — so two reports are
/// equal iff their renderings are byte-identical.
std::string render(const ProgramReport& report) {
  std::string out;
  out += "total=" + std::to_string(report.total_parallel_time);
  out += " doacross=" + std::to_string(report.doacross_loops);
  out += " doall=" + std::to_string(report.doall_loops);
  out += "\n";
  for (const auto& loop : report.loops) {
    out += loop.name + ":";
    out += " doall=" + std::to_string(loop.doall ? 1 : 0);
    out += " parallel=" + std::to_string(loop.parallel_time());
    out += " iter=" + std::to_string(loop.sim.iteration_time);
    out += " stalls=" + std::to_string(loop.sim.stall_cycles);
    out += " fallback=" + std::to_string(loop.used_list_fallback ? 1 : 0);
    out += " waits_elim=" + std::to_string(loop.waits_eliminated);
    out += " groups=[";
    for (const auto& group : loop.schedule.groups) {
      for (const int id : group) out += std::to_string(id) + ",";
      out += ";";
    }
    out += "]";
    for (const auto& v : loop.schedule_violations) out += " SV:" + v;
    for (const auto& v : loop.ordering_violations) out += " OV:" + v;
    out += "\n";
  }
  return out;
}

TEST(ParallelEngine, MatchesSerialEngineByteForByte) {
  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.iterations = 100;
  for (const auto& bench : perfect_suite()) {
    const Program program = bench.program();
    const std::string serial = render(run_pipeline(program, options));
    for (const int jobs : {1, 2, 8}) {
      ParallelOptions parallel;
      parallel.jobs = jobs;
      const std::string par =
          render(run_pipeline_parallel(program, options, parallel));
      EXPECT_EQ(serial, par)
          << bench.name << " diverged at --jobs " << jobs;
    }
  }
}

TEST(ParallelEngine, MatchesSerialUnderListSchedulerAndChecks) {
  // A second option set: list scheduling with the ordering check on,
  // so violation lists (usually empty) and a different scheduler path
  // go through the comparison too.
  PipelineOptions options;
  options.machine = machines::paper(2, 1);
  options.scheduler = SchedulerKind::kList;
  options.check_ordering = true;
  options.iterations = 50;
  const Program program = perfect_suite().front().program();
  const std::string serial = render(run_pipeline(program, options));
  for (const int jobs : {2, 8}) {
    ParallelOptions parallel;
    parallel.jobs = jobs;
    EXPECT_EQ(serial, render(run_pipeline_parallel(program, options,
                                                   parallel)));
  }
}

TEST(ParallelEngine, CacheDeduplicatesRepeatedRuns) {
  const Program program = perfect_suite().front().program();
  PipelineOptions options;
  ResultCache cache;
  ParallelOptions parallel;
  parallel.jobs = 2;
  const ProgramReport first =
      run_pipeline_parallel(program, options, parallel, &cache);
  const std::int64_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0);
  const ProgramReport second =
      run_pipeline_parallel(program, options, parallel, &cache);
  // The second pass is served entirely from the cache...
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0);
  // ...and is indistinguishable from a fresh computation.
  EXPECT_EQ(render(first), render(second));
}

TEST(ParallelEngine, CacheKeyCoversOptionsThatChangeResults) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  PipelineOptions options;
  const std::string base = ResultCache::key(loop, options);
  PipelineOptions other = options;
  other.scheduler = SchedulerKind::kList;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.machine = machines::paper(2, 2);
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.iterations = 7;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.processors = 3;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.eliminate_redundant_waits = true;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.sync_aware.contiguous_paths = false;
  EXPECT_NE(base, ResultCache::key(loop, other));
}

TEST(ParallelEngine, CachedCompareMatchesUncached) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  U[I] = (U[I-1] + V[I]) * w1
  R[I] = V[I-2] * w3 + V[I+2]
end
)");
  PipelineOptions options;
  ResultCache cache;
  const SchedulerComparison plain = compare_schedulers(loop, options);
  const SchedulerComparison cached =
      compare_schedulers_cached(loop, options, &cache);
  EXPECT_EQ(plain.baseline.parallel_time(), cached.baseline.parallel_time());
  EXPECT_EQ(plain.improved.parallel_time(), cached.improved.parallel_time());
  // A repeat comparison is a pure cache hit with identical results.
  const std::int64_t misses = cache.misses();
  const SchedulerComparison again =
      compare_schedulers_cached(loop, options, &cache);
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_EQ(again.improved.schedule.groups, cached.improved.schedule.groups);
}

TEST(ParallelEngine, JobsOneBypassesThreading) {
  // jobs = 1 must run inline on the calling thread (the documented
  // serial escape hatch); verify by observing thread identity.
  const Program program = perfect_suite().front().program();
  PipelineOptions options;
  ParallelOptions parallel;
  parallel.jobs = 1;
  parallel.use_cache = false;
  const ProgramReport serial = run_pipeline(program, options);
  const ProgramReport report =
      run_pipeline_parallel(program, options, parallel);
  EXPECT_EQ(render(serial), render(report));
}

// A three-loop program whose middle loop carries an irregular (non-
// constant-distance) dependence: the pipeline refuses it with a kInput
// status while both neighbors compile normally.
constexpr const char* kMixedBatch = R"(
loop good_a
doacross I = 1, 50
  A[I] = A[I-1] + B[I]
end
loop broken
doacross I = 1, 30
  C[2*I] = C[5*I+1] + 1
end
loop good_b
doacross I = 1, 50
  D[I] = D[I-2] * c1
end
)";

std::string render_failures(const ProgramReport& report) {
  std::string out;
  for (const auto& f : report.failures)
    out += std::to_string(f.index) + ":" + f.message + "\n";
  for (const auto& loop : report.loops)
    out += loop.name + "=" + loop.status.to_string() + "\n";
  return out;
}

TEST(ParallelEngine, FailingBatchIsByteIdenticalAcrossJobCounts) {
  const Program program = parse_program_or_throw(kMixedBatch);
  PipelineOptions options;
  options.iterations = 50;
  const ProgramReport serial = run_pipeline(program, options);
  ASSERT_EQ(serial.failures.size(), 1u);
  EXPECT_EQ(serial.failures[0].index, 1);
  EXPECT_EQ(serial.loops[1].status.code, StatusCode::kInput);
  EXPECT_EQ(serial.worst_status(), StatusCode::kInput);
  ASSERT_EQ(serial.loops.size(), 3u);  // the stub is present, in order
  EXPECT_EQ(serial.loops[1].name, "broken");
  for (const int jobs : {1, 2, 8}) {
    ParallelOptions parallel;
    parallel.jobs = jobs;
    const ProgramReport report =
        run_pipeline_parallel(program, options, parallel);
    EXPECT_EQ(render(serial), render(report)) << "jobs=" << jobs;
    EXPECT_EQ(render_failures(serial), render_failures(report))
        << "jobs=" << jobs;
  }
}

TEST(ShardedCache, KeysSpreadAcrossShards) {
  const ResultCache cache;
  ASSERT_EQ(cache.num_shards(), ResultCache::kDefaultShards);
  std::vector<int> population(static_cast<std::size_t>(cache.num_shards()), 0);
  int keys = 0;
  for (const auto& bench : perfect_suite()) {
    for (const Loop& loop : bench.program().loops) {
      for (const auto kind : {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
        PipelineOptions options;
        options.scheduler = kind;
        const int shard = cache.shard_of(ResultCache::key(loop, options));
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, cache.num_shards());
        ++population[static_cast<std::size_t>(shard)];
        ++keys;
      }
    }
  }
  // The exact spread is hash-dependent; what matters is that routing
  // actually distributes (no single hot shard) and is deterministic.
  int used = 0;
  int max_load = 0;
  for (const int load : population) {
    if (load > 0) ++used;
    max_load = std::max(max_load, load);
  }
  EXPECT_GE(used, 4) << keys << " keys collapsed onto " << used << " shards";
  EXPECT_LT(max_load, keys) << "every key routed to one shard";
  for (const auto& bench : perfect_suite()) {
    for (const Loop& loop : bench.program().loops) {
      const std::string key = ResultCache::key(loop, PipelineOptions{});
      EXPECT_EQ(cache.shard_of(key), cache.shard_of(key));
    }
  }
}

TEST(ShardedCache, RacingInsertsOfOneKeyKeepFirstWinnerEverywhere) {
  ResultCache cache;
  const std::string key = "racing-key";
  constexpr int kInserts = 64;
  std::vector<std::shared_ptr<const LoopReport>> returned(kInserts);
  parallel_for(8, 0, kInserts, [&](std::int64_t i) {
    LoopReport report;
    report.name = "insert-" + std::to_string(i);
    returned[static_cast<std::size_t>(i)] = cache.insert(key, std::move(report));
  });
  ASSERT_EQ(cache.size(), 1u);
  const auto winner = cache.lookup(key);
  ASSERT_NE(winner, nullptr);
  for (const auto& entry : returned) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), winner.get())
        << "a racing insert saw a different entry than the cached winner";
  }
}

TEST(ShardedCache, ConcurrentDistinctInsertsAllLand) {
  ResultCache cache;
  constexpr int kKeys = 256;
  parallel_for(8, 0, kKeys, [&](std::int64_t i) {
    LoopReport report;
    report.name = "loop-" + std::to_string(i);
    (void)cache.insert("key-" + std::to_string(i), std::move(report));
    // Interleave lookups of earlier keys to stress cross-shard probes.
    (void)cache.lookup("key-" + std::to_string(i / 2));
  });
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const auto hit = cache.lookup("key-" + std::to_string(i));
    ASSERT_NE(hit, nullptr) << "key-" << i;
    EXPECT_EQ(hit->name, "loop-" + std::to_string(i));
  }
  EXPECT_GT(cache.hits(), 0);
}

TEST(ShardedCache, SingleShardCacheIsByteIdenticalAcrossJobCounts) {
  // Shard count is an internal layout detail: a 1-shard cache (the old
  // single-mutex table) and the default sharded cache must produce
  // byte-identical program reports at every job count.
  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.iterations = 100;
  for (const auto& bench : perfect_suite()) {
    const Program program = bench.program();
    for (const int jobs : {1, 2, 8}) {
      ParallelOptions parallel;
      parallel.jobs = jobs;
      ResultCache one(1);
      ResultCache sharded;
      const std::string a =
          render(run_pipeline_parallel(program, options, parallel, &one));
      const std::string b =
          render(run_pipeline_parallel(program, options, parallel, &sharded));
      EXPECT_EQ(a, b) << bench.name << " diverged at --jobs " << jobs;
      EXPECT_EQ(one.size(), sharded.size());
    }
  }
}

// --- Chunked parallel_for on the shared process-wide pool ------------
// The fix for negative parallel scaling batches indices into contiguous
// chunks and runs every batch on one lazily-spawned shared pool. These
// stress cases pin the two contracts that chunking must not bend:
// byte-identity with the serial loop, and whole-batch failure
// aggregation in index order.

std::uint64_t mix_index(std::uint64_t x) {
  // SplitMix64 finalizer: cheap enough that per-task overhead, not the
  // body, dominates — exactly the shape that exposed the old per-index
  // task granularity.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(ChunkedParallelFor, TenThousandTinyBodiesMatchSerialByteForByte) {
  constexpr std::int64_t kN = 20000;
  std::vector<std::uint64_t> serial(kN);
  for (std::int64_t i = 0; i < kN; ++i)
    serial[static_cast<std::size_t>(i)] =
        mix_index(static_cast<std::uint64_t>(i));
  for (const int jobs : {2, 8}) {
    std::vector<std::uint64_t> par(kN, 0);
    parallel_for(jobs, 0, kN, [&par](std::int64_t i) {
      par[static_cast<std::size_t>(i)] =
          mix_index(static_cast<std::uint64_t>(i));
    });
    EXPECT_EQ(serial, par) << "diverged at jobs=" << jobs;
  }
}

TEST(ChunkedParallelFor, RepeatedBatchesReuseOneSharedPool) {
  // Many small batches back to back: with a transient pool this was
  // 8 thread spawns per call; the shared pool spawns once per process.
  ThreadPool& pool = shared_thread_pool();
  EXPECT_EQ(&pool, &shared_thread_pool());
  EXPECT_GE(pool.size(), 1);
  std::atomic<std::int64_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    parallel_for(8, 0, 64,
                 [&total](std::int64_t i) { total.fetch_add(i + 1); });
  }
  EXPECT_EQ(total.load(), 200 * (64 * 65) / 2);
}

TEST(ChunkedParallelFor, FailuresAcrossChunksAggregateInIndexOrder) {
  // Throwing indices spread across the whole range land in different
  // chunks (20000 indices >> 4x8 chunks); every body must still run and
  // one ParallelForError must list every failed index, sorted.
  const std::vector<std::int64_t> bad = {3, 4097, 9998, 15000, 19999};
  std::atomic<std::int64_t> ran{0};
  try {
    parallel_for(8, 0, 20000, [&](std::int64_t i) {
      ran.fetch_add(1);
      if (std::find(bad.begin(), bad.end(), i) != bad.end())
        throw std::runtime_error("bad index " + std::to_string(i));
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), bad.size());
    for (std::size_t k = 0; k < bad.size(); ++k) {
      EXPECT_EQ(e.failures()[k].index, bad[k]);
      EXPECT_EQ(e.failures()[k].message,
                "bad index " + std::to_string(bad[k]));
    }
  }
  EXPECT_EQ(ran.load(), 20000) << "a failure suppressed later bodies";
}

TEST(ChunkedParallelFor, ExplicitPoolOverloadStillAggregatesFailures) {
  // The explicit-pool form is the test seam the convenience form builds
  // on; its chunked path must keep the same contract.
  ThreadPool pool(4);
  try {
    parallel_for(pool, 0, 10000, [](std::int64_t i) {
      if (i % 2500 == 1) throw std::runtime_error("f" + std::to_string(i));
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 4u);
    EXPECT_EQ(e.failures()[0].index, 1);
    EXPECT_EQ(e.failures()[3].index, 7501);
  }
}

TEST(ParallelEngine, CacheKeyCoversValidateOptions) {
  const Loop loop = perfect_suite().front().program().loops.front();
  PipelineOptions a;
  PipelineOptions b = a;
  b.validate = false;
  PipelineOptions c = a;
  c.validate_tolerance = 7;
  EXPECT_NE(ResultCache::key(loop, a), ResultCache::key(loop, b));
  EXPECT_NE(ResultCache::key(loop, a), ResultCache::key(loop, c));
}

}  // namespace
}  // namespace sbmp
