// Parallel pipeline engine: byte-identical agreement with the serial
// engine across job counts, cache correctness, and determinism of the
// aggregated ProgramReport. Labeled `parallel` in CTest so sanitizer
// builds (-DSBMP_SANITIZE=thread) can target exactly these tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp {
namespace {

/// Renders every field of a report that the paper's tables consume —
/// loop order, times, schedules, violation lists — so two reports are
/// equal iff their renderings are byte-identical.
std::string render(const ProgramReport& report) {
  std::string out;
  out += "total=" + std::to_string(report.total_parallel_time);
  out += " doacross=" + std::to_string(report.doacross_loops);
  out += " doall=" + std::to_string(report.doall_loops);
  out += "\n";
  for (const auto& loop : report.loops) {
    out += loop.name + ":";
    out += " doall=" + std::to_string(loop.doall ? 1 : 0);
    out += " parallel=" + std::to_string(loop.parallel_time());
    out += " iter=" + std::to_string(loop.sim.iteration_time);
    out += " stalls=" + std::to_string(loop.sim.stall_cycles);
    out += " fallback=" + std::to_string(loop.used_list_fallback ? 1 : 0);
    out += " waits_elim=" + std::to_string(loop.waits_eliminated);
    out += " groups=[";
    for (const auto& group : loop.schedule.groups) {
      for (const int id : group) out += std::to_string(id) + ",";
      out += ";";
    }
    out += "]";
    for (const auto& v : loop.schedule_violations) out += " SV:" + v;
    for (const auto& v : loop.ordering_violations) out += " OV:" + v;
    out += "\n";
  }
  return out;
}

TEST(ParallelEngine, MatchesSerialEngineByteForByte) {
  PipelineOptions options;
  options.machine = MachineConfig::paper(4, 1);
  options.iterations = 100;
  for (const auto& bench : perfect_suite()) {
    const Program program = bench.program();
    const std::string serial = render(run_pipeline(program, options));
    for (const int jobs : {1, 2, 8}) {
      ParallelOptions parallel;
      parallel.jobs = jobs;
      const std::string par =
          render(run_pipeline_parallel(program, options, parallel));
      EXPECT_EQ(serial, par)
          << bench.name << " diverged at --jobs " << jobs;
    }
  }
}

TEST(ParallelEngine, MatchesSerialUnderListSchedulerAndChecks) {
  // A second option set: list scheduling with the ordering check on,
  // so violation lists (usually empty) and a different scheduler path
  // go through the comparison too.
  PipelineOptions options;
  options.machine = MachineConfig::paper(2, 1);
  options.scheduler = SchedulerKind::kList;
  options.check_ordering = true;
  options.iterations = 50;
  const Program program = perfect_suite().front().program();
  const std::string serial = render(run_pipeline(program, options));
  for (const int jobs : {2, 8}) {
    ParallelOptions parallel;
    parallel.jobs = jobs;
    EXPECT_EQ(serial, render(run_pipeline_parallel(program, options,
                                                   parallel)));
  }
}

TEST(ParallelEngine, CacheDeduplicatesRepeatedRuns) {
  const Program program = perfect_suite().front().program();
  PipelineOptions options;
  ResultCache cache;
  ParallelOptions parallel;
  parallel.jobs = 2;
  const ProgramReport first =
      run_pipeline_parallel(program, options, parallel, &cache);
  const std::int64_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0);
  const ProgramReport second =
      run_pipeline_parallel(program, options, parallel, &cache);
  // The second pass is served entirely from the cache...
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0);
  // ...and is indistinguishable from a fresh computation.
  EXPECT_EQ(render(first), render(second));
}

TEST(ParallelEngine, CacheKeyCoversOptionsThatChangeResults) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  PipelineOptions options;
  const std::string base = ResultCache::key(loop, options);
  PipelineOptions other = options;
  other.scheduler = SchedulerKind::kList;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.machine = MachineConfig::paper(2, 2);
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.iterations = 7;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.processors = 3;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.eliminate_redundant_waits = true;
  EXPECT_NE(base, ResultCache::key(loop, other));
  other = options;
  other.sync_aware.contiguous_paths = false;
  EXPECT_NE(base, ResultCache::key(loop, other));
}

TEST(ParallelEngine, CachedCompareMatchesUncached) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  U[I] = (U[I-1] + V[I]) * w1
  R[I] = V[I-2] * w3 + V[I+2]
end
)");
  PipelineOptions options;
  ResultCache cache;
  const SchedulerComparison plain = compare_schedulers(loop, options);
  const SchedulerComparison cached =
      compare_schedulers_cached(loop, options, &cache);
  EXPECT_EQ(plain.baseline.parallel_time(), cached.baseline.parallel_time());
  EXPECT_EQ(plain.improved.parallel_time(), cached.improved.parallel_time());
  // A repeat comparison is a pure cache hit with identical results.
  const std::int64_t misses = cache.misses();
  const SchedulerComparison again =
      compare_schedulers_cached(loop, options, &cache);
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_EQ(again.improved.schedule.groups, cached.improved.schedule.groups);
}

TEST(ParallelEngine, JobsOneBypassesThreading) {
  // jobs = 1 must run inline on the calling thread (the documented
  // serial escape hatch); verify by observing thread identity.
  const Program program = perfect_suite().front().program();
  PipelineOptions options;
  ParallelOptions parallel;
  parallel.jobs = 1;
  parallel.use_cache = false;
  const ProgramReport serial = run_pipeline(program, options);
  const ProgramReport report =
      run_pipeline_parallel(program, options, parallel);
  EXPECT_EQ(render(serial), render(report));
}

// A three-loop program whose middle loop carries an irregular (non-
// constant-distance) dependence: the pipeline refuses it with a kInput
// status while both neighbors compile normally.
constexpr const char* kMixedBatch = R"(
loop good_a
doacross I = 1, 50
  A[I] = A[I-1] + B[I]
end
loop broken
doacross I = 1, 30
  C[2*I] = C[5*I+1] + 1
end
loop good_b
doacross I = 1, 50
  D[I] = D[I-2] * c1
end
)";

std::string render_failures(const ProgramReport& report) {
  std::string out;
  for (const auto& f : report.failures)
    out += std::to_string(f.index) + ":" + f.message + "\n";
  for (const auto& loop : report.loops)
    out += loop.name + "=" + loop.status.to_string() + "\n";
  return out;
}

TEST(ParallelEngine, FailingBatchIsByteIdenticalAcrossJobCounts) {
  const Program program = parse_program_or_throw(kMixedBatch);
  PipelineOptions options;
  options.iterations = 50;
  const ProgramReport serial = run_pipeline(program, options);
  ASSERT_EQ(serial.failures.size(), 1u);
  EXPECT_EQ(serial.failures[0].index, 1);
  EXPECT_EQ(serial.loops[1].status.code, StatusCode::kInput);
  EXPECT_EQ(serial.worst_status(), StatusCode::kInput);
  ASSERT_EQ(serial.loops.size(), 3u);  // the stub is present, in order
  EXPECT_EQ(serial.loops[1].name, "broken");
  for (const int jobs : {1, 2, 8}) {
    ParallelOptions parallel;
    parallel.jobs = jobs;
    const ProgramReport report =
        run_pipeline_parallel(program, options, parallel);
    EXPECT_EQ(render(serial), render(report)) << "jobs=" << jobs;
    EXPECT_EQ(render_failures(serial), render_failures(report))
        << "jobs=" << jobs;
  }
}

TEST(ShardedCache, KeysSpreadAcrossShards) {
  const ResultCache cache;
  ASSERT_EQ(cache.num_shards(), ResultCache::kDefaultShards);
  std::vector<int> population(static_cast<std::size_t>(cache.num_shards()), 0);
  int keys = 0;
  for (const auto& bench : perfect_suite()) {
    for (const Loop& loop : bench.program().loops) {
      for (const auto kind : {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
        PipelineOptions options;
        options.scheduler = kind;
        const int shard = cache.shard_of(ResultCache::key(loop, options));
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, cache.num_shards());
        ++population[static_cast<std::size_t>(shard)];
        ++keys;
      }
    }
  }
  // The exact spread is hash-dependent; what matters is that routing
  // actually distributes (no single hot shard) and is deterministic.
  int used = 0;
  int max_load = 0;
  for (const int load : population) {
    if (load > 0) ++used;
    max_load = std::max(max_load, load);
  }
  EXPECT_GE(used, 4) << keys << " keys collapsed onto " << used << " shards";
  EXPECT_LT(max_load, keys) << "every key routed to one shard";
  for (const auto& bench : perfect_suite()) {
    for (const Loop& loop : bench.program().loops) {
      const std::string key = ResultCache::key(loop, PipelineOptions{});
      EXPECT_EQ(cache.shard_of(key), cache.shard_of(key));
    }
  }
}

TEST(ShardedCache, RacingInsertsOfOneKeyKeepFirstWinnerEverywhere) {
  ResultCache cache;
  const std::string key = "racing-key";
  constexpr int kInserts = 64;
  std::vector<std::shared_ptr<const LoopReport>> returned(kInserts);
  parallel_for(8, 0, kInserts, [&](std::int64_t i) {
    LoopReport report;
    report.name = "insert-" + std::to_string(i);
    returned[static_cast<std::size_t>(i)] = cache.insert(key, std::move(report));
  });
  ASSERT_EQ(cache.size(), 1u);
  const auto winner = cache.lookup(key);
  ASSERT_NE(winner, nullptr);
  for (const auto& entry : returned) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), winner.get())
        << "a racing insert saw a different entry than the cached winner";
  }
}

TEST(ShardedCache, ConcurrentDistinctInsertsAllLand) {
  ResultCache cache;
  constexpr int kKeys = 256;
  parallel_for(8, 0, kKeys, [&](std::int64_t i) {
    LoopReport report;
    report.name = "loop-" + std::to_string(i);
    (void)cache.insert("key-" + std::to_string(i), std::move(report));
    // Interleave lookups of earlier keys to stress cross-shard probes.
    (void)cache.lookup("key-" + std::to_string(i / 2));
  });
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const auto hit = cache.lookup("key-" + std::to_string(i));
    ASSERT_NE(hit, nullptr) << "key-" << i;
    EXPECT_EQ(hit->name, "loop-" + std::to_string(i));
  }
  EXPECT_GT(cache.hits(), 0);
}

TEST(ShardedCache, SingleShardCacheIsByteIdenticalAcrossJobCounts) {
  // Shard count is an internal layout detail: a 1-shard cache (the old
  // single-mutex table) and the default sharded cache must produce
  // byte-identical program reports at every job count.
  PipelineOptions options;
  options.machine = MachineConfig::paper(4, 1);
  options.iterations = 100;
  for (const auto& bench : perfect_suite()) {
    const Program program = bench.program();
    for (const int jobs : {1, 2, 8}) {
      ParallelOptions parallel;
      parallel.jobs = jobs;
      ResultCache one(1);
      ResultCache sharded;
      const std::string a =
          render(run_pipeline_parallel(program, options, parallel, &one));
      const std::string b =
          render(run_pipeline_parallel(program, options, parallel, &sharded));
      EXPECT_EQ(a, b) << bench.name << " diverged at --jobs " << jobs;
      EXPECT_EQ(one.size(), sharded.size());
    }
  }
}

TEST(ParallelEngine, CacheKeyCoversValidateOptions) {
  const Loop loop = perfect_suite().front().program().loops.front();
  PipelineOptions a;
  PipelineOptions b = a;
  b.validate = false;
  PipelineOptions c = a;
  c.validate_tolerance = 7;
  EXPECT_NE(ResultCache::key(loop, a), ResultCache::key(loop, b));
  EXPECT_NE(ResultCache::key(loop, a), ResultCache::key(loop, c));
}

}  // namespace
}  // namespace sbmp
