#include <gtest/gtest.h>

#include "sbmp/machine/machine.h"

namespace sbmp {
namespace {

TEST(MachineConfig, PaperCases) {
  const MachineConfig c21 = MachineConfig::paper(2, 1);
  EXPECT_EQ(c21.issue_width, 2);
  for (int f = 0; f < kNumFuClasses; ++f)
    EXPECT_EQ(c21.fu_count(static_cast<FuClass>(f)), 1);
  EXPECT_EQ(c21.label(), "2-issue(#FU=1)");

  const MachineConfig c42 = MachineConfig::paper(4, 2);
  EXPECT_EQ(c42.fu_count(FuClass::kMult), 2);
  EXPECT_EQ(c42.label(), "4-issue(#FU=2)");
}

TEST(MachineConfig, PaperLatencies) {
  const MachineConfig config = MachineConfig::paper(4, 1);
  EXPECT_EQ(config.latency(Opcode::kMul), 3);
  EXPECT_EQ(config.latency(Opcode::kMulI), 3);
  EXPECT_EQ(config.latency(Opcode::kDiv), 6);
  EXPECT_EQ(config.latency(Opcode::kAdd), 1);
  EXPECT_EQ(config.latency(Opcode::kLoad), 1);
  EXPECT_EQ(config.latency(Opcode::kWait), 1);
}

TEST(MachineConfig, SyncUsesIssueSlotNotFu) {
  const MachineConfig config = MachineConfig::paper(4, 1);
  EXPECT_EQ(fu_class_of(Opcode::kWait, false), FuClass::kNone);
  EXPECT_EQ(fu_class_of(Opcode::kSend, false), FuClass::kNone);
  // kNone "units" are bounded only by the issue width.
  EXPECT_EQ(config.fu_count(FuClass::kNone), config.issue_width);
}

TEST(MachineConfig, FloatSelectsFpAdder) {
  EXPECT_EQ(fu_class_of(Opcode::kAdd, true), FuClass::kFloat);
  EXPECT_EQ(fu_class_of(Opcode::kAdd, false), FuClass::kInteger);
  EXPECT_EQ(fu_class_of(Opcode::kSub, true), FuClass::kFloat);
  // Mul/div/shift have dedicated units regardless of type.
  EXPECT_EQ(fu_class_of(Opcode::kMul, true), FuClass::kMult);
  EXPECT_EQ(fu_class_of(Opcode::kMul, false), FuClass::kMult);
  EXPECT_EQ(fu_class_of(Opcode::kShl, true), FuClass::kShift);
  EXPECT_EQ(fu_class_of(Opcode::kDiv, true), FuClass::kDiv);
}

TEST(MachineConfig, MemoryOpsOnLoadStoreUnit) {
  EXPECT_EQ(fu_class_of(Opcode::kLoad, true), FuClass::kLoadStore);
  EXPECT_EQ(fu_class_of(Opcode::kStore, false), FuClass::kLoadStore);
}

TEST(MachineConfig, NamesAreStable) {
  EXPECT_STREQ(fu_class_name(FuClass::kLoadStore), "load/store");
  EXPECT_STREQ(fu_class_name(FuClass::kInteger), "integer");
  EXPECT_STREQ(fu_class_name(FuClass::kFloat), "float");
  EXPECT_STREQ(fu_class_name(FuClass::kMult), "mult");
  EXPECT_STREQ(fu_class_name(FuClass::kDiv), "div");
  EXPECT_STREQ(fu_class_name(FuClass::kShift), "shift");
  EXPECT_STREQ(opcode_name(Opcode::kWait), "wait");
  EXPECT_STREQ(opcode_name(Opcode::kStore), "store");
}

}  // namespace
}  // namespace sbmp
