#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <type_traits>

#include "sbmp/machine/machine.h"
#include "sbmp/support/rng.h"

namespace sbmp {
namespace {

/// Seed count, overridable via SBMP_FUZZ_SEEDS like the fuzz suites
/// (clamped to [1, 100000]).
int fuzz_seed_count() {
  const char* env = std::getenv("SBMP_FUZZ_SEEDS");
  if (env == nullptr) return 25;
  const int n = std::atoi(env);
  if (n < 1) return 25;
  return n > 100000 ? 100000 : n;
}

TEST(MachineDesc, PaperCases) {
  const MachineDesc c21 = machines::paper(2, 1);
  EXPECT_EQ(c21.issue_width, 2);
  for (int f = 0; f < kNumFuClasses; ++f)
    EXPECT_EQ(c21.fu_count(static_cast<FuClass>(f)), 1);
  EXPECT_EQ(c21.label(), "2-issue(#FU=1)");

  const MachineDesc c42 = machines::paper(4, 2);
  EXPECT_EQ(c42.fu_count(FuClass::kMult), 2);
  EXPECT_EQ(c42.label(), "4-issue(#FU=2)");
}

TEST(MachineDesc, PaperLatencies) {
  const MachineDesc config = machines::paper(4, 1);
  EXPECT_EQ(config.latency(Opcode::kMul), 3);
  EXPECT_EQ(config.latency(Opcode::kMulI), 3);
  EXPECT_EQ(config.latency(Opcode::kDiv), 6);
  EXPECT_EQ(config.latency(Opcode::kAdd), 1);
  EXPECT_EQ(config.latency(Opcode::kLoad), 1);
  EXPECT_EQ(config.latency(Opcode::kWait), 1);
}

TEST(MachineDesc, SyncUsesIssueSlotNotFu) {
  const MachineDesc config = machines::paper(4, 1);
  EXPECT_EQ(fu_class_of(Opcode::kWait, false), FuClass::kNone);
  EXPECT_EQ(fu_class_of(Opcode::kSend, false), FuClass::kNone);
  // kNone "units" are bounded only by the issue width.
  EXPECT_EQ(config.fu_count(FuClass::kNone), config.issue_width);
}

TEST(MachineDesc, FloatSelectsFpAdder) {
  EXPECT_EQ(fu_class_of(Opcode::kAdd, true), FuClass::kFloat);
  EXPECT_EQ(fu_class_of(Opcode::kAdd, false), FuClass::kInteger);
  EXPECT_EQ(fu_class_of(Opcode::kSub, true), FuClass::kFloat);
  // Mul/div/shift have dedicated units regardless of type.
  EXPECT_EQ(fu_class_of(Opcode::kMul, true), FuClass::kMult);
  EXPECT_EQ(fu_class_of(Opcode::kMul, false), FuClass::kMult);
  EXPECT_EQ(fu_class_of(Opcode::kShl, true), FuClass::kShift);
  EXPECT_EQ(fu_class_of(Opcode::kDiv, true), FuClass::kDiv);
}

TEST(MachineDesc, MemoryOpsOnLoadStoreUnit) {
  EXPECT_EQ(fu_class_of(Opcode::kLoad, true), FuClass::kLoadStore);
  EXPECT_EQ(fu_class_of(Opcode::kStore, false), FuClass::kLoadStore);
}

TEST(MachineDesc, NamesAreStable) {
  EXPECT_STREQ(fu_class_name(FuClass::kLoadStore), "load/store");
  EXPECT_STREQ(fu_class_name(FuClass::kInteger), "integer");
  EXPECT_STREQ(fu_class_name(FuClass::kFloat), "float");
  EXPECT_STREQ(fu_class_name(FuClass::kMult), "mult");
  EXPECT_STREQ(fu_class_name(FuClass::kDiv), "div");
  EXPECT_STREQ(fu_class_name(FuClass::kShift), "shift");
  EXPECT_STREQ(opcode_name(Opcode::kWait), "wait");
  EXPECT_STREQ(opcode_name(Opcode::kStore), "store");
}

TEST(MachineDesc, CanonicalFormRoundTrips) {
  const MachineDesc paper = machines::paper(4, 2);
  EXPECT_EQ(paper.to_string(),
            "issue=4 fu=ls:2,int:2,fp:2,mul:2,div:2,shift:2 "
            "lat=muli:3,mul:3,div:6,*:1 sync=1 sig=1 buf=0");
  MachineDesc parsed;
  ASSERT_TRUE(parse_machine_desc(paper.to_string(), &parsed).ok());
  EXPECT_EQ(parsed, paper);
}

TEST(MachineDesc, ParseAcceptsUniformFuShorthand) {
  MachineDesc parsed;
  ASSERT_TRUE(parse_machine_desc("issue=2 fu=2", &parsed).ok());
  EXPECT_EQ(parsed, machines::paper(2, 2));
  // Partial fu list: unmentioned classes stay at 1.
  ASSERT_TRUE(parse_machine_desc("fu=mul:3", &parsed).ok());
  EXPECT_EQ(parsed.fu_count(FuClass::kMult), 3);
  EXPECT_EQ(parsed.fu_count(FuClass::kDiv), 1);
}

TEST(MachineDesc, ParseStarLatencyAppliesBeforeOverrides) {
  MachineDesc parsed;
  ASSERT_TRUE(parse_machine_desc("lat=*:2,div:8", &parsed).ok());
  EXPECT_EQ(parsed.latency(Opcode::kDiv), 8);
  EXPECT_EQ(parsed.latency(Opcode::kAdd), 2);
  EXPECT_EQ(parsed.latency(Opcode::kMul), 2);
}

TEST(MachineDesc, ParseRejectsMalformedInput) {
  MachineDesc parsed;
  for (const char* bad :
       {"issue=", "issue=x", "issue=4 issue=2", "bogus=1", "fu=warp:2",
        "lat=frobnicate:3", "issue==4", "fu=ls:", "buf=-1"}) {
    const Status status = parse_machine_desc(bad, &parsed);
    EXPECT_FALSE(status.ok()) << "accepted \"" << bad << "\"";
    EXPECT_EQ(status.code, StatusCode::kInput) << bad;
  }
}

TEST(MachineDesc, ValidateRejectsDegenerateMachines) {
  MachineDesc machine;
  machine.issue_width = 0;
  EXPECT_EQ(machine.validate().code, StatusCode::kInput);

  machine = machines::default_machine();
  machine.fu_counts[0] = 0;
  EXPECT_EQ(machine.validate().code, StatusCode::kInput);

  machine = machines::default_machine();
  machine.set_latency(Opcode::kLoad, 0);
  EXPECT_EQ(machine.validate().code, StatusCode::kInput);

  machine = machines::default_machine();
  machine.signal_latency = -1;
  EXPECT_EQ(machine.validate().code, StatusCode::kInput);

  EXPECT_TRUE(machines::default_machine().validate().ok());
}

TEST(MachineDesc, LoadLatencyIsAFirstClassTableEntry) {
  // The latency switch used to have no case for loads (they fell through
  // to the default); the table makes the entry explicit and tunable.
  MachineDesc machine = machines::default_machine();
  EXPECT_EQ(machine.latency(Opcode::kLoad), 1);
  machine.set_latency(Opcode::kLoad, 4);
  EXPECT_EQ(machine.latency(Opcode::kLoad), 4);
  EXPECT_EQ(machine.latency(Opcode::kStore), 1);
  MachineDesc parsed;
  ASSERT_TRUE(parse_machine_desc(machine.to_string(), &parsed).ok());
  EXPECT_EQ(parsed.latency(Opcode::kLoad), 4);
}

TEST(MachineDesc, MachineConfigAliasStaysUsable) {
  // MachineConfig is the deprecated spelling of MachineDesc; existing
  // code that names the old type must keep compiling.
  const MachineConfig config = machines::paper(2, 1);
  EXPECT_EQ(config.issue_width, 2);
  static_assert(std::is_same_v<MachineConfig, MachineDesc>);
}

class MachineFuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(MachineFuzzSeed, RandomDescsRoundTripThroughCanonicalForm) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 17);
  MachineDesc machine;
  machine.issue_width = static_cast<int>(rng.range(1, 16));
  for (int f = 0; f < kNumFuClasses; ++f)
    machine.fu_counts[f] = static_cast<int>(rng.range(1, 8));
  for (int op = 0; op < kNumOpcodes; ++op)
    machine.latencies[op] = static_cast<int>(rng.range(1, 12));
  machine.sync_consumes_slot = rng.chance(50);
  machine.signal_latency = static_cast<int>(rng.range(0, 5));
  machine.signal_buffer_depth = static_cast<int>(rng.range(0, 4));
  ASSERT_TRUE(machine.validate().ok());

  const std::string text = machine.to_string();
  MachineDesc parsed;
  ASSERT_TRUE(parse_machine_desc(text, &parsed).ok()) << text;
  EXPECT_EQ(parsed, machine) << text;
  // Canonical form is a fixed point: format(parse(format(m))) == format(m).
  EXPECT_EQ(parsed.to_string(), text);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MachineFuzzSeed,
                         ::testing::Range(0, fuzz_seed_count()));

}  // namespace
}  // namespace sbmp
