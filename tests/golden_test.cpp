// Byte-identity golden gate for the compile hot path.
//
// The CSR/arena DFG, the bucketed ready lists and the indexed SlotFiller
// are pure data-structure optimizations: they must not change a single
// scheduling decision. This suite pins that contract by fingerprinting
// everything the hot path produces — the DFG structure itself (edge
// lists in adjacency order, free flags, components, kinds, members,
// heights, sync pairs), the output of all four schedulers under two
// machine cases, and the redundant-wait analysis — across the paper
// example, the stencil, every Perfect-suite loop, and 500 generated
// fuzz loops, and comparing against fingerprints recorded from the
// pre-optimization implementation (tests/golden/schedules.txt).
//
// Regenerate (only when an *intentional* scheduling change lands):
//   SBMP_UPDATE_GOLDEN=1 ./golden_test
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sbmp/codegen/codegen.h"
#include "sbmp/dep/dependence.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/dfg/redundancy.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/perfect/generator.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/support/hash.h"
#include "sbmp/support/rng.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kStencil = R"(
doacross I = 1, 100
  U[I] = (U[I-1] + V[I]) * w1 + V[I+1] * w2
  R[I] = V[I-2] * w3 + V[I+2]
  Q[I] = R[I] + V[I] / w4
end
)";

constexpr const char* kPaperExample = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

void hash_schedule(Hasher64& h, const Schedule& sched) {
  h.update_i64(static_cast<std::int64_t>(sched.groups.size()));
  for (const auto& group : sched.groups) {
    h.update_i64(static_cast<std::int64_t>(group.size()));
    for (const int id : group) h.update_i64(id);
  }
}

void hash_dfg(Hasher64& h, const Dfg& dfg) {
  h.update_i64(dfg.size());
  for (int id = 1; id <= dfg.size(); ++id) {
    h.update_i64(dfg.is_free(id) ? 1 : 0);
    h.update_i64(dfg.component_of(id));
    for (const auto& e : dfg.succs(id)) {
      h.update_i64(e.from);
      h.update_i64(e.to);
      h.update_i64(e.latency);
      h.update_i64(static_cast<int>(e.kind));
    }
    // Predecessor adjacency order matters: place_ancestors_asap walks it.
    for (const auto& e : dfg.preds(id)) {
      h.update_i64(e.from);
      h.update_i64(e.latency);
    }
  }
  h.update_i64(dfg.num_components());
  for (int c = 0; c < dfg.num_components(); ++c) {
    h.update_i64(static_cast<int>(dfg.component_kind(c)));
    for (const int id : dfg.component_members(c)) h.update_i64(id);
  }
  for (const auto& pair : dfg.pairs()) {
    h.update_i64(pair.wait_instr);
    h.update_i64(pair.send_instr);
    h.update_i64(pair.signal_stmt);
    h.update_i64(pair.distance);
    for (const int id : dfg.sync_path(pair)) h.update_i64(id);
  }
  const auto heights = dfg.heights();
  for (int id = 1; id <= dfg.size(); ++id)
    h.update_i64(heights[static_cast<std::size_t>(id)]);
}

/// Fingerprint of everything the compile hot path derives from `loop`
/// under one machine case: DFG structure, all four schedulers, two
/// sync-aware ablations, and the redundant-wait analysis.
std::uint64_t loop_fingerprint(const Loop& loop, const MachineDesc& config) {
  const DepAnalysis deps = analyze_dependences(loop);
  if (!deps.is_synchronizable()) return 0;  // pipeline refuses these
  const SyncedLoop synced = insert_synchronization(loop, deps);
  const TacFunction tac = generate_tac(synced);
  const Dfg dfg(tac, config);

  Hasher64 h;
  hash_dfg(h, dfg);
  hash_schedule(h, schedule_inorder(tac, dfg, config));
  hash_schedule(h, schedule_list(tac, dfg, config));
  hash_schedule(h, schedule_sync_barrier(tac, dfg, config));
  hash_schedule(h, schedule_sync_aware(tac, dfg, config, 100));
  SyncAwareOptions no_paths;
  no_paths.contiguous_paths = false;
  hash_schedule(h, schedule_sync_aware(tac, dfg, config, 7, no_paths));
  SyncAwareOptions no_lfd;
  no_lfd.convert_lfd = false;
  hash_schedule(h, schedule_sync_aware(tac, dfg, config, 7, no_lfd));

  for (const int id : find_redundant_wait_instrs(tac, dfg)) h.update_i64(id);
  int removed = 0;
  const TacFunction reduced = eliminate_redundant_waits(tac, config, &removed);
  h.update_i64(removed);
  h.update_i64(reduced.size());
  return h.digest();
}

struct GoldenEntry {
  std::string label;
  std::uint64_t digest = 0;
};

std::vector<GoldenEntry> compute_all() {
  std::vector<GoldenEntry> out;
  const MachineDesc wide = machines::paper(4, 1);
  const MachineDesc narrow = machines::paper(2, 2);
  const auto add = [&](const std::string& label, const Loop& loop) {
    out.push_back({label + "/4x1", loop_fingerprint(loop, wide)});
    out.push_back({label + "/2x2", loop_fingerprint(loop, narrow)});
  };
  add("paper-example", parse_single_loop_or_throw(kPaperExample));
  add("stencil", parse_single_loop_or_throw(kStencil));
  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops)
      add(bench.name + "/" + loop.name, loop);
  }
  for (int seed = 1; seed <= 500; ++seed) {
    SplitMix64 rng(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ull);
    const Loop loop = generate_random_loop(rng, LoopGenConfig{});
    const MachineDesc& config = (seed % 2 == 0) ? narrow : wide;
    std::ostringstream label;
    label << "fuzz-" << seed << (seed % 2 == 0 ? "/2x2" : "/4x1");
    out.push_back({label.str(), loop_fingerprint(loop, config)});
  }
  return out;
}

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

TEST(GoldenSchedules, ByteIdenticalToPreOptimizationReference) {
  const std::vector<GoldenEntry> entries = compute_all();
  const char* path = SBMP_GOLDEN_PATH;
  if (std::getenv("SBMP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const auto& e : entries)
      out << e.label << ' ' << to_hex(e.digest) << '\n';
    GTEST_LOG_(INFO) << "updated " << path << " (" << entries.size()
                     << " entries)";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << "; regenerate with SBMP_UPDATE_GOLDEN=1 ./golden_test";
  std::map<std::string, std::string> golden;
  std::string label, hex;
  while (in >> label >> hex) golden[label] = hex;
  ASSERT_EQ(golden.size(), entries.size())
      << "golden corpus size drifted; regenerate deliberately";
  int mismatches = 0;
  for (const auto& e : entries) {
    const auto it = golden.find(e.label);
    ASSERT_NE(it, golden.end()) << "no golden entry for " << e.label;
    if (it->second != to_hex(e.digest)) {
      ++mismatches;
      ADD_FAILURE() << "schedule drift on " << e.label << ": golden "
                    << it->second << " vs computed " << to_hex(e.digest);
      if (mismatches >= 10) break;  // the first few localize the bug
    }
  }
}

}  // namespace
}  // namespace sbmp
