// Tests for the observability layer (src/obs): the unified metrics
// registry, the span tracer and its Chrome trace-event JSON, and the
// load-bearing invariant of the whole subsystem — instrumentation can
// never change a scheduling decision. The drift gate cross-checks the
// traced pipeline against the fingerprint recorded in
// BENCH_compile.json (SBMP_BENCH_JSON_PATH), so the perf trajectory
// file and the unit suite pin the same bytes.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/obs/metrics.h"
#include "sbmp/obs/trace.h"
#include "sbmp/support/hash.h"

namespace sbmp {
namespace {

constexpr const char* kPaperExample =
    "doacross I = 1, 100\n"
    "  B[I] = A[I-2] + E[I+1]\n"
    "  G[I-3] = A[I-1] * E[I+2]\n"
    "  A[I] = B[I] + C[I+3]\n"
    "end\n";

// --- metrics instruments ---------------------------------------------

TEST(Metrics, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.counter("sbmp_things_total");
  Counter* b = registry.counter("sbmp_things_total");
  EXPECT_EQ(a, b);
  // Distinct labels are distinct instruments.
  Counter* labelled = registry.counter("sbmp_things_total", "kind=\"x\"");
  EXPECT_NE(a, labelled);
  a->inc();
  a->inc(4);
  EXPECT_EQ(b->value(), 5);
  EXPECT_EQ(labelled->value(), 0);

  Gauge* g = registry.gauge("sbmp_depth");
  g->set(7);
  g->add(-2);
  EXPECT_EQ(registry.gauge("sbmp_depth")->value(), 5);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBoundsPlusOverflow) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("sbmp_lat_ns", "", {10, 100});
  h->observe(5);
  h->observe(10);   // inclusive: lands in the first bucket
  h->observe(50);
  h->observe(1000);  // above the last bound: +Inf bucket
  const std::vector<std::int64_t> counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->sum(), 1065);
  // First registration fixes the bounds; a later request with different
  // bounds gets the existing instrument.
  EXPECT_EQ(registry.histogram("sbmp_lat_ns", "", {1, 2, 3}), h);
}

TEST(Metrics, ConcurrentMutationLosesNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter* counter = registry.counter("sbmp_race_total");
  Histogram* histogram =
      registry.histogram("sbmp_race_ns", "", phase_latency_bounds_ns());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->inc();
        histogram->observe(t * 1000 + i);
        // Registration races against mutation: handles stay stable.
        (void)registry.counter("sbmp_race_total");
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
  std::int64_t bucket_total = 0;
  for (const std::int64_t c : histogram->bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(Metrics, SnapshotFindsSamplesAndSortsDeterministically) {
  MetricsRegistry registry;
  registry.counter("sbmp_b_total")->inc(2);
  registry.counter("sbmp_a_total")->inc(1);
  registry.counter("sbmp_a_total", "k=\"1\"")->inc(3);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "sbmp_a_total");
  EXPECT_EQ(snapshot.samples[0].labels, "");
  EXPECT_EQ(snapshot.samples[1].labels, "k=\"1\"");
  EXPECT_EQ(snapshot.samples[2].name, "sbmp_b_total");
  const MetricSample* found = snapshot.find("sbmp_a_total", "k=\"1\"");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, 3);
  EXPECT_EQ(snapshot.find("sbmp_missing"), nullptr);
}

TEST(Metrics, PrometheusTextCoversEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.counter("sbmp_hits_total")->inc(9);
  registry.gauge("sbmp_depth")->set(3);
  Histogram* h = registry.histogram("sbmp_lat_ns", "phase=\"dep\"", {10, 100});
  h->observe(7);
  h->observe(500);
  const std::string prom = registry.snapshot().to_prometheus();
  EXPECT_NE(prom.find("# TYPE sbmp_hits_total counter"), std::string::npos);
  EXPECT_NE(prom.find("sbmp_hits_total 9"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sbmp_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("sbmp_depth 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sbmp_lat_ns histogram"), std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(prom.find("sbmp_lat_ns_bucket{phase=\"dep\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("sbmp_lat_ns_bucket{phase=\"dep\",le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("sbmp_lat_ns_bucket{phase=\"dep\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("sbmp_lat_ns_sum{phase=\"dep\"} 507"),
            std::string::npos);
  EXPECT_NE(prom.find("sbmp_lat_ns_count{phase=\"dep\"} 2"),
            std::string::npos);
}

// --- tracer ----------------------------------------------------------

TEST(Trace, SpansPublishWithArgsAndValidate) {
  Tracer tracer;
  {
    Tracer::Span outer = Tracer::begin(&tracer, "outer");
    outer.arg("loops", static_cast<std::int64_t>(2));
    outer.arg("label", std::string_view("fig\"1\""));  // needs escaping
    Tracer::Span inner = Tracer::begin(&tracer, "inner");
  }
  ASSERT_EQ(tracer.event_count(), 2u);
  // Inner closes first; publish order reflects that.
  const std::vector<Tracer::Event> events = tracer.events();
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(validate_chrome_trace(json).ok()) << json;
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"loops\":2"), std::string::npos);
}

TEST(Trace, DisabledAndNullTracersRecordNothing) {
  Tracer disabled(false);
  {
    Tracer::Span span = Tracer::begin(&disabled, "phase");
    EXPECT_FALSE(span);
    span.arg("ignored", static_cast<std::int64_t>(1));
    Tracer::Span null_span = Tracer::begin(nullptr, "phase");
    EXPECT_FALSE(null_span);
  }
  EXPECT_EQ(disabled.event_count(), 0u);
  EXPECT_TRUE(validate_chrome_trace(disabled.to_chrome_json()).ok());
}

TEST(Trace, DisabledSpanPathIsCheap) {
  // The whole point of the null-object span: linking the tracer in and
  // leaving it off must cost pointer tests, not clock reads. 100ns/op
  // is ~50x the real cost — generous enough for any CI machine while
  // still catching an accidental clock read (~20-60ns) multiplied by
  // the 9 spans every compiled loop opens.
  constexpr int kOps = 1000000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    Tracer::Span span = Tracer::begin(nullptr, "disabled");
    span.arg("k", static_cast<std::int64_t>(i));
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_LT(ns / kOps, 100) << "disabled span path costs " << ns / kOps
                            << "ns/op";
}

TEST(Trace, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(validate_chrome_trace("").ok());
  EXPECT_FALSE(validate_chrome_trace("{").ok());
  EXPECT_FALSE(validate_chrome_trace("{}").ok());  // no traceEvents
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\":{}}").ok());
  // An event missing "ts" is structurally invalid.
  EXPECT_FALSE(validate_chrome_trace(
                   "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"}]}")
                   .ok());
  EXPECT_TRUE(validate_chrome_trace("{\"traceEvents\":[]}").ok());
}

// --- instrumented pipeline -------------------------------------------

std::uint64_t schedule_digest(const LoopReport& report) {
  Hasher64 fp;
  fp.update_i64(static_cast<std::int64_t>(report.schedule.groups.size()));
  for (const auto& group : report.schedule.groups) {
    fp.update_i64(static_cast<std::int64_t>(group.size()));
    for (const int id : group) fp.update_i64(id);
  }
  return fp.digest();
}

TEST(PipelineObservability, InstrumentationNeverChangesTheSchedule) {
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  PipelineOptions plain;
  plain.iterations = 100;
  const CompileResult bare = compile({loop, plain});
  ASSERT_TRUE(bare.ok());

  Tracer disabled(false);
  PipelineOptions with_disabled = plain;
  with_disabled.tracer = &disabled;
  const CompileResult off = compile({loop, with_disabled});

  Tracer tracer;
  MetricsRegistry registry;
  PipelineOptions with_both = plain;
  with_both.tracer = &tracer;
  with_both.metrics = &registry;
  const CompileResult on = compile({loop, with_both});

  EXPECT_EQ(schedule_digest(off.report), schedule_digest(bare.report));
  EXPECT_EQ(schedule_digest(on.report), schedule_digest(bare.report));
  EXPECT_EQ(on.report.sim.parallel_time, bare.report.sim.parallel_time);
  EXPECT_EQ(disabled.event_count(), 0u);
  EXPECT_GT(tracer.event_count(), 0u);
}

TEST(PipelineObservability, PhaseSpansAndLoopArgsAreEmitted) {
  const Loop loop = parse_single_loop_or_throw(kPaperExample);
  Tracer tracer;
  PipelineOptions options;
  options.iterations = 100;
  options.tracer = &tracer;
  ASSERT_TRUE(compile({loop, options}).ok());
  const std::string json = tracer.to_chrome_json();
  ASSERT_TRUE(validate_chrome_trace(json).ok()) << json;
  for (const char* phase : {"\"dep\"", "\"sync\"", "\"codegen\"", "\"dfg\"",
                            "\"schedule\"", "\"sim\"", "\"validate\"",
                            "\"pipeline\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
  for (const char* arg :
       {"\"lbd_pairs\"", "\"lfd_pairs\"", "\"worst_sync_span\"",
        "\"waits_eliminated\"", "\"parallel_time\""}) {
    EXPECT_NE(json.find(arg), std::string::npos) << arg;
  }
}

TEST(PipelineObservability, MetricsAccumulateAcrossJobs8Batch) {
  // The corpus compiled through the batch facade at jobs 8 with one
  // shared registry: per-loop counters must sum exactly (no lost
  // updates), and the schedules must match the serial run.
  const std::vector<bench::CorpusLoop> corpus = bench::compile_corpus();
  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;

  std::vector<CompileRequest> serial_requests;
  for (const auto& target : corpus)
    serial_requests.push_back({target.loop, options});
  CompileBatchOptions serial_batch;
  serial_batch.jobs = 1;
  serial_batch.use_cache = false;
  const ProgramReport serial = compile(serial_requests, serial_batch);

  MetricsRegistry registry;
  PipelineOptions instrumented = options;
  instrumented.metrics = &registry;
  std::vector<CompileRequest> requests;
  for (const auto& target : corpus)
    requests.push_back({target.loop, instrumented});
  CompileBatchOptions batch;
  batch.jobs = 8;
  batch.use_cache = false;
  const ProgramReport parallel = compile(requests, batch);

  ASSERT_EQ(parallel.loops.size(), serial.loops.size());
  int completed = 0;
  for (std::size_t i = 0; i < parallel.loops.size(); ++i) {
    if (!parallel.loops[i].dfg.has_value()) continue;  // refused loop
    ++completed;
    EXPECT_EQ(schedule_digest(parallel.loops[i]),
              schedule_digest(serial.loops[i]))
        << corpus[i].label;
  }
  const MetricSample* loops =
      registry.snapshot().find("sbmp_compile_loops_total");
  ASSERT_NE(loops, nullptr);
  EXPECT_EQ(loops->value, completed);
  // Every completed loop observed every phase histogram exactly once.
  const MetricSample* dep =
      registry.snapshot().find("sbmp_compile_phase_ns", "phase=\"dep\"");
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(dep->count, completed);
}

/// The golden pin: the corpus fingerprint on the machine bench_micro
/// measures (4-issue, #FU=2, 100 iterations, pipeline defaults
/// otherwise) is a hard-coded constant. BENCH_compile.json records the
/// same value, but regenerating that file cannot move this goalpost —
/// any machine-model or scheduler change that shifts it must be an
/// explicit, reviewed edit here.
TEST(PipelineObservability, BenchMachineCorpusFingerprintIsPinned) {
  std::vector<bench::CorpusLoop> corpus = bench::compile_corpus();
  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;
  EXPECT_EQ(bench::fingerprint_corpus(&corpus, options), "3c390871903d0914");
}

#ifdef SBMP_BENCH_JSON_PATH

/// The drift gate: the schedule fingerprint of the full bench corpus,
/// compiled WITH tracing and metrics attached, must equal the
/// fingerprint recorded in BENCH_compile.json by the (uninstrumented)
/// perf harness. One number pins "observability changed no schedule"
/// across both suites.
TEST(PipelineObservability, TracedCorpusFingerprintMatchesBenchRecord) {
  std::ifstream in(SBMP_BENCH_JSON_PATH);
  ASSERT_TRUE(in.good()) << "cannot read " SBMP_BENCH_JSON_PATH;
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::string recorded;
  ASSERT_TRUE(bench::json_field(json, "schedule_fingerprint", &recorded));

  Tracer tracer;
  MetricsRegistry registry;
  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;
  options.tracer = &tracer;
  options.metrics = &registry;

  Hasher64 fp;
  for (auto& target : bench::compile_corpus()) {
    const CompileResult result = compile({target.loop, options});
    if (!result.report.dfg.has_value()) continue;  // refused loop
    fp.update(target.label);
    fp.update_i64(
        static_cast<std::int64_t>(result.report.schedule.groups.size()));
    for (const auto& group : result.report.schedule.groups) {
      fp.update_i64(static_cast<std::int64_t>(group.size()));
      for (const int id : group) fp.update_i64(id);
    }
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fp.digest()));
  EXPECT_EQ(recorded, hex)
      << "instrumented compile drifted from BENCH_compile.json";
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_TRUE(validate_chrome_trace(tracer.to_chrome_json()).ok());
}

#endif  // SBMP_BENCH_JSON_PATH

}  // namespace
}  // namespace sbmp
