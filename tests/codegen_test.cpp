#include <gtest/gtest.h>

#include "sbmp/codegen/codegen.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

TacFunction lower(const char* src) {
  return generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
}

// The paper's Fig 2 listing. Instructions 1-25 match the paper exactly;
// the tail differs deliberately: the paper fuses S3's final add into the
// store ("26: A[t1] = t18+t21"), which is inconsistent with its own
// three-address discipline elsewhere (S1 emits "t8 = t4+t7; B[t1] = t8"),
// so we lower S3 unfused as 26/27 and the Send becomes 28. DESIGN.md and
// EXPERIMENTS.md record the one-instruction delta.
constexpr const char* kFig2Golden =
    "1: Wait_Signal(S3, I-2)\n"
    "2: t1 = 4 * I\n"
    "3: t2 = I - 2\n"
    "4: t3 = 4 * t2\n"
    "5: t4 = A[t3]\n"
    "6: t5 = I + 1\n"
    "7: t6 = 4 * t5\n"
    "8: t7 = E[t6]\n"
    "9: t8 = t4 + t7\n"
    "10: B[t1] = t8\n"
    "11: Wait_Signal(S3, I-1)\n"
    "12: t9 = I - 3\n"
    "13: t10 = 4 * t9\n"
    "14: t11 = I - 1\n"
    "15: t12 = 4 * t11\n"
    "16: t13 = A[t12]\n"
    "17: t14 = I + 2\n"
    "18: t15 = 4 * t14\n"
    "19: t16 = E[t15]\n"
    "20: t17 = t13 * t16\n"
    "21: G[t10] = t17\n"
    "22: t18 = B[t1]\n"
    "23: t19 = I + 3\n"
    "24: t20 = 4 * t19\n"
    "25: t21 = C[t20]\n"
    "26: t22 = t18 + t21\n"
    "27: A[t1] = t22\n"
    "28: Send_Signal(S3)\n";

TEST(Codegen, Fig2Golden) {
  const TacFunction tac = lower(kFig1);
  EXPECT_EQ(tac.to_string(), kFig2Golden);
  EXPECT_EQ(tac.size(), 28);
}

TEST(Codegen, AddressValueNumberingSharesScaledOffsets) {
  const TacFunction tac = lower(kFig1);
  // t1 = 4*I serves B[I] (store 10), B[I] reload (22) and A[I] (27).
  const auto& store_b = tac.by_id(10);
  const auto& load_b = tac.by_id(22);
  const auto& store_a = tac.by_id(27);
  EXPECT_EQ(store_b.a.reg, load_b.a.reg);
  EXPECT_EQ(store_b.a.reg, store_a.a.reg);
}

TEST(Codegen, LoadsAreNeverReused) {
  // B[I] is stored by S1 and re-loaded by S3 (instruction 22), keeping
  // the dependence sink a genuine load.
  const TacFunction tac = lower(kFig1);
  EXPECT_EQ(tac.by_id(22).op, Opcode::kLoad);
  EXPECT_EQ(tac.by_id(22).array, "B");
}

TEST(Codegen, WaitGuardsItsSinkLoad) {
  const TacFunction tac = lower(kFig1);
  const auto& wait1 = tac.by_id(1);
  ASSERT_EQ(wait1.op, Opcode::kWait);
  EXPECT_EQ(wait1.sync_distance, 2);
  ASSERT_EQ(wait1.guarded_instrs.size(), 1u);
  EXPECT_EQ(wait1.guarded_instrs[0], 5);  // t4 = A[t3]
  const auto& wait2 = tac.by_id(11);
  ASSERT_EQ(wait2.guarded_instrs.size(), 1u);
  EXPECT_EQ(wait2.guarded_instrs[0], 16);  // t13 = A[t12]
}

TEST(Codegen, SendGuardsItsSourceStore) {
  const TacFunction tac = lower(kFig1);
  const auto& send = tac.by_id(28);
  ASSERT_EQ(send.op, Opcode::kSend);
  ASSERT_EQ(send.guarded_instrs.size(), 1u);
  EXPECT_EQ(send.guarded_instrs[0], 27);  // A[t1] = t22
}

TEST(Codegen, RegistersAreSingleAssignment) {
  const TacFunction tac = lower(kFig1);
  std::vector<int> defs(tac.reg_names.size(), 0);
  for (const auto& instr : tac.instrs) {
    if (instr.dst != 0) ++defs[static_cast<std::size_t>(instr.dst)];
  }
  for (const auto count : defs) EXPECT_LE(count, 1);
}

TEST(Codegen, FunctionUnitMapping) {
  const TacFunction tac = lower(kFig1);
  EXPECT_EQ(tac.by_id(2).fu(), FuClass::kShift);      // t1 = 4*I
  EXPECT_EQ(tac.by_id(3).fu(), FuClass::kInteger);    // t2 = I-2
  EXPECT_EQ(tac.by_id(5).fu(), FuClass::kLoadStore);  // load
  EXPECT_EQ(tac.by_id(9).fu(), FuClass::kFloat);      // real add
  EXPECT_EQ(tac.by_id(20).fu(), FuClass::kMult);      // real mul
  EXPECT_EQ(tac.by_id(1).fu(), FuClass::kNone);       // wait
}

TEST(Codegen, IntegerArraysUseIntegerAdder) {
  const TacFunction tac = lower(R"(
doacross I = 1, 10
  int K
  K[I] = K[I-1] + 1
end
)");
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kAdd) {
      EXPECT_EQ(instr.fu(), FuClass::kInteger);
    }
  }
}

TEST(Codegen, DivisionOnDivider) {
  const TacFunction tac = lower(R"(
doacross I = 1, 10
  A[I] = A[I-1] / c
end
)");
  bool saw_div = false;
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kDiv) {
      saw_div = true;
      EXPECT_EQ(instr.fu(), FuClass::kDiv);
    }
  }
  EXPECT_TRUE(saw_div);
}

TEST(Codegen, NonPowerOfTwoCoefficientUsesMultiplier) {
  const TacFunction tac = lower(R"(
do I = 1, 10
  A[3*I] = B[I]
end
)");
  bool saw_muli = false;
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kMulI) {
      saw_muli = true;
      EXPECT_EQ(instr.fu(), FuClass::kMult);
      EXPECT_EQ(instr.b.imm, 3);
    }
  }
  EXPECT_TRUE(saw_muli);
}

TEST(Codegen, PowerOfTwoCoefficientUsesShifter) {
  const TacFunction tac = lower(R"(
do I = 1, 10
  A[2*I] = B[I]
end
)");
  // 2*I lowered as I << 1, plus the *4 scaling shifts.
  int shifts = 0;
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kShl) ++shifts;
  }
  EXPECT_GE(shifts, 3);
}

TEST(Codegen, ConstantFolding) {
  const TacFunction tac = lower(R"(
do I = 1, 10
  A[I] = B[I] + 2 * 3
end
)");
  // The literal 2*3 folds; the add consumes an immediate 6.
  for (const auto& instr : tac.instrs) {
    EXPECT_NE(instr.op, Opcode::kMul);
    if (instr.op == Opcode::kAdd) {
      EXPECT_EQ(instr.b.kind, Operand::Kind::kImm);
      EXPECT_EQ(instr.b.imm, 6);
    }
  }
}

TEST(Codegen, ScalarsBecomeLiveInRegisters) {
  const TacFunction tac = lower(R"(
do I = 1, 10
  A[I] = B[I] * w + w
end
)");
  ASSERT_EQ(tac.scalar_regs.size(), 1u);
  const int w_reg = tac.scalar_regs.at("w");
  EXPECT_TRUE(tac.is_live_in(w_reg));
  EXPECT_EQ(tac.reg_name(w_reg), "w");
  // No instruction defines the scalar register.
  for (const auto& instr : tac.instrs) EXPECT_NE(instr.dst, w_reg);
}

TEST(Codegen, IterationRegisterIsLiveIn) {
  const TacFunction tac = lower(kFig1);
  EXPECT_TRUE(tac.is_live_in(tac.iter_reg));
  EXPECT_EQ(tac.reg_name(tac.iter_reg), "I");
}

TEST(Codegen, NegativeImmediateRendersAsSubtraction) {
  const TacFunction tac = lower(kFig1);
  EXPECT_EQ(tac.instr_to_string(tac.by_id(3)), "t2 = I - 2");
  EXPECT_EQ(tac.instr_to_string(tac.by_id(6)), "t5 = I + 1");
}

TEST(Codegen, MemIndexMetadataRecorded) {
  const TacFunction tac = lower(kFig1);
  EXPECT_EQ(tac.by_id(5).mem_index, (AffineIndex{1, -2}));
  EXPECT_EQ(tac.by_id(27).mem_index, (AffineIndex{1, 0}));
  EXPECT_EQ(tac.by_id(21).mem_index, (AffineIndex{1, -3}));
}

}  // namespace
}  // namespace sbmp
