#include <gtest/gtest.h>

#include <algorithm>

#include "sbmp/dep/dependence.h"
#include "sbmp/frontend/parser.h"

namespace sbmp {
namespace {

Loop parse(const char* src) { return parse_single_loop_or_throw(src); }

const Dependence* find_dep(const DepAnalysis& analysis, DepKind kind,
                           int src, int snk, std::int64_t distance) {
  for (const auto& dep : analysis.deps) {
    if (dep.kind == kind && dep.src_stmt == src && dep.snk_stmt == snk &&
        dep.distance == distance)
      return &dep;
  }
  return nullptr;
}

TEST(Dependence, Fig1Example) {
  const auto loop = parse(R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  ASSERT_EQ(analysis.deps.size(), 3u);

  // S3 -> S1 on A, distance 2, backward.
  const auto* d1 = find_dep(analysis, DepKind::kFlow, 3, 1, 2);
  ASSERT_NE(d1, nullptr);
  EXPECT_FALSE(d1->lexically_forward);
  EXPECT_TRUE(d1->constant_distance);

  // S3 -> S2 on A, distance 1, backward.
  const auto* d2 = find_dep(analysis, DepKind::kFlow, 3, 2, 1);
  ASSERT_NE(d2, nullptr);
  EXPECT_FALSE(d2->lexically_forward);

  // S1 -> S3 on B, loop independent, forward.
  const auto* d3 = find_dep(analysis, DepKind::kFlow, 1, 3, 0);
  ASSERT_NE(d3, nullptr);
  EXPECT_TRUE(d3->lexically_forward);
  EXPECT_FALSE(d3->loop_carried());

  EXPECT_FALSE(analysis.is_doall());
  EXPECT_TRUE(analysis.is_synchronizable());
  EXPECT_EQ(analysis.count_carried(), 2);
  EXPECT_EQ(analysis.count_lfd(), 0);
  EXPECT_EQ(analysis.count_lbd(), 2);
}

TEST(Dependence, DoallLoop) {
  const auto loop = parse(R"(
do I = 1, 50
  A[I] = B[I] * 2 + C[I+1]
  D[I] = B[I-1] - C[I]
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  EXPECT_TRUE(analysis.is_doall());
  EXPECT_EQ(analysis.count_carried(), 0);
}

TEST(Dependence, SelfRecurrenceIsBackward) {
  const auto loop = parse(R"(
doacross I = 1, 20
  A[I] = A[I-3] + 1
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  const auto* dep = find_dep(analysis, DepKind::kFlow, 1, 1, 3);
  ASSERT_NE(dep, nullptr);
  EXPECT_FALSE(dep->lexically_forward) << "same-statement carried "
                                          "dependences are LBD";
}

TEST(Dependence, ForwardCarriedIsLFD) {
  const auto loop = parse(R"(
doacross I = 1, 20
  A[I] = B[I] + 1
  C[I] = A[I-2] * 2
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  const auto* dep = find_dep(analysis, DepKind::kFlow, 1, 2, 2);
  ASSERT_NE(dep, nullptr);
  EXPECT_TRUE(dep->lexically_forward);
  EXPECT_EQ(analysis.count_lfd(), 1);
  EXPECT_EQ(analysis.count_lbd(), 0);
}

TEST(Dependence, AntiDependence) {
  // S1 reads A[I+1], which S2 of the *next* iteration overwrites:
  // anti dependence S1 -> S2, distance 1, forward.
  const auto loop = parse(R"(
doacross I = 1, 20
  B[I] = A[I+1] * 2
  A[I] = B[I-1] + 1
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  const auto* anti = find_dep(analysis, DepKind::kAnti, 1, 2, 1);
  ASSERT_NE(anti, nullptr);
  EXPECT_TRUE(anti->lexically_forward);
  // Plus the carried flow B: S1 -> S2 distance 1.
  EXPECT_NE(find_dep(analysis, DepKind::kFlow, 1, 2, 1), nullptr);
}

TEST(Dependence, OutputDependence) {
  const auto loop = parse(R"(
doacross I = 1, 20
  A[I] = B[I] + 1
  A[I-1] = C[I] * 2
end
)");
  // S1 writes A[i]; S2 of iteration i+1 writes A[i] again: output dep
  // S1 -> S2 distance 1. And S2 writes A[i-1] which S1 wrote in
  // iteration i-1: within iteration i, S1 writes A[i], S2 writes A[i-1]:
  // no same-iteration conflict.
  const DepAnalysis analysis = analyze_dependences(loop);
  const auto* out = find_dep(analysis, DepKind::kOutput, 1, 2, 1);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->lexically_forward);
}

TEST(Dependence, DistanceExceedingTripIgnored) {
  const auto loop = parse(R"(
doacross I = 1, 4
  A[I] = A[I-10] + 1
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  EXPECT_TRUE(analysis.is_doall()) << "distance 10 cannot occur in 4 "
                                      "iterations";
}

TEST(Dependence, NonDivisibleOffsetNoDependence) {
  const auto loop = parse(R"(
do I = 1, 30
  A[2*I] = A[2*I-3] + 1
end
)");
  // 2i1 = 2i2 - 3 has no integer solution.
  const DepAnalysis analysis = analyze_dependences(loop);
  EXPECT_TRUE(analysis.is_doall());
}

TEST(Dependence, ScaledSubscriptsDivisible) {
  const auto loop = parse(R"(
doacross I = 1, 30
  A[2*I] = A[2*I-4] + 1
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  const auto* dep = find_dep(analysis, DepKind::kFlow, 1, 1, 2);
  ASSERT_NE(dep, nullptr);
  EXPECT_TRUE(dep->constant_distance);
}

TEST(Dependence, CoefficientMismatchCoveredByUnitChain) {
  const auto loop = parse(R"(
doacross I = 1, 30
  A[2*I] = A[I] + 1
end
)");
  // A[2i1] == A[i2] for i2 = 2i1: distances i2/2 = {1,2,...,15}. Every
  // distance is a multiple of the minimum (1), so the uniform
  // Wait(S, i-1) chain serializes all conflicting pairs: the dependence
  // reports constant_distance with d = 1.
  const DepAnalysis analysis = analyze_dependences(loop);
  const auto* dep = find_dep(analysis, DepKind::kFlow, 1, 1, 1);
  ASSERT_NE(dep, nullptr);
  EXPECT_TRUE(dep->constant_distance);
  EXPECT_TRUE(analysis.is_synchronizable());
}

TEST(Dependence, IrregularDistancesNotChainCovered) {
  const auto loop = parse(R"(
doacross I = 1, 30
  A[2*I] = A[5*I+1] + 1
end
)");
  // 2i1 == 5i2+1 at (i2,i1) = (1,3), (3,8), (5,13), ...: the read of
  // iteration i2 is overwritten i1-i2 = {2,5,8,...} iterations later. 5
  // is not a multiple of 2, so no uniform Wait(S, i-d) covers the anti
  // dependence: it is irregular and the loop must serialize.
  const DepAnalysis analysis = analyze_dependences(loop);
  bool found_irregular = false;
  for (const auto& dep : analysis.deps) {
    if (dep.loop_carried() && !dep.constant_distance) {
      found_irregular = true;
      EXPECT_EQ(dep.kind, DepKind::kAnti);
      EXPECT_EQ(dep.distance, 2);
    }
  }
  EXPECT_TRUE(found_irregular);
  EXPECT_FALSE(analysis.is_synchronizable());
}

TEST(Dependence, ConstantSubscriptSerializes) {
  const auto loop = parse(R"(
doacross I = 1, 30
  A[5] = B[I] + A[5]
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  // Output dep on A[5] at distance 1 (covers all longer distances) plus
  // flow/anti between the read and the write.
  const auto* out = find_dep(analysis, DepKind::kOutput, 1, 1, 1);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->constant_distance)
      << "the distance-1 chain exactly serializes a constant subscript";
  EXPECT_NE(find_dep(analysis, DepKind::kFlow, 1, 1, 1), nullptr);
}

TEST(Dependence, DuplicateReadsCollapse) {
  const auto loop = parse(R"(
doacross I = 1, 10
  A[I] = A[I-1] + A[I-1]
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  int count = 0;
  for (const auto& dep : analysis.deps) {
    if (dep.kind == DepKind::kFlow && dep.distance == 1) ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(Dependence, ToStringMentionsKindAndClass) {
  const auto loop = parse(R"(
doacross I = 1, 10
  A[I] = A[I-1] + 1
end
)");
  const DepAnalysis analysis = analyze_dependences(loop);
  ASSERT_EQ(analysis.deps.size(), 1u);
  const std::string text = analysis.deps[0].to_string();
  EXPECT_NE(text.find("flow"), std::string::npos);
  EXPECT_NE(text.find("LBD"), std::string::npos);
  EXPECT_NE(text.find("d=1"), std::string::npos);
}

TEST(Dependence, BruteForceAgreesOnFig1) {
  const auto loop = parse(R"(
doacross I = 1, 8
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)");
  const DepAnalysis fast = analyze_dependences(loop);
  const DepAnalysis slow = analyze_dependences_bruteforce(loop);
  ASSERT_EQ(fast.deps.size(), slow.deps.size());
  for (std::size_t i = 0; i < fast.deps.size(); ++i) {
    EXPECT_EQ(fast.deps[i].to_string(), slow.deps[i].to_string());
  }
}

}  // namespace
}  // namespace sbmp
