// End-to-end reproduction of the paper's running example (Fig 1 through
// Fig 4): source text in, schedules and parallel times out, checked at
// every pipeline stage.
#include <gtest/gtest.h>

#include "sbmp/core/pipeline.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

PipelineOptions paper_options(SchedulerKind kind) {
  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.scheduler = kind;
  options.iterations = 100;
  options.check_ordering = true;
  return options;
}

TEST(EndToEnd, Fig4ListScheduling) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const LoopReport report =
      run_pipeline(loop, paper_options(SchedulerKind::kList));
  ASSERT_TRUE(report.valid());

  // Paper: both waits are scheduled immediately (Fig 4(a) has them in
  // the first two groups), the send is last, and the worst LBD span is
  // the distance-1 pair covering nearly the whole schedule. With the
  // paper's 27-instruction listing the time is 12N+13; our unfused
  // 28-instruction body gives the same span-times-N shape.
  const int wait2_slot = report.schedule.slot(11);
  const int send_slot = report.schedule.slot(28);
  EXPECT_LE(wait2_slot, 1);
  EXPECT_EQ(send_slot, report.schedule.length() - 1);

  const int span = send_slot - wait2_slot + 1;
  // T_a = 99 * span + l, exactly (unit-latency schedule, d = 1 worst).
  EXPECT_EQ(report.parallel_time(),
            99 * span + report.sim.iteration_time);
  // And the simulator agrees with the analytic bound exactly here.
  EXPECT_EQ(report.parallel_time(),
            analytic_lower_bound(*report.dfg, report.schedule, 100,
                                 report.sim.iteration_time));
}

TEST(EndToEnd, Fig4SyncAwareScheduling) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const LoopReport report =
      run_pipeline(loop, paper_options(SchedulerKind::kSyncAware));
  ASSERT_TRUE(report.valid());

  // The distance-1 pair (Wat graph) became LFD...
  EXPECT_GT(report.schedule.slot(11), report.schedule.slot(28));
  // ...so the remaining cost is the distance-2 Sigwat pair: T_b =
  // floor(99/2) * span2 + l, exactly.
  const int span2 = report.schedule.slot(28) - report.schedule.slot(1) + 1;
  EXPECT_EQ(report.parallel_time(),
            49 * span2 + report.sim.iteration_time);
  // The paper reports (N/2)*7 + 13 for its 27-instruction listing; our
  // span must stay in that ballpark, not the list scheduler's 12.
  EXPECT_LE(span2, 11);
}

TEST(EndToEnd, PaperHeadlineImprovement) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const SchedulerComparison cmp =
      compare_schedulers(loop, paper_options(SchedulerKind::kList));
  // Paper: 12N+13 = 1213 vs (N/2)*7+13 = 363, a ~70% improvement. Our
  // timing model lands in the same regime.
  EXPECT_GT(cmp.improvement(), 0.45);
  EXPECT_LT(cmp.improvement(), 0.80);
}

TEST(EndToEnd, ImprovementAcrossAllFourPaperCases) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  for (const int width : {2, 4}) {
    for (const int fus : {1, 2}) {
      PipelineOptions options = paper_options(SchedulerKind::kList);
      options.machine = machines::paper(width, fus);
      const SchedulerComparison cmp = compare_schedulers(loop, options);
      EXPECT_GT(cmp.improvement(), 0.0) << options.machine.label();
      EXPECT_TRUE(cmp.baseline.valid()) << options.machine.label();
      EXPECT_TRUE(cmp.improved.valid()) << options.machine.label();
    }
  }
}

TEST(EndToEnd, SyncAwareTimeInsensitiveToIssueWidth) {
  // The paper's observation 1: after the new scheduling, times for the
  // four machine cases are "much the same" because the shortest
  // synchronization path dominates.
  const Loop loop = parse_single_loop_or_throw(kFig1);
  std::int64_t t24 = 0;
  std::int64_t t41 = 0;
  {
    PipelineOptions options = paper_options(SchedulerKind::kSyncAware);
    options.machine = machines::paper(2, 2);
    t24 = run_pipeline(loop, options).parallel_time();
  }
  {
    PipelineOptions options = paper_options(SchedulerKind::kSyncAware);
    options.machine = machines::paper(4, 1);
    t41 = run_pipeline(loop, options).parallel_time();
  }
  const double ratio = static_cast<double>(t24) / static_cast<double>(t41);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.7);
}

TEST(EndToEnd, RunPipelineSourceAggregates) {
  const std::string two_loops = std::string(kFig1) + R"(
do J = 1, 50
  Z[J] = Y[J] * 2
end
)";
  PipelineOptions options = paper_options(SchedulerKind::kSyncAware);
  const ProgramReport report = run_pipeline_source(two_loops, options);
  ASSERT_EQ(report.loops.size(), 2u);
  EXPECT_EQ(report.doacross_loops, 1);
  EXPECT_EQ(report.doall_loops, 1);
  EXPECT_EQ(report.total_parallel_time, report.loops[0].parallel_time());
}

TEST(EndToEnd, IterationsZeroUsesTripCount) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 10
  A[I] = A[I-1] + B[I]
end
)");
  PipelineOptions options = paper_options(SchedulerKind::kSyncAware);
  options.iterations = 0;
  const LoopReport report = run_pipeline(loop, options);
  // 10 iterations, not the default 100: the serial chain bound is
  // 9 links at most a few cycles each.
  EXPECT_LT(report.parallel_time(), 200);
}

}  // namespace
}  // namespace sbmp
