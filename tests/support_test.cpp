#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sbmp/support/diagnostics.h"
#include "sbmp/support/overflow.h"
#include "sbmp/support/rng.h"
#include "sbmp/support/status.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/table.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("doacross", "do"));
  EXPECT_FALSE(starts_with("do", "doacross"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.8337), "83.37%");
  EXPECT_EQ(format_percent(0.851, 1), "85.1%");
}

TEST(Diagnostics, OkUntilFirstError) {
  DiagEngine diags;
  EXPECT_TRUE(diags.ok());
  diags.warning({1, 2}, "meh");
  EXPECT_TRUE(diags.ok());
  diags.error({3, 4}, "boom");
  EXPECT_FALSE(diags.ok());
  EXPECT_EQ(diags.error_count(), 1);
}

TEST(Diagnostics, RenderIncludesLocationAndSeverity) {
  DiagEngine diags;
  diags.error({7, 3}, "bad token");
  EXPECT_EQ(diags.render(), "7:3: error: bad token\n");
}

TEST(Diagnostics, UnknownLocationOmitted) {
  Diagnostic d{DiagSeverity::kNote, {}, "hi"};
  EXPECT_EQ(d.to_string(), "note: hi");
}

TEST(Diagnostics, ClearResets) {
  DiagEngine diags;
  diags.error({1, 1}, "x");
  diags.clear();
  EXPECT_TRUE(diags.ok());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeInclusive) {
  SplitMix64 rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0));
    EXPECT_TRUE(rng.chance(100));
  }
}

TEST(Rng, RangeSpanUsesModularArithmetic) {
  // `hi - lo` in int64 overflows for mixed-sign extremes; range_span
  // must wrap in uint64 instead of invoking UB.
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  static_assert(range_span(0, 0) == 1);
  static_assert(range_span(-2, 2) == 5);
  static_assert(range_span(kMin, -1) == 0x8000000000000000ull);
  static_assert(range_span(0, kMax) == 0x8000000000000000ull);
  // Full domain: 2^64 values, which wraps to 0 (the sentinel).
  static_assert(range_span(kMin, kMax) == 0);
}

TEST(Rng, RangeCoversTheFullInt64DomainWithoutUb) {
  // Regression: span == 0 used to reach `next() % 0`, and the mixed-sign
  // subtraction overflowed. Any draw is in-range by construction here;
  // what is tested is that the calls are well-defined and deterministic.
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  SplitMix64 a(123);
  SplitMix64 b(123);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t v = a.range(kMin, kMax);
    EXPECT_EQ(v, b.range(kMin, kMax));
    saw_negative = saw_negative || v < 0;
    saw_positive = saw_positive || v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Rng, RangeMixedSignExtremesStayInBounds) {
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  SplitMix64 rng(77);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t half = rng.range(kMin, 0);
    EXPECT_LE(half, 0);
    const std::int64_t other = rng.range(-1, kMax);
    EXPECT_GE(other, -1);
    const std::int64_t point = rng.range(kMax, kMax);
    EXPECT_EQ(point, kMax);
  }
}

TEST(Rng, RangeSequencesAreBitIdenticalToTheOldArithmetic) {
  // Seeded sweeps (fuzz_test, the random loop generator) depend on the
  // exact draw sequence; the overflow fix must not disturb spans the old
  // `next() % (hi - lo + 1)` handled correctly.
  SplitMix64 fixed(2024);
  SplitMix64 reference(2024);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t draw = reference.next();
    EXPECT_EQ(fixed.range(10, 20),
              10 + static_cast<std::int64_t>(draw % 11ull));
  }
}

TEST(Strings, AppendfFormatsIntoTheBuffer) {
  std::string out = "prefix:";
  appendf(out, " %d %s %.2f", 42, "mid", 2.5);
  EXPECT_EQ(out, "prefix: 42 mid 2.50");
  appendf(out, "%s", "");  // zero-length append is a no-op
  EXPECT_EQ(out, "prefix: 42 mid 2.50");
}

TEST(Strings, AppendfHandlesResultsBeyondTheStackBuffer) {
  // The fast path uses a 1 KiB stack buffer; anything larger must take
  // the heap fallback and still produce the full formatted string.
  const std::string big(5000, 'x');
  std::string out;
  appendf(out, "[%s]", big.c_str());
  EXPECT_EQ(out.size(), big.size() + 2);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
  EXPECT_EQ(out.substr(1, big.size()), big);
}

TEST(Table, RendersAlignedColumns) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"bb", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  // Right-aligned numeric column: " 1" under "22".
  EXPECT_NE(out.find("   1"), std::string::npos);
}

TEST(Table, SeparatorLine) {
  TextTable table;
  table.set_header({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // Header rule + explicit separator.
  int dashes = 0;
  for (const auto line : split(out, '\n')) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos)
      ++dashes;
  }
  EXPECT_EQ(dashes, 2);
}

TEST(Table, PadsShortRows) {
  TextTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_NO_THROW({ const auto out = table.render(); });
}

TEST(Overflow, SaturatingArithmetic) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_add(kMax, 1), kMax);
  EXPECT_EQ(sat_add(kMin, -1), kMin);
  EXPECT_EQ(sat_mul(4, 5), 20);
  EXPECT_EQ(sat_mul(kMax / 2, 3), kMax);
  EXPECT_EQ(sat_mul(kMin / 2, 3), kMin);
  EXPECT_EQ(sat_mul(kMax, -2), kMin);
  EXPECT_TRUE(add_overflows(kMax, 1));
  EXPECT_FALSE(add_overflows(kMax, 0));
  EXPECT_TRUE(mul_overflows(std::int64_t{1} << 40, std::int64_t{1} << 40));
  EXPECT_FALSE(mul_overflows(std::int64_t{1} << 40, 2));
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 200);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> seen(1000);
    parallel_for(jobs, 0, 1000,
                 [&seen](std::int64_t i) { seen[i].fetch_add(1); });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(ThreadPool, ParallelForIsOrderStableWhenAggregatedByIndex) {
  std::vector<std::int64_t> out(500);
  parallel_for(8, 0, 500, [&out](std::int64_t i) { out[i] = i * i; });
  for (std::int64_t i = 0; i < 500; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  EXPECT_THROW(
      parallel_for(4, 0, 100,
                   [](std::int64_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForSingleFailurePreservesExceptionType) {
  // Exactly one failing index rethrows the ORIGINAL exception, so
  // callers keep catching their own types (first-exception-wins, not
  // wrapped).
  try {
    parallel_for(4, 0, 100, [](std::int64_t i) {
      if (i == 37) throw std::out_of_range("index 37 exploded");
    });
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "index 37 exploded");
  }
}

TEST(ThreadPool, ParallelForAggregatesEveryFailure) {
  // Two failing indices surface BOTH, sorted by index — one bad item in
  // a batch can no longer hide the others.
  try {
    parallel_for(4, 0, 100, [](std::int64_t i) {
      if (i == 12) throw std::runtime_error("twelve");
      if (i == 77) throw std::runtime_error("seventy-seven");
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].index, 12);
    EXPECT_EQ(e.failures()[0].message, "twelve");
    EXPECT_EQ(e.failures()[1].index, 77);
    EXPECT_EQ(e.failures()[1].message, "seventy-seven");
  }
}

TEST(ThreadPool, ParallelForAggregatesInlinePathToo) {
  // jobs = 1 takes the inline (no-thread) path; its failure contract
  // must match the pooled path exactly.
  try {
    parallel_for(1, 0, 10, [](std::int64_t i) {
      if (i % 4 == 3) throw std::runtime_error("f" + std::to_string(i));
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].index, 3);
    EXPECT_EQ(e.failures()[1].index, 7);
  }
}

TEST(ThreadPool, SharedPoolSupportsConcurrentParallelFors) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  parallel_for(pool, 0, 8, [&pool, &total](std::int64_t) {
    // Nested fan-out onto the same pool from a worker-adjacent caller
    // must complete (completion is tracked per call, not pool-wide).
    std::atomic<std::int64_t> inner{0};
    for (int j = 0; j < 10; ++j) inner.fetch_add(j);
    total.fetch_add(inner.load());
  });
  pool.wait_idle();
  EXPECT_EQ(total.load(), 8 * 45);
}

TEST(ThreadPool, AbsurdJobCountIsClampedToRangeSize) {
  // --jobs 100000 on a short range must not try to use 100000 workers:
  // the shared-pool path caps concurrency at the pool size and the
  // range length, so no thread resources are ever spawned per call.
  std::vector<std::atomic<int>> seen(8);
  parallel_for(100000, 0, 8,
               [&seen](std::int64_t i) { seen[i].fetch_add(1); });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, SharedPoolIsOneProcessWideInstance) {
  ThreadPool& pool = shared_thread_pool();
  EXPECT_EQ(&pool, &shared_thread_pool());
  EXPECT_GE(pool.size(), 1);
  // And it executes work like any explicit pool.
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  std::atomic<int> count{0};
  parallel_for(4, 5, 5, [&count](std::int64_t) { count.fetch_add(1); });
  parallel_for(4, 5, 2, [&count](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ChunkTuner, LearnsAnEstimateAndNeverChangesResults) {
  // Own pool so the multi-worker (measured) path runs even on a 1-core
  // host; the tuner may only change chunk boundaries, never outcomes.
  ThreadPool pool(4);
  ChunkTuner tuner;
  EXPECT_EQ(tuner.ns_per_item.load(), 0);  // fixed heuristic until measured

  constexpr std::int64_t kN = 2000;
  std::vector<std::int64_t> without(kN), with(kN);
  parallel_for(pool, 0, kN, [&](std::int64_t i) {
    without[static_cast<std::size_t>(i)] = i * i + 1;
  });
  parallel_for(pool, 0, kN, [&](std::int64_t i) {
    with[static_cast<std::size_t>(i)] = i * i + 1;
  }, &tuner);
  EXPECT_EQ(with, without);
  // One drained batch folded in; the estimate is clamped to >= 1 even
  // for sub-nanosecond items, so "measured" is observable.
  EXPECT_GE(tuner.ns_per_item.load(), 1);

  // Steered batches (the estimate now sizes the chunks) still run every
  // index exactly once.
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 0, kN, [&](std::int64_t i) { sum.fetch_add(i); },
               &tuner);
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
  EXPECT_GE(tuner.ns_per_item.load(), 1);
}

TEST(ChunkTuner, EstimateSmoothsInsteadOfTracking) {
  // The EWMA keeps 3/4 memory: one anomalous batch moves the estimate
  // at most a quarter of the way toward the fresh sample.
  ThreadPool pool(4);
  ChunkTuner tuner;
  tuner.ns_per_item.store(1000);
  parallel_for(pool, 0, 64,
               [](std::int64_t) { /* near-zero cost items */ }, &tuner);
  const std::int64_t est = tuner.ns_per_item.load();
  // fresh >= 1, so est = (3*1000 + fresh)/4 >= 750 — a raw replace
  // would have collapsed straight to the ~1ns sample. (No upper-bound
  // assertion: on a preempted host the fresh sample itself can be
  // arbitrarily large, and the EWMA tracks it a quarter at a time.)
  EXPECT_GE(est, 750);
}

TEST(ChunkTuner, InlinePathIgnoresTheTunerButStaysCorrect) {
  // jobs <= 1 runs inline in index order: no chunks, no measurement.
  ChunkTuner tuner;
  std::vector<std::int64_t> order;
  parallel_for(1, 0, 16, [&](std::int64_t i) { order.push_back(i); },
               &tuner);
  ASSERT_EQ(order.size(), 16u);
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(tuner.ns_per_item.load(), 0);
}

TEST(ChunkTuner, SharedTunerSurvivesConcurrentBatches) {
  // Concurrent parallel_for calls racing one tuner: updates are relaxed
  // atomics and every batch still runs all of its indices.
  ThreadPool pool(4);
  ChunkTuner tuner;
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        parallel_for(pool, 0, 200,
                     [&](std::int64_t) { total.fetch_add(1); }, &tuner);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 3 * 5 * 200);
  EXPECT_GE(tuner.ns_per_item.load(), 1);
}

}  // namespace
}  // namespace sbmp
