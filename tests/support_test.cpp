#include <gtest/gtest.h>

#include "sbmp/support/diagnostics.h"
#include "sbmp/support/rng.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/table.h"

namespace sbmp {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("doacross", "do"));
  EXPECT_FALSE(starts_with("do", "doacross"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.8337), "83.37%");
  EXPECT_EQ(format_percent(0.851, 1), "85.1%");
}

TEST(Diagnostics, OkUntilFirstError) {
  DiagEngine diags;
  EXPECT_TRUE(diags.ok());
  diags.warning({1, 2}, "meh");
  EXPECT_TRUE(diags.ok());
  diags.error({3, 4}, "boom");
  EXPECT_FALSE(diags.ok());
  EXPECT_EQ(diags.error_count(), 1);
}

TEST(Diagnostics, RenderIncludesLocationAndSeverity) {
  DiagEngine diags;
  diags.error({7, 3}, "bad token");
  EXPECT_EQ(diags.render(), "7:3: error: bad token\n");
}

TEST(Diagnostics, UnknownLocationOmitted) {
  Diagnostic d{DiagSeverity::kNote, {}, "hi"};
  EXPECT_EQ(d.to_string(), "note: hi");
}

TEST(Diagnostics, ClearResets) {
  DiagEngine diags;
  diags.error({1, 1}, "x");
  diags.clear();
  EXPECT_TRUE(diags.ok());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeInclusive) {
  SplitMix64 rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0));
    EXPECT_TRUE(rng.chance(100));
  }
}

TEST(Table, RendersAlignedColumns) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"bb", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  // Right-aligned numeric column: " 1" under "22".
  EXPECT_NE(out.find("   1"), std::string::npos);
}

TEST(Table, SeparatorLine) {
  TextTable table;
  table.set_header({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // Header rule + explicit separator.
  int dashes = 0;
  for (const auto line : split(out, '\n')) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos)
      ++dashes;
  }
  EXPECT_EQ(dashes, 2);
}

TEST(Table, PadsShortRows) {
  TextTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_NO_THROW({ const auto out = table.render(); });
}

}  // namespace
}  // namespace sbmp
