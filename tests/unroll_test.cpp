#include <gtest/gtest.h>

#include "sbmp/core/pipeline.h"
#include "sbmp/restructure/unroll.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
loop fig1
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

TEST(Unroll, FactorOneIsIdentity) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const Loop same = unroll_or_throw(loop, 1);
  EXPECT_EQ(same.to_string(), loop.to_string());
}

TEST(Unroll, BodyReplicatedAndTripDivided) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const Loop u2 = unroll_or_throw(loop, 2);
  EXPECT_EQ(u2.trip_count(), 50);
  EXPECT_EQ(u2.body.size(), 6u);
  EXPECT_EQ(u2.name, "fig1_u2");
  // Instance 0 writes the odd elements, instance 1 the even ones.
  EXPECT_EQ(u2.body[2].lhs.index, (AffineIndex{2, -1}));  // A[2I-1]
  EXPECT_EQ(u2.body[5].lhs.index, (AffineIndex{2, 0}));   // A[2I]
}

TEST(Unroll, NonDivisibleFactorRejected) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  EXPECT_THROW((void)unroll_or_throw(loop, 3), SbmpError);
  DiagEngine diags;
  const Loop unchanged = unroll_loop(loop, 3, diags);
  EXPECT_FALSE(diags.ok());
  EXPECT_EQ(unchanged.body.size(), loop.body.size());
}

TEST(Unroll, DistancesCollapse) {
  // d=2 at factor 2 becomes d=1 within each instance; the d=1 pair
  // becomes a cross-instance loop-independent dep plus a d=1 carried.
  const Loop loop = parse_single_loop_or_throw(kFig1);
  const DepAnalysis original = analyze_dependences(loop);
  EXPECT_EQ(original.count_carried(), 2);
  const Loop u2 = unroll_or_throw(loop, 2);
  const DepAnalysis unrolled = analyze_dependences(u2);
  for (const auto& dep : unrolled.deps) {
    if (dep.loop_carried()) {
      EXPECT_EQ(dep.distance, 1) << dep.to_string();
    }
  }
  // Part of the original d=1 dependence became same-iteration flow.
  int intra = 0;
  for (const auto& dep : unrolled.deps) {
    if (!dep.loop_carried() && dep.kind == DepKind::kFlow &&
        dep.src_ref.array == "A")
      ++intra;
  }
  EXPECT_GE(intra, 1);
}

TEST(Unroll, DistanceEqualToFactorGivesIndependentChains) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-4] + B[I]
end
)");
  const Loop u4 = unroll_or_throw(loop, 4);
  const DepAnalysis deps = analyze_dependences(u4);
  // Four self-recurrences, one per instance, each at distance 1.
  EXPECT_EQ(deps.count_carried(), 4);
  for (const auto& dep : deps.deps) {
    if (dep.loop_carried()) {
      EXPECT_EQ(dep.distance, 1);
      EXPECT_EQ(dep.src_stmt, dep.snk_stmt);
    }
  }
}

TEST(Unroll, IterationValueUsesRewritten) {
  const Loop loop = parse_single_loop_or_throw(R"(
do I = 1, 10
  A[I] = B[I] * I
end
)");
  const Loop u2 = unroll_or_throw(loop, 2);
  // Instance 0 multiplies by 2I-1, instance 1 by 2I.
  EXPECT_EQ(expr_to_string(u2.body[0].rhs, "I"), "(B[2*I-1]*((2*I)-1))");
  EXPECT_EQ(expr_to_string(u2.body[1].rhs, "I"), "(B[2*I]*((2*I)+0))");
}

TEST(Unroll, PipelineCorrectAfterUnrolling) {
  const Loop loop = parse_single_loop_or_throw(kFig1);
  for (const int factor : {2, 4, 5}) {
    const Loop unrolled = unroll_or_throw(loop, factor);
    PipelineOptions options;
    options.iterations = 0;  // the unrolled trip count
    options.check_ordering = true;
    for (const auto kind : {SchedulerKind::kList, SchedulerKind::kSyncAware}) {
      options.scheduler = kind;
      const LoopReport report = run_pipeline(unrolled, options);
      EXPECT_TRUE(report.valid())
          << "factor " << factor << ", " << scheduler_name(kind);
    }
  }
}

TEST(Unroll, AmortizesSynchronizationOfConvertiblePairs) {
  // A loop dominated by per-iteration synchronization overhead: after
  // unrolling, sends/waits per original element drop.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  G[I] = F[I-1] + X[I]
  F[I] = Y[I] * c1 + X[I+1]
end
)");
  PipelineOptions options;
  options.iterations = 0;
  const std::int64_t t1 = run_pipeline(loop, options).parallel_time();
  const std::int64_t t4 =
      run_pipeline(unroll_or_throw(loop, 4), options).parallel_time();
  // Not asserting a specific win — only that the transformed loop is
  // correct and in the same performance regime (LFD-converted loops run
  // in one iteration time either way; the unrolled iteration is longer).
  EXPECT_GT(t4, 0);
  EXPECT_LT(t4, 8 * t1);
}

}  // namespace
}  // namespace sbmp
