// Cross-layer schedule validator tests: pairing integrity, the paper's
// two synchronization conditions, and the analytic cross-checks, plus
// the tolerance knob and the PipelineOptions::validate switch.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/sched/validate.h"
#include "sbmp/sim/fault.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

PipelineOptions paper_options() {
  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;
  return options;
}

bool any_contains(const std::vector<std::string>& msgs,
                  const std::string& needle) {
  return std::any_of(msgs.begin(), msgs.end(), [&](const std::string& m) {
    return m.find(needle) != std::string::npos;
  });
}

TEST(ValidatePipeline, CleanOnPaperExampleAndSuite) {
  const PipelineOptions options = paper_options();
  const LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  EXPECT_TRUE(report.validation_violations.empty());
  EXPECT_TRUE(validate_pipeline(report, options).empty());
  for (const auto& bench : perfect_suite()) {
    ProgramReport program = run_pipeline(bench.program(), options);
    for (const auto& loop : program.loops)
      EXPECT_TRUE(loop.validation_violations.empty())
          << bench.name << "/" << loop.name << ": "
          << (loop.validation_violations.empty()
                  ? ""
                  : loop.validation_violations.front());
  }
}

TEST(ValidatePipeline, HoistedSendViolatesCondition1) {
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  ASSERT_TRUE(apply_schedule_mutation(ScheduleMutation::kHoistSend,
                                      report.tac, report.dfg,
                                      report.schedule, options.machine));
  const std::vector<std::string> violations =
      validate_pipeline(report, options);
  EXPECT_TRUE(any_contains(violations, "sync condition 1 violated"))
      << (violations.empty() ? "no violations" : violations.front());
}

TEST(ValidatePipeline, SunkWaitViolatesCondition2) {
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  ASSERT_TRUE(apply_schedule_mutation(ScheduleMutation::kSinkWait,
                                      report.tac, report.dfg,
                                      report.schedule, options.machine));
  EXPECT_TRUE(any_contains(validate_pipeline(report, options),
                           "sync condition 2 violated"));
}

TEST(ValidatePipeline, DroppedArcCaughtWithoutDfgHelp) {
  // The validator re-resolves Src/Snk from the sync layer, so it flags
  // the reordering even though the DFG no longer carries the arc.
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  ASSERT_TRUE(apply_schedule_mutation(ScheduleMutation::kDropArc,
                                      report.tac, report.dfg,
                                      report.schedule, options.machine));
  report.sim = simulate(report.tac, *report.dfg, report.schedule,
                        options.machine,
                        SimOptions{options.resolved_iterations(report.loop),
                                   options.processors});
  EXPECT_TRUE(any_contains(validate_pipeline(report, options),
                           "sync condition 2 violated"));
}

TEST(ValidatePipeline, SimulatedTimeBelowAnalyticBoundFlagged) {
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  ASSERT_TRUE(validate_pipeline(report, options).empty());
  // A simulator "beating" the analytic lower bound is impossible for a
  // correct machine model, so a forged faster time must be flagged...
  report.sim.parallel_time = 1;
  EXPECT_FALSE(validate_pipeline(report, options).empty());
  // ...unless the tolerance grants the gap.
  PipelineOptions slack = options;
  slack.validate_tolerance = 1'000'000;
  EXPECT_TRUE(validate_pipeline(report, slack).empty());
}

TEST(ValidatePipeline, ToleranceNeverAffectsStructuralChecks) {
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  ASSERT_TRUE(apply_schedule_mutation(ScheduleMutation::kHoistSend,
                                      report.tac, report.dfg,
                                      report.schedule, options.machine));
  PipelineOptions slack = options;
  slack.validate_tolerance = 1'000'000;
  // Tolerance is cycle slack for the analytic cross-checks only; the
  // sync-condition violations are absolute.
  EXPECT_TRUE(any_contains(validate_pipeline(report, slack),
                           "sync condition 1 violated"));
}

TEST(ValidatePipeline, DisabledValidationSkipsTheChecks) {
  PipelineOptions options = paper_options();
  options.validate = false;
  const LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  EXPECT_TRUE(report.validation_violations.empty());
  EXPECT_TRUE(report.status.ok());
}

TEST(SyncPairing, CleanOnPaperExample) {
  const PipelineOptions options = paper_options();
  const LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  EXPECT_TRUE(verify_sync_pairing(report.tac, report.synced).empty());
}

TEST(SyncPairing, DuplicatedSendFlagged) {
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  const auto send = std::find_if(
      report.tac.instrs.begin(), report.tac.instrs.end(),
      [](const TacInstr& i) { return i.op == Opcode::kSend; });
  ASSERT_NE(send, report.tac.instrs.end());
  TacInstr duplicate = *send;
  duplicate.id = report.tac.size() + 1;
  report.tac.instrs.push_back(duplicate);
  const std::vector<std::string> violations =
      verify_sync_pairing(report.tac, report.synced);
  EXPECT_TRUE(any_contains(violations, "realized 2 times"));
  EXPECT_TRUE(any_contains(violations, "partner sends"));
}

TEST(SyncPairing, MissingWaitFlaggedUnlessEliminationRan) {
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  const auto wait = std::find_if(
      report.tac.instrs.begin(), report.tac.instrs.end(),
      [](const TacInstr& i) { return i.op == Opcode::kWait; });
  ASSERT_NE(wait, report.tac.instrs.end());
  report.tac.instrs.erase(wait);
  EXPECT_TRUE(any_contains(verify_sync_pairing(report.tac, report.synced),
                           "has no wait instruction"));
  // With the elimination pass acknowledged, a missing wait is legal.
  EXPECT_FALSE(any_contains(
      verify_sync_pairing(report.tac, report.synced,
                          /*waits_eliminated=*/true),
      "has no wait instruction"));
}

TEST(SyncPairing, CorruptedWaitDistanceFlagged) {
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  for (auto& instr : report.tac.instrs)
    if (instr.op == Opcode::kWait) {
      instr.sync_distance = 0;
      break;
    }
  const std::vector<std::string> violations =
      verify_sync_pairing(report.tac, report.synced);
  EXPECT_TRUE(any_contains(violations, "non-positive distance"));
  EXPECT_TRUE(any_contains(violations, "matches no sync-layer Wait_Signal"));
}

TEST(SyncConditions, CleanScheduleHasNoViolations) {
  const PipelineOptions options = paper_options();
  const LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  EXPECT_TRUE(verify_sync_conditions(report.tac, report.synced,
                                     report.schedule)
                  .empty());
}

TEST(ValidationFailure, SetsLoopStatusAndProgramFailure) {
  // A loop whose pipeline output fails validation must carry a
  // kValidation status, and the program aggregate must record it while
  // keeping the report.
  const PipelineOptions options = paper_options();
  LoopReport report =
      run_pipeline(parse_single_loop_or_throw(kFig1), options);
  EXPECT_TRUE(report.status.ok());
  report.validation_violations.push_back("synthetic violation");
  EXPECT_FALSE(report.valid());
}

}  // namespace
}  // namespace sbmp
