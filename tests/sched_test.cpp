#include <gtest/gtest.h>

#include "sbmp/codegen/codegen.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sim/analytic.h"
#include "sbmp/sync/sync.h"

namespace sbmp {
namespace {

constexpr const char* kFig1 = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

struct Built {
  TacFunction tac;
  Dfg dfg;
  MachineDesc config;
};

Built build(const char* src, MachineDesc config) {
  TacFunction tac = generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src)));
  Dfg dfg(tac, config);
  return {std::move(tac), std::move(dfg), config};
}

class AllSchedulersTest
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int, int>> {};

TEST_P(AllSchedulersTest, Fig1SchedulesAreValid) {
  const auto [kind, width, fus] = GetParam();
  const Built b = build(kFig1, machines::paper(width, fus));
  const Schedule s = run_scheduler(kind, b.tac, b.dfg, b.config, 100);
  const auto violations = verify_schedule(b.tac, b.dfg, b.config, s);
  EXPECT_TRUE(violations.empty())
      << scheduler_name(kind) << ": " << violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, AllSchedulersTest,
    ::testing::Combine(::testing::Values(SchedulerKind::kInOrder,
                                         SchedulerKind::kList,
                                         SchedulerKind::kSyncBarrier,
                                         SchedulerKind::kSyncAware),
                       ::testing::Values(2, 4),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      std::string name = scheduler_name(std::get<0>(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_w" + std::to_string(std::get<1>(info.param)) + "_fu" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ListScheduler, WaitsFloatEarly) {
  // The paper's observation: list scheduling pulls Wait_Signals to the
  // front (they have no predecessors and head long chains), stretching
  // the synchronization span.
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule s = schedule_list(b.tac, b.dfg, b.config);
  EXPECT_EQ(s.slot(1), 0);   // Wait(S3, I-2)
  EXPECT_EQ(s.slot(11), 0);  // Wait(S3, I-1)
  // The send trails at the very end.
  EXPECT_EQ(s.slot(28), s.length() - 1);
}

TEST(SyncAware, ConvertsWatGraphPairToLFD) {
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule s = schedule_sync_aware(b.tac, b.dfg, b.config, 100);
  // Wait2 (11, distance 1) pairs with the send (28) across components:
  // the technique schedules it after the send, making the pair LFD.
  EXPECT_GT(s.slot(11), s.slot(28));
}

TEST(SyncAware, ShrinksWorstSpanVersusList) {
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule list = schedule_list(b.tac, b.dfg, b.config);
  const Schedule ours = schedule_sync_aware(b.tac, b.dfg, b.config, 100);
  EXPECT_LT(worst_sync_span(b.dfg, ours), worst_sync_span(b.dfg, list));
}

TEST(SyncAware, PathNodesNearlyContiguous) {
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule s = schedule_sync_aware(b.tac, b.dfg, b.config, 100);
  // The distance-2 path 1->5->9->10->22->26->27->28 must be packed into
  // a span close to its own length (ancestor latencies allow small
  // gaps, but nothing like the list scheduler's full-body span).
  const int span = s.slot(28) - s.slot(1) + 1;
  EXPECT_LE(span, 11);
}

TEST(SyncAware, NeverWorseThanListOnFig1) {
  for (const int width : {2, 4}) {
    for (const int fus : {1, 2}) {
      const Built b = build(kFig1, machines::paper(width, fus));
      const Schedule list = schedule_list(b.tac, b.dfg, b.config);
      const Schedule ours = schedule_sync_aware(b.tac, b.dfg, b.config, 100);
      const std::int64_t l_list = list.length();
      const std::int64_t l_ours = ours.length();
      EXPECT_LE(analytic_lower_bound(b.dfg, ours, 100, l_ours),
                analytic_lower_bound(b.dfg, list, 100, l_list));
    }
  }
}

TEST(SyncAware, AblationContiguityOff) {
  const Built b = build(kFig1, machines::paper(4, 1));
  SyncAwareOptions options;
  options.contiguous_paths = false;
  const Schedule s =
      schedule_sync_aware(b.tac, b.dfg, b.config, 100, options);
  EXPECT_TRUE(verify_schedule(b.tac, b.dfg, b.config, s).empty());
}

TEST(SyncAware, AblationConversionOff) {
  const Built b = build(kFig1, machines::paper(4, 1));
  SyncAwareOptions options;
  options.convert_lfd = false;
  const Schedule s =
      schedule_sync_aware(b.tac, b.dfg, b.config, 100, options);
  EXPECT_TRUE(verify_schedule(b.tac, b.dfg, b.config, s).empty());
}

TEST(SyncBarrier, MarkersPinProgramOrder) {
  // Every instruction stays on its side of the surrounding sync markers.
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule s = schedule_sync_barrier(b.tac, b.dfg, b.config);
  EXPECT_TRUE(verify_schedule(b.tac, b.dfg, b.config, s).empty());
  for (const auto& marker : b.tac.instrs) {
    if (!marker.is_sync()) continue;
    for (const auto& other : b.tac.instrs) {
      if (other.id == marker.id) continue;
      if (other.id < marker.id) {
        EXPECT_LT(s.slot(other.id), s.slot(marker.id))
            << other.id << " vs marker " << marker.id;
      } else {
        EXPECT_GT(s.slot(other.id), s.slot(marker.id))
            << other.id << " vs marker " << marker.id;
      }
    }
  }
}

TEST(SyncBarrier, BetweenListAndSyncAwareOnFig1) {
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule list = schedule_list(b.tac, b.dfg, b.config);
  const Schedule barrier = schedule_sync_barrier(b.tac, b.dfg, b.config);
  const Schedule ours = schedule_sync_aware(b.tac, b.dfg, b.config, 100);
  // The markers keep the waits mid-body, so on this loop the estimated
  // parallel time beats plain list scheduling — but the barriers also
  // serialize the segments, so the active technique still wins.
  const auto bound = [&](const Schedule& s) {
    return analytic_lower_bound(b.dfg, s, 100, s.length());
  };
  EXPECT_LE(bound(barrier), bound(list));
  EXPECT_GE(bound(barrier), bound(ours));
}

TEST(InOrder, PreservesProgramOrderAcrossGroups) {
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule s = schedule_inorder(b.tac, b.dfg, b.config);
  for (int id = 2; id <= b.tac.size(); ++id) {
    EXPECT_LE(s.slot(id - 1), s.slot(id));
  }
}

TEST(InOrder, NeverShorterThanList) {
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule inorder = schedule_inorder(b.tac, b.dfg, b.config);
  const Schedule list = schedule_list(b.tac, b.dfg, b.config);
  EXPECT_GE(inorder.length(), list.length());
}

TEST(Verify, DetectsDoublePlacement) {
  const Built b = build(kFig1, machines::paper(4, 1));
  Schedule s = schedule_list(b.tac, b.dfg, b.config);
  s.groups[1].push_back(s.groups[0][0]);
  EXPECT_FALSE(verify_schedule(b.tac, b.dfg, b.config, s).empty());
}

TEST(Verify, DetectsCapacityOverflow) {
  const Built b = build(kFig1, machines::paper(2, 1));
  Schedule s = schedule_list(b.tac, b.dfg, b.config);
  // Move everything into group 0.
  Schedule broken;
  broken.slot_of.assign(s.slot_of.size(), 0);
  broken.groups.emplace_back();
  for (int id = 1; id <= b.tac.size(); ++id)
    broken.groups[0].push_back(id);
  EXPECT_FALSE(verify_schedule(b.tac, b.dfg, b.config, broken).empty());
}

TEST(Verify, DetectsLatencyViolation) {
  const Built b = build(kFig1, machines::paper(4, 1));
  Schedule s = schedule_list(b.tac, b.dfg, b.config);
  // Swap the slots of a producer/consumer pair (3 -> 4).
  const int s3 = s.slot(3);
  const int s4 = s.slot(4);
  auto& g3 = s.groups[static_cast<std::size_t>(s3)];
  auto& g4 = s.groups[static_cast<std::size_t>(s4)];
  g3.erase(std::find(g3.begin(), g3.end(), 3));
  g4.erase(std::find(g4.begin(), g4.end(), 4));
  g3.push_back(4);
  g4.push_back(3);
  s.slot_of[3] = s4;
  s.slot_of[4] = s3;
  EXPECT_FALSE(verify_schedule(b.tac, b.dfg, b.config, s).empty());
}

/// Moves instruction `id` into group `to`, keeping slot_of consistent.
void move_to_group(Schedule& s, int id, int to) {
  auto& from = s.groups[static_cast<std::size_t>(s.slot(id))];
  from.erase(std::find(from.begin(), from.end(), id));
  s.groups[static_cast<std::size_t>(to)].push_back(id);
  s.slot_of[static_cast<std::size_t>(id)] = to;
}

TEST(Verify, LatencyViolationMessageNamesEdgeSlotsAndLatency) {
  const Built b = build(kFig1, machines::paper(4, 1));
  Schedule s = schedule_list(b.tac, b.dfg, b.config);
  // Pick any positive-latency edge and co-schedule its endpoints.
  int from = 0, to = 0, latency = 0;
  for (int id = 1; id <= b.tac.size() && from == 0; ++id)
    for (const auto& e : b.dfg.succs(id))
      if (e.latency > 0) {
        from = e.from;
        to = e.to;
        latency = e.latency;
        break;
      }
  ASSERT_GT(latency, 0);
  move_to_group(s, to, s.slot(from));
  const auto violations = verify_schedule(b.tac, b.dfg, b.config, s);
  ASSERT_FALSE(violations.empty());
  // The diagnostic must pinpoint the edge, both slots and the latency,
  // so a failure is actionable without re-deriving the DFG.
  const std::string expected = "edge " + std::to_string(from) + " -> " +
                               std::to_string(to) + " violated: slots " +
                               std::to_string(s.slot(from)) + " -> " +
                               std::to_string(s.slot(to)) + ", latency " +
                               std::to_string(latency);
  EXPECT_NE(std::find(violations.begin(), violations.end(), expected),
            violations.end())
      << violations.front();
}

TEST(Verify, FuOversubscriptionIsNotAnIssueWidthViolation) {
  // Two multiplies fit a 4-wide issue group but oversubscribe the
  // single multiplier: the FU check must fire on its own.
  const Built b = build(
      "doacross I = 1, 10\n"
      "  B[I] = A[I-1] * c1\n"
      "  D[I] = E[I] * c2\n"
      "end",
      machines::paper(4, 1));
  std::vector<int> muls;
  for (const auto& instr : b.tac.instrs)
    if (instr.fu() == FuClass::kMult) muls.push_back(instr.id);
  ASSERT_GE(muls.size(), 2u);
  Schedule s = schedule_list(b.tac, b.dfg, b.config);
  move_to_group(s, muls[1], s.slot(muls[0]));
  const auto violations = verify_schedule(b.tac, b.dfg, b.config, s);
  bool oversubscribed = false, width = false;
  for (const auto& msg : violations) {
    if (msg.find("oversubscribes") != std::string::npos) oversubscribed = true;
    if (msg.find("> width") != std::string::npos) width = true;
  }
  EXPECT_TRUE(oversubscribed)
      << (violations.empty() ? "no violations" : violations.front());
  EXPECT_FALSE(width) << "2 instructions cannot exceed a 4-wide issue";
}

TEST(Verify, SyncConsumesSlotAccounting) {
  // On a 1-wide machine a group holding {op, wait} is legal only while
  // synchronization instructions ride for free; the sync_consumes_slot
  // machine must reject the very same schedule.
  MachineDesc config = machines::paper(1, 1);
  config.sync_consumes_slot = false;
  const Built b = build(kFig1, config);
  int wait_id = 0;
  for (const auto& instr : b.tac.instrs)
    if (instr.op == Opcode::kWait) wait_id = instr.id;
  ASSERT_GT(wait_id, 0);
  Schedule s = schedule_list(b.tac, b.dfg, b.config);
  // Find a group already holding one non-sync instruction, at or after
  // the wait's slot so no dependence edge is disturbed.
  int target = -1;
  for (std::size_t g = static_cast<std::size_t>(s.slot(wait_id));
       g < s.groups.size(); ++g) {
    int non_sync = 0;
    bool has_wait = false;
    for (const int id : s.groups[g]) {
      if (!b.tac.by_id(id).is_sync()) ++non_sync;
      if (id == wait_id) has_wait = true;
    }
    if (non_sync == 1 && !has_wait) {
      target = static_cast<int>(g);
      break;
    }
  }
  ASSERT_GE(target, 0);
  move_to_group(s, wait_id, target);
  // verify_schedule may flag sync-arc edges the move disturbed; the
  // issue-width accounting is what must differ between the two modes.
  const auto count_width = [&](const MachineDesc& c) {
    int n = 0;
    for (const auto& msg : verify_schedule(b.tac, b.dfg, c, s))
      if (msg.find("> width") != std::string::npos) ++n;
    return n;
  };
  EXPECT_EQ(count_width(config), 0);
  MachineDesc strict = config;
  strict.sync_consumes_slot = true;
  EXPECT_GT(count_width(strict), 0);
}

TEST(Schedule, ToStringMatchesFig4Style) {
  const Built b = build(kFig1, machines::paper(4, 1));
  const Schedule s = schedule_list(b.tac, b.dfg, b.config);
  const std::string text = s.to_string(b.tac, 4);
  EXPECT_NE(text.find("Wait_Signal(S3, I-2)"), std::string::npos);
  EXPECT_NE(text.find("Send_Signal(S3)"), std::string::npos);
  EXPECT_NE(text.find("("), std::string::npos);
  EXPECT_NE(text.find("-)"), std::string::npos) << "short lanes padded";
}

TEST(Schedule, MultiCycleLatenciesSpaceGroups) {
  MachineDesc config = machines::paper(4, 1);
  const Built b = build(R"(
doacross I = 1, 10
  A[I] = A[I-1] / B[I]
end
)", config);
  const Schedule s = schedule_list(b.tac, b.dfg, b.config);
  // Find div -> store spacing: at least the divider latency (6).
  for (const auto& instr : b.tac.instrs) {
    if (instr.op != Opcode::kDiv) continue;
    for (const auto& e : b.dfg.succs(instr.id)) {
      EXPECT_GE(s.slot(e.to) - s.slot(instr.id), 6);
    }
  }
}

TEST(Scheduler, NamesAreStable) {
  EXPECT_STREQ(scheduler_name(SchedulerKind::kInOrder), "in-order");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kList), "list");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kSyncAware), "sync-aware");
}

}  // namespace
}  // namespace sbmp
