// Access-level redundant-wait elimination (sbmp/dfg/redundancy.h), and a
// demonstration of why the classic statement-level covering test is not
// sufficient once instructions are scheduled.
#include <gtest/gtest.h>

#include "sbmp/codegen/codegen.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/dfg/redundancy.h"

namespace sbmp {
namespace {

TacFunction lower(const char* src, SyncOptions sync = {}) {
  return generate_tac(
      insert_synchronization(parse_single_loop_or_throw(src), sync));
}

int count_waits(const TacFunction& tac) {
  int waits = 0;
  for (const auto& instr : tac.instrs)
    if (instr.op == Opcode::kWait) ++waits;
  return waits;
}

TEST(AccessRedundancy, SelfRecurrencePairNotReducible) {
  // Statement-level covering calls the d=2 wait redundant, but dropping
  // it would let the A[I-2] load issue in cycle 0 ahead of the covering
  // chain; the access-level analysis must keep it.
  const TacFunction tac = lower(R"(
doacross I = 1, 100
  A[I] = A[I-1] + A[I-2]
end
)");
  const Dfg dfg(tac, machines::paper(4, 1));
  EXPECT_TRUE(find_redundant_wait_instrs(tac, dfg).empty());
}

TEST(AccessRedundancy, MultiWriterChainReducible) {
  // S1 writes X[I], S2 overwrites X[I-1], S3 reads X[I-3]. The read's
  // dependence on S1 (d=3) is covered at the access level: the chain
  // store_S1 -> send_S1 -> wait(S1,d1 before S2's store) -> store_S2 ->
  // send_S2 -> wait(S2,d2 before the load) ends in an arc into the very
  // sink access.
  const TacFunction tac = lower(R"(
doacross I = 1, 100
  X[I] = A[I] + 1
  X[I-1] = B[I] * 2
  Y[I] = X[I-3] + C[I]
end
)");
  const Dfg dfg(tac, machines::paper(4, 1));
  const auto redundant = find_redundant_wait_instrs(tac, dfg);
  ASSERT_EQ(redundant.size(), 1u);
  const auto& dropped = tac.by_id(redundant[0]);
  EXPECT_EQ(dropped.signal_stmt, 1);
  EXPECT_EQ(dropped.sync_distance, 3);
}

TEST(AccessRedundancy, RemoveWaitsRenumbersAndRemaps) {
  const TacFunction tac = lower(R"(
doacross I = 1, 100
  X[I] = A[I] + 1
  X[I-1] = B[I] * 2
  Y[I] = X[I-3] + C[I]
end
)");
  int removed = 0;
  const TacFunction reduced =
      eliminate_redundant_waits(tac, machines::paper(4, 1), &removed);
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(reduced.size(), tac.size() - 1);
  EXPECT_EQ(count_waits(reduced), count_waits(tac) - 1);
  // Ids are dense and guards valid.
  for (int id = 1; id <= reduced.size(); ++id) {
    EXPECT_EQ(reduced.by_id(id).id, id);
    for (const int g : reduced.by_id(id).guarded_instrs) {
      EXPECT_GE(g, 1);
      EXPECT_LE(g, reduced.size());
    }
  }
}

TEST(AccessRedundancy, DeadSendDroppedWithItsLastWait) {
  // Single pair; force-remove its wait and check the send goes too.
  const TacFunction tac = lower(R"(
doacross I = 1, 100
  A[I] = A[I-1] + B[I]
end
)");
  int wait_id = 0;
  for (const auto& instr : tac.instrs)
    if (instr.op == Opcode::kWait) wait_id = instr.id;
  const TacFunction reduced = remove_waits(tac, {wait_id});
  for (const auto& instr : reduced.instrs) EXPECT_FALSE(instr.is_sync());
}

TEST(AccessRedundancy, NoFalsePositivesOnFig1) {
  const TacFunction tac = lower(R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)");
  const Dfg dfg(tac, machines::paper(4, 1));
  EXPECT_TRUE(find_redundant_wait_instrs(tac, dfg).empty());
}

TEST(AccessRedundancy, ReducedLoopStillCorrectEndToEnd) {
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  X[I] = A[I] + 1
  X[I-1] = B[I] * 2
  Y[I] = X[I-3] + C[I]
end
)");
  PipelineOptions options;
  options.eliminate_redundant_waits = true;
  options.check_ordering = true;
  for (const auto kind : {SchedulerKind::kInOrder, SchedulerKind::kList,
                          SchedulerKind::kSyncAware}) {
    options.scheduler = kind;
    const LoopReport report = run_pipeline(loop, options);
    EXPECT_EQ(report.waits_eliminated, 1) << scheduler_name(kind);
    EXPECT_TRUE(report.valid()) << scheduler_name(kind);
  }
}

TEST(StatementRedundancy, UnsoundUnderSchedulingDemonstrated) {
  // Statement-level covering holds for in-order statement execution,
  // but applying it before instruction scheduling can let a scheduler
  // hoist an unguarded sink load past the covering chain. (Simple
  // single-statement cases are often masked by in-order group issue —
  // anything at or after a slot-0 wait is stall-protected — so this
  // uses a multi-statement loop, found by the seeded property sweep,
  // where the hoisted load genuinely reads stale data.) This documents
  // why the pipeline uses the access-level pass instead.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A1[I] = c4 + X2[I-2] + X3[I+2] + A6[I-3]
  A2[I] = A1[I+2] + A5[I-3] + X2[I+3] + 6
  A3[I] = (A5[I-2] + A2[I+3]) * 8
  A4[I] = (A2[I-3] + A4[I-2] + c4) / c3
  A5[I] = X2[I] * X1[I-3]
  A6[I] = A6[I-2] + A6[I-3] + X4[I+1]
end
)");
  PipelineOptions options;
  options.sync.eliminate_redundant = true;  // statement-level (unsound here)
  options.scheduler = SchedulerKind::kSyncAware;
  options.never_degrade = false;
  options.iterations = 60;
  options.check_ordering = true;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_FALSE(report.ordering_violations.empty());
}

TEST(StatementRedundancy, SoundForInOrderStatementExecution) {
  // The same transformation is fine when each iteration executes its
  // statements in program order: the in-order scheduler keeps the loads
  // behind the remaining wait because the wait precedes them textually.
  const Loop loop = parse_single_loop_or_throw(R"(
doacross I = 1, 100
  A[I] = A[I-1] + A[I-2]
end
)");
  PipelineOptions options;
  options.sync.eliminate_redundant = true;
  options.scheduler = SchedulerKind::kInOrder;
  options.check_ordering = true;
  const LoopReport report = run_pipeline(loop, options);
  EXPECT_TRUE(report.ordering_violations.empty());
}

}  // namespace
}  // namespace sbmp
