#include "sbmp/obs/trace.h"

#include <cctype>
#include <fstream>
#include <functional>
#include <thread>
#include <utility>

#include "sbmp/support/strings.h"

namespace sbmp {

Tracer::Span::Span(Tracer* tracer, const char* name)
    : tracer_(tracer), name_(name), start_ns_(tracer->now_ns()) {}

void Tracer::Span::close() {
  if (tracer_ == nullptr) return;
  Event event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = tracer_->now_ns() - start_ns_;
  event.tid = 0;  // assigned at publish
  event.args = std::move(args_);
  tracer_->publish(std::move(event));
  tracer_ = nullptr;
}

void Tracer::publish(Event event) {
  const std::uint64_t hashed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard<std::mutex> lock(mu_);
  int tid = -1;
  for (std::size_t i = 0; i < thread_ids_.size(); ++i) {
    if (thread_ids_[i] == hashed) {
      tid = static_cast<int>(i);
      break;
    }
  }
  if (tid < 0) {
    tid = static_cast<int>(thread_ids_.size());
    thread_ids_.push_back(hashed);
  }
  event.tid = tid;
  if (blocks_.empty() || blocks_.back().size() == kBlockEvents) {
    blocks_.emplace_back();
    blocks_.back().reserve(kBlockEvents);
  }
  blocks_.back().push_back(std::move(event));
  ++count_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::vector<Tracer::Event> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(count_);
  for (const auto& block : blocks_)
    out.insert(out.end(), block.begin(), block.end());
  return out;
}

namespace {

/// JSON string escaping: quotes, backslashes, and control characters
/// (loop names are identifiers today, but a diagnostic or a fuzz-built
/// name must not be able to corrupt the trace document).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  const std::vector<Event> events = this->events();
  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    append_json_string(out, event.name);
    appendf(out, ",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
            event.tid, static_cast<double>(event.start_ns) / 1000.0,
            static_cast<double>(event.duration_ns) / 1000.0);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out += ',';
        const Arg& arg = event.args[i];
        append_json_string(out, arg.key);
        out += ':';
        if (arg.is_string) {
          append_json_string(out, arg.svalue);
        } else {
          appendf(out, "%lld", static_cast<long long>(arg.ivalue));
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good())
    return Status::error(StatusCode::kInternal, "trace",
                         "cannot open '" + path + "' for writing");
  const std::string json = to_chrome_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out.good())
    return Status::error(StatusCode::kInternal, "trace",
                         "short write to '" + path + "'");
  return Status::okay();
}

// ---------------------------------------------------------------------
// Minimal structural JSON validator for Chrome trace documents. A full
// JSON library is out of scope (and out of the dependency budget); this
// recursive-descent scanner validates syntax and the trace-event shape
// without building a DOM.

namespace {

class JsonScanner {
 public:
  explicit JsonScanner(std::string_view s) : s_(s) {}

  [[nodiscard]] Status validate_trace() {
    skip_ws();
    if (peek() != '{') return fail("document must be a JSON object");
    bool saw_events = false;
    if (Status s = parse_object([&](const std::string& key) -> Status {
          if (key == "traceEvents") {
            saw_events = true;
            return parse_event_array();
          }
          return parse_value();
        });
        !s.ok())
      return s;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing bytes after the document");
    if (!saw_events) return fail("document carries no \"traceEvents\" array");
    return Status::okay();
  }

 private:
  [[nodiscard]] Status fail(const std::string& what) const {
    return Status::error(StatusCode::kInput, "trace-json",
                         what + " (at byte " + std::to_string(pos_) + ")");
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  [[nodiscard]] Status parse_string(std::string* out) {
    skip_ws();
    if (!consume('"')) return fail("expected string");
    std::string value;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        if (out != nullptr) *out = std::move(value);
        return Status::okay();
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character inside string");
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("truncated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'b': case 'f': case 'n': case 'r': case 't': break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
                return fail("bad \\u escape");
              ++pos_;
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        value += c;
      }
    }
    return fail("unterminated string");
  }

  [[nodiscard]] Status parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    return Status::okay();
  }

  [[nodiscard]] Status parse_object(
      const std::function<Status(const std::string&)>& on_key) {
    if (!consume('{')) return fail("expected '{'");
    if (consume('}')) return Status::okay();
    for (;;) {
      std::string key;
      if (Status s = parse_string(&key); !s.ok()) return s;
      if (!consume(':')) return fail("expected ':'");
      if (Status s = on_key(key); !s.ok()) return s;
      if (consume(',')) continue;
      if (consume('}')) return Status::okay();
      return fail("expected ',' or '}'");
    }
  }

  [[nodiscard]] Status parse_array(const std::function<Status()>& on_element) {
    if (!consume('[')) return fail("expected '['");
    if (consume(']')) return Status::okay();
    for (;;) {
      if (Status s = on_element(); !s.ok()) return s;
      if (consume(',')) continue;
      if (consume(']')) return Status::okay();
      return fail("expected ',' or ']'");
    }
  }

  [[nodiscard]] Status parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object([&](const std::string&) { return parse_value(); });
      case '[':
        return parse_array([&] { return parse_value(); });
      case '"':
        return parse_string(nullptr);
      case 't':
        return consume_word("true");
      case 'f':
        return consume_word("false");
      case 'n':
        return consume_word("null");
      default:
        return parse_number();
    }
  }

  [[nodiscard]] Status consume_word(std::string_view word) {
    skip_ws();
    if (s_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return Status::okay();
  }

  [[nodiscard]] Status parse_event_array() {
    std::size_t index = 0;
    return parse_array([&]() -> Status {
      skip_ws();
      if (peek() != '{')
        return fail("traceEvents[" + std::to_string(index) +
                    "] is not an object");
      bool has_name = false, has_ph = false, has_ts = false, has_dur = false;
      std::string ph;
      if (Status s = parse_object([&](const std::string& key) -> Status {
            if (key == "name") {
              has_name = true;
              return parse_string(nullptr);
            }
            if (key == "ph") {
              has_ph = true;
              return parse_string(&ph);
            }
            if (key == "ts") {
              has_ts = true;
              return parse_number();
            }
            if (key == "dur") {
              has_dur = true;
              return parse_number();
            }
            return parse_value();
          });
          !s.ok())
        return s;
      const std::string at = "traceEvents[" + std::to_string(index) + "]";
      if (!has_name) return fail(at + " lacks \"name\"");
      if (!has_ph) return fail(at + " lacks \"ph\"");
      if (!has_ts) return fail(at + " lacks \"ts\"");
      if (ph == "X" && !has_dur)
        return fail(at + " is a complete event without \"dur\"");
      ++index;
      return Status::okay();
    });
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Status validate_chrome_trace(std::string_view json) {
  return JsonScanner(json).validate_trace();
}

}  // namespace sbmp
