#include "sbmp/obs/metrics.h"

#include <algorithm>

#include "sbmp/support/strings.h"

namespace sbmp {

MetricsRegistry::MetricsRegistry() : id_([] {
  // 1-based so 0 stays free as a "no registry seen yet" sentinel in
  // caller-side caches.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}()) {}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() +
                                                             1)) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(std::int64_t value) {
  // Branchless-enough: bounds are few (a dozen), a linear scan beats a
  // binary search at this size and keeps the write path trivially
  // thread-safe (one relaxed fetch_add per instrument).
  std::size_t bucket = bounds_.size();  // +Inf overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(std::string_view name,
                                                     std::string_view labels,
                                                     MetricSample::Kind kind) {
  for (auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      // Same (name, labels) with a different kind is a programming error;
      // fold it to "first registration wins" so a race cannot crash a
      // monitoring path (the caller gets nullptr and must re-register).
      return entry->kind == kind ? entry.get() : nullptr;
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* hit = find_locked(name, labels, MetricSample::Kind::kCounter))
    return hit->counter.get();
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::string(labels);
  entry->kind = MetricSample::Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* hit = find_locked(name, labels, MetricSample::Kind::kGauge))
    return hit->gauge.get();
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::string(labels);
  entry->kind = MetricSample::Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::histogram(
    std::string_view name, std::string_view labels,
    const std::vector<std::int64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* hit = find_locked(name, labels, MetricSample::Kind::kHistogram))
    return hit->histogram.get();
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::string(labels);
  entry->kind = MetricSample::Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(bounds);
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.samples.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSample sample;
      sample.name = entry->name;
      sample.labels = entry->labels;
      sample.kind = entry->kind;
      switch (entry->kind) {
        case MetricSample::Kind::kCounter:
          sample.value = entry->counter->value();
          break;
        case MetricSample::Kind::kGauge:
          sample.value = entry->gauge->value();
          break;
        case MetricSample::Kind::kHistogram:
          sample.bounds = entry->histogram->bounds();
          sample.counts = entry->histogram->bucket_counts();
          sample.count = entry->histogram->count();
          sample.sum = entry->histogram->sum();
          break;
      }
      out.samples.push_back(std::move(sample));
    }
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return out;
}

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          std::string_view labels) const {
  for (const auto& sample : samples)
    if (sample.name == name && sample.labels == labels) return &sample;
  return nullptr;
}

namespace {

/// `name{labels}` or `name{labels,extra}` with empty pieces elided.
void append_series(std::string& out, const std::string& name,
                   const std::string& suffix, const std::string& labels,
                   const std::string& extra) {
  out += name;
  out += suffix;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  out += ' ';
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  std::string last_name;
  for (const auto& sample : samples) {
    if (sample.name != last_name) {
      const char* type =
          sample.kind == MetricSample::Kind::kCounter   ? "counter"
          : sample.kind == MetricSample::Kind::kGauge   ? "gauge"
                                                        : "histogram";
      appendf(out, "# TYPE %s %s\n", sample.name.c_str(), type);
      last_name = sample.name;
    }
    if (sample.kind == MetricSample::Kind::kHistogram) {
      std::int64_t cumulative = 0;
      for (std::size_t i = 0; i < sample.counts.size(); ++i) {
        cumulative += sample.counts[i];
        const std::string le =
            i < sample.bounds.size()
                ? "le=\"" + std::to_string(sample.bounds[i]) + "\""
                : std::string("le=\"+Inf\"");
        append_series(out, sample.name, "_bucket", sample.labels, le);
        appendf(out, "%lld\n", static_cast<long long>(cumulative));
      }
      append_series(out, sample.name, "_sum", sample.labels, "");
      appendf(out, "%lld\n", static_cast<long long>(sample.sum));
      append_series(out, sample.name, "_count", sample.labels, "");
      appendf(out, "%lld\n", static_cast<long long>(sample.count));
    } else {
      append_series(out, sample.name, "", sample.labels, "");
      appendf(out, "%lld\n", static_cast<long long>(sample.value));
    }
  }
  return out;
}

const std::vector<std::int64_t>& phase_latency_bounds_ns() {
  // 1µs .. ~4.3s in powers of four: a compile phase on this machine runs
  // single-digit µs to low ms, and the tails (cold caches, sanitizers,
  // giant fuzz loops) still land in a real bucket instead of +Inf.
  static const std::vector<std::int64_t> bounds = [] {
    std::vector<std::int64_t> out;
    for (std::int64_t b = 1000; b <= 4'294'967'296ll; b *= 4)
      out.push_back(b);
    return out;
  }();
  return bounds;
}

const std::vector<std::int64_t>& serve_wait_bounds_ms() {
  // 1ms .. ~4s in powers of two: queue waits and backoffs are bounded
  // by the serving deadlines (hundreds of ms), so the whole operating
  // range lands in real buckets and anything above is already an SLO
  // violation worth a +Inf tick.
  static const std::vector<std::int64_t> bounds = [] {
    std::vector<std::int64_t> out;
    for (std::int64_t b = 1; b <= 4096; b *= 2) out.push_back(b);
    return out;
  }();
  return bounds;
}

Histogram* compile_phase_histogram(MetricsRegistry& registry,
                                   std::string_view phase) {
  std::string labels = "phase=\"";
  labels += phase;
  labels += '"';
  return registry.histogram("sbmp_compile_phase_ns", labels,
                            phase_latency_bounds_ns());
}

}  // namespace sbmp
