#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sbmp {

/// Unified metrics API for the whole pipeline (the observability layer's
/// counterpart to Status for errors).
///
/// Every component that used to keep an ad-hoc statistics struct —
/// DiskCache::Stats, the ScheduleServer tallies, ResultCache hit/miss —
/// now ticks instruments owned by a MetricsRegistry and keeps its old
/// accessor only as a compatibility shim reading those instruments back.
/// One registry therefore describes a whole process (daemon, CLI run,
/// bench), can be snapshotted atomically enough for monitoring, and
/// renders directly to Prometheus text exposition format.
///
/// Concurrency contract: instrument handles returned by the registry are
/// stable for the registry's lifetime and every mutation is a relaxed
/// atomic — safe to hammer from any number of threads with no ordering
/// guarantees between instruments. Registration takes a mutex; hot paths
/// should resolve handles once and keep them.

/// Monotonically increasing count.
class Counter {
 public:
  void inc(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency/size histogram. Bucket bounds are inclusive
/// upper limits in ascending order; one implicit overflow bucket (+Inf)
/// catches everything above the last bound, Prometheus-style, so
/// `observe` can never lose a sample.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t value);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is +Inf).
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  const std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Point-in-time copy of one instrument.
struct MetricSample {
  enum class Kind : std::int64_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  std::string name;    ///< Prometheus metric name ([a-zA-Z_][a-zA-Z0-9_]*)
  std::string labels;  ///< rendered label pairs, e.g. `phase="dep"`; may be ""
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;  ///< counter / gauge
  // Histogram only:
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1, last is +Inf
  std::int64_t count = 0;
  std::int64_t sum = 0;
};

/// Consistent-enough snapshot of a registry: each instrument is read
/// atomically, ordering between instruments is best-effort (standard for
/// scrape-style monitoring).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< sorted by (name, labels)

  [[nodiscard]] const MetricSample* find(std::string_view name,
                                         std::string_view labels = "") const;
  /// Prometheus text exposition format (one `# TYPE` line per metric
  /// name, `_bucket`/`_sum`/`_count` expansion for histograms).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Owner of named instruments. Handles are created on first request and
/// returned again (same pointer) for the same (name, labels) pair; a
/// histogram's bucket bounds are fixed by its first registration.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter* counter(std::string_view name,
                                 std::string_view labels = "");
  [[nodiscard]] Gauge* gauge(std::string_view name,
                             std::string_view labels = "");
  /// `bounds` is copied only when this call registers the histogram; a
  /// repeat lookup of an existing (name, labels) touches nothing.
  [[nodiscard]] Histogram* histogram(std::string_view name,
                                     std::string_view labels,
                                     const std::vector<std::int64_t>& bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Process-unique, never-reused id of this registry instance. Hot
  /// paths that resolve the same instruments for every observation may
  /// cache the returned pointers keyed by this id: a pointer cached
  /// under the current id can never alias a destroyed registry whose
  /// heap address was recycled (ids are not).
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  struct Entry {
    std::string name;
    std::string labels;
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  [[nodiscard]] Entry* find_locked(std::string_view name,
                                   std::string_view labels,
                                   MetricSample::Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  const std::uint64_t id_;
};

/// Canonical bucket bounds (nanoseconds) for compile-phase latency
/// histograms: 1µs to ~4s in powers of four, the range a pipeline phase
/// can plausibly span.
[[nodiscard]] const std::vector<std::int64_t>& phase_latency_bounds_ns();

/// Canonical bucket bounds (milliseconds) for serving-path wait
/// histograms — admission-queue waits, retry backoffs, frame-transfer
/// times: 1ms to ~4s in powers of two, the range bounded by the serving
/// deadlines (docs/serving.md).
[[nodiscard]] const std::vector<std::int64_t>& serve_wait_bounds_ms();

/// The per-phase compile latency histogram, under its canonical name
/// `sbmp_compile_phase_ns{phase="<phase>"}`. Every layer that times a
/// pipeline phase resolves through here so the daemon's Prometheus dump,
/// the STAT frame and the bench breakdowns all agree on the series.
[[nodiscard]] Histogram* compile_phase_histogram(MetricsRegistry& registry,
                                                 std::string_view phase);

}  // namespace sbmp
