#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sbmp/support/status.h"

namespace sbmp {

/// Span-based phase tracer emitting Chrome trace-event JSON (loadable in
/// chrome://tracing, Perfetto, or speedscope).
///
/// Usage: hold a Tracer for the run, open RAII spans around phases, and
/// write the JSON at the end. Spans are obtained through the static
/// `Tracer::begin(tracer, name)` so call sites can pass a nullptr
/// tracer: the returned span is detached and the whole path — including
/// the clock reads — costs two pointer tests. The same applies to a
/// constructed-but-disabled tracer (`Tracer(false)`), which is the
/// "instrumentation linked in but not requested" configuration the
/// golden/byte-identity suites run under.
///
/// Thread safety: spans may be opened and closed concurrently from any
/// thread (the parallel engine's workers each trace their own loops);
/// each span buffers locally and publishes once, at close, under the
/// tracer's mutex. Events carry a small dense thread id assigned in
/// first-publish order, so the trace viewer groups rows stably.
class Tracer {
 public:
  struct Arg {
    std::string key;
    std::int64_t ivalue = 0;
    std::string svalue;
    bool is_string = false;
  };

  struct Event {
    const char* name;  ///< static-duration phase name
    std::int64_t start_ns;
    std::int64_t duration_ns;
    int tid;
    std::vector<Arg> args;
  };

  explicit Tracer(bool enabled = true) : enabled_(enabled) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// RAII span over one phase. Detached (moved-from, or begun on a null
  /// or disabled tracer) spans ignore every call.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        close();
        tracer_ = other.tracer_;
        name_ = other.name_;
        start_ns_ = other.start_ns_;
        args_ = std::move(other.args_);
        other.tracer_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    /// Attaches an argument, rendered into the event's "args" object.
    /// The first arg reserves for the typical full set (the pipeline
    /// span carries ~9), so repeated attachment doesn't regrow the
    /// vector four times per span.
    void arg(std::string_view key, std::int64_t value) {
      if (tracer_ == nullptr) return;
      if (args_.empty()) args_.reserve(9);
      args_.push_back({std::string(key), value, {}, false});
    }
    void arg(std::string_view key, std::string_view value) {
      if (tracer_ == nullptr) return;
      if (args_.empty()) args_.reserve(9);
      args_.push_back({std::string(key), 0, std::string(value), true});
    }

    [[nodiscard]] explicit operator bool() const { return tracer_ != nullptr; }

    /// Publishes the event now (idempotent; the destructor otherwise
    /// does it).
    void close();

   private:
    friend class Tracer;
    Span(Tracer* tracer, const char* name);

    Tracer* tracer_ = nullptr;
    const char* name_ = nullptr;
    std::int64_t start_ns_ = 0;
    std::vector<Arg> args_;
  };

  /// The one way to open a span; `tracer` may be nullptr (detached span).
  /// `name` must have static storage duration (phase names are string
  /// literals) — the span stores the pointer, not a copy.
  [[nodiscard]] static Span begin(Tracer* tracer, const char* name) {
    if (tracer == nullptr || !tracer->enabled_) return Span();
    return Span(tracer, name);
  }

  [[nodiscard]] std::size_t event_count() const;
  /// Completed events in publish order (a copy; safe while tracing).
  [[nodiscard]] std::vector<Event> events() const;

  /// Renders `{"traceEvents":[...]}` — the Chrome trace-event JSON
  /// object form. Timestamps are microseconds with sub-µs fraction.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; kInternal Status on IO failure.
  [[nodiscard]] Status write_chrome_json(const std::string& path) const;

 private:
  [[nodiscard]] std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }
  void publish(Event event);

  /// Events are stored in fixed-size blocks rather than one contiguous
  /// vector: a long traced run publishes hundreds of thousands of spans,
  /// and geometric growth of a single multi-megabyte vector would move
  /// every prior event on each realloc — a cost that lands inside
  /// whatever span happens to close at the growth boundary and skews the
  /// trace it is recording. Appending to a reserved 1K block keeps
  /// publish O(1) in the worst case, not just amortized. Publish order
  /// is the block order, so no sequence numbers are needed.
  static constexpr std::size_t kBlockEvents = 1024;

  const bool enabled_;
  const std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  std::vector<std::vector<Event>> blocks_;  ///< publish order, ≤1K each
  std::size_t count_ = 0;
  std::vector<std::uint64_t> thread_ids_;  ///< hashed id -> dense index
};

/// Structural check of a Chrome trace-event JSON document: the bytes
/// must parse as JSON, carry a "traceEvents" array, and every event must
/// be an object with "name", "ph" and "ts" (complete events also "dur").
/// Shared by the tools/trace_check CLI and the unit tests, so the CI
/// gate and the in-process assertions cannot drift apart.
[[nodiscard]] Status validate_chrome_trace(std::string_view json);

}  // namespace sbmp
