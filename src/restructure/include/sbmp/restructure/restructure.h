#pragma once

#include <string>
#include <vector>

#include "sbmp/ir/preloop.h"
#include "sbmp/support/diagnostics.h"

namespace sbmp {

/// One restructuring transformation applied to a loop. These are the
/// three transformations the paper (following Chen & Yew's measurement)
/// uses to convert DO loops into synchronizable DOACROSS form:
/// induction-variable substitution, reduction replacement and scalar
/// expansion.
struct RestructureNote {
  enum class Kind {
    kInductionSubstitution,
    kReductionReplacement,
    kScalarExpansion,
  };
  Kind kind = Kind::kScalarExpansion;
  std::string scalar;  ///< the eliminated scalar
  std::string detail;  ///< human-readable description

  [[nodiscard]] std::string to_string() const;
};

/// Result of restructuring one pre-form loop.
struct RestructureResult {
  /// The scalar-free loop; empty body when restructuring failed (see
  /// the diagnostics).
  Loop loop;
  bool ok = false;
  std::vector<RestructureNote> notes;

  [[nodiscard]] bool applied(RestructureNote::Kind kind) const;
};

/// Eliminates every scalar definition from `pre`:
///
///  * **Induction-variable substitution** — a scalar with the single
///    definition `k = k ± c` is replaced at each use by its closed form
///    `k0 ± c*(i - lower [+1 after the definition])`. With `init k = v`
///    the closed form is constant-based; without it the entry value
///    stays symbolic (fine in value positions).
///  * **Reduction replacement** — `s = s ⊕ e` (⊕ in {+, *, -}), with s
///    unused elsewhere, becomes the partial-result recurrence
///    `s_x[i] = s_x[i-1] ⊕ e`; the final combination happens after the
///    loop (recorded in the note).
///  * **Scalar expansion** — any other defined scalar s becomes an
///    array s_x: the definition writes `s_x[i]`, uses after it read
///    `s_x[i]`, uses before it (which see the previous iteration's
///    value) read `s_x[i-1]`; `s_x[lower-1]` carries the entry value.
///
/// Errors (reported to `diags`): none currently — every straight-line
/// scalar pattern in the subset is convertible; the function still
/// returns ok=false if a future pattern cannot be handled.
[[nodiscard]] RestructureResult restructure_loop(const PreLoop& pre,
                                                 DiagEngine& diags);

/// Convenience: restructure, throwing SbmpError on any diagnostic.
[[nodiscard]] RestructureResult restructure_or_throw(const PreLoop& pre);

}  // namespace sbmp
