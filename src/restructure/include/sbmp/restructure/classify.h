#pragma once

#include <set>
#include <string>

#include "sbmp/dep/dependence.h"
#include "sbmp/restructure/restructure.h"

namespace sbmp {

/// The DOACROSS-loop taxonomy the paper cites (from Eigenmann et al.'s
/// Perfect-benchmark study): why a loop fails to be Doall. A loop can
/// belong to several categories. kControl (type 1) cannot occur in the
/// LoopLang subset (no control flow inside bodies); kOther covers
/// carried dependences with non-unit or irregular subscripts.
enum class DoacrossType {
  kControl,          // type 1: control dependence
  kAntiOutput,       // type 2: anti/output dependence
  kInduction,        // type 3: induction variable
  kReduction,        // type 4: reduction operation
  kSimpleSubscript,  // type 5: simple (unit-coefficient) flow subscript
  kOther,            // type 6: everything else
};

[[nodiscard]] const char* doacross_type_name(DoacrossType t);

/// Classifies a loop given the transformations that were applied to it
/// and its (post-restructuring) dependence analysis.
[[nodiscard]] std::set<DoacrossType> classify_doacross(
    const RestructureResult& restructured, const DepAnalysis& deps);

/// Renders like "induction+reduction" / "simple-subscript".
[[nodiscard]] std::string doacross_types_to_string(
    const std::set<DoacrossType>& types);

}  // namespace sbmp
