#pragma once

#include "sbmp/ir/loop.h"
#include "sbmp/support/diagnostics.h"

namespace sbmp {

/// Unrolls a normalized loop by `factor`, the classic follow-on
/// transformation for DOACROSS synchronization cost: one unrolled
/// iteration executes `factor` consecutive original iterations, so
/// per-element synchronization traffic drops and short dependence
/// distances d collapse to max(1, d/factor)-ish distances between
/// unrolled iterations (the dependence analyzer recomputes them exactly
/// — subscripts stay affine: (c, k) of instance r becomes
/// (c*factor, k + c*(lower - factor + r))).
///
/// Requires `factor >= 1` dividing the trip count (reported to `diags`
/// otherwise; the loop is returned unchanged). Statements are cloned in
/// instance order (all statements of original iteration r before those
/// of r+1), preserving per-iteration program order.
[[nodiscard]] Loop unroll_loop(const Loop& loop, int factor,
                               DiagEngine& diags);

/// Convenience: throws SbmpError on any diagnostic.
[[nodiscard]] Loop unroll_or_throw(const Loop& loop, int factor);

}  // namespace sbmp
