#include "sbmp/restructure/restructure.h"

#include <algorithm>
#include <map>
#include <set>

namespace sbmp {

std::string RestructureNote::to_string() const {
  const char* kind_name = "";
  switch (kind) {
    case Kind::kInductionSubstitution:
      kind_name = "induction-variable substitution";
      break;
    case Kind::kReductionReplacement:
      kind_name = "reduction replacement";
      break;
    case Kind::kScalarExpansion:
      kind_name = "scalar expansion";
      break;
  }
  return std::string(kind_name) + " of '" + scalar + "': " + detail;
}

bool RestructureResult::applied(RestructureNote::Kind kind) const {
  return std::any_of(notes.begin(), notes.end(),
                     [kind](const RestructureNote& n) {
                       return n.kind == kind;
                     });
}

namespace {

/// Replaces every ScalarRef(name) in `e` by `replacement(position_hint)`.
void substitute_scalar(Expr& e, const std::string& name,
                       const Expr& replacement) {
  if (auto* ref = std::get_if<ScalarRef>(&e)) {
    if (ref->name == name) e = replacement;
    return;
  }
  if (auto* bin = std::get_if<BinaryExpr>(&e)) {
    if (bin->lhs) substitute_scalar(*bin->lhs, name, replacement);
    if (bin->rhs) substitute_scalar(*bin->rhs, name, replacement);
  }
}

bool uses_scalar(const Expr& e, const std::string& name) {
  std::vector<ScalarRef> refs;
  collect_scalar_refs(e, refs);
  return std::any_of(refs.begin(), refs.end(), [&](const ScalarRef& r) {
    return r.name == name;
  });
}

int count_scalar_uses(const Expr& e, const std::string& name) {
  std::vector<ScalarRef> refs;
  collect_scalar_refs(e, refs);
  return static_cast<int>(
      std::count_if(refs.begin(), refs.end(), [&](const ScalarRef& r) {
        return r.name == name;
      }));
}

/// Matches `s = s ± c` / `s = c + s` for integer constant c; returns the
/// signed step.
std::optional<std::int64_t> match_induction(const PreStatement& def,
                                            const std::string& scalar) {
  const auto* bin = std::get_if<BinaryExpr>(&def.rhs);
  if (!bin || !bin->lhs || !bin->rhs) return std::nullopt;
  const auto is_self = [&](const Expr& e) {
    const auto* ref = std::get_if<ScalarRef>(&e);
    return ref != nullptr && ref->name == scalar;
  };
  const auto as_const = [](const Expr& e) -> std::optional<std::int64_t> {
    const auto* c = std::get_if<IntConst>(&e);
    if (c == nullptr) return std::nullopt;
    return c->value;
  };
  if (bin->op == BinOp::kAdd) {
    if (is_self(*bin->lhs)) {
      if (const auto c = as_const(*bin->rhs)) return *c;
    }
    if (is_self(*bin->rhs)) {
      if (const auto c = as_const(*bin->lhs)) return *c;
    }
  }
  if (bin->op == BinOp::kSub && is_self(*bin->lhs)) {
    if (const auto c = as_const(*bin->rhs)) return -*c;
  }
  return std::nullopt;
}

/// Matches the reduction shape `s = s ⊕ e` / `s = e + s` (s exactly once
/// on the RHS); returns the expression `e` and the operator.
struct ReductionMatch {
  BinOp op;
  Expr rest;
  bool self_on_left;
};

std::optional<ReductionMatch> match_reduction(const PreStatement& def,
                                              const std::string& scalar) {
  const auto* bin = std::get_if<BinaryExpr>(&def.rhs);
  if (!bin || !bin->lhs || !bin->rhs) return std::nullopt;
  if (count_scalar_uses(def.rhs, scalar) != 1) return std::nullopt;
  const auto* left = std::get_if<ScalarRef>(&*bin->lhs);
  const auto* right = std::get_if<ScalarRef>(&*bin->rhs);
  if (left != nullptr && left->name == scalar &&
      (bin->op == BinOp::kAdd || bin->op == BinOp::kMul ||
       bin->op == BinOp::kSub)) {
    return ReductionMatch{bin->op, *bin->rhs, true};
  }
  if (right != nullptr && right->name == scalar &&
      (bin->op == BinOp::kAdd || bin->op == BinOp::kMul)) {
    return ReductionMatch{bin->op, *bin->lhs, false};
  }
  return std::nullopt;
}

/// Closed form of an induction variable at a use site.
Expr induction_value(const std::string& scalar,
                     const std::optional<std::int64_t>& init,
                     std::int64_t step, std::int64_t lower, int increments) {
  // value = base + step * (I - lower + increments)
  // With a known init the base folds into the constant term.
  Expr scaled = make_bin(
      BinOp::kMul, make_const(step),
      make_bin(BinOp::kAdd, Expr{IterVar{}},
               make_const(-lower + increments)));
  if (init.has_value()) {
    return make_bin(BinOp::kAdd, make_const(*init), std::move(scaled));
  }
  return make_bin(BinOp::kAdd, make_scalar(scalar), std::move(scaled));
}

}  // namespace

RestructureResult restructure_loop(const PreLoop& pre, DiagEngine& diags) {
  RestructureResult result;
  PreLoop work = pre;

  // Scalars defined in the loop, with their definition positions.
  std::map<std::string, std::vector<std::size_t>> defs;
  for (std::size_t p = 0; p < work.body.size(); ++p) {
    if (work.body[p].is_scalar())
      defs[work.body[p].scalar_lhs].push_back(p);
  }

  // Names already taken (for fresh expansion arrays).
  std::set<std::string> taken;
  for (const auto& stmt : work.body) {
    if (!stmt.is_scalar()) taken.insert(stmt.lhs.array);
    std::vector<ArrayRef> refs;
    collect_array_refs(stmt.rhs, refs);
    for (const auto& r : refs) taken.insert(r.array);
  }
  const auto fresh_array = [&](const std::string& scalar) {
    std::string name = scalar + "_x";
    while (taken.count(name)) name += "x";
    taken.insert(name);
    return name;
  };

  // ---- Pass 1: induction-variable substitution ----------------------
  for (auto it = defs.begin(); it != defs.end();) {
    const std::string& scalar = it->first;
    if (it->second.size() != 1) {
      ++it;
      continue;
    }
    const std::size_t def_pos = it->second.front();
    const auto step = match_induction(work.body[def_pos], scalar);
    if (!step) {
      ++it;
      continue;
    }
    std::optional<std::int64_t> init;
    if (const auto init_it = work.scalar_inits.find(scalar);
        init_it != work.scalar_inits.end()) {
      init = init_it->second;
      work.scalar_inits.erase(init_it);
    }
    // Uses textually at or before the definition see `t` increments in
    // iteration lower+t; uses after it see t+1.
    for (std::size_t q = 0; q < work.body.size(); ++q) {
      if (q == def_pos) continue;
      if (!uses_scalar(work.body[q].rhs, scalar)) continue;
      const int increments = q > def_pos ? 1 : 0;
      substitute_scalar(work.body[q].rhs, scalar,
                        induction_value(scalar, init, *step, work.lower,
                                        increments));
    }
    work.body.erase(work.body.begin() +
                    static_cast<std::ptrdiff_t>(def_pos));
    // Reindex remaining definition positions.
    for (auto& [name, positions] : defs) {
      for (auto& p : positions) {
        if (p > def_pos) --p;
      }
    }
    result.notes.push_back(
        {RestructureNote::Kind::kInductionSubstitution, scalar,
         "step " + std::to_string(*step) +
             (init ? ", entry value " + std::to_string(*init)
                   : ", symbolic entry value")});
    it = defs.erase(it);
  }

  // ---- Pass 2: reduction replacement / scalar expansion --------------
  for (auto& [scalar, positions] : defs) {
    const std::string array = fresh_array(scalar);

    // Pure reduction: single definition `s = s ⊕ e`, s unused elsewhere.
    bool is_reduction = false;
    if (positions.size() == 1) {
      const std::size_t def_pos = positions.front();
      if (const auto red = match_reduction(work.body[def_pos], scalar)) {
        bool used_elsewhere = false;
        for (std::size_t q = 0; q < work.body.size(); ++q) {
          if (q != def_pos && uses_scalar(work.body[q].rhs, scalar))
            used_elsewhere = true;
        }
        if (!used_elsewhere) is_reduction = true;
      }
    }

    // Both forms rewrite the same way; the note differs. Uses before the
    // first definition of the iteration (and the self-reference inside a
    // definition) read the previous iteration's value.
    const std::size_t first_def = positions.front();
    const Expr prev_value = make_ref(array, -1);
    const Expr this_value = make_ref(array, 0);
    for (std::size_t q = 0; q < work.body.size(); ++q) {
      auto& stmt = work.body[q];
      const bool is_def = stmt.is_scalar() && stmt.scalar_lhs == scalar;
      if (is_def) {
        // The first definition's self-reference sees the previous
        // iteration's value; later redefinitions see this iteration's.
        substitute_scalar(stmt.rhs, scalar,
                          q == first_def ? prev_value : this_value);
        stmt.scalar_lhs.clear();
        stmt.lhs = ArrayRef{array, {1, 0}};
      } else if (uses_scalar(stmt.rhs, scalar)) {
        substitute_scalar(stmt.rhs, scalar,
                          q < first_def ? prev_value : this_value);
      }
    }
    if (const auto init_it = work.scalar_inits.find(scalar);
        init_it != work.scalar_inits.end()) {
      work.scalar_inits.erase(init_it);
    }
    if (const auto type_it = work.array_types.find(scalar);
        type_it != work.array_types.end()) {
      work.array_types[array] = type_it->second;
    }
    result.notes.push_back(
        {is_reduction ? RestructureNote::Kind::kReductionReplacement
                      : RestructureNote::Kind::kScalarExpansion,
         scalar,
         "expanded into " + array + "[...]; " + array + "[" +
             std::to_string(work.lower - 1) +
             "] carries the entry value" +
             (is_reduction ? "; combine the partial results after the loop"
                           : "")});
  }

  // ---- Finalize -------------------------------------------------------
  // Leftover inits belong to loop parameters that were never defined in
  // the loop; they impose nothing.
  work.scalar_inits.clear();
  auto plain = pre_to_plain(work);
  if (!plain) {
    diags.error({}, "restructuring left scalar statements behind in loop '" +
                        pre.name + "'");
    return result;
  }
  result.loop = std::move(*plain);
  result.ok = true;
  return result;
}

RestructureResult restructure_or_throw(const PreLoop& pre) {
  DiagEngine diags;
  RestructureResult result = restructure_loop(pre, diags);
  if (!diags.ok())
    throw SbmpError("restructuring failed:\n" + diags.render());
  return result;
}

}  // namespace sbmp
