#include "sbmp/restructure/classify.h"

namespace sbmp {

const char* doacross_type_name(DoacrossType t) {
  switch (t) {
    case DoacrossType::kControl:
      return "control";
    case DoacrossType::kAntiOutput:
      return "anti-output";
    case DoacrossType::kInduction:
      return "induction";
    case DoacrossType::kReduction:
      return "reduction";
    case DoacrossType::kSimpleSubscript:
      return "simple-subscript";
    case DoacrossType::kOther:
      return "other";
  }
  return "?";
}

std::set<DoacrossType> classify_doacross(const RestructureResult& restructured,
                                         const DepAnalysis& deps) {
  std::set<DoacrossType> types;
  if (restructured.applied(RestructureNote::Kind::kInductionSubstitution))
    types.insert(DoacrossType::kInduction);
  if (restructured.applied(RestructureNote::Kind::kReductionReplacement))
    types.insert(DoacrossType::kReduction);
  for (const auto& dep : deps.deps) {
    if (!dep.loop_carried()) continue;
    if (dep.kind != DepKind::kFlow) {
      types.insert(DoacrossType::kAntiOutput);
    } else if (dep.constant_distance && dep.src_ref.index.coef == 1 &&
               dep.snk_ref.index.coef == 1) {
      types.insert(DoacrossType::kSimpleSubscript);
    } else {
      types.insert(DoacrossType::kOther);
    }
  }
  return types;
}

std::string doacross_types_to_string(const std::set<DoacrossType>& types) {
  if (types.empty()) return "doall";
  std::string out;
  for (const auto t : types) {
    if (!out.empty()) out += "+";
    out += doacross_type_name(t);
  }
  return out;
}

}  // namespace sbmp
