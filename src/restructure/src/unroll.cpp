#include "sbmp/restructure/unroll.h"

namespace sbmp {

namespace {

/// Rewrites every subscript of `e` for unrolled instance `r`:
/// original i = factor*i' + (lower - factor + r).
void shift_subscripts(Expr& e, int factor, std::int64_t shift) {
  if (auto* ref = std::get_if<ArrayRef>(&e)) {
    ref->index.offset += ref->index.coef * shift;
    ref->index.coef *= factor;
    return;
  }
  if (auto* bin = std::get_if<BinaryExpr>(&e)) {
    if (bin->lhs) shift_subscripts(*bin->lhs, factor, shift);
    if (bin->rhs) shift_subscripts(*bin->rhs, factor, shift);
  }
  // The induction variable used as a *value* would need an explicit
  // factor*i'+shift expression; LoopLang bodies that use it as a value
  // are handled below at the statement level.
}

/// Replaces value uses of the induction variable by factor*i' + shift.
void rewrite_iter_values(Expr& e, int factor, std::int64_t shift) {
  if (std::holds_alternative<IterVar>(e)) {
    e = make_bin(BinOp::kAdd,
                 make_bin(BinOp::kMul, make_const(factor), Expr{IterVar{}}),
                 make_const(shift));
    return;
  }
  if (auto* bin = std::get_if<BinaryExpr>(&e)) {
    if (bin->lhs) rewrite_iter_values(*bin->lhs, factor, shift);
    if (bin->rhs) rewrite_iter_values(*bin->rhs, factor, shift);
  }
}

}  // namespace

Loop unroll_loop(const Loop& loop, int factor, DiagEngine& diags) {
  if (factor < 1) {
    diags.error({}, "unroll factor must be >= 1");
    return loop;
  }
  if (factor == 1) return loop;
  const std::int64_t trip = loop.trip_count();
  if (trip % factor != 0) {
    diags.error({}, "unroll factor " + std::to_string(factor) +
                        " does not divide the trip count " +
                        std::to_string(trip) +
                        " (remainder loops are out of scope)");
    return loop;
  }

  Loop out;
  out.name = loop.name.empty() ? "" : loop.name + "_u" +
                                          std::to_string(factor);
  out.iter_var = loop.iter_var;
  out.lower = 1;
  out.upper = trip / factor;
  out.declared_doacross = loop.declared_doacross;
  out.array_types = loop.array_types;

  for (int r = 0; r < factor; ++r) {
    const std::int64_t shift = loop.lower - factor + r;
    for (const auto& stmt : loop.body) {
      Statement clone;
      clone.id = static_cast<int>(out.body.size()) + 1;
      clone.lhs = stmt.lhs;
      clone.lhs.index.offset += clone.lhs.index.coef * shift;
      clone.lhs.index.coef *= factor;
      clone.rhs = stmt.rhs;
      rewrite_iter_values(clone.rhs, factor, shift);
      shift_subscripts(clone.rhs, factor, shift);
      clone.loc = stmt.loc;
      out.body.push_back(std::move(clone));
    }
  }
  return out;
}

Loop unroll_or_throw(const Loop& loop, int factor) {
  DiagEngine diags;
  Loop out = unroll_loop(loop, factor, diags);
  if (!diags.ok()) throw SbmpError("unroll failed:\n" + diags.render());
  return out;
}

}  // namespace sbmp
