#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sbmp/sim/simulator.h"

namespace sbmp {

/// A deterministic, seeded perturbation of *legal* multiprocessor
/// timing. Every fault only delays events — a signal still arrives no
/// earlier than send + signal_latency, a result is never ready before
/// its static latency — so any schedule whose synchronization is
/// correct must survive every plan with zero staleness violations,
/// while a schedule with a broken sync arc will be exposed once the
/// timing it silently relied on is perturbed. All draws are pure
/// functions of (seed, iteration, instruction), so a plan replays
/// identically across runs and platforms. See docs/robustness.md for
/// the fault model.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Per-instruction-instance result latency jitter: with probability
  /// `latency_jitter_percent`/100 an instance's result is delayed by
  /// 1..latency_jitter_max extra cycles (consumers and the result drain
  /// see the same delay).
  int latency_jitter_percent = 0;
  int latency_jitter_max = 0;
  /// Per-send-instance delivery delay beyond signal_latency, modeling a
  /// congested synchronization network (signals may thereby overtake
  /// one another across streams — reordered delivery).
  int signal_delay_percent = 0;
  int signal_delay_max = 0;
  /// Transient per-group issue stalls (cache miss, arbitration loss).
  int stall_percent = 0;
  int stall_max = 0;
  /// Bounded signal buffer per signal stream: the wait of iteration k
  /// cannot complete before the wait of iteration k - capacity on the
  /// same stream has issued (FIFO buffer of `capacity` undelivered
  /// signals; 0 = unbounded).
  int signal_buffer_capacity = 0;

  [[nodiscard]] bool active() const {
    return latency_jitter_percent > 0 || signal_delay_percent > 0 ||
           stall_percent > 0 || signal_buffer_capacity > 0;
  }

  /// An aggressive default plan exercising every fault class at once.
  [[nodiscard]] static FaultPlan adversarial(std::uint64_t seed);
};

/// Result of one faulted run.
struct FaultSimResult {
  SimResult sim;
  /// Number of fault events the plan actually injected (lets callers
  /// assert that a campaign exercised the machine, not a no-op plan).
  std::int64_t fault_events = 0;
  /// Staleness-oracle violations; empty means every cross-iteration
  /// read observed its dependence-mandated value under this timing.
  std::vector<std::string> staleness;
};

/// Simulates `schedule` under `plan` and runs the staleness oracle: the
/// oracle replays all memory accesses in perturbed issue-cycle order,
/// tracks the latest writer iteration of every (array, element), and
/// flags any read that a carried flow dependence obliges to observe the
/// value of iteration k-d but that issues before that write (a stale
/// read), plus anti/output instances whose source does not strictly
/// precede their sink (live data overwritten / write order inverted).
/// `carried` is the loop-carried slice of the dependence analysis. The
/// oracle examines min(iterations, 65536) iterations.
[[nodiscard]] FaultSimResult simulate_with_faults(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineDesc& config, const SimOptions& options,
    const std::vector<Dependence>& carried, const FaultPlan& plan);

/// Aggregate of a multi-trial perturbation campaign.
struct FaultCampaign {
  int trials = 0;
  int dirty_trials = 0;  ///< trials with at least one staleness violation
  std::int64_t total_violations = 0;
  std::int64_t fault_events = 0;
  std::int64_t base_parallel_time = 0;  ///< unperturbed parallel time
  std::int64_t max_parallel_time = 0;   ///< worst over all trials
  std::vector<std::string> sample;      ///< first few violation messages

  /// True when no trial saw a violation (what a valid schedule must
  /// achieve) — the complement of detected().
  [[nodiscard]] bool clean() const { return dirty_trials == 0; }
  [[nodiscard]] bool detected() const { return dirty_trials > 0; }
};

/// Runs `trials` seeded variations of `shape` (same knobs, per-trial
/// seeds derived from shape.seed) plus one unperturbed baseline run,
/// aggregating oracle results.
[[nodiscard]] FaultCampaign run_fault_campaign(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineDesc& config, const SimOptions& options,
    const std::vector<Dependence>& carried, const FaultPlan& shape,
    int trials);

/// Deliberate synchronization breakage for detection tests and demos:
/// each mutation violates exactly one of the paper's two sync
/// conditions (or removes the arc that enforces them) while keeping the
/// schedule structurally well-formed.
enum class ScheduleMutation {
  kHoistSend,  ///< move a Send_Signal to a new first group, before its Src
  kSinkWait,   ///< move a Wait_Signal to a new last group, after its Snk
  kDropArc,    ///< clear a wait's guard set and list-schedule the arcless DFG
};

[[nodiscard]] const char* mutation_name(ScheduleMutation m);
[[nodiscard]] std::optional<ScheduleMutation> parse_mutation(
    std::string_view name);

/// Applies `m`. kHoistSend/kSinkWait rewrite `schedule` in place;
/// kDropArc clears the guarded-instruction set of one wait in `tac`,
/// rebuilds `dfg` from the mutilated function and replaces `schedule`
/// with a list schedule of it (the dropped-arc scenario: a compiler bug
/// loses a synchronization-condition arc and the scheduler reorders
/// across it) — and when the scheduler's priorities accidentally keep
/// the order anyway, the first freed sink access is hoisted to a new
/// front group so the lost constraint is actually exploited. Returns
/// false when the function has no synchronization to break (nothing was
/// changed).
[[nodiscard]] bool apply_schedule_mutation(ScheduleMutation m,
                                           TacFunction& tac,
                                           std::optional<Dfg>& dfg,
                                           Schedule& schedule,
                                           const MachineDesc& config);

}  // namespace sbmp
