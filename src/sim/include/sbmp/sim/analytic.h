#pragma once

#include <cstdint>

#include "sbmp/dfg/dfg.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// The LBD loop theorem (exact form): parallel execution time of a loop
/// whose only cross-iteration constraint is one synchronization pair
/// with distance `d`, send at 0-based slot `i`, wait at slot `j`, and an
/// isolated-iteration time of `iteration_time` cycles, executing `n`
/// iterations on `n` processors under unit latencies.
///
///   LFD (i + net - 1 < j): T = iteration_time
///   LBD otherwise:         T = floor((n-1)/d) * (i - j + net) +
///                              iteration_time
///
/// where `net` is the machine's signal latency (the paper's model: 1).
/// The paper states the looser (n/d)*(i-j+1) + l; floor((n-1)/d) is the
/// exact longest chain length, which the simulator reproduces cycle for
/// cycle (property-tested).
[[nodiscard]] std::int64_t lbd_parallel_time(std::int64_t n, std::int64_t d,
                                             int send_slot, int wait_slot,
                                             std::int64_t iteration_time,
                                             int signal_latency = 1);

/// Lower bound on the parallel time of `schedule` with `n` iterations:
/// the worst single-pair LBD term over all synchronization pairs plus
/// the isolated iteration time, evaluated at the machine's
/// `signal_latency` (the paper's model: 1). Exact for single-pair
/// unit-latency loops; a valid lower bound otherwise.
[[nodiscard]] std::int64_t analytic_lower_bound(const Dfg& dfg,
                                                const Schedule& schedule,
                                                std::int64_t n,
                                                std::int64_t iteration_time,
                                                int signal_latency = 1);

/// The longest synchronization span of a schedule: max over pairs of
/// (send slot - wait slot + 1), or 0 when every pair is LFD. This is the
/// quantity the paper's technique minimizes.
[[nodiscard]] int worst_sync_span(const Dfg& dfg, const Schedule& schedule);

/// Lower bound on the simulated parallel time of ANY schedule of `tac`
/// that orders every DFG arc into a strictly later group (the invariant
/// verify_schedule enforces and both schedulers construct), executing
/// `n` iterations on any processor count. Unlike analytic_lower_bound
/// this needs no schedule and no simulated iteration time — it reads
/// only the DFG structure:
///
///  * crit: the latency-weighted critical path through one iteration
///    (longest arc path plus the final result drain). The simulator's
///    operand-readiness rule forces issue(v) >= start + up(v) and
///    finish >= issue(v) + down(v), so every iteration — and therefore
///    the parallel time — is >= crit.
///  * per sync pair (wait w, send s, distance d): when the DFG carries a
///    w -> s path of total latency P, the chain
///      issue_k(w) >= issue_{k-d}(s) + net >= issue_{k-d}(w) + P + net
///    links floor((n-1)/d) times, giving
///      floor((n-1)/d) * (P + net) + up(w) + down(w).
///
/// The bound is exact for the single-pair unit-latency loops of the LBD
/// theorem and valid (never above the simulated time) everywhere else,
/// which makes it a sound pre-filter: a schedule already at or below the
/// bound cannot be beaten by any alternative schedule.
[[nodiscard]] std::int64_t schedule_free_lower_bound(
    const TacFunction& tac, const Dfg& dfg, const MachineDesc& config,
    std::int64_t n);

/// Lower bound on the simulated parallel time of `schedule` ITSELF (not
/// of every possible schedule, which is what schedule_free_lower_bound
/// answers), executing `n` iterations on any processor count. Derived
/// purely from the simulator's issue recurrences, so it needs no
/// simulation:
///
///  * groups issue strictly in order (issue(g) >= issue(g-1) + 1) and
///    iteration 0 starts at cycle 0, so with suffix(s) = max over
///    instructions v placed at slot(v) >= s of slot(v) + drain(v),
///    iteration 0 alone finishes at or after suffix(0);
///  * for a pair (send at slot i, wait at slot j, distance d) with
///    i >= j and i + net - j > 0, the simulator's signal-arrival rule
///    chains issue_k(j) >= issue_{k-d}(j) + (i - j + net) exactly
///    floor((n-1)/d) times, and the tail of the final iteration adds
///    suffix(j) - j after the wait issues, giving
///      floor((n-1)/d) * (i - j + net) + suffix(j).
///
/// Every step is one of the simulator's own >= constraints, so the bound
/// can never exceed the simulated time. Its use in the never-degrade
/// guard: when this bound for the list schedule already meets the
/// sync-aware time, "list strictly faster" is impossible and the
/// fallback simulation can be skipped with the identical decision.
[[nodiscard]] std::int64_t scheduled_lower_bound(const TacFunction& tac,
                                                 const Dfg& dfg,
                                                 const MachineDesc& config,
                                                 const Schedule& schedule,
                                                 std::int64_t n);

/// Same bound evaluated on a bare slot assignment (instruction id ->
/// group index, index 0 unused) of length `length`, as produced by
/// schedule_list_slots: the bound reads only slots, so the guard can
/// evaluate it without ever materializing the schedule's group lists.
[[nodiscard]] std::int64_t scheduled_lower_bound(
    const TacFunction& tac, const Dfg& dfg, const MachineDesc& config,
    const std::vector<int>& slot_of, int length, std::int64_t n);

}  // namespace sbmp
