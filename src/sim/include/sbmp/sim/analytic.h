#pragma once

#include <cstdint>

#include "sbmp/dfg/dfg.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// The LBD loop theorem (exact form): parallel execution time of a loop
/// whose only cross-iteration constraint is one synchronization pair
/// with distance `d`, send at 0-based slot `i`, wait at slot `j`, and an
/// isolated-iteration time of `iteration_time` cycles, executing `n`
/// iterations on `n` processors under unit latencies.
///
///   LFD (i + net - 1 < j): T = iteration_time
///   LBD otherwise:         T = floor((n-1)/d) * (i - j + net) +
///                              iteration_time
///
/// where `net` is the machine's signal latency (the paper's model: 1).
/// The paper states the looser (n/d)*(i-j+1) + l; floor((n-1)/d) is the
/// exact longest chain length, which the simulator reproduces cycle for
/// cycle (property-tested).
[[nodiscard]] std::int64_t lbd_parallel_time(std::int64_t n, std::int64_t d,
                                             int send_slot, int wait_slot,
                                             std::int64_t iteration_time,
                                             int signal_latency = 1);

/// Lower bound on the parallel time of `schedule` with `n` iterations:
/// the worst single-pair LBD term over all synchronization pairs plus
/// the isolated iteration time, evaluated at the machine's
/// `signal_latency` (the paper's model: 1). Exact for single-pair
/// unit-latency loops; a valid lower bound otherwise.
[[nodiscard]] std::int64_t analytic_lower_bound(const Dfg& dfg,
                                                const Schedule& schedule,
                                                std::int64_t n,
                                                std::int64_t iteration_time,
                                                int signal_latency = 1);

/// The longest synchronization span of a schedule: max over pairs of
/// (send slot - wait slot + 1), or 0 when every pair is LFD. This is the
/// quantity the paper's technique minimizes.
[[nodiscard]] int worst_sync_span(const Dfg& dfg, const Schedule& schedule);

}  // namespace sbmp
