#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sbmp/dep/dependence.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"
#include "sbmp/support/overflow.h"

namespace sbmp {

/// Rows of per-iteration signal history any engine replaying a
/// schedule's cross-iteration signals must keep live at once: the
/// deepest wait still reaches its send (`max_wait_distance + 1` rows)
/// and every concurrently active iteration has its own row
/// (`concurrency + 1`, so the producer of the oldest readable row
/// cannot be overwritten while a consumer still needs it); the floor of
/// 2 keeps the zero-sync case a real ring. Shared by the cycle-accurate
/// simulator's iteration ring (where `concurrency` is the processor
/// count) and the real-thread executor's SignalBoard (worker count), so
/// the two bounded-buffer models cannot drift apart. Callers may clamp
/// the result to the trip count and round up to a power of two; extra
/// rows only widen the visible history.
[[nodiscard]] inline std::int64_t signal_window_rows(
    std::int64_t max_wait_distance, std::int64_t concurrency) {
  return std::max<std::int64_t>(
      {sat_add(max_wait_distance, 1), sat_add(concurrency, 1), 2});
}

/// Machine-aware form: a bounded signal buffer
/// (MachineDesc::signal_buffer_depth > 0) needs `depth + 1` rows live so
/// the wait time of iteration `k - depth` is still visible when send k
/// checks for backpressure. With the default unbounded buffer this is
/// exactly the two-argument form.
[[nodiscard]] inline std::int64_t signal_window_rows(
    const MachineDesc& machine, std::int64_t max_wait_distance,
    std::int64_t concurrency) {
  return std::max<std::int64_t>(
      signal_window_rows(max_wait_distance, concurrency),
      sat_add(machine.signal_buffer_depth, 1));
}

/// Parameters of one multiprocessor run.
struct SimOptions {
  /// Loop iterations to execute (the paper uses 100 per loop). This is
  /// an already-resolved literal count: the "0 uses the loop's own trip
  /// count" convention lives in PipelineOptions::resolved_iterations
  /// (the simulator never sees a Loop). A count <= 0 here is a defined
  /// zero-trip run: parallel_time and stall_cycles are 0, while
  /// iteration_time still reports the isolated single-iteration length
  /// (it is a property of the schedule, not of the trip count).
  std::int64_t iterations = 100;
  /// Processor count; 0 means one processor per iteration (the paper's
  /// assumption), and negative values are treated as 0. With P < n,
  /// iteration k runs on processor k mod P after iteration k-P has
  /// drained there; P >= n behaves exactly like one per iteration.
  int processors = 0;
  /// Early-exit threshold (cycles); <= 0 disables it. `parallel_time`
  /// is a running max over iteration finish times, hence monotone
  /// non-decreasing as iterations are simulated — so the moment it
  /// reaches `cutoff_time` the final value is provably >= cutoff_time
  /// and the run may stop. The caller's "is this schedule strictly
  /// faster than cutoff_time" question is then answered exactly, not
  /// heuristically: a run that completes without hitting the cutoff
  /// (SimResult::cutoff_hit == false) is bit-identical to an unbounded
  /// run. On a cutoff hit, parallel_time holds the (>= cutoff) running
  /// max and iteration_time is final, but stall_cycles is partial.
  std::int64_t cutoff_time = 0;
};

/// Result of simulating one DOACROSS loop.
struct SimResult {
  /// Parallel execution time: the cycle by which every iteration has
  /// completed (issue of its last group plus result drain).
  std::int64_t parallel_time = 0;
  /// Cycles one iteration takes in isolation (no signal stalls).
  std::int64_t iteration_time = 0;
  /// Total cycles any group spent stalled beyond in-order issue.
  std::int64_t stall_cycles = 0;
  int schedule_length = 0;
  /// True when the run stopped early because parallel_time reached
  /// SimOptions::cutoff_time. parallel_time is then a certified lower
  /// bound (>= cutoff) rather than the exact final value, and
  /// stall_cycles covers only the simulated prefix.
  bool cutoff_hit = false;
};

/// Cycle-accurate execution of `schedule` across iterations.
///
/// Timing model (see DESIGN.md §6): group g of iteration k issues at
/// cycle C(k,g) = max(C(k,g-1)+1, operand readiness, signal readiness),
/// groups are atomic, FUs fully pipelined, an instruction issued at c
/// with latency L feeds consumers issuing at >= c+L, and a Send_Signal
/// issued at c satisfies distance-d waits of iteration k+d at >= c+1.
[[nodiscard]] SimResult simulate(const TacFunction& tac, const Dfg& dfg,
                                 const Schedule& schedule,
                                 const MachineDesc& config,
                                 const SimOptions& options);

/// Group issue cycles of the first `count` iterations under the same
/// timing model as `simulate` (row k holds iteration k's issue cycle per
/// group). Powers the trace renderer and timing tests.
[[nodiscard]] std::vector<std::vector<std::int64_t>> simulate_issue_times(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineDesc& config, const SimOptions& options, int count);

/// End-to-end staleness check: verifies that for every loop-carried
/// dependence in `carried`, each source access instance is issued
/// strictly before its sink access instance under the simulated timing —
/// i.e. no iteration ever reads stale data or overwrites live data.
/// Returns human-readable violations; empty means the schedule plus
/// synchronization are correct.
[[nodiscard]] std::vector<std::string> check_cross_iteration_ordering(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineDesc& config, const SimOptions& options,
    const std::vector<Dependence>& carried);

}  // namespace sbmp
