#pragma once

#include <cstdint>
#include <string>

#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"
#include "sbmp/sim/simulator.h"

namespace sbmp {

/// Renders a text Gantt chart of the first `iterations_shown` iterations:
/// one row per iteration (== processor when P >= n), one column per
/// cycle, with `#` at group-issue cycles, `.` while stalled inside the
/// body and spaces outside it. Waits and sends are marked `w` and `s`.
/// Truncated to `max_cycles` columns.
///
///   iter 0 |ws##############
///   iter 1 |..w#############s
///
/// The visual makes the LBD staircase (each iteration's wait sliding
/// right by the synchronization span) immediately visible.
[[nodiscard]] std::string trace_to_string(const TacFunction& tac,
                                          const Dfg& dfg,
                                          const Schedule& schedule,
                                          const MachineDesc& config,
                                          const SimOptions& options,
                                          int iterations_shown = 8,
                                          int max_cycles = 100);

}  // namespace sbmp
