#pragma once

// Internal shared core of the cycle-accurate simulator. Included by
// simulator.cpp (unfaulted entry points) and fault.cpp (fault-injection
// mode); not installed. With `faults == nullptr` the core is exactly
// the pre-fault simulator — every fault hook is a no-op — so the two
// modes cannot drift apart.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sbmp/sim/fault.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/support/overflow.h"
#include "sbmp/support/rng.h"

namespace sbmp {
namespace sim_detail {

/// Issue times of one iteration.
struct IterTimes {
  std::vector<std::int64_t> group_issue;
  std::int64_t finish = 0;      ///< cycle the last result is available
  std::int64_t last_issue = 0;  ///< issue cycle of the final group
  std::int64_t start = 0;
};

struct SimCore {
  const TacFunction& tac;
  const Dfg& dfg;
  const Schedule& schedule;
  const MachineConfig& config;
  const SimOptions& options;
  /// Optional timing perturbation; nullptr = exact base semantics.
  const FaultPlan* faults = nullptr;
  /// Injected-fault counter (meaningful only with faults set).
  std::int64_t fault_events = 0;

  std::int64_t n = 0;
  int window = 1;                      ///< ring size over iterations
  std::vector<IterTimes> ring;
  std::map<int, int> send_slot;        ///< signal stmt -> group index
  /// Send issue cycles per iteration (ring-indexed) per signal stmt.
  std::vector<std::map<int, std::int64_t>> send_times;
  /// Wait issue cycles per iteration (ring-indexed) per signal stmt;
  /// maintained only under faults (bounded signal-buffer model).
  std::vector<std::map<int, std::int64_t>> wait_times;
  std::int64_t max_wait_distance = 0;

  SimCore(const TacFunction& t, const Dfg& d, const Schedule& s,
          const MachineConfig& c, const SimOptions& o,
          const FaultPlan* f = nullptr)
      : tac(t), dfg(d), schedule(s), config(c), options(o), faults(f) {
    // Degenerate inputs are pinned here: negative iteration/processor
    // counts clamp to the zero-trip / one-per-iteration cases, and the
    // ring never exceeds the n + 1 rows a run can actually touch (so
    // `processors > iterations` cannot size it past the trip count).
    n = std::max<std::int64_t>(options.iterations, 0);
    for (const auto& instr : tac.instrs) {
      if (instr.op == Opcode::kSend)
        send_slot[instr.signal_stmt] = schedule.slot(instr.id);
      if (instr.op == Opcode::kWait)
        max_wait_distance = std::max(max_wait_distance, instr.sync_distance);
    }
    const std::int64_t procs = std::max(options.processors, 0);
    std::int64_t rows = std::max<std::int64_t>(
        {sat_add(max_wait_distance, 1), procs + 1, 2});
    if (faults != nullptr && faults->signal_buffer_capacity > 0) {
      // The bounded-buffer constraint reaches back `capacity` waits.
      rows = std::max<std::int64_t>(
          rows, static_cast<std::int64_t>(faults->signal_buffer_capacity) + 1);
    }
    rows = std::min(rows, sat_add(n, 1));
    window = static_cast<int>(std::max<std::int64_t>(rows, 1));
    ring.assign(static_cast<std::size_t>(window), {});
    send_times.assign(static_cast<std::size_t>(window), {});
    if (faults != nullptr)
      wait_times.assign(static_cast<std::size_t>(window), {});
  }

  [[nodiscard]] IterTimes& row(std::int64_t k) {
    return ring[static_cast<std::size_t>(k % window)];
  }

  /// Deterministic draw for fault decisions: a pure function of (plan
  /// seed, iteration, instruction id, salt), so a plan replays exactly.
  [[nodiscard]] std::uint64_t draw(std::int64_t k, int id,
                                   std::uint64_t salt) const {
    SplitMix64 rng(faults->seed ^
                   (static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ull) ^
                   (static_cast<std::uint64_t>(id) * 0xbf58476d1ce4e5b9ull) ^
                   salt);
    return rng.next();
  }

  /// Extra result latency of instance (k, id); consumers and the result
  /// drain see the same value, keeping the perturbation self-consistent.
  [[nodiscard]] std::int64_t result_jitter(std::int64_t k, int id) {
    if (faults == nullptr || faults->latency_jitter_percent <= 0 ||
        faults->latency_jitter_max <= 0)
      return 0;
    const std::uint64_t h = draw(k, id, 0x6a09e667f3bcc909ull);
    if (static_cast<int>(h % 100) >= faults->latency_jitter_percent) return 0;
    return 1 + static_cast<std::int64_t>(
                   (h >> 32) %
                   static_cast<std::uint64_t>(faults->latency_jitter_max));
  }

  /// Extra delivery delay of the signal sent for `signal_stmt` by
  /// iteration `src_iter`.
  [[nodiscard]] std::int64_t signal_delay(std::int64_t src_iter,
                                          int signal_stmt) {
    if (faults == nullptr || faults->signal_delay_percent <= 0 ||
        faults->signal_delay_max <= 0)
      return 0;
    const std::uint64_t h = draw(src_iter, signal_stmt, 0xbb67ae8584caa73bull);
    if (static_cast<int>(h % 100) >= faults->signal_delay_percent) return 0;
    return 1 + static_cast<std::int64_t>(
                   (h >> 32) %
                   static_cast<std::uint64_t>(faults->signal_delay_max));
  }

  /// Transient issue stall of group g in iteration k.
  [[nodiscard]] std::int64_t issue_stall(std::int64_t k, int g) {
    if (faults == nullptr || faults->stall_percent <= 0 ||
        faults->stall_max <= 0)
      return 0;
    const std::uint64_t h = draw(k, g, 0x3c6ef372fe94f82bull);
    if (static_cast<int>(h % 100) >= faults->stall_percent) return 0;
    return 1 + static_cast<std::int64_t>(
                   (h >> 32) % static_cast<std::uint64_t>(faults->stall_max));
  }

  /// Runs all iterations; `hook(k)` fires after iteration k's times are
  /// final (rows of iterations in (k-window, k] are still available).
  SimResult run(const std::function<void(std::int64_t)>& hook) {
    SimResult result;
    result.schedule_length = schedule.length();
    const int procs = options.processors;
    const int buffer_capacity =
        faults != nullptr ? faults->signal_buffer_capacity : 0;

    for (std::int64_t k = 0; k < n; ++k) {
      IterTimes& times = row(k);
      times.group_issue.assign(
          static_cast<std::size_t>(schedule.length()), 0);
      std::int64_t start = 0;
      // A processor's issue stage frees the cycle after it issues the
      // previous iteration's last group (results drain in the pipelined
      // function units while the next iteration starts).
      if (procs > 0 && k >= procs)
        start = sat_add(row(k - procs).last_issue, 1);
      times.start = start;

      std::int64_t prev = start - 1;
      std::int64_t finish = start;
      std::int64_t stalls = 0;
      auto& sends = send_times[static_cast<std::size_t>(k % window)];
      sends.clear();
      std::map<int, std::int64_t>* waits = nullptr;
      if (faults != nullptr) {
        waits = &wait_times[static_cast<std::size_t>(k % window)];
        waits->clear();
      }
      for (int g = 0; g < schedule.length(); ++g) {
        std::int64_t t = prev + 1;
        for (const int id : schedule.groups[static_cast<std::size_t>(g)]) {
          // Operand readiness (same-iteration DFG predecessors).
          for (const auto& e : dfg.preds(id)) {
            std::int64_t ready =
                times.group_issue[static_cast<std::size_t>(
                    schedule.slot(e.from))] +
                e.latency;
            if (faults != nullptr) {
              const std::int64_t jitter = result_jitter(k, e.from);
              if (jitter > 0) {
                ready = sat_add(ready, jitter);
                ++fault_events;
              }
            }
            if (ready > t) t = ready;
          }
          // Signal readiness for waits.
          const auto& instr = tac.by_id(id);
          if (instr.op == Opcode::kWait) {
            const std::int64_t src_iter = k - instr.sync_distance;
            if (src_iter >= 0 && send_slot.count(instr.signal_stmt)) {
              const auto& src_sends =
                  send_times[static_cast<std::size_t>(src_iter % window)];
              const auto it = src_sends.find(instr.signal_stmt);
              if (it != src_sends.end()) {
                std::int64_t arrival = it->second + config.signal_latency;
                if (faults != nullptr) {
                  const std::int64_t delay =
                      signal_delay(src_iter, instr.signal_stmt);
                  if (delay > 0) {
                    arrival = sat_add(arrival, delay);
                    ++fault_events;
                  }
                }
                if (arrival > t) t = arrival;
              }
            }
            // Bounded signal buffer: the FIFO slot for this stream only
            // frees once the wait `capacity` iterations back has issued.
            if (buffer_capacity > 0 && k >= buffer_capacity) {
              const auto& old_waits = wait_times[static_cast<std::size_t>(
                  (k - buffer_capacity) % window)];
              const auto it = old_waits.find(instr.signal_stmt);
              if (it != old_waits.end() && it->second + 1 > t) {
                t = it->second + 1;
                ++fault_events;
              }
            }
          }
        }
        if (faults != nullptr) {
          const std::int64_t stall = issue_stall(k, g);
          if (stall > 0) {
            t = sat_add(t, stall);
            ++fault_events;
          }
        }
        times.group_issue[static_cast<std::size_t>(g)] = t;
        stalls += t - (prev + 1);
        prev = t;
        // Track result drain and record sends/waits.
        for (const int id : schedule.groups[static_cast<std::size_t>(g)]) {
          const auto& instr = tac.by_id(id);
          std::int64_t done = sat_add(t, config.latency(instr.op));
          if (faults != nullptr)
            done = sat_add(done, result_jitter(k, id));
          if (done > finish) finish = done;
          if (instr.op == Opcode::kSend) sends[instr.signal_stmt] = t;
          if (waits != nullptr && instr.op == Opcode::kWait)
            (*waits)[instr.signal_stmt] = t;
        }
      }
      times.finish = finish;
      times.last_issue = prev;
      result.stall_cycles = sat_add(result.stall_cycles, stalls);
      if (finish > result.parallel_time) result.parallel_time = finish;
      if (k == 0) result.iteration_time = finish - start;
      if (hook) hook(k);
    }
    return result;
  }
};

}  // namespace sim_detail
}  // namespace sbmp
