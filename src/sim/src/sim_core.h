#pragma once

// Internal shared core of the cycle-accurate simulator. Included by
// simulator.cpp (unfaulted entry points) and fault.cpp (fault-injection
// mode); not installed. With `faults == nullptr` the core is exactly
// the pre-fault simulator — every fault hook is a no-op — so the two
// modes cannot drift apart.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "sbmp/sim/fault.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/support/overflow.h"
#include "sbmp/support/rng.h"

namespace sbmp {
namespace sim_detail {

/// Issue times of one iteration.
struct IterTimes {
  std::vector<std::int64_t> group_issue;
  std::int64_t finish = 0;      ///< cycle the last result is available
  std::int64_t last_issue = 0;  ///< issue cycle of the final group
  std::int64_t start = 0;
};

struct SimCore {
  const TacFunction& tac;
  const Dfg& dfg;
  const Schedule& schedule;
  const MachineDesc& config;
  const SimOptions& options;
  /// Optional timing perturbation; nullptr = exact base semantics.
  const FaultPlan* faults = nullptr;
  /// Injected-fault counter (meaningful only with faults set).
  std::int64_t fault_events = 0;

  /// "No send/wait recorded" sentinel in the flat per-signal tables.
  static constexpr std::int64_t kNoTime =
      std::numeric_limits<std::int64_t>::min();

  std::int64_t n = 0;
  /// Ring size over iterations. Always a power of two (resize_window
  /// rounds up), so ring indexing is a mask instead of a 64-bit modulo
  /// in the per-iteration hot path. Extra rows are harmless: they only
  /// widen the visible history.
  int window = 1;
  std::int64_t ring_mask = 0;          ///< window - 1
  /// Signal statements are dense small integers, so every per-signal
  /// lookup is a flat vector of width `signal_width` (max signal stmt
  /// + 1) instead of a node-allocating map probed per iteration.
  int signal_width = 0;
  std::int64_t max_wait_distance = 0;

  /// Precompiled flat execution program: for every scheduled group, its
  /// instructions with everything the per-iteration loop needs resolved
  /// once — predecessor group indices and latencies, sync roles, result
  /// drain latency. The iteration loop then runs over two contiguous
  /// arrays with no TacFunction/Dfg/Schedule indirection, no opcode
  /// switches and no per-pred slot lookups; the arithmetic is exactly
  /// the original's, instance by instance.
  struct PredRef {
    std::int32_t slot;     ///< predecessor's group index
    std::int32_t latency;
    std::int32_t from;     ///< predecessor id (fault-jitter draw key)
  };
  struct InstrRef {
    std::int32_t id;
    std::int32_t pred_begin;
    std::int32_t pred_end;
    std::int32_t signal_stmt = -1;   ///< -1 when not a sync instruction
    std::int64_t sync_distance = 0;  ///< waits only
    std::int64_t drain_latency = 0;  ///< config.latency(op)
    bool is_wait = false;
    bool is_send = false;
  };

  /// The simulator's working vectors, separated so they can be pooled
  /// per thread: the compile path simulates every loop two or three
  /// times, and re-acquiring these heap blocks (including the ring
  /// rows' group_issue vectors) instead of reallocating them removes
  /// the core's ~15 allocations per run. Each run fully overwrites what
  /// it reads — every ring row, send row and delta table is written for
  /// iteration k before anything reads it — so stale contents from the
  /// previous checkout are never observed.
  struct Scratch {
    std::vector<IterTimes> ring;
    std::vector<int> send_slot;
    std::vector<std::int64_t> send_times;
    std::vector<std::int64_t> wait_times;
    std::vector<PredRef> pred_refs;
    std::vector<InstrRef> instr_refs;
    std::vector<std::int32_t> group_begin;
    std::vector<std::int64_t> d_group;
    std::vector<std::int64_t> end_issue;
  };

  /// This thread's parked Scratch blocks, handed out exclusively so
  /// simultaneously live cores (the zero-trip probe nests one inside
  /// simulate()) never share one.
  static std::vector<std::unique_ptr<Scratch>>& scratch_pool() {
    thread_local std::vector<std::unique_ptr<Scratch>> parked;
    return parked;
  }

  static std::unique_ptr<Scratch> acquire_scratch() {
    auto& parked = scratch_pool();
    if (parked.empty()) return std::make_unique<Scratch>();
    std::unique_ptr<Scratch> out = std::move(parked.back());
    parked.pop_back();
    // clear() keeps the heap blocks — that retention is the point. The
    // assign()-style tables (send_slot, group_begin, ...) are fully
    // re-initialized by the constructor and run(); only the push_back
    // targets need emptying.
    out->pred_refs.clear();
    out->instr_refs.clear();
    return out;
  }

  std::unique_ptr<Scratch> scratch_ = acquire_scratch();
  std::vector<IterTimes>& ring = scratch_->ring;
  std::vector<int>& send_slot = scratch_->send_slot;  ///< stmt -> group, -1
  /// Send issue cycles, ring-indexed rows of `signal_width` entries.
  std::vector<std::int64_t>& send_times = scratch_->send_times;
  /// Wait issue cycles, same layout; maintained only when a bounded
  /// signal buffer is modeled (machine signal_buffer_depth > 0 or a
  /// FaultPlan is active).
  std::vector<std::int64_t>& wait_times = scratch_->wait_times;
  std::vector<PredRef>& pred_refs = scratch_->pred_refs;
  /// Grouped by schedule group.
  std::vector<InstrRef>& instr_refs = scratch_->instr_refs;
  /// Per group, into instr_refs.
  std::vector<std::int32_t>& group_begin = scratch_->group_begin;

  ~SimCore() {
    if (scratch_ != nullptr) scratch_pool().push_back(std::move(scratch_));
  }
  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  SimCore(const TacFunction& t, const Dfg& d, const Schedule& s,
          const MachineDesc& c, const SimOptions& o,
          const FaultPlan* f = nullptr)
      : tac(t), dfg(d), schedule(s), config(c), options(o), faults(f) {
    // Degenerate inputs are pinned here: negative iteration/processor
    // counts clamp to the zero-trip / one-per-iteration cases, and the
    // ring never exceeds the n + 1 rows a run can actually touch (so
    // `processors > iterations` cannot size it past the trip count).
    n = std::max<std::int64_t>(options.iterations, 0);
    for (const auto& instr : tac.instrs) {
      if (instr.is_sync() && instr.signal_stmt >= signal_width)
        signal_width = instr.signal_stmt + 1;
      if (instr.op == Opcode::kWait)
        max_wait_distance = std::max(max_wait_distance, instr.sync_distance);
    }
    send_slot.assign(static_cast<std::size_t>(signal_width), -1);
    for (const auto& instr : tac.instrs) {
      if (instr.op == Opcode::kSend)
        send_slot[static_cast<std::size_t>(instr.signal_stmt)] =
            schedule.slot(instr.id);
    }
    const std::int64_t procs = std::max(options.processors, 0);
    // Machine-aware form: a bounded machine buffer widens the ring so
    // the wait `depth` iterations back is still visible.
    std::int64_t rows = signal_window_rows(config, max_wait_distance, procs);
    if (faults != nullptr && faults->signal_buffer_capacity > 0) {
      // The fault-plan bounded-buffer constraint reaches back
      // `capacity` waits.
      rows = std::max<std::int64_t>(
          rows, static_cast<std::int64_t>(faults->signal_buffer_capacity) + 1);
    }
    rows = std::min(rows, sat_add(n, 1));
    resize_window(static_cast<int>(std::max<std::int64_t>(rows, 1)));

    // Precompile the schedule into the flat program (see field docs).
    const int len = schedule.length();
    group_begin.assign(static_cast<std::size_t>(len) + 1, 0);
    instr_refs.reserve(tac.instrs.size());
    for (int g = 0; g < len; ++g) {
      group_begin[static_cast<std::size_t>(g)] =
          static_cast<std::int32_t>(instr_refs.size());
      for (const int id : schedule.groups[static_cast<std::size_t>(g)]) {
        const auto& instr = tac.by_id(id);
        InstrRef ref;
        ref.id = id;
        ref.pred_begin = static_cast<std::int32_t>(pred_refs.size());
        for (const auto& e : dfg.preds(id))
          pred_refs.push_back({schedule.slot(e.from), e.latency, e.from});
        ref.pred_end = static_cast<std::int32_t>(pred_refs.size());
        if (instr.is_sync()) ref.signal_stmt = instr.signal_stmt;
        ref.sync_distance = instr.sync_distance;
        ref.drain_latency = config.latency(instr.op);
        ref.is_wait = instr.op == Opcode::kWait;
        ref.is_send = instr.op == Opcode::kSend;
        instr_refs.push_back(ref);
      }
    }
    group_begin[static_cast<std::size_t>(len)] =
        static_cast<std::int32_t>(instr_refs.size());
  }

  /// (Re)sizes the iteration ring and the per-signal time tables.
  /// `rows` is a minimum; the ring is rounded up to a power of two.
  void resize_window(int rows) {
    window = 1;
    while (window < rows) window <<= 1;
    ring_mask = window - 1;
    // resize, not assign: surviving rows keep their group_issue heap
    // blocks (the pooled-scratch win). Stale times are never read —
    // run() writes row k in full before anything looks at it.
    if (static_cast<int>(ring.size()) != window)
      ring.resize(static_cast<std::size_t>(window));
    send_times.assign(
        static_cast<std::size_t>(window) * static_cast<std::size_t>(signal_width),
        kNoTime);
    if (faults != nullptr || config.signal_buffer_depth > 0)
      wait_times.assign(static_cast<std::size_t>(window) *
                            static_cast<std::size_t>(signal_width),
                        kNoTime);
  }

  /// Start of iteration k's row in a flat per-signal table.
  [[nodiscard]] std::size_t signal_row(std::int64_t k) const {
    return static_cast<std::size_t>(k & ring_mask) *
           static_cast<std::size_t>(signal_width);
  }

  [[nodiscard]] IterTimes& row(std::int64_t k) {
    return ring[static_cast<std::size_t>(k & ring_mask)];
  }

  /// Deterministic draw for fault decisions: a pure function of (plan
  /// seed, iteration, instruction id, salt), so a plan replays exactly.
  [[nodiscard]] std::uint64_t draw(std::int64_t k, int id,
                                   std::uint64_t salt) const {
    SplitMix64 rng(faults->seed ^
                   (static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ull) ^
                   (static_cast<std::uint64_t>(id) * 0xbf58476d1ce4e5b9ull) ^
                   salt);
    return rng.next();
  }

  /// Extra result latency of instance (k, id); consumers and the result
  /// drain see the same value, keeping the perturbation self-consistent.
  [[nodiscard]] std::int64_t result_jitter(std::int64_t k, int id) {
    if (faults == nullptr || faults->latency_jitter_percent <= 0 ||
        faults->latency_jitter_max <= 0)
      return 0;
    const std::uint64_t h = draw(k, id, 0x6a09e667f3bcc909ull);
    if (static_cast<int>(h % 100) >= faults->latency_jitter_percent) return 0;
    return 1 + static_cast<std::int64_t>(
                   (h >> 32) %
                   static_cast<std::uint64_t>(faults->latency_jitter_max));
  }

  /// Extra delivery delay of the signal sent for `signal_stmt` by
  /// iteration `src_iter`.
  [[nodiscard]] std::int64_t signal_delay(std::int64_t src_iter,
                                          int signal_stmt) {
    if (faults == nullptr || faults->signal_delay_percent <= 0 ||
        faults->signal_delay_max <= 0)
      return 0;
    const std::uint64_t h = draw(src_iter, signal_stmt, 0xbb67ae8584caa73bull);
    if (static_cast<int>(h % 100) >= faults->signal_delay_percent) return 0;
    return 1 + static_cast<std::int64_t>(
                   (h >> 32) %
                   static_cast<std::uint64_t>(faults->signal_delay_max));
  }

  /// Transient issue stall of group g in iteration k.
  [[nodiscard]] std::int64_t issue_stall(std::int64_t k, int g) {
    if (faults == nullptr || faults->stall_percent <= 0 ||
        faults->stall_max <= 0)
      return 0;
    const std::uint64_t h = draw(k, g, 0x3c6ef372fe94f82bull);
    if (static_cast<int>(h % 100) >= faults->stall_percent) return 0;
    return 1 + static_cast<std::int64_t>(
                   (h >> 32) % static_cast<std::uint64_t>(faults->stall_max));
  }

  /// Runs all iterations; `hook(k)` fires after iteration k's times are
  /// final (rows of iterations in (k-window, k] are still available).
  SimResult run(const std::function<void(std::int64_t)>& hook) {
    SimResult result;
    result.schedule_length = schedule.length();
    const int procs = options.processors;
    const int machine_buffer = std::max(config.signal_buffer_depth, 0);
    const int buffer_capacity =
        faults != nullptr ? faults->signal_buffer_capacity : 0;

    // Steady-state fast-forward (exact, not approximate). Every time an
    // iteration computes is a max over terms that are linear in the
    // iteration index once the per-group deltas settle: chain terms
    // (prev + 1), same-iteration predecessors (issue[slot] + latency),
    // and wait arrivals (a send time d iterations back + latency). Once
    // the per-group delta vector has repeated for `window` consecutive
    // iterations — which covers every ring row the next iteration can
    // read, since procs + 1 <= window and max_wait_distance + 1 <=
    // window — the remaining trajectory is a candidate straight line.
    // `fast_forward` then proves the candidate: it re-evaluates one full
    // iteration at the extrapolated endpoint and accepts only if every
    // group lands exactly on its extrapolation. That check is
    // sufficient, not just plausible: each group's issue time is a max
    // of linear functions of the iteration index, i.e. convex, and a
    // convex function that meets a straight chord at both endpoints
    // cannot leave it in between — so endpoint equality forces every
    // intermediate iteration onto the line, and the remaining stall and
    // finish sums have closed forms. Only taken with no faults and no
    // hook (both observe individual iterations), and only when all the
    // closed forms stay inside int64, so the loop's sat_add could never
    // have saturated either.
    // A bounded machine buffer also disables the skip: its constraint
    // reads wait times, which the fast-forward does not extrapolate.
    const bool can_skip = !hook && faults == nullptr && machine_buffer == 0;
    std::int64_t streak = 0;
    std::int64_t next_attempt = 0;
    std::int64_t d_start = 0;
    std::int64_t d_fin = 0;
    std::int64_t d_last = 0;
    std::vector<std::int64_t>& d_group = scratch_->d_group;
    std::vector<std::int64_t>& end_issue = scratch_->end_issue;

    // Evaluates iteration k + m from iteration k's row (`times`, with
    // `sends` its send row and `stalls` its stall count) under the
    // candidate deltas, and on success folds the m skipped iterations
    // into `result`. Any mismatch or potential int64 overflow rejects.
    const auto fast_forward = [&](const IterTimes& times,
                                  const std::int64_t* sends,
                                  std::int64_t stalls, std::int64_t m,
                                  SimResult& result) -> bool {
      // Everything extrapolated stays under kLimit, so the mirrored
      // arithmetic below (+1 chains, +latency) cannot overflow and
      // matches the loop's sat_add exactly (which never saturates in
      // this range either).
      constexpr std::int64_t kLimit =
          std::numeric_limits<std::int64_t>::max() / 4;
      const auto ext = [&](std::int64_t v, std::int64_t d, std::int64_t f,
                           std::int64_t* out) {
        if (mul_overflows(d, f) || add_overflows(v, d * f)) return false;
        *out = v + d * f;
        return *out >= 0 && *out <= kLimit;
      };
      const int len = schedule.length();
      const int procs = options.processors;
      std::int64_t start_end = 0;
      if (procs > 0) {
        // The loop reads row (k + m - procs).last_issue; that row is on
        // the candidate line (in the future by induction, in the past
        // because the streak spans the whole ring window).
        std::int64_t li = 0;
        if (!ext(times.last_issue, d_last, m - procs, &li)) return false;
        start_end = li + 1;
      }
      std::int64_t want = 0;
      if (!ext(times.start, d_start, m, &want) || start_end != want)
        return false;
      end_issue.assign(static_cast<std::size_t>(len), 0);
      std::int64_t prev_end = start_end - 1;
      std::int64_t finish_end = start_end;
      std::int64_t stalls_end = 0;
      for (int g = 0; g < len; ++g) {
        std::int64_t t = prev_end + 1;
        const std::int32_t ib = group_begin[static_cast<std::size_t>(g)];
        const std::int32_t ie = group_begin[static_cast<std::size_t>(g) + 1];
        for (std::int32_t ii = ib; ii < ie; ++ii) {
          const InstrRef& ref = instr_refs[static_cast<std::size_t>(ii)];
          for (std::int32_t p = ref.pred_begin; p < ref.pred_end; ++p) {
            const PredRef& pr = pred_refs[static_cast<std::size_t>(p)];
            const std::int64_t ready =
                end_issue[static_cast<std::size_t>(pr.slot)] + pr.latency;
            if (ready > t) t = ready;
          }
          if (ref.is_wait) {
            const auto stmt = static_cast<std::size_t>(ref.signal_stmt);
            // src_iter = k + m - distance >= 0 always: k >= window >
            // max_wait_distance. A signal unsent at iteration k is
            // unsent at every iteration and vice versa.
            if (send_slot[stmt] >= 0 && sends[stmt] != kNoTime) {
              std::int64_t sent_end = 0;
              if (!ext(sends[stmt],
                       d_group[static_cast<std::size_t>(send_slot[stmt])],
                       m - ref.sync_distance, &sent_end))
                return false;
              const std::int64_t arrival = sent_end + config.signal_latency;
              if (arrival > t) t = arrival;
            }
          }
        }
        if (!ext(times.group_issue[static_cast<std::size_t>(g)],
                 d_group[static_cast<std::size_t>(g)], m, &want) ||
            t != want)
          return false;
        end_issue[static_cast<std::size_t>(g)] = t;
        stalls_end += t - (prev_end + 1);
        prev_end = t;
        for (std::int32_t ii = ib; ii < ie; ++ii) {
          const std::int64_t done =
              t + instr_refs[static_cast<std::size_t>(ii)].drain_latency;
          if (done > finish_end) finish_end = done;
        }
      }
      if (!ext(times.finish, d_fin, m, &want) || finish_end != want)
        return false;
      if (!ext(times.last_issue, d_last, m, &want) || prev_end != want)
        return false;
      // Per-group stall contributions are linear and >= 0 at both
      // endpoints, hence >= 0 and linear throughout: the skipped
      // iterations contribute sum_{j=1..m} (stalls + j * rate).
      const std::int64_t diff = stalls_end - stalls;
      if (diff % m != 0) return false;
      const std::int64_t rate = diff / m;
      std::int64_t a = m;
      std::int64_t b = m + 1;
      if (a % 2 == 0) a /= 2; else b /= 2;
      if (mul_overflows(a, b)) return false;
      const std::int64_t tri = a * b;
      if (mul_overflows(stalls, m) || mul_overflows(rate, tri) ||
          add_overflows(stalls * m, rate * tri))
        return false;
      const std::int64_t extra = stalls * m + rate * tri;
      if (add_overflows(result.stall_cycles, extra)) return false;
      result.stall_cycles += extra;
      // Deltas are all >= 0 (checked by the caller), so the endpoint
      // finish dominates every skipped iteration's finish.
      if (finish_end > result.parallel_time) result.parallel_time = finish_end;
      return true;
    };

    for (std::int64_t k = 0; k < n; ++k) {
      IterTimes& times = row(k);
      times.group_issue.assign(
          static_cast<std::size_t>(schedule.length()), 0);
      std::int64_t start = 0;
      // A processor's issue stage frees the cycle after it issues the
      // previous iteration's last group (results drain in the pipelined
      // function units while the next iteration starts).
      if (procs > 0 && k >= procs)
        start = sat_add(row(k - procs).last_issue, 1);
      times.start = start;

      std::int64_t prev = start - 1;
      std::int64_t finish = start;
      std::int64_t stalls = 0;
      std::int64_t* const sends = send_times.data() + signal_row(k);
      std::fill_n(sends, static_cast<std::size_t>(signal_width), kNoTime);
      std::int64_t* waits = nullptr;
      if (faults != nullptr || machine_buffer > 0) {
        waits = wait_times.data() + signal_row(k);
        std::fill_n(waits, static_cast<std::size_t>(signal_width), kNoTime);
      }
      const std::int64_t* const issue = times.group_issue.data();
      const int len = schedule.length();
      for (int g = 0; g < len; ++g) {
        std::int64_t t = prev + 1;
        const std::int32_t ib = group_begin[static_cast<std::size_t>(g)];
        const std::int32_t ie = group_begin[static_cast<std::size_t>(g) + 1];
        for (std::int32_t ii = ib; ii < ie; ++ii) {
          const InstrRef& ref = instr_refs[static_cast<std::size_t>(ii)];
          // Operand readiness (same-iteration DFG predecessors).
          for (std::int32_t p = ref.pred_begin; p < ref.pred_end; ++p) {
            const PredRef& pr = pred_refs[static_cast<std::size_t>(p)];
            std::int64_t ready =
                issue[static_cast<std::size_t>(pr.slot)] + pr.latency;
            if (faults != nullptr) {
              const std::int64_t jitter = result_jitter(k, pr.from);
              if (jitter > 0) {
                ready = sat_add(ready, jitter);
                ++fault_events;
              }
            }
            if (ready > t) t = ready;
          }
          // Signal readiness for waits.
          if (ref.is_wait) {
            const auto stmt = static_cast<std::size_t>(ref.signal_stmt);
            const std::int64_t src_iter = k - ref.sync_distance;
            if (src_iter >= 0 && send_slot[stmt] >= 0) {
              const std::int64_t sent =
                  send_times[signal_row(src_iter) + stmt];
              if (sent != kNoTime) {
                std::int64_t arrival = sent + config.signal_latency;
                if (faults != nullptr) {
                  const std::int64_t delay =
                      signal_delay(src_iter, ref.signal_stmt);
                  if (delay > 0) {
                    arrival = sat_add(arrival, delay);
                    ++fault_events;
                  }
                }
                if (arrival > t) t = arrival;
              }
            }
            // Bounded signal buffer: the FIFO slot for this stream only
            // frees once the wait `depth` iterations back has issued.
            // The machine-level depth is part of the modeled hardware,
            // so its stalls are ordinary timing, not fault events; the
            // fault-plan capacity layered on top counts every extra
            // stall it causes beyond the machine's own.
            if (machine_buffer > 0 && k >= machine_buffer) {
              const std::int64_t old_wait =
                  wait_times[signal_row(k - machine_buffer) + stmt];
              if (old_wait != kNoTime && old_wait + 1 > t) t = old_wait + 1;
            }
            if (buffer_capacity > 0 && k >= buffer_capacity) {
              const std::int64_t old_wait =
                  wait_times[signal_row(k - buffer_capacity) + stmt];
              if (old_wait != kNoTime && old_wait + 1 > t) {
                t = old_wait + 1;
                ++fault_events;
              }
            }
          }
        }
        if (faults != nullptr) {
          const std::int64_t stall = issue_stall(k, g);
          if (stall > 0) {
            t = sat_add(t, stall);
            ++fault_events;
          }
        }
        times.group_issue[static_cast<std::size_t>(g)] = t;
        stalls += t - (prev + 1);
        prev = t;
        // Track result drain and record sends/waits.
        for (std::int32_t ii = ib; ii < ie; ++ii) {
          const InstrRef& ref = instr_refs[static_cast<std::size_t>(ii)];
          std::int64_t done = sat_add(t, ref.drain_latency);
          if (faults != nullptr)
            done = sat_add(done, result_jitter(k, ref.id));
          if (done > finish) finish = done;
          if (ref.is_send)
            sends[static_cast<std::size_t>(ref.signal_stmt)] = t;
          if (waits != nullptr && ref.is_wait)
            waits[static_cast<std::size_t>(ref.signal_stmt)] = t;
        }
      }
      times.finish = finish;
      times.last_issue = prev;
      result.stall_cycles = sat_add(result.stall_cycles, stalls);
      if (finish > result.parallel_time) result.parallel_time = finish;
      if (k == 0) result.iteration_time = finish - start;
      if (hook) hook(k);

      // Cutoff early-exit: parallel_time is a running max over iteration
      // finishes, so once it reaches the cutoff the final value provably
      // would too — the caller's threshold question is already decided
      // (see SimOptions::cutoff_time). Checked before the fast-forward
      // machinery below so a doomed run never pays for extrapolation.
      if (options.cutoff_time > 0 &&
          result.parallel_time >= options.cutoff_time) {
        result.cutoff_hit = true;
        break;
      }

      if (can_skip && k > 0) {
        const IterTimes& prior = row(k - 1);
        const std::int64_t cs = times.start - prior.start;
        const std::int64_t cf = times.finish - prior.finish;
        const std::int64_t cl = times.last_issue - prior.last_issue;
        bool same =
            streak > 0 && cs == d_start && cf == d_fin && cl == d_last;
        for (int g = 0; same && g < len; ++g) {
          same = times.group_issue[static_cast<std::size_t>(g)] -
                     prior.group_issue[static_cast<std::size_t>(g)] ==
                 d_group[static_cast<std::size_t>(g)];
        }
        if (same) {
          ++streak;
        } else if (cs >= 0 && cf >= 0 && cl >= 0) {
          d_start = cs;
          d_fin = cf;
          d_last = cl;
          d_group.assign(static_cast<std::size_t>(len), 0);
          streak = 1;
          for (int g = 0; g < len; ++g) {
            const std::int64_t cg =
                times.group_issue[static_cast<std::size_t>(g)] -
                prior.group_issue[static_cast<std::size_t>(g)];
            d_group[static_cast<std::size_t>(g)] = cg;
            if (cg < 0) streak = 0;
          }
        } else {
          streak = 0;
        }
        if (streak >= window && k + 1 < n && k >= next_attempt) {
          if (fast_forward(times, sends, stalls, n - 1 - k, result)) break;
          // A lurking faster-growing term will flip some group's delta
          // within finitely many iterations; retry once per window so
          // verification stays O(1/window) of total work.
          next_attempt = k + window;
        }
      }
    }
    return result;
  }
};

}  // namespace sim_detail
}  // namespace sbmp
