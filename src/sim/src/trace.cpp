#include "sbmp/sim/trace.h"

#include <algorithm>

namespace sbmp {

std::string trace_to_string(const TacFunction& tac, const Dfg& dfg,
                            const Schedule& schedule,
                            const MachineDesc& config,
                            const SimOptions& options, int iterations_shown,
                            int max_cycles) {
  const auto rows = simulate_issue_times(
      tac, dfg, schedule, config, options, iterations_shown);

  // Per-group marker: 'w' for a group holding a wait, 's' for a send,
  // '#' otherwise (a send-and-wait group shows 'w', the stall site).
  std::vector<char> marker(static_cast<std::size_t>(schedule.length()), '#');
  for (const auto& instr : tac.instrs) {
    auto& m = marker[static_cast<std::size_t>(schedule.slot(instr.id))];
    if (instr.op == Opcode::kSend && m == '#') m = 's';
    if (instr.op == Opcode::kWait) m = 'w';
  }

  std::string out;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& issue = rows[k];
    std::string line(static_cast<std::size_t>(max_cycles), ' ');
    if (!issue.empty()) {
      const std::int64_t start = issue.front();
      const std::int64_t stop = issue.back();
      for (std::int64_t c = start; c <= stop && c < max_cycles; ++c)
        line[static_cast<std::size_t>(c)] = '.';
      for (std::size_t g = 0; g < issue.size(); ++g) {
        if (issue[g] < max_cycles)
          line[static_cast<std::size_t>(issue[g])] = marker[g];
      }
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += "iter " + std::to_string(k) + (k < 10 ? " " : "") + " |" + line;
    if (!issue.empty() && issue.back() >= max_cycles) out += "...";
    out += "\n";
  }
  return out;
}

}  // namespace sbmp
