#include "sbmp/sim/fault.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "sbmp/sched/schedulers.h"
#include "sbmp/support/rng.h"
#include "sim_core.h"

namespace sbmp {

namespace {

using sim_detail::SimCore;

/// Iteration ceiling of the staleness oracle: it keeps a full issue-time
/// row per iteration (the ring is too narrow for a global cycle-order
/// sweep), so cap the retained prefix instead of scaling memory with
/// billion-iteration runs.
constexpr std::int64_t kOracleIterations = 65536;

/// Violation messages kept per run; beyond this only a count survives.
constexpr std::size_t kMaxMessages = 256;

/// One memory access instance observed by the oracle.
struct AccessEvent {
  std::int64_t cycle = 0;
  std::int64_t iter = 0;
  int instr = 0;
  bool is_write = false;
  std::int64_t element = 0;  ///< affine subscript value for `iter`
  int array = 0;             ///< index into the oracle's array table
};

/// A carried dependence with its source/sink access instructions
/// resolved against the TAC (by statement, access kind, array and
/// subscript — the same resolution check_cross_iteration_ordering
/// uses, independent of DFG arcs).
struct ResolvedDep {
  const Dependence* dep = nullptr;
  std::vector<int> src_instrs;
  std::vector<int> snk_instrs;
};

std::vector<int> find_accesses(const TacFunction& tac, int stmt,
                               const ArrayRef& ref, bool is_write) {
  std::vector<int> out;
  for (const auto& instr : tac.instrs) {
    if (instr.stmt_id != stmt || !instr.is_mem()) continue;
    const bool write = instr.op == Opcode::kStore;
    if (write != is_write) continue;
    if (instr.array == ref.array && instr.mem_index == ref.index)
      out.push_back(instr.id);
  }
  return out;
}

std::vector<ResolvedDep> resolve_deps(const TacFunction& tac,
                                      const std::vector<Dependence>& carried) {
  std::vector<ResolvedDep> resolved;
  for (const auto& dep : carried) {
    if (!dep.loop_carried()) continue;
    ResolvedDep rd;
    rd.dep = &dep;
    rd.src_instrs = find_accesses(tac, dep.src_stmt, dep.src_ref,
                                  dep.kind != DepKind::kAnti);
    rd.snk_instrs = find_accesses(tac, dep.snk_stmt, dep.snk_ref,
                                  dep.kind != DepKind::kFlow);
    resolved.push_back(std::move(rd));
  }
  return resolved;
}

void add_violation(FaultSimResult& out, std::int64_t& total,
                   std::string message) {
  ++total;
  if (out.staleness.size() < kMaxMessages)
    out.staleness.push_back(std::move(message));
}

std::string instance(const char* what, int instr, std::int64_t iter,
                     std::int64_t cycle) {
  return std::string(what) + " instr " + std::to_string(instr) +
         " of iteration " + std::to_string(iter) + " (cycle " +
         std::to_string(cycle) + ")";
}

}  // namespace

FaultPlan FaultPlan::adversarial(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.latency_jitter_percent = 40;
  plan.latency_jitter_max = 3;
  plan.signal_delay_percent = 40;
  plan.signal_delay_max = 4;
  plan.stall_percent = 25;
  plan.stall_max = 4;
  plan.signal_buffer_capacity = 2;
  return plan;
}

FaultSimResult simulate_with_faults(const TacFunction& tac, const Dfg& dfg,
                                    const Schedule& schedule,
                                    const MachineDesc& config,
                                    const SimOptions& options,
                                    const std::vector<Dependence>& carried,
                                    const FaultPlan& plan) {
  FaultSimResult out;
  SimCore core(tac, dfg, schedule, config, options, &plan);
  const std::int64_t oracle_n = std::min(core.n, kOracleIterations);

  // Retain the full issue-time rows of the oracle prefix; the ring only
  // keeps a window of recent iterations.
  std::vector<std::vector<std::int64_t>> rows;
  rows.reserve(static_cast<std::size_t>(std::min<std::int64_t>(oracle_n, 4096)));
  const auto hook = [&](std::int64_t k) {
    if (k < oracle_n) rows.push_back(core.row(k).group_issue);
  };
  out.sim = core.run(hook);
  out.fault_events = core.fault_events;

  const std::vector<ResolvedDep> resolved = resolve_deps(tac, carried);
  if (resolved.empty() || oracle_n <= 0) return out;

  const auto cycle_of = [&](int instr, std::int64_t k) {
    return rows[static_cast<std::size_t>(k)]
               [static_cast<std::size_t>(schedule.slot(instr))];
  };

  // ---- Staleness oracle -------------------------------------------------
  // Replay every relevant memory access instance in perturbed cycle
  // order, tracking the latest writer iteration of each (array, element)
  // location, and flag flow-dependence reads that issue before the write
  // they are obliged to observe. Reads sort before writes within a cycle:
  // "issued the same cycle" is not "strictly after the write", so a read
  // racing its writer counts as stale.
  std::int64_t total = 0;
  std::vector<std::string> arrays;
  const auto array_id = [&](const std::string& name) {
    for (std::size_t i = 0; i < arrays.size(); ++i)
      if (arrays[i] == name) return static_cast<int>(i);
    arrays.push_back(name);
    return static_cast<int>(arrays.size()) - 1;
  };

  // Flow requirements per read instruction: the dependence distance(s)
  // whose source write the read must observe.
  std::map<int, std::vector<const Dependence*>> flow_of_read;
  std::vector<bool> tracked(static_cast<std::size_t>(tac.size()) + 1, false);
  for (const auto& rd : resolved) {
    if (rd.dep->kind == DepKind::kFlow) {
      for (const int snk : rd.snk_instrs) {
        flow_of_read[snk].push_back(rd.dep);
        tracked[static_cast<std::size_t>(snk)] = true;
      }
    }
  }
  // Every store participates as a potential writer of a location.
  std::vector<AccessEvent> events;
  for (const auto& instr : tac.instrs) {
    const bool is_write = instr.op == Opcode::kStore;
    const bool is_tracked_read =
        instr.op == Opcode::kLoad && tracked[static_cast<std::size_t>(instr.id)];
    if (!is_write && !is_tracked_read) continue;
    const int arr = array_id(instr.array);
    for (std::int64_t k = 0; k < oracle_n; ++k) {
      AccessEvent e;
      e.cycle = cycle_of(instr.id, k);
      e.iter = k;
      e.instr = instr.id;
      e.is_write = is_write;
      e.element = instr.mem_index.eval(k);
      e.array = arr;
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const AccessEvent& a, const AccessEvent& b) {
              return std::tie(a.cycle, a.is_write, a.iter, a.instr) <
                     std::tie(b.cycle, b.is_write, b.iter, b.instr);
            });

  // (array, element) -> latest writer iteration processed so far.
  std::map<std::pair<int, std::int64_t>, std::int64_t> last_writer;
  for (const auto& e : events) {
    if (e.is_write) {
      auto& slot = last_writer[{e.array, e.element}];
      slot = std::max(slot, e.iter + 1);  // store iter+1 so 0 = "never"
      continue;
    }
    for (const Dependence* dep : flow_of_read[e.instr]) {
      const std::int64_t required = e.iter - dep->distance;
      if (required < 0) continue;
      const auto it = last_writer.find({e.array, e.element});
      const std::int64_t seen = it == last_writer.end() ? -1 : it->second - 1;
      if (seen < required) {
        add_violation(
            out, total,
            dep->to_string() + ": " +
                instance("read", e.instr, e.iter, e.cycle) +
                " observed writer iteration " + std::to_string(seen) +
                " of " + tac.by_id(e.instr).array + "[" +
                std::to_string(e.element) + "], needs iteration " +
                std::to_string(required) + " (stale value)");
      }
    }
  }

  // Anti/output instances: the source access must issue strictly before
  // its sink (live data must not be overwritten early; write order must
  // not invert). These are pairwise by construction — no location map
  // can express "this specific instance pair".
  for (const auto& rd : resolved) {
    if (rd.dep->kind == DepKind::kFlow) continue;
    for (std::int64_t k = rd.dep->distance; k < oracle_n; ++k) {
      const std::int64_t src_iter = k - rd.dep->distance;
      for (const int src : rd.src_instrs) {
        const std::int64_t src_time = cycle_of(src, src_iter);
        for (const int snk : rd.snk_instrs) {
          const std::int64_t snk_time = cycle_of(snk, k);
          if (!(src_time < snk_time)) {
            add_violation(out, total,
                          rd.dep->to_string() + ": " +
                              instance("source", src, src_iter, src_time) +
                              " does not precede " +
                              instance("sink", snk, k, snk_time));
          }
        }
      }
    }
  }

  if (total > static_cast<std::int64_t>(out.staleness.size())) {
    out.staleness.push_back(
        "... " +
        std::to_string(total -
                       static_cast<std::int64_t>(out.staleness.size())) +
        " further staleness violations suppressed");
  }
  return out;
}

FaultCampaign run_fault_campaign(const TacFunction& tac, const Dfg& dfg,
                                 const Schedule& schedule,
                                 const MachineDesc& config,
                                 const SimOptions& options,
                                 const std::vector<Dependence>& carried,
                                 const FaultPlan& shape, int trials) {
  FaultCampaign campaign;

  const auto absorb = [&](const FaultSimResult& r) {
    if (!r.staleness.empty()) {
      ++campaign.dirty_trials;
      campaign.total_violations +=
          static_cast<std::int64_t>(r.staleness.size());
      for (const auto& msg : r.staleness) {
        if (campaign.sample.size() >= 5) break;
        campaign.sample.push_back(msg);
      }
    }
    campaign.fault_events += r.fault_events;
    campaign.max_parallel_time =
        std::max(campaign.max_parallel_time, r.sim.parallel_time);
  };

  // Unperturbed baseline: the oracle alone already exposes schedules
  // whose broken synchronization loses under nominal timing.
  FaultPlan baseline;
  baseline.seed = shape.seed;
  const FaultSimResult base = simulate_with_faults(
      tac, dfg, schedule, config, options, carried, baseline);
  campaign.base_parallel_time = base.sim.parallel_time;
  absorb(base);

  SplitMix64 seeder(shape.seed);
  for (int t = 0; t < trials; ++t) {
    FaultPlan derived = shape;
    derived.seed = seeder.next();
    absorb(simulate_with_faults(tac, dfg, schedule, config, options, carried,
                                derived));
    ++campaign.trials;
  }
  return campaign;
}

const char* mutation_name(ScheduleMutation m) {
  switch (m) {
    case ScheduleMutation::kHoistSend: return "hoist-send";
    case ScheduleMutation::kSinkWait: return "sink-wait";
    case ScheduleMutation::kDropArc: return "drop-arc";
  }
  return "?";
}

std::optional<ScheduleMutation> parse_mutation(std::string_view name) {
  if (name == "hoist-send") return ScheduleMutation::kHoistSend;
  if (name == "sink-wait") return ScheduleMutation::kSinkWait;
  if (name == "drop-arc") return ScheduleMutation::kDropArc;
  return std::nullopt;
}

namespace {

void rebuild_slots(Schedule& schedule, int instr_count) {
  schedule.slot_of.assign(static_cast<std::size_t>(instr_count) + 1, 0);
  for (std::size_t g = 0; g < schedule.groups.size(); ++g)
    for (const int id : schedule.groups[g])
      schedule.slot_of[static_cast<std::size_t>(id)] = static_cast<int>(g);
}

bool remove_from_groups(Schedule& schedule, int id) {
  for (auto& group : schedule.groups) {
    const auto it = std::find(group.begin(), group.end(), id);
    if (it != group.end()) {
      group.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace

bool apply_schedule_mutation(ScheduleMutation m, TacFunction& tac,
                             std::optional<Dfg>& dfg, Schedule& schedule,
                             const MachineDesc& config) {
  switch (m) {
    case ScheduleMutation::kHoistSend: {
      for (const auto& instr : tac.instrs) {
        if (instr.op != Opcode::kSend) continue;
        if (!remove_from_groups(schedule, instr.id)) continue;
        schedule.groups.insert(schedule.groups.begin(), {instr.id});
        rebuild_slots(schedule, tac.size());
        return true;
      }
      return false;
    }
    case ScheduleMutation::kSinkWait: {
      for (const auto& instr : tac.instrs) {
        if (instr.op != Opcode::kWait) continue;
        if (!remove_from_groups(schedule, instr.id)) continue;
        schedule.groups.push_back({instr.id});
        rebuild_slots(schedule, tac.size());
        return true;
      }
      return false;
    }
    case ScheduleMutation::kDropArc: {
      for (auto& instr : tac.instrs) {
        if (instr.op != Opcode::kWait || instr.guarded_instrs.empty())
          continue;
        const std::vector<int> freed = instr.guarded_instrs;
        const int wait_id = instr.id;
        instr.guarded_instrs.clear();
        dfg.emplace(tac, config);
        schedule = schedule_list(tac, *dfg, config);
        // The scheduler's priorities may accidentally keep the sink
        // after the wait even without the arc; the scenario under test
        // is the one where the lost constraint is exploited, so force
        // the reorder then: hoist the first freed sink access to a new
        // front group, ahead of the wait.
        const bool exploited =
            std::any_of(freed.begin(), freed.end(), [&](int id) {
              return schedule.slot(id) <= schedule.slot(wait_id);
            });
        if (!exploited && !freed.empty()) {
          const int victim = freed.front();
          if (remove_from_groups(schedule, victim)) {
            schedule.groups.insert(schedule.groups.begin(), {victim});
            rebuild_slots(schedule, tac.size());
          }
        }
        return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace sbmp
