#include "sbmp/sim/analytic.h"

#include <algorithm>

#include "sbmp/support/overflow.h"

namespace sbmp {

std::int64_t lbd_parallel_time(std::int64_t n, std::int64_t d, int send_slot,
                               int wait_slot, std::int64_t iteration_time,
                               int signal_latency) {
  if (n <= 0) return 0;
  // Widen before combining: send_slot + signal_latency can itself wrap
  // int for extreme slot numbers.
  const std::int64_t shift = static_cast<std::int64_t>(send_slot) +
                             signal_latency - wait_slot;
  if (shift <= 0) return iteration_time;  // LFD: signal arrives in time
  const std::int64_t links = (n - 1) / d;
  // links x shift is the paper's n x (i - j + 1) product; at n = 2^40 it
  // can exceed int64, so saturate instead of wrapping into a bogus small
  // (or negative) "time". A saturated value is still a valid bound.
  return sat_add(sat_mul(links, shift), iteration_time);
}

std::int64_t analytic_lower_bound(const Dfg& dfg, const Schedule& schedule,
                                  std::int64_t n, std::int64_t iteration_time,
                                  int signal_latency) {
  std::int64_t worst = iteration_time;
  for (const auto& pair : dfg.pairs()) {
    worst = std::max(
        worst, lbd_parallel_time(n, pair.distance,
                                 schedule.slot(pair.send_instr),
                                 schedule.slot(pair.wait_instr),
                                 iteration_time, signal_latency));
  }
  return worst;
}

int worst_sync_span(const Dfg& dfg, const Schedule& schedule) {
  int worst = 0;
  for (const auto& pair : dfg.pairs()) {
    const int span = schedule.slot(pair.send_instr) -
                     schedule.slot(pair.wait_instr) + 1;
    worst = std::max(worst, span);
  }
  return worst;
}

}  // namespace sbmp
