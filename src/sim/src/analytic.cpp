#include "sbmp/sim/analytic.h"

#include <algorithm>

#include "sbmp/support/overflow.h"

namespace sbmp {

std::int64_t lbd_parallel_time(std::int64_t n, std::int64_t d, int send_slot,
                               int wait_slot, std::int64_t iteration_time,
                               int signal_latency) {
  if (n <= 0) return 0;
  // Widen before combining: send_slot + signal_latency can itself wrap
  // int for extreme slot numbers.
  const std::int64_t shift = static_cast<std::int64_t>(send_slot) +
                             signal_latency - wait_slot;
  if (shift <= 0) return iteration_time;  // LFD: signal arrives in time
  const std::int64_t links = (n - 1) / d;
  // links x shift is the paper's n x (i - j + 1) product; at n = 2^40 it
  // can exceed int64, so saturate instead of wrapping into a bogus small
  // (or negative) "time". A saturated value is still a valid bound.
  return sat_add(sat_mul(links, shift), iteration_time);
}

std::int64_t analytic_lower_bound(const Dfg& dfg, const Schedule& schedule,
                                  std::int64_t n, std::int64_t iteration_time,
                                  int signal_latency) {
  std::int64_t worst = iteration_time;
  for (const auto& pair : dfg.pairs()) {
    worst = std::max(
        worst, lbd_parallel_time(n, pair.distance,
                                 schedule.slot(pair.send_instr),
                                 schedule.slot(pair.wait_instr),
                                 iteration_time, signal_latency));
  }
  return worst;
}

namespace {

/// Per-thread sweep buffers for the analytic bounds. Both bounds sit on
/// the compile hot path (the never-degrade guard evaluates one or two
/// per loop), so their O(instrs) scratch is retained across calls
/// instead of reallocated; the functions fully overwrite what they use.
struct AnalyticScratch {
  std::vector<std::int64_t> up;
  std::vector<std::int64_t> down;
  std::vector<std::int64_t> dist;
  std::vector<std::int64_t> suffix;
};

AnalyticScratch& analytic_scratch() {
  thread_local AnalyticScratch scratch;
  return scratch;
}

}  // namespace

std::int64_t schedule_free_lower_bound(const TacFunction& tac, const Dfg& dfg,
                                       const MachineDesc& config,
                                       std::int64_t n) {
  if (n <= 0) return 0;
  const int size = dfg.size();
  // Instruction ids are a topological order of the DFG (defs precede
  // uses, memory/sync arcs point forward — see Dfg's construction), so
  // one forward sweep gives up[] and one backward sweep gives down[].
  //   up[v]:   longest latency-weighted arc path into v (0 at roots);
  //   down[v]: longest arc path out of v plus the final result drain.
  AnalyticScratch& scratch = analytic_scratch();
  std::vector<std::int64_t>& up = scratch.up;
  std::vector<std::int64_t>& down = scratch.down;
  up.assign(static_cast<std::size_t>(size) + 1, 0);
  down.assign(static_cast<std::size_t>(size) + 1, 0);
  for (int v = 1; v <= size; ++v) {
    for (const DfgEdge& e : dfg.preds(v)) {
      const std::int64_t reach =
          sat_add(up[static_cast<std::size_t>(e.from)], e.latency);
      if (reach > up[static_cast<std::size_t>(v)])
        up[static_cast<std::size_t>(v)] = reach;
    }
  }
  std::int64_t crit = 0;
  for (int v = size; v >= 1; --v) {
    std::int64_t d = config.latency(tac.by_id(v).op);
    for (const DfgEdge& e : dfg.succs(v)) {
      const std::int64_t reach =
          sat_add(down[static_cast<std::size_t>(e.to)], e.latency);
      if (reach > d) d = reach;
    }
    down[static_cast<std::size_t>(v)] = d;
    crit = std::max(crit, sat_add(up[static_cast<std::size_t>(v)], d));
  }

  std::int64_t bound = crit;
  std::vector<std::int64_t>& dist = scratch.dist;
  for (const auto& pair : dfg.pairs()) {
    if (pair.distance <= 0) continue;
    // Longest wait -> send arc path. When the send is unreachable the
    // pair constrains nothing schedule-independently (placement can make
    // it LFD), so it contributes no term.
    constexpr std::int64_t kUnreachable = -1;
    dist.assign(static_cast<std::size_t>(size) + 1, kUnreachable);
    dist[static_cast<std::size_t>(pair.wait_instr)] = 0;
    for (int v = pair.wait_instr + 1; v <= pair.send_instr; ++v) {
      for (const DfgEdge& e : dfg.preds(v)) {
        const std::int64_t from = dist[static_cast<std::size_t>(e.from)];
        if (from == kUnreachable) continue;
        const std::int64_t reach = sat_add(from, e.latency);
        if (reach > dist[static_cast<std::size_t>(v)])
          dist[static_cast<std::size_t>(v)] = reach;
      }
    }
    const std::int64_t path = dist[static_cast<std::size_t>(pair.send_instr)];
    if (path == kUnreachable) continue;
    const std::int64_t shift = sat_add(path, config.signal_latency);
    const std::int64_t links = (n - 1) / pair.distance;
    const std::int64_t through =
        sat_add(up[static_cast<std::size_t>(pair.wait_instr)],
                down[static_cast<std::size_t>(pair.wait_instr)]);
    bound = std::max(bound, sat_add(sat_mul(links, shift), through));
  }
  return bound;
}

std::int64_t scheduled_lower_bound(const TacFunction& tac, const Dfg& dfg,
                                   const MachineDesc& config,
                                   const Schedule& schedule, std::int64_t n) {
  return scheduled_lower_bound(tac, dfg, config, schedule.slot_of,
                               schedule.length(), n);
}

std::int64_t scheduled_lower_bound(const TacFunction& tac, const Dfg& dfg,
                                   const MachineDesc& config,
                                   const std::vector<int>& slot_of,
                                   int length, std::int64_t n) {
  if (n <= 0) return 0;
  const int len = length;
  if (len <= 0) return 0;
  const auto slot = [&](int id) {
    return slot_of[static_cast<std::size_t>(id)];
  };
  // suffix[s] = max over instructions at slot >= s of slot + drain.
  // Groups issue at least one cycle apart and iteration 0 starts at 0,
  // so issue_0(slot(v)) >= slot(v) and the iteration finishes at or
  // after suffix[0]; from any group j onward the same spacing yields the
  // suffix[j] - j tail used by the chain terms below.
  std::vector<std::int64_t>& suffix = analytic_scratch().suffix;
  suffix.assign(static_cast<std::size_t>(len), 0);
  for (const auto& instr : tac.instrs) {
    const auto s = static_cast<std::size_t>(slot(instr.id));
    const std::int64_t done = sat_add(static_cast<std::int64_t>(s),
                                      config.latency(instr.op));
    if (done > suffix[s]) suffix[s] = done;
  }
  for (int s = len - 2; s >= 0; --s) {
    suffix[static_cast<std::size_t>(s)] =
        std::max(suffix[static_cast<std::size_t>(s)],
                 suffix[static_cast<std::size_t>(s) + 1]);
  }

  std::int64_t bound = suffix[0];
  for (const auto& pair : dfg.pairs()) {
    if (pair.distance <= 0) continue;
    const int send_slot = slot(pair.send_instr);
    const int wait_slot = slot(pair.wait_instr);
    // The chain argument walks issue_{k-d}(wait) forward to the send in
    // the same iteration, which needs the send scheduled at or after the
    // wait; a send placed earlier (possible only with signal latency
    // > 1 still leaving a positive shift) contributes no provable term.
    if (send_slot < wait_slot) continue;
    const std::int64_t shift = static_cast<std::int64_t>(send_slot) +
                               config.signal_latency - wait_slot;
    if (shift <= 0) continue;
    const std::int64_t links = (n - 1) / pair.distance;
    bound = std::max(
        bound, sat_add(sat_mul(links, shift),
                       suffix[static_cast<std::size_t>(wait_slot)]));
  }
  return bound;
}

int worst_sync_span(const Dfg& dfg, const Schedule& schedule) {
  int worst = 0;
  for (const auto& pair : dfg.pairs()) {
    const int span = schedule.slot(pair.send_instr) -
                     schedule.slot(pair.wait_instr) + 1;
    worst = std::max(worst, span);
  }
  return worst;
}

}  // namespace sbmp
