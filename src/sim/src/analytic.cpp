#include "sbmp/sim/analytic.h"

#include <algorithm>

namespace sbmp {

std::int64_t lbd_parallel_time(std::int64_t n, std::int64_t d, int send_slot,
                               int wait_slot, std::int64_t iteration_time,
                               int signal_latency) {
  if (n <= 0) return 0;
  const std::int64_t shift = send_slot + signal_latency - wait_slot;
  if (shift <= 0) return iteration_time;  // LFD: signal arrives in time
  const std::int64_t links = (n - 1) / d;
  return links * shift + iteration_time;
}

std::int64_t analytic_lower_bound(const Dfg& dfg, const Schedule& schedule,
                                  std::int64_t n,
                                  std::int64_t iteration_time) {
  std::int64_t worst = iteration_time;
  for (const auto& pair : dfg.pairs()) {
    worst = std::max(
        worst, lbd_parallel_time(n, pair.distance,
                                 schedule.slot(pair.send_instr),
                                 schedule.slot(pair.wait_instr),
                                 iteration_time));
  }
  return worst;
}

int worst_sync_span(const Dfg& dfg, const Schedule& schedule) {
  int worst = 0;
  for (const auto& pair : dfg.pairs()) {
    const int span = schedule.slot(pair.send_instr) -
                     schedule.slot(pair.wait_instr) + 1;
    worst = std::max(worst, span);
  }
  return worst;
}

}  // namespace sbmp
