#include "sbmp/sim/simulator.h"

#include <algorithm>
#include <functional>

#include "sim_core.h"

namespace sbmp {

using sim_detail::SimCore;

SimResult simulate(const TacFunction& tac, const Dfg& dfg,
                   const Schedule& schedule, const MachineDesc& config,
                   const SimOptions& options) {
  SimCore core(tac, dfg, schedule, config, options);
  SimResult result = core.run(nullptr);
  if (options.iterations <= 0) {
    // Zero-trip run: nothing executes (parallel_time and stall_cycles
    // stay 0), but iteration_time is a property of the schedule — one
    // iteration in isolation — so report it instead of a bogus 0.
    // Iteration 0 never waits on a signal, so a one-iteration probe is
    // exactly that isolated time.
    SimOptions probe_options = options;
    probe_options.iterations = 1;
    probe_options.processors = 0;
    probe_options.cutoff_time = 0;  // the probe wants the exact time
    SimCore probe(tac, dfg, schedule, config, probe_options);
    result.iteration_time = probe.run(nullptr).iteration_time;
  }
  return result;
}

std::vector<std::vector<std::int64_t>> simulate_issue_times(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineDesc& config, const SimOptions& options, int count) {
  std::vector<std::vector<std::int64_t>> rows;
  SimCore core(tac, dfg, schedule, config, options);
  const auto hook = [&](std::int64_t k) {
    if (k < count) rows.push_back(core.row(k).group_issue);
  };
  (void)core.run(hook);
  return rows;
}

std::vector<std::string> check_cross_iteration_ordering(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineDesc& config, const SimOptions& options,
    const std::vector<Dependence>& carried) {
  std::vector<std::string> violations;

  // Resolve each dependence's source and sink access instructions.
  struct DepInstrs {
    const Dependence* dep;
    std::vector<int> src_instrs;
    std::vector<int> snk_instrs;
  };
  const auto find_accesses = [&](int stmt, const ArrayRef& ref,
                                 bool is_write) {
    std::vector<int> out;
    for (const auto& instr : tac.instrs) {
      if (instr.stmt_id != stmt || !instr.is_mem()) continue;
      const bool write = instr.op == Opcode::kStore;
      if (write != is_write) continue;
      if (instr.array == ref.array && instr.mem_index == ref.index)
        out.push_back(instr.id);
    }
    return out;
  };
  std::vector<DepInstrs> resolved;
  std::int64_t max_distance = 1;
  for (const auto& dep : carried) {
    if (!dep.loop_carried()) continue;
    DepInstrs di;
    di.dep = &dep;
    di.src_instrs = find_accesses(dep.src_stmt, dep.src_ref,
                                  dep.kind != DepKind::kAnti);
    di.snk_instrs = find_accesses(dep.snk_stmt, dep.snk_ref,
                                  dep.kind != DepKind::kFlow);
    max_distance = std::max(max_distance, dep.distance);
    resolved.push_back(std::move(di));
  }

  SimOptions widened = options;
  SimCore core(tac, dfg, schedule, config, widened);
  // Widen the ring so source iterations stay visible.
  int window = static_cast<int>(std::max<std::int64_t>(
      core.window, max_distance + 1));
  if (window > core.n + 1) window = static_cast<int>(core.n) + 1;
  core.resize_window(window);

  const auto hook = [&](std::int64_t k) {
    for (const auto& di : resolved) {
      const std::int64_t src_iter = k - di.dep->distance;
      if (src_iter < 0) continue;
      for (const int src : di.src_instrs) {
        const std::int64_t src_time =
            core.row(src_iter).group_issue[static_cast<std::size_t>(
                schedule.slot(src))];
        for (const int snk : di.snk_instrs) {
          const std::int64_t snk_time =
              core.row(k).group_issue[static_cast<std::size_t>(
                  schedule.slot(snk))];
          if (!(src_time < snk_time)) {
            violations.push_back(
                di.dep->to_string() + ": source instr " +
                std::to_string(src) + " of iteration " +
                std::to_string(src_iter) + " issues at " +
                std::to_string(src_time) +
                ", not before sink instr " + std::to_string(snk) +
                " of iteration " + std::to_string(k) + " at " +
                std::to_string(snk_time));
          }
        }
      }
    }
  };
  (void)core.run(hook);
  return violations;
}

}  // namespace sbmp
