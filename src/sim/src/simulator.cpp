#include "sbmp/sim/simulator.h"

#include <algorithm>
#include <functional>
#include <map>

#include "sbmp/support/overflow.h"

namespace sbmp {

namespace {

/// Issue times of one iteration.
struct IterTimes {
  std::vector<std::int64_t> group_issue;
  std::int64_t finish = 0;      ///< cycle the last result is available
  std::int64_t last_issue = 0;  ///< issue cycle of the final group
  std::int64_t start = 0;
};

struct SimCore {
  const TacFunction& tac;
  const Dfg& dfg;
  const Schedule& schedule;
  const MachineConfig& config;
  const SimOptions& options;

  std::int64_t n = 0;
  int window = 1;                      ///< ring size over iterations
  std::vector<IterTimes> ring;
  std::map<int, int> send_slot;        ///< signal stmt -> group index
  /// Send issue cycles per iteration (ring-indexed) per signal stmt.
  std::vector<std::map<int, std::int64_t>> send_times;
  std::int64_t max_wait_distance = 0;

  explicit SimCore(const TacFunction& t, const Dfg& d, const Schedule& s,
                   const MachineConfig& c, const SimOptions& o)
      : tac(t), dfg(d), schedule(s), config(c), options(o) {
    // Degenerate inputs are pinned here: negative iteration/processor
    // counts clamp to the zero-trip / one-per-iteration cases, and the
    // ring never exceeds the n + 1 rows a run can actually touch (so
    // `processors > iterations` cannot size it past the trip count).
    n = std::max<std::int64_t>(options.iterations, 0);
    for (const auto& instr : tac.instrs) {
      if (instr.op == Opcode::kSend)
        send_slot[instr.signal_stmt] = schedule.slot(instr.id);
      if (instr.op == Opcode::kWait)
        max_wait_distance = std::max(max_wait_distance, instr.sync_distance);
    }
    const std::int64_t procs = std::max(options.processors, 0);
    std::int64_t rows = std::max<std::int64_t>(
        {sat_add(max_wait_distance, 1), procs + 1, 2});
    rows = std::min(rows, sat_add(n, 1));
    window = static_cast<int>(std::max<std::int64_t>(rows, 1));
    ring.assign(static_cast<std::size_t>(window), {});
    send_times.assign(static_cast<std::size_t>(window), {});
  }

  [[nodiscard]] IterTimes& row(std::int64_t k) {
    return ring[static_cast<std::size_t>(k % window)];
  }

  /// Runs all iterations; `hook(k)` fires after iteration k's times are
  /// final (rows of iterations in (k-window, k] are still available).
  SimResult run(const std::function<void(std::int64_t)>& hook) {
    SimResult result;
    result.schedule_length = schedule.length();
    const int procs = options.processors;

    for (std::int64_t k = 0; k < n; ++k) {
      IterTimes& times = row(k);
      times.group_issue.assign(
          static_cast<std::size_t>(schedule.length()), 0);
      std::int64_t start = 0;
      // A processor's issue stage frees the cycle after it issues the
      // previous iteration's last group (results drain in the pipelined
      // function units while the next iteration starts).
      if (procs > 0 && k >= procs)
        start = sat_add(row(k - procs).last_issue, 1);
      times.start = start;

      std::int64_t prev = start - 1;
      std::int64_t finish = start;
      std::int64_t stalls = 0;
      auto& sends = send_times[static_cast<std::size_t>(k % window)];
      sends.clear();
      for (int g = 0; g < schedule.length(); ++g) {
        std::int64_t t = prev + 1;
        for (const int id : schedule.groups[static_cast<std::size_t>(g)]) {
          // Operand readiness (same-iteration DFG predecessors).
          for (const auto& e : dfg.preds(id)) {
            const std::int64_t ready =
                times.group_issue[static_cast<std::size_t>(
                    schedule.slot(e.from))] +
                e.latency;
            if (ready > t) t = ready;
          }
          // Signal readiness for waits.
          const auto& instr = tac.by_id(id);
          if (instr.op == Opcode::kWait) {
            const std::int64_t src_iter = k - instr.sync_distance;
            if (src_iter >= 0 && send_slot.count(instr.signal_stmt)) {
              const auto& src_sends =
                  send_times[static_cast<std::size_t>(src_iter % window)];
              const auto it = src_sends.find(instr.signal_stmt);
              if (it != src_sends.end() &&
                  it->second + config.signal_latency > t)
                t = it->second + config.signal_latency;
            }
          }
        }
        times.group_issue[static_cast<std::size_t>(g)] = t;
        stalls += t - (prev + 1);
        prev = t;
        // Track result drain and record sends.
        for (const int id : schedule.groups[static_cast<std::size_t>(g)]) {
          const auto& instr = tac.by_id(id);
          const std::int64_t done = sat_add(t, config.latency(instr.op));
          if (done > finish) finish = done;
          if (instr.op == Opcode::kSend) sends[instr.signal_stmt] = t;
        }
      }
      times.finish = finish;
      times.last_issue = prev;
      result.stall_cycles = sat_add(result.stall_cycles, stalls);
      if (finish > result.parallel_time) result.parallel_time = finish;
      if (k == 0) result.iteration_time = finish - start;
      if (hook) hook(k);
    }
    return result;
  }
};

}  // namespace

SimResult simulate(const TacFunction& tac, const Dfg& dfg,
                   const Schedule& schedule, const MachineConfig& config,
                   const SimOptions& options) {
  SimCore core(tac, dfg, schedule, config, options);
  SimResult result = core.run(nullptr);
  if (options.iterations <= 0) {
    // Zero-trip run: nothing executes (parallel_time and stall_cycles
    // stay 0), but iteration_time is a property of the schedule — one
    // iteration in isolation — so report it instead of a bogus 0.
    // Iteration 0 never waits on a signal, so a one-iteration probe is
    // exactly that isolated time.
    SimOptions probe_options = options;
    probe_options.iterations = 1;
    probe_options.processors = 0;
    SimCore probe(tac, dfg, schedule, config, probe_options);
    result.iteration_time = probe.run(nullptr).iteration_time;
  }
  return result;
}

std::vector<std::vector<std::int64_t>> simulate_issue_times(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineConfig& config, const SimOptions& options, int count) {
  std::vector<std::vector<std::int64_t>> rows;
  SimCore core(tac, dfg, schedule, config, options);
  const auto hook = [&](std::int64_t k) {
    if (k < count) rows.push_back(core.row(k).group_issue);
  };
  (void)core.run(hook);
  return rows;
}

std::vector<std::string> check_cross_iteration_ordering(
    const TacFunction& tac, const Dfg& dfg, const Schedule& schedule,
    const MachineConfig& config, const SimOptions& options,
    const std::vector<Dependence>& carried) {
  std::vector<std::string> violations;

  // Resolve each dependence's source and sink access instructions.
  struct DepInstrs {
    const Dependence* dep;
    std::vector<int> src_instrs;
    std::vector<int> snk_instrs;
  };
  const auto find_accesses = [&](int stmt, const ArrayRef& ref,
                                 bool is_write) {
    std::vector<int> out;
    for (const auto& instr : tac.instrs) {
      if (instr.stmt_id != stmt || !instr.is_mem()) continue;
      const bool write = instr.op == Opcode::kStore;
      if (write != is_write) continue;
      if (instr.array == ref.array && instr.mem_index == ref.index)
        out.push_back(instr.id);
    }
    return out;
  };
  std::vector<DepInstrs> resolved;
  std::int64_t max_distance = 1;
  for (const auto& dep : carried) {
    if (!dep.loop_carried()) continue;
    DepInstrs di;
    di.dep = &dep;
    di.src_instrs = find_accesses(dep.src_stmt, dep.src_ref,
                                  dep.kind != DepKind::kAnti);
    di.snk_instrs = find_accesses(dep.snk_stmt, dep.snk_ref,
                                  dep.kind != DepKind::kFlow);
    max_distance = std::max(max_distance, dep.distance);
    resolved.push_back(std::move(di));
  }

  SimOptions widened = options;
  SimCore core(tac, dfg, schedule, config, widened);
  // Widen the ring so source iterations stay visible.
  core.window = static_cast<int>(std::max<std::int64_t>(
      core.window, max_distance + 1));
  if (core.window > core.n + 1) core.window = static_cast<int>(core.n) + 1;
  core.ring.assign(static_cast<std::size_t>(core.window), {});
  core.send_times.assign(static_cast<std::size_t>(core.window), {});

  const auto hook = [&](std::int64_t k) {
    for (const auto& di : resolved) {
      const std::int64_t src_iter = k - di.dep->distance;
      if (src_iter < 0) continue;
      for (const int src : di.src_instrs) {
        const std::int64_t src_time =
            core.row(src_iter).group_issue[static_cast<std::size_t>(
                schedule.slot(src))];
        for (const int snk : di.snk_instrs) {
          const std::int64_t snk_time =
              core.row(k).group_issue[static_cast<std::size_t>(
                  schedule.slot(snk))];
          if (!(src_time < snk_time)) {
            violations.push_back(
                di.dep->to_string() + ": source instr " +
                std::to_string(src) + " of iteration " +
                std::to_string(src_iter) + " issues at " +
                std::to_string(src_time) +
                ", not before sink instr " + std::to_string(snk) +
                " of iteration " + std::to_string(k) + " at " +
                std::to_string(snk_time));
          }
        }
      }
    }
  };
  (void)core.run(hook);
  return violations;
}

}  // namespace sbmp
