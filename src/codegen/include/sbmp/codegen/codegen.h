#pragma once

#include "sbmp/codegen/tac.h"
#include "sbmp/sync/sync.h"

namespace sbmp {

/// Lowers a synchronized DOACROSS loop body to DLX-like three-address
/// code, reproducing the shape of the paper's Fig 2:
///
///  * per statement: waits, LHS address computation, RHS lowering in
///    post-order (operand addresses and loads as encountered, then the
///    operation tree), the store, then sends;
///  * array addresses are `4 * (c*I + k)`: an integer add for the offset
///    (skipped when the subscript is plain `I`), a scaling shift on the
///    shifter unit, then the load/store — exactly the paper's
///    `t2 = I - 2; t3 = 4*t2; t4 = A[t3]` sequence;
///  * address computations are value-numbered across statements (the
///    paper reuses `t1 = 4*I` for `B[I]`, `A[I]` and the `B[I]` reload),
///    but loads are never reused: a statement always re-loads from
///    memory, which is what makes dependence sinks genuine loads.
///
/// Waits record the load/store instructions of their dependence sink and
/// sends record the access instructions of their dependence source, so
/// the DFG builder can insert the synchronization-condition arcs.
[[nodiscard]] TacFunction generate_tac(const SyncedLoop& synced);

}  // namespace sbmp
