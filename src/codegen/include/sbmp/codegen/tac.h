#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sbmp/ir/expr.h"
#include "sbmp/machine/machine.h"

namespace sbmp {

/// An instruction operand: a virtual register, an immediate, or absent.
struct Operand {
  enum class Kind { kNone, kReg, kImm };
  Kind kind = Kind::kNone;
  int reg = 0;
  std::int64_t imm = 0;

  [[nodiscard]] static Operand none() { return {}; }
  [[nodiscard]] static Operand r(int reg) {
    return {Kind::kReg, reg, 0};
  }
  [[nodiscard]] static Operand i(std::int64_t imm) {
    return {Kind::kImm, 0, imm};
  }
  [[nodiscard]] bool is_reg() const { return kind == Kind::kReg; }
};

/// One three-address instruction of the DLX-like loop body. Virtual
/// registers are single-assignment: every temporary is defined exactly
/// once per iteration, so register dependences are pure flow.
struct TacInstr {
  int id = 0;  ///< 1-based position, matching the paper's Fig 2 numbering.
  Opcode op = Opcode::kAdd;
  bool is_float = false;
  int dst = 0;  ///< Defined register; 0 when the opcode defines none.
  Operand a;
  Operand b;
  /// Memory ops: accessed array and its affine subscript (used for exact
  /// same-iteration alias tests when building the DFG).
  std::string array;
  AffineIndex mem_index;
  int stmt_id = 0;  ///< Source statement; 0 for none.
  // Synchronization payload (kWait / kSend only):
  int signal_stmt = 0;
  std::int64_t sync_distance = 0;  ///< kWait only.
  /// kWait: the dependence-sink access instructions this wait guards
  /// (they must not be scheduled before it). kSend: the dependence-source
  /// access instructions (the send must not be scheduled before them).
  std::vector<int> guarded_instrs;

  [[nodiscard]] bool is_sync() const {
    return op == Opcode::kWait || op == Opcode::kSend;
  }
  [[nodiscard]] bool is_mem() const {
    return op == Opcode::kLoad || op == Opcode::kStore;
  }
  [[nodiscard]] FuClass fu() const { return fu_class_of(op, is_float); }
};

/// The lowered body of one DOACROSS iteration.
struct TacFunction {
  std::vector<TacInstr> instrs;  ///< instrs[k].id == k+1.
  /// Register names: index by register id (1-based; names_[0] unused).
  std::vector<std::string> reg_names;
  int iter_reg = 0;  ///< Live-in register holding the iteration number.
  std::map<std::string, int> scalar_regs;  ///< Live-in loop parameters.
  std::string iter_var;

  [[nodiscard]] int size() const { return static_cast<int>(instrs.size()); }
  [[nodiscard]] const TacInstr& by_id(int id) const {
    return instrs[static_cast<std::size_t>(id - 1)];
  }
  [[nodiscard]] bool is_live_in(int reg) const;
  [[nodiscard]] std::string reg_name(int reg) const;
  /// Fig 2-style listing, one numbered instruction per line.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string instr_to_string(const TacInstr& instr) const;
};

}  // namespace sbmp
