#include "sbmp/codegen/codegen.h"

#include <cassert>
#include <optional>

namespace sbmp {

namespace {

/// log2 for exact powers of two, -1 otherwise.
int exact_log2(std::int64_t v) {
  if (v <= 0 || (v & (v - 1)) != 0) return -1;
  int log = 0;
  while ((std::int64_t{1} << log) != v) ++log;
  return log;
}

class CodeGenerator {
 public:
  explicit CodeGenerator(const SyncedLoop& synced) : synced_(synced) {
    fn_.iter_var = synced.loop.iter_var;
    fn_.reg_names.emplace_back("");  // register 0 is invalid
    fn_.iter_reg = alloc_named_reg(synced.loop.iter_var);
  }

  TacFunction run() {
    // Worst-case body size is known up front; reserving once keeps the
    // emit loop free of geometric growth (each TacInstr move drags two
    // strings and a guard list along).
    std::size_t instr_guess =
        synced_.waits.size() + synced_.sends.size();
    for (const auto& stmt : synced_.loop.body)
      instr_guess += 2 + 6 * expr_size(stmt.rhs);
    fn_.instrs.reserve(instr_guess);
    fn_.reg_names.reserve(instr_guess + 2);
    for (const auto& stmt : synced_.loop.body) {
      // Inlined waits_before(stmt.id): same order, no per-statement
      // vector materialized.
      for (const auto& wait : synced_.waits) {
        if (wait.sink_stmt != stmt.id) continue;
        TacInstr instr;
        instr.op = Opcode::kWait;
        instr.stmt_id = stmt.id;
        instr.signal_stmt = wait.signal_stmt;
        instr.sync_distance = wait.distance;
        pending_waits_.push_back({emit(std::move(instr)), wait});
      }
      lower_statement(stmt);
      for (const auto& send : synced_.sends) {
        if (send.signal_stmt != stmt.id) continue;
        TacInstr instr;
        instr.op = Opcode::kSend;
        instr.stmt_id = stmt.id;
        instr.signal_stmt = stmt.id;
        instr.guarded_instrs =
            find_accesses(stmt.id, send.src_ref, send.src_is_write);
        emit(std::move(instr));
      }
    }
    // Waits were emitted before their sink statement's accesses existed;
    // resolve the guarded instructions now.
    for (const auto& [wait_id, wait] : pending_waits_) {
      fn_.instrs[static_cast<std::size_t>(wait_id - 1)].guarded_instrs =
          find_accesses(wait.sink_stmt, wait.sink_ref, wait.sink_is_write);
    }
    return std::move(fn_);
  }

 private:
  static std::size_t expr_size(const Expr& e) {
    if (const auto* bin = std::get_if<BinaryExpr>(&e))
      return 1 + expr_size(*bin->lhs) + expr_size(*bin->rhs);
    return 1;
  }

  int alloc_named_reg(const std::string& name) {
    fn_.reg_names.push_back(name);
    return static_cast<int>(fn_.reg_names.size()) - 1;
  }

  int alloc_temp() {
    ++temp_count_;
    return alloc_named_reg("t" + std::to_string(temp_count_));
  }

  int emit(TacInstr instr) {
    instr.id = static_cast<int>(fn_.instrs.size()) + 1;
    fn_.instrs.push_back(std::move(instr));
    return fn_.instrs.back().id;
  }

  int scalar_reg(const std::string& name) {
    const auto it = fn_.scalar_regs.find(name);
    if (it != fn_.scalar_regs.end()) return it->second;
    const int reg = alloc_named_reg(name);
    fn_.scalar_regs.emplace(name, reg);
    return reg;
  }

  /// Register holding the unscaled subscript `c*I + k` (the iteration
  /// register itself for the plain `I` subscript).
  int index_reg(const AffineIndex& ix, int stmt_id) {
    if (ix.coef == 1 && ix.offset == 0) return fn_.iter_reg;
    if (const int hit = lookup(index_regs_, ix); hit != 0) return hit;

    int base = fn_.iter_reg;
    if (ix.coef == 0) {
      // Constant subscript: materialize with an integer add of 0 + k.
      const int reg = alloc_temp();
      TacInstr instr;
      instr.op = Opcode::kAddI;
      instr.dst = reg;
      instr.a = Operand::i(0);
      instr.b = Operand::i(ix.offset);
      instr.stmt_id = stmt_id;
      emit(std::move(instr));
      index_regs_.push_back({ix.coef, ix.offset, reg});
      return reg;
    }
    if (ix.coef != 1) {
      const int reg = alloc_temp();
      TacInstr instr;
      const int log = exact_log2(ix.coef);
      if (log >= 0) {
        instr.op = Opcode::kShl;
        instr.a = Operand::r(base);
        instr.b = Operand::i(log);
      } else {
        instr.op = Opcode::kMulI;
        instr.a = Operand::r(base);
        instr.b = Operand::i(ix.coef);
      }
      instr.dst = reg;
      instr.stmt_id = stmt_id;
      emit(std::move(instr));
      base = reg;
    }
    if (ix.offset != 0) {
      const int reg = alloc_temp();
      TacInstr instr;
      instr.op = Opcode::kAddI;
      instr.dst = reg;
      instr.a = Operand::r(base);
      instr.b = Operand::i(ix.offset);
      instr.stmt_id = stmt_id;
      emit(std::move(instr));
      base = reg;
    }
    index_regs_.push_back({ix.coef, ix.offset, base});
    return base;
  }

  /// Register holding the scaled byte offset `4 * (c*I + k)`, shared
  /// across statements and arrays (the paper's `t1 = 4*I`).
  int addr_reg(const AffineIndex& ix, int stmt_id) {
    if (const int hit = lookup(addr_regs_, ix); hit != 0) return hit;
    const int unscaled = index_reg(ix, stmt_id);
    const int reg = alloc_temp();
    TacInstr instr;
    instr.op = Opcode::kShl;
    instr.dst = reg;
    instr.a = Operand::r(unscaled);
    instr.b = Operand::i(2);  // element size 4
    instr.stmt_id = stmt_id;
    emit(std::move(instr));
    addr_regs_.push_back({ix.coef, ix.offset, reg});
    return reg;
  }

  bool array_is_float(const std::string& name) const {
    return synced_.loop.array_type(name) == ElemType::kReal;
  }

  /// Lowers an RHS expression in post-order; returns the operand holding
  /// its value and whether the value is floating point.
  std::pair<Operand, bool> lower_expr(const Expr& e, int stmt_id) {
    if (const auto* ref = std::get_if<ArrayRef>(&e)) {
      const int areg = addr_reg(ref->index, stmt_id);
      const int dst = alloc_temp();
      TacInstr instr;
      instr.op = Opcode::kLoad;
      instr.dst = dst;
      instr.a = Operand::r(areg);
      instr.array = ref->array;
      instr.mem_index = ref->index;
      instr.stmt_id = stmt_id;
      instr.is_float = array_is_float(ref->array);
      const int id = emit(std::move(instr));
      accesses_.push_back({stmt_id, ref->array, ref->index, false, id});
      return {Operand::r(dst), array_is_float(ref->array)};
    }
    if (std::holds_alternative<IterVar>(e))
      return {Operand::r(fn_.iter_reg), false};
    if (const auto* c = std::get_if<IntConst>(&e))
      return {Operand::i(c->value), false};
    if (const auto* s = std::get_if<ScalarRef>(&e)) {
      const bool is_float =
          synced_.loop.array_type(s->name) == ElemType::kReal;
      return {Operand::r(scalar_reg(s->name)), is_float};
    }
    const auto& bin = std::get<BinaryExpr>(e);
    auto [la, lf] = lower_expr(*bin.lhs, stmt_id);
    auto [ra, rf] = lower_expr(*bin.rhs, stmt_id);
    // Fold constant subtrees so no instruction has two immediates.
    if (la.kind == Operand::Kind::kImm && ra.kind == Operand::Kind::kImm) {
      const auto folded = fold(bin.op, la.imm, ra.imm);
      if (folded) return {Operand::i(*folded), false};
    }
    const bool is_float = lf || rf;
    const int dst = alloc_temp();
    TacInstr instr;
    switch (bin.op) {
      case BinOp::kAdd:
        instr.op = Opcode::kAdd;
        break;
      case BinOp::kSub:
        instr.op = Opcode::kSub;
        break;
      case BinOp::kMul:
        instr.op = Opcode::kMul;
        break;
      case BinOp::kDiv:
        instr.op = Opcode::kDiv;
        break;
      case BinOp::kShl:
        instr.op = Opcode::kShl;
        break;
    }
    instr.dst = dst;
    instr.a = la;
    instr.b = ra;
    instr.is_float = is_float;
    instr.stmt_id = stmt_id;
    emit(std::move(instr));
    return {Operand::r(dst), is_float};
  }

  static std::optional<std::int64_t> fold(BinOp op, std::int64_t a,
                                          std::int64_t b) {
    switch (op) {
      case BinOp::kAdd:
        return a + b;
      case BinOp::kSub:
        return a - b;
      case BinOp::kMul:
        return a * b;
      case BinOp::kDiv:
        if (b == 0) return std::nullopt;
        return a / b;
      case BinOp::kShl:
        if (b < 0 || b > 62) return std::nullopt;
        return a << b;
    }
    return std::nullopt;
  }

  void lower_statement(const Statement& stmt) {
    // LHS address first (the paper computes `t1 = 4*I` before the RHS).
    const int lhs_addr = addr_reg(stmt.lhs.index, stmt.id);
    const auto [value, value_is_float] = lower_expr(stmt.rhs, stmt.id);
    (void)value_is_float;
    TacInstr store;
    store.op = Opcode::kStore;
    store.a = Operand::r(lhs_addr);
    store.b = value;
    store.array = stmt.lhs.array;
    store.mem_index = stmt.lhs.index;
    store.stmt_id = stmt.id;
    store.is_float = array_is_float(stmt.lhs.array);
    const int id = emit(std::move(store));
    accesses_.push_back({stmt.id, stmt.lhs.array, stmt.lhs.index, true, id});
  }

  std::vector<int> find_accesses(int stmt_id, const ArrayRef& ref,
                                 bool is_write) const {
    std::vector<int> out;
    for (const auto& acc : accesses_) {
      if (acc.stmt == stmt_id && acc.is_write == is_write &&
          acc.array == ref.array && acc.index == ref.index) {
        out.push_back(acc.instr);
      }
    }
    return out;
  }

  struct AccessRec {
    int stmt;
    std::string array;
    AffineIndex index;
    bool is_write;
    int instr;
  };

  /// Flat (coef, offset) -> register memo. A loop body references a
  /// handful of distinct subscripts, so a linear scan beats a node-based
  /// map — and allocates nothing per entry. Register 0 is invalid,
  /// which is what lookup() returns on a miss.
  struct RegByIndex {
    std::int64_t coef;
    std::int64_t offset;
    int reg;
  };

  static int lookup(const std::vector<RegByIndex>& memo,
                    const AffineIndex& ix) {
    for (const auto& entry : memo) {
      if (entry.coef == ix.coef && entry.offset == ix.offset)
        return entry.reg;
    }
    return 0;
  }

  const SyncedLoop& synced_;
  TacFunction fn_;
  int temp_count_ = 0;
  std::vector<RegByIndex> index_regs_;
  std::vector<RegByIndex> addr_regs_;
  std::vector<AccessRec> accesses_;
  std::vector<std::pair<int, WaitOp>> pending_waits_;
};

}  // namespace

TacFunction generate_tac(const SyncedLoop& synced) {
  return CodeGenerator(synced).run();
}

}  // namespace sbmp
