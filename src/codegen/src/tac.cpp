#include "sbmp/codegen/tac.h"

namespace sbmp {

bool TacFunction::is_live_in(int reg) const {
  if (reg == iter_reg) return true;
  for (const auto& [name, r] : scalar_regs)
    if (r == reg) return true;
  return false;
}

std::string TacFunction::reg_name(int reg) const {
  if (reg <= 0 || reg >= static_cast<int>(reg_names.size())) return "?";
  return reg_names[static_cast<std::size_t>(reg)];
}

namespace {
std::string operand_str(const TacFunction& fn, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kReg:
      return fn.reg_name(op.reg);
    case Operand::Kind::kImm:
      return std::to_string(op.imm);
    case Operand::Kind::kNone:
      return "";
  }
  return "";
}

std::string binary_str(const TacFunction& fn, const TacInstr& i,
                       const char* symbol) {
  std::string rhs = operand_str(fn, i.a);
  const std::string b = operand_str(fn, i.b);
  // Render "x + -2" as "x - 2" to match the paper's listing style.
  if (i.b.kind == Operand::Kind::kImm && i.b.imm < 0 &&
      std::string(symbol) == "+") {
    return rhs + " - " + std::to_string(-i.b.imm);
  }
  return rhs + " " + symbol + " " + b;
}
}  // namespace

std::string TacFunction::instr_to_string(const TacInstr& i) const {
  switch (i.op) {
    case Opcode::kWait: {
      std::string dist = iter_var;
      dist += i.sync_distance >= 0 ? "-" : "+";
      dist += std::to_string(i.sync_distance >= 0 ? i.sync_distance
                                                  : -i.sync_distance);
      return "Wait_Signal(S" + std::to_string(i.signal_stmt) + ", " + dist +
             ")";
    }
    case Opcode::kSend:
      return "Send_Signal(S" + std::to_string(i.signal_stmt) + ")";
    case Opcode::kLoad:
      return reg_name(i.dst) + " = " + i.array + "[" + operand_str(*this, i.a) +
             "]";
    case Opcode::kStore:
      return i.array + "[" + operand_str(*this, i.a) +
             "] = " + operand_str(*this, i.b);
    case Opcode::kAddI:
      return reg_name(i.dst) + " = " + binary_str(*this, i, "+");
    case Opcode::kMulI:
      return reg_name(i.dst) + " = " + std::to_string(i.b.imm) + " * " +
             operand_str(*this, i.a);
    case Opcode::kShl:
      // Scaling shifts render multiplicatively like the paper ("4 * t2").
      if (i.b.kind == Operand::Kind::kImm) {
        return reg_name(i.dst) + " = " +
               std::to_string(std::int64_t{1} << i.b.imm) + " * " +
               operand_str(*this, i.a);
      }
      return reg_name(i.dst) + " = " + binary_str(*this, i, "<<");
    case Opcode::kAdd:
      return reg_name(i.dst) + " = " + binary_str(*this, i, "+");
    case Opcode::kSub:
      return reg_name(i.dst) + " = " + binary_str(*this, i, "-");
    case Opcode::kMul:
      return reg_name(i.dst) + " = " + binary_str(*this, i, "*");
    case Opcode::kDiv:
      return reg_name(i.dst) + " = " + binary_str(*this, i, "/");
  }
  return "?";
}

std::string TacFunction::to_string() const {
  std::string out;
  for (const auto& i : instrs) {
    out += std::to_string(i.id) + ": " + instr_to_string(i) + "\n";
  }
  return out;
}

}  // namespace sbmp
