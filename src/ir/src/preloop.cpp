#include "sbmp/ir/preloop.h"

namespace sbmp {

std::string pre_statement_to_string(const PreStatement& s,
                                    const std::string& iter_var) {
  std::string out;
  if (s.is_scalar()) {
    out = s.scalar_lhs;
  } else {
    out = s.lhs.array + "[" + s.lhs.index.to_string(iter_var) + "]";
  }
  out += " = " + expr_to_string(s.rhs, iter_var);
  return out;
}

std::string PreLoop::to_string() const {
  std::string out;
  if (!name.empty()) out += "loop " + name + "\n";
  out += declared_doacross ? "doacross " : "do ";
  out += iter_var + " = " + std::to_string(lower) + ", " +
         std::to_string(upper) + "\n";
  for (const auto& [array, type] : array_types) {
    if (type == ElemType::kInt) out += "  int " + array + "\n";
  }
  for (const auto& [scalar, value] : scalar_inits) {
    out += "  init " + scalar + " = " + std::to_string(value) + "\n";
  }
  for (const auto& s : body) {
    out += "  " + pre_statement_to_string(s, iter_var) + "\n";
  }
  out += "end\n";
  return out;
}

std::optional<Loop> pre_to_plain(const PreLoop& pre) {
  Loop loop;
  loop.name = pre.name;
  loop.iter_var = pre.iter_var;
  loop.lower = pre.lower;
  loop.upper = pre.upper;
  loop.declared_doacross = pre.declared_doacross;
  loop.array_types = pre.array_types;
  if (!pre.scalar_inits.empty()) return std::nullopt;
  for (const auto& s : pre.body) {
    if (s.is_scalar()) return std::nullopt;
    Statement stmt;
    stmt.id = static_cast<int>(loop.body.size()) + 1;
    stmt.lhs = s.lhs;
    stmt.rhs = s.rhs;
    stmt.loc = s.loc;
    loop.body.push_back(std::move(stmt));
  }
  return loop;
}

}  // namespace sbmp
