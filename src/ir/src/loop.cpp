#include "sbmp/ir/loop.h"

namespace sbmp {

std::string statement_to_string(const Statement& s,
                                const std::string& iter_var) {
  std::string out = s.label() + ": ";
  out += s.lhs.array + "[" + s.lhs.index.to_string(iter_var) + "]";
  out += " = ";
  out += expr_to_string(s.rhs, iter_var);
  return out;
}

std::string Loop::to_string() const {
  std::string out;
  if (!name.empty()) out += "loop " + name + "\n";
  out += declared_doacross ? "doacross " : "do ";
  out += iter_var + " = " + std::to_string(lower) + ", " +
         std::to_string(upper) + "\n";
  for (const auto& [array, type] : array_types) {
    if (type == ElemType::kInt) out += "  int " + array + "\n";
  }
  for (const auto& s : body) {
    out += "  " + s.lhs.array + "[" + s.lhs.index.to_string(iter_var) + "] = " +
           expr_to_string(s.rhs, iter_var) + "\n";
  }
  out += "end\n";
  return out;
}

}  // namespace sbmp
