#include "sbmp/ir/expr.h"

namespace sbmp {

const char* binop_symbol(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kShl:
      return "<<";
  }
  return "?";
}

std::string AffineIndex::to_string(const std::string& iter_var) const {
  std::string out;
  if (coef == 0) return std::to_string(offset);
  if (coef != 1) out += std::to_string(coef) + "*";
  out += iter_var;
  if (offset > 0) out += "+" + std::to_string(offset);
  if (offset < 0) out += std::to_string(offset);
  return out;
}

BinaryExpr::BinaryExpr(BinOp o, Expr l, Expr r)
    : op(o),
      lhs(std::make_unique<Expr>(std::move(l))),
      rhs(std::make_unique<Expr>(std::move(r))) {}

BinaryExpr::BinaryExpr(const BinaryExpr& other)
    : op(other.op),
      lhs(other.lhs ? std::make_unique<Expr>(*other.lhs) : nullptr),
      rhs(other.rhs ? std::make_unique<Expr>(*other.rhs) : nullptr) {}

BinaryExpr& BinaryExpr::operator=(const BinaryExpr& other) {
  if (this == &other) return *this;
  op = other.op;
  lhs = other.lhs ? std::make_unique<Expr>(*other.lhs) : nullptr;
  rhs = other.rhs ? std::make_unique<Expr>(*other.rhs) : nullptr;
  return *this;
}

bool operator==(const BinaryExpr& a, const BinaryExpr& b) {
  if (a.op != b.op) return false;
  if (static_cast<bool>(a.lhs) != static_cast<bool>(b.lhs)) return false;
  if (static_cast<bool>(a.rhs) != static_cast<bool>(b.rhs)) return false;
  if (a.lhs && !(*a.lhs == *b.lhs)) return false;
  if (a.rhs && !(*a.rhs == *b.rhs)) return false;
  return true;
}

Expr make_ref(std::string array, std::int64_t coef, std::int64_t offset) {
  return ArrayRef{std::move(array), {coef, offset}};
}

Expr make_ref(std::string array, std::int64_t offset) {
  return ArrayRef{std::move(array), {1, offset}};
}

Expr make_scalar(std::string name) { return ScalarRef{std::move(name)}; }

Expr make_const(std::int64_t value) { return IntConst{value}; }

Expr make_bin(BinOp op, Expr lhs, Expr rhs) {
  return BinaryExpr(op, std::move(lhs), std::move(rhs));
}

void collect_array_refs(const Expr& e, std::vector<ArrayRef>& out) {
  if (const auto* ref = std::get_if<ArrayRef>(&e)) {
    out.push_back(*ref);
  } else if (const auto* bin = std::get_if<BinaryExpr>(&e)) {
    if (bin->lhs) collect_array_refs(*bin->lhs, out);
    if (bin->rhs) collect_array_refs(*bin->rhs, out);
  }
}

void collect_scalar_refs(const Expr& e, std::vector<ScalarRef>& out) {
  if (const auto* ref = std::get_if<ScalarRef>(&e)) {
    out.push_back(*ref);
  } else if (const auto* bin = std::get_if<BinaryExpr>(&e)) {
    if (bin->lhs) collect_scalar_refs(*bin->lhs, out);
    if (bin->rhs) collect_scalar_refs(*bin->rhs, out);
  }
}

std::string expr_to_string(const Expr& e, const std::string& iter_var) {
  struct Visitor {
    const std::string& iv;
    std::string operator()(const ArrayRef& r) const {
      return r.array + "[" + r.index.to_string(iv) + "]";
    }
    std::string operator()(const ScalarRef& r) const { return r.name; }
    std::string operator()(const IterVar&) const { return iv; }
    std::string operator()(const IntConst& c) const {
      return std::to_string(c.value);
    }
    std::string operator()(const BinaryExpr& b) const {
      const std::string l = b.lhs ? std::visit(*this, *b.lhs) : "?";
      // Render "x + (-k)" as "x-k" for readability.
      if (b.op == BinOp::kAdd && b.rhs) {
        if (const auto* c = std::get_if<IntConst>(&*b.rhs);
            c != nullptr && c->value < 0) {
          return "(" + l + "-" + std::to_string(-c->value) + ")";
        }
      }
      const std::string r = b.rhs ? std::visit(*this, *b.rhs) : "?";
      return "(" + l + binop_symbol(b.op) + r + ")";
    }
  };
  return std::visit(Visitor{iter_var}, e);
}

}  // namespace sbmp
