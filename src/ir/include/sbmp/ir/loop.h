#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sbmp/ir/expr.h"
#include "sbmp/support/source_location.h"

namespace sbmp {

/// One array assignment statement `LHS[aff(i)] = expr`. LoopLang bodies
/// are straight-line sequences of these; scalar accumulators do not occur
/// because, following the paper's methodology, reductions and induction
/// variables are assumed to have been rewritten into array form by the
/// restructuring pre-passes (scalar expansion, reduction replacement,
/// induction-variable substitution).
struct Statement {
  int id = 0;  ///< 1-based position in the loop body; `label()` is "S<id>".
  ArrayRef lhs;
  Expr rhs;
  SourceLoc loc;

  [[nodiscard]] std::string label() const { return "S" + std::to_string(id); }
};

/// A single normalized loop (step 1). `declared_doacross` records whether
/// the source spelled `doacross`; the dependence analyzer decides whether
/// the loop actually is Doall or Doacross regardless.
struct Loop {
  std::string name;      ///< Optional; used by benchmark reports.
  std::string iter_var;  ///< Induction variable name, e.g. "I".
  std::int64_t lower = 1;
  std::int64_t upper = 1;
  bool declared_doacross = false;
  std::vector<Statement> body;
  /// Element type per array; arrays not listed default to kReal.
  std::map<std::string, ElemType> array_types;

  [[nodiscard]] std::int64_t trip_count() const {
    return upper >= lower ? upper - lower + 1 : 0;
  }

  [[nodiscard]] ElemType array_type(const std::string& array) const {
    const auto it = array_types.find(array);
    return it == array_types.end() ? ElemType::kReal : it->second;
  }

  /// Renders the loop back to LoopLang source (round-trips through the
  /// parser; used by tests and by the suite dumper).
  [[nodiscard]] std::string to_string() const;
};

/// A parsed LoopLang compilation unit: a list of loops.
struct Program {
  std::vector<Loop> loops;
};

/// Renders a statement like "S3: A[I] = (B[I]+C[I+3])".
[[nodiscard]] std::string statement_to_string(const Statement& s,
                                              const std::string& iter_var);

}  // namespace sbmp
