#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sbmp/ir/expr.h"
#include "sbmp/ir/loop.h"
#include "sbmp/support/source_location.h"

namespace sbmp {

/// A statement of the *pre-restructuring* loop form: the left-hand side
/// may be a scalar. The restructuring passes (scalar expansion,
/// reduction replacement, induction-variable substitution — the three
/// transformations the paper applies to turn DO loops into DOACROSS
/// form) eliminate every scalar definition, producing a plain Loop.
struct PreStatement {
  /// Scalar LHS when non-empty; otherwise `lhs` is the array target.
  std::string scalar_lhs;
  ArrayRef lhs;
  Expr rhs;
  SourceLoc loc;

  [[nodiscard]] bool is_scalar() const { return !scalar_lhs.empty(); }
};

/// A loop before restructuring.
struct PreLoop {
  std::string name;
  std::string iter_var;
  std::int64_t lower = 1;
  std::int64_t upper = 1;
  bool declared_doacross = false;
  std::vector<PreStatement> body;
  std::map<std::string, ElemType> array_types;
  /// Known entry values of scalars (`init k = 3` in LoopLang); needed
  /// when an induction variable feeds a subscript.
  std::map<std::string, std::int64_t> scalar_inits;

  [[nodiscard]] std::int64_t trip_count() const {
    return upper >= lower ? upper - lower + 1 : 0;
  }
  [[nodiscard]] std::string to_string() const;
};

struct PreProgram {
  std::vector<PreLoop> loops;
};

/// Renders one pre-statement, e.g. "sum = (sum+A[I])".
[[nodiscard]] std::string pre_statement_to_string(const PreStatement& s,
                                                  const std::string& iter_var);

/// Converts a scalar-free PreLoop into a plain Loop (assigning statement
/// ids); returns nullopt when scalar definitions or inits remain.
[[nodiscard]] std::optional<Loop> pre_to_plain(const PreLoop& pre);

}  // namespace sbmp
