#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace sbmp {

/// Binary operators available in LoopLang statement bodies. Each operator
/// maps to one function-unit class of the machine model (add/sub on the
/// integer or floating-point adder, mul on the multiplier, div on the
/// divider, shl on the shifter).
enum class BinOp { kAdd, kSub, kMul, kDiv, kShl };

[[nodiscard]] const char* binop_symbol(BinOp op);

/// Element type of an array; decides whether its arithmetic executes on
/// the integer unit or the floating-point unit.
enum class ElemType { kReal, kInt };

/// A one-dimensional affine subscript `coef * i + offset` in the loop
/// induction variable `i`. LoopLang restricts subscripts to this form,
/// which is exactly the class the paper's benchmarks exercise (types 3-6
/// of the DOACROSS taxonomy reduce to it after restructuring) and for
/// which dependence testing is exact.
struct AffineIndex {
  std::int64_t coef = 1;
  std::int64_t offset = 0;

  /// Subscript value for iteration `i`.
  [[nodiscard]] std::int64_t eval(std::int64_t i) const {
    return coef * i + offset;
  }

  /// Renders like "I", "I-2", "2*I+1".
  [[nodiscard]] std::string to_string(const std::string& iter_var) const;

  friend bool operator==(const AffineIndex&, const AffineIndex&) = default;
};

/// A reference to one array element, e.g. `A[I-2]`.
struct ArrayRef {
  std::string array;
  AffineIndex index;

  friend bool operator==(const ArrayRef&, const ArrayRef&) = default;
};

/// A loop-invariant scalar operand (a parameter of the loop).
struct ScalarRef {
  std::string name;

  friend bool operator==(const ScalarRef&, const ScalarRef&) = default;
};

/// The loop induction variable used as a value.
struct IterVar {
  friend bool operator==(const IterVar&, const IterVar&) = default;
};

/// An integer literal.
struct IntConst {
  std::int64_t value = 0;

  friend bool operator==(const IntConst&, const IntConst&) = default;
};

struct BinaryExpr;

/// Expression tree node. Value-semantic: copying an Expr deep-copies the
/// whole tree, so loops can be freely duplicated by the benchmark suite.
using Expr = std::variant<ArrayRef, ScalarRef, IterVar, IntConst, BinaryExpr>;

/// A binary operation over two sub-expressions.
struct BinaryExpr {
  BinOp op = BinOp::kAdd;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  BinaryExpr() = default;
  BinaryExpr(BinOp o, Expr l, Expr r);
  BinaryExpr(const BinaryExpr& other);
  BinaryExpr& operator=(const BinaryExpr& other);
  BinaryExpr(BinaryExpr&&) noexcept = default;
  BinaryExpr& operator=(BinaryExpr&&) noexcept = default;

  friend bool operator==(const BinaryExpr& a, const BinaryExpr& b);
};

/// Convenience constructors for building expressions in C++ (used by the
/// synthetic benchmark suite and tests).
[[nodiscard]] Expr make_ref(std::string array, std::int64_t coef,
                            std::int64_t offset);
[[nodiscard]] Expr make_ref(std::string array, std::int64_t offset);
[[nodiscard]] Expr make_scalar(std::string name);
[[nodiscard]] Expr make_const(std::int64_t value);
[[nodiscard]] Expr make_bin(BinOp op, Expr lhs, Expr rhs);

/// Collects every ArrayRef appearing in `e`, left-to-right.
void collect_array_refs(const Expr& e, std::vector<ArrayRef>& out);

/// Collects every ScalarRef appearing in `e`, left-to-right.
void collect_scalar_refs(const Expr& e, std::vector<ScalarRef>& out);

/// Renders the expression in LoopLang syntax with `iter_var` as the
/// induction variable name.
[[nodiscard]] std::string expr_to_string(const Expr& e,
                                         const std::string& iter_var);

}  // namespace sbmp
