#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sbmp/codegen/tac.h"
#include "sbmp/machine/machine.h"

namespace sbmp {

/// Classification of a weakly-connected DFG component, following the
/// paper's definitions: a Sig graph contains Send_Signal instructions
/// only, a Wat graph Wait_Signals only, a Sigwat graph both, and a plain
/// component neither.
enum class ComponentKind { kPlain, kSig, kWat, kSigwat };

[[nodiscard]] const char* component_kind_name(ComponentKind k);

/// Why a DFG edge exists.
enum class EdgeKind {
  kData,  ///< register flow (def -> use)
  kMem,   ///< same-iteration memory ordering on one array
  kSync,  ///< synchronization condition: Wat -> Snk or Src -> Sig
};

struct DfgEdge {
  int from = 0;  ///< instruction id
  int to = 0;    ///< instruction id
  int latency = 1;
  EdgeKind kind = EdgeKind::kData;
};

/// An instruction-level synchronization pair: one Wait_Signal and the
/// Send_Signal it consumes (they share `signal_stmt`).
struct SyncPair {
  int wait_instr = 0;
  int send_instr = 0;
  int signal_stmt = 0;
  std::int64_t distance = 1;
};

/// The data-flow graph of one lowered iteration, with the paper's extra
/// synchronization-condition arcs, partitioned into weakly-connected
/// components.
class Dfg {
 public:
  /// Builds the DFG for `tac` with edge latencies from `config`:
  ///  * register flow edges def -> use (latency = producer latency);
  ///  * same-iteration memory-ordering edges between accesses of one
  ///    array when at least one is a store and the subscripts may refer
  ///    to the same element (exact test for equal coefficients);
  ///  * synchronization-condition arcs Wait -> sink access and source
  ///    access -> Send, so no schedule can read stale data.
  Dfg(const TacFunction& tac, const MachineConfig& config);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] const std::vector<DfgEdge>& succs(int id) const {
    return succs_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<DfgEdge>& preds(int id) const {
    return preds_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<SyncPair>& pairs() const { return pairs_; }

  /// Component index of an instruction, or -1 for "free" nodes: pure
  /// functions of live-in registers (shared address arithmetic), which
  /// belong to no component and are placed on demand by the schedulers.
  [[nodiscard]] int component_of(int id) const {
    return component_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] bool is_free(int id) const {
    return free_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int num_components() const {
    return static_cast<int>(component_kinds_.size());
  }
  [[nodiscard]] ComponentKind component_kind(int comp) const {
    return component_kinds_[static_cast<std::size_t>(comp)];
  }
  /// Instruction ids of one component, in program order.
  [[nodiscard]] const std::vector<int>& component_members(int comp) const {
    return component_members_[static_cast<std::size_t>(comp)];
  }

  /// Shortest directed path (by node count) from `pair.wait_instr` to
  /// `pair.send_instr`; empty when the send is not reachable from the
  /// wait (the pair is then convertible to LFD by placement). This is
  /// the paper's synchronization path SP(Wat, Sig).
  [[nodiscard]] std::vector<int> sync_path(const SyncPair& pair) const;

  /// Critical-path height of each instruction (max latency-weighted path
  /// length to any leaf), the classic list-scheduling priority.
  [[nodiscard]] std::vector<int> heights() const;

  /// All transitive predecessors of `id` (excluding `id`).
  [[nodiscard]] std::vector<int> ancestors(int id) const;

 private:
  void add_edge(int from, int to, int latency, EdgeKind kind);
  void partition_components(const TacFunction& tac);

  int n_ = 0;  ///< number of instructions; ids are 1..n_.
  std::vector<bool> free_;
  std::vector<std::vector<DfgEdge>> succs_;
  std::vector<std::vector<DfgEdge>> preds_;
  std::vector<SyncPair> pairs_;
  std::vector<int> component_;
  std::vector<ComponentKind> component_kinds_;
  std::vector<std::vector<int>> component_members_;
};

}  // namespace sbmp
