#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sbmp/codegen/tac.h"
#include "sbmp/machine/machine.h"

namespace sbmp {

/// Classification of a weakly-connected DFG component, following the
/// paper's definitions: a Sig graph contains Send_Signal instructions
/// only, a Wat graph Wait_Signals only, a Sigwat graph both, and a plain
/// component neither.
enum class ComponentKind { kPlain, kSig, kWat, kSigwat };

[[nodiscard]] const char* component_kind_name(ComponentKind k);

/// Why a DFG edge exists.
enum class EdgeKind {
  kData,  ///< register flow (def -> use)
  kMem,   ///< same-iteration memory ordering on one array
  kSync,  ///< synchronization condition: Wat -> Snk or Src -> Sig
};

struct DfgEdge {
  int from = 0;  ///< instruction id
  int to = 0;    ///< instruction id
  int latency = 1;
  EdgeKind kind = EdgeKind::kData;
};

/// An instruction-level synchronization pair: one Wait_Signal and the
/// Send_Signal it consumes (they share `signal_stmt`).
struct SyncPair {
  int wait_instr = 0;
  int send_instr = 0;
  int signal_stmt = 0;
  std::int64_t distance = 1;
};

/// The data-flow graph of one lowered iteration, with the paper's extra
/// synchronization-condition arcs, partitioned into weakly-connected
/// components.
///
/// Storage is CSR (compressed sparse row): successor and predecessor
/// adjacency live in two flat edge arrays indexed by per-node offsets,
/// and node attributes (free flag, component id, critical-path height)
/// are SoA vectors precomputed at construction. Adjacency *order* is
/// part of the contract — it matches the historical per-node insertion
/// order exactly (schedulers walk predecessor lists in that order), and
/// the whole object remains a plain copyable value.
class Dfg {
 public:
  /// Builds the DFG for `tac` with edge latencies from `config`:
  ///  * register flow edges def -> use (latency = producer latency);
  ///  * same-iteration memory-ordering edges between accesses of one
  ///    array when at least one is a store and the subscripts may refer
  ///    to the same element (exact test for equal coefficients);
  ///  * synchronization-condition arcs Wait -> sink access and source
  ///    access -> Send, so no schedule can read stale data.
  Dfg(const TacFunction& tac, const MachineDesc& config);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::span<const DfgEdge> succs(int id) const {
    const auto i = static_cast<std::size_t>(id);
    return {succ_edges_.data() + succ_off_[i],
            static_cast<std::size_t>(succ_off_[i + 1] - succ_off_[i])};
  }
  [[nodiscard]] std::span<const DfgEdge> preds(int id) const {
    const auto i = static_cast<std::size_t>(id);
    return {pred_edges_.data() + pred_off_[i],
            static_cast<std::size_t>(pred_off_[i + 1] - pred_off_[i])};
  }
  /// Every edge once, grouped by source node in ascending id order with
  /// the per-node adjacency order inside each group (i.e. exactly the
  /// `for id { for succs(id) }` iteration, flattened).
  [[nodiscard]] std::span<const DfgEdge> edges() const { return succ_edges_; }
  [[nodiscard]] int indegree(int id) const {
    const auto i = static_cast<std::size_t>(id);
    return pred_off_[i + 1] - pred_off_[i];
  }
  [[nodiscard]] int outdegree(int id) const {
    const auto i = static_cast<std::size_t>(id);
    return succ_off_[i + 1] - succ_off_[i];
  }
  [[nodiscard]] const std::vector<SyncPair>& pairs() const { return pairs_; }

  /// Component index of an instruction, or -1 for "free" nodes: pure
  /// functions of live-in registers (shared address arithmetic), which
  /// belong to no component and are placed on demand by the schedulers.
  [[nodiscard]] int component_of(int id) const {
    return component_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] bool is_free(int id) const {
    return free_[static_cast<std::size_t>(id)] != 0;
  }
  [[nodiscard]] int num_components() const {
    return static_cast<int>(component_kinds_.size());
  }
  [[nodiscard]] ComponentKind component_kind(int comp) const {
    return component_kinds_[static_cast<std::size_t>(comp)];
  }
  /// Instruction ids of one component, in program order.
  [[nodiscard]] std::span<const int> component_members(int comp) const {
    const auto c = static_cast<std::size_t>(comp);
    return {member_ids_.data() + member_off_[c],
            static_cast<std::size_t>(member_off_[c + 1] - member_off_[c])};
  }

  /// Shortest directed path (by node count) from `pair.wait_instr` to
  /// `pair.send_instr`; empty when the send is not reachable from the
  /// wait (the pair is then convertible to LFD by placement). This is
  /// the paper's synchronization path SP(Wat, Sig).
  [[nodiscard]] std::vector<int> sync_path(const SyncPair& pair) const;

  /// Same query writing into `out` (cleared first). The sync-aware
  /// scheduler resolves every pair of every compiled loop through here;
  /// the out-parameter form lets it reuse one buffer per pair slot, and
  /// the BFS working set is per-thread scratch, so the query allocates
  /// nothing once warm.
  void sync_path(const SyncPair& pair, std::vector<int>& out) const;

  /// Critical-path height of each instruction (max latency-weighted path
  /// length to any leaf), the classic list-scheduling priority.
  /// Precomputed at construction; indexed by instruction id.
  [[nodiscard]] const std::vector<int>& heights() const { return height_; }

  /// All transitive predecessors of `id` (excluding `id`).
  [[nodiscard]] std::vector<int> ancestors(int id) const;

 private:
  void partition_components(const TacFunction& tac);

  int n_ = 0;  ///< number of instructions; ids are 1..n_.
  // CSR adjacency: offsets are n_+2 wide so succs(id)/preds(id) index
  // safely for every id in [0, n_].
  std::vector<std::int32_t> succ_off_;
  std::vector<std::int32_t> pred_off_;
  std::vector<DfgEdge> succ_edges_;
  std::vector<DfgEdge> pred_edges_;
  std::vector<SyncPair> pairs_;
  // SoA node attributes, indexed by instruction id.
  std::vector<std::uint8_t> free_;
  std::vector<int> component_;
  std::vector<int> height_;
  std::vector<ComponentKind> component_kinds_;
  // Component membership as one flat id array plus per-component offsets.
  std::vector<std::int32_t> member_off_;
  std::vector<int> member_ids_;
};

}  // namespace sbmp
