#pragma once

#include <optional>
#include <vector>

#include "sbmp/codegen/tac.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"

namespace sbmp {

/// Access-level redundant-synchronization analysis.
///
/// A Wait_Signal is redundant iff, for every access it guards, the
/// guarded ordering (source access of iteration i-d before sink access
/// of iteration i) is already implied by orderings that survive
/// instruction scheduling: DFG arcs within an iteration plus the
/// send->wait arcs of the remaining waits.
///
/// This is deliberately stronger than the classic statement-level
/// covering test (`find_redundant_waits` in sbmp/sync/sync.h): under
/// free instruction scheduling an unguarded sink load can issue in cycle
/// 0, so statement-order chains that do not terminate in an arc into the
/// exact sink access prove nothing. The classic example
/// `A[I] = A[I-1] + A[I-2]` is NOT reducible here — dropping the d=2
/// wait lets the A[I-2] load float ahead of the signal — whereas
/// multi-writer patterns whose covering chain ends in a wait on the same
/// sink access are.
///
/// Returns the instruction ids of redundant waits (greedily maximal,
/// longest distance first).
[[nodiscard]] std::vector<int> find_redundant_wait_instrs(
    const TacFunction& tac, const Dfg& dfg);

/// Rebuilds `tac` without the given wait instructions (ids renumbered,
/// guard lists remapped). Sends whose signal no remaining wait consumes
/// are dropped too.
[[nodiscard]] TacFunction remove_waits(const TacFunction& tac,
                                       const std::vector<int>& wait_ids);

/// Convenience: analyze + remove. `removed_count` (optional) reports how
/// many waits were eliminated. `dfg_out` (optional) always receives the
/// DFG of the returned TAC: the analysis DFG when nothing was removed
/// (the TAC is `tac` unchanged), or a freshly built post-removal DFG
/// otherwise — callers never rebuild one themselves.
[[nodiscard]] TacFunction eliminate_redundant_waits(
    const TacFunction& tac, const MachineDesc& config,
    int* removed_count = nullptr, std::optional<Dfg>* dfg_out = nullptr);

/// Same pass mutating `tac` in place. In the common case — no wait is
/// redundant — the function touches nothing and the caller pays zero
/// TAC copies, where the value-returning form above deep-copies the
/// whole function (instruction strings, guard lists, the scalar-register
/// map) just to hand it back unchanged. The compile hot path uses this
/// form; `dfg_out` follows the same always-matches contract.
void eliminate_redundant_waits_inplace(TacFunction& tac,
                                       const MachineDesc& config,
                                       int* removed_count = nullptr,
                                       std::optional<Dfg>* dfg_out = nullptr);

}  // namespace sbmp
