#pragma once

#include <string>

#include "sbmp/codegen/tac.h"
#include "sbmp/dfg/dfg.h"

namespace sbmp {

/// Renders the DFG as a Graphviz digraph: one node per instruction
/// (labelled with its Fig 2 text), clusters per Sig/Wat/Sigwat/plain
/// component, solid edges for data flow, dashed for memory ordering,
/// bold red for synchronization-condition arcs. Feed to `dot -Tsvg`.
[[nodiscard]] std::string dfg_to_dot(const TacFunction& tac, const Dfg& dfg);

}  // namespace sbmp
