#include "sbmp/dfg/export.h"

namespace sbmp {

namespace {

/// Escapes a label for DOT double-quoted strings.
std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* component_color(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kSigwat:
      return "lightgoldenrod1";
    case ComponentKind::kSig:
      return "lightskyblue";
    case ComponentKind::kWat:
      return "palegreen";
    case ComponentKind::kPlain:
      return "gray92";
  }
  return "white";
}

}  // namespace

std::string dfg_to_dot(const TacFunction& tac, const Dfg& dfg) {
  std::string out = "digraph dfg {\n  rankdir=TB;\n  node [shape=box, "
                    "fontname=\"monospace\", fontsize=10];\n";

  // Component clusters.
  for (int c = 0; c < dfg.num_components(); ++c) {
    const ComponentKind kind = dfg.component_kind(c);
    out += "  subgraph cluster_" + std::to_string(c) + " {\n";
    out += std::string("    label=\"") + component_kind_name(kind) +
           " graph\";\n";
    out += std::string("    style=filled; color=") +
           component_color(kind) + ";\n";
    for (const int id : dfg.component_members(c)) {
      out += "    n" + std::to_string(id) + ";\n";
    }
    out += "  }\n";
  }

  // Nodes (free address nodes sit outside every cluster).
  for (const auto& instr : tac.instrs) {
    out += "  n" + std::to_string(instr.id) + " [label=\"" +
           std::to_string(instr.id) + ": " +
           escape(tac.instr_to_string(instr)) + "\"";
    if (instr.op == Opcode::kWait)
      out += ", shape=invtriangle, style=filled, fillcolor=tomato";
    if (instr.op == Opcode::kSend)
      out += ", shape=triangle, style=filled, fillcolor=tomato";
    if (dfg.is_free(instr.id)) out += ", style=dotted";
    out += "];\n";
  }

  // Edges.
  for (int id = 1; id <= dfg.size(); ++id) {
    for (const auto& e : dfg.succs(id)) {
      out += "  n" + std::to_string(e.from) + " -> n" +
             std::to_string(e.to);
      switch (e.kind) {
        case EdgeKind::kData:
          if (e.latency > 1)
            out += " [label=\"" + std::to_string(e.latency) + "\"]";
          break;
        case EdgeKind::kMem:
          out += " [style=dashed]";
          break;
        case EdgeKind::kSync:
          out += " [color=red, penwidth=2]";
          break;
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace sbmp
