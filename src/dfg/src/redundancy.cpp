#include "sbmp/dfg/redundancy.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

namespace sbmp {

namespace {

/// BFS over the unrolled graph: nodes (offset, instr) with offsets in
/// [-depth, 0]. Same-offset edges are the DFG arcs (minus the candidate
/// wait's); cross edges go from a send instruction at offset k-d' to an
/// active wait on that signal at offset k. Checks whether `from` at
/// offset -depth reaches `to` at offset 0.
bool reaches(const TacFunction& tac, const Dfg& dfg,
             const std::vector<int>& active_waits, int candidate,
             std::int64_t depth, int from, int to) {
  const int n = tac.size();
  // send instr id per signal stmt (for cross edges).
  std::map<int, int> send_of;
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kSend) send_of[instr.signal_stmt] = instr.id;
  }
  // Waits keyed by the send they consume.
  std::multimap<int, int> waits_by_send;
  for (const int w : active_waits) {
    if (w == candidate) continue;
    const auto it = send_of.find(tac.by_id(w).signal_stmt);
    if (it != send_of.end()) waits_by_send.emplace(it->second, w);
  }

  const auto node = [&](std::int64_t off, int id) {
    return static_cast<std::size_t>((off + depth) * (n + 1) + id);
  };
  std::vector<bool> visited(static_cast<std::size_t>(depth + 1) *
                                (n + 1),
                            false);
  std::queue<std::pair<std::int64_t, int>> queue;
  queue.push({-depth, from});
  visited[node(-depth, from)] = true;
  while (!queue.empty()) {
    const auto [off, id] = queue.front();
    queue.pop();
    if (off == 0 && id == to) return true;
    const auto visit = [&](std::int64_t o, int v) {
      if (o < -depth || o > 0) return;
      if (!visited[node(o, v)]) {
        visited[node(o, v)] = true;
        queue.push({o, v});
      }
    };
    if (id != candidate) {
      for (const auto& e : dfg.succs(id)) visit(off, e.to);
    }
    if (tac.by_id(id).op == Opcode::kSend) {
      const auto range = waits_by_send.equal_range(id);
      for (auto it = range.first; it != range.second; ++it) {
        visit(off + tac.by_id(it->second).sync_distance, it->second);
      }
    }
  }
  return false;
}

bool wait_is_covered(const TacFunction& tac, const Dfg& dfg,
                     const std::vector<int>& active_waits, int candidate) {
  const auto& wait = tac.by_id(candidate);
  // Source accesses: the guarded instructions of this signal's send.
  const TacInstr* send = nullptr;
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kSend &&
        instr.signal_stmt == wait.signal_stmt) {
      send = &instr;
    }
  }
  if (send == nullptr || wait.guarded_instrs.empty()) return false;
  for (const int src : send->guarded_instrs) {
    for (const int snk : wait.guarded_instrs) {
      if (!reaches(tac, dfg, active_waits, candidate, wait.sync_distance,
                   src, snk))
        return false;
    }
  }
  return true;
}

}  // namespace

std::vector<int> find_redundant_wait_instrs(const TacFunction& tac,
                                            const Dfg& dfg) {
  std::vector<int> waits;
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait) waits.push_back(instr.id);
  }
  // Longest distance first: long waits are the likeliest to be covered
  // by chains of shorter ones, and mutual covers must not both drop.
  std::vector<int> order = waits;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return tac.by_id(a).sync_distance > tac.by_id(b).sync_distance;
  });

  std::vector<int> active = waits;
  std::vector<int> removed;
  for (const int w : order) {
    if (wait_is_covered(tac, dfg, active, w)) {
      active.erase(std::find(active.begin(), active.end(), w));
      removed.push_back(w);
    }
  }
  std::sort(removed.begin(), removed.end());
  return removed;
}

TacFunction remove_waits(const TacFunction& tac,
                         const std::vector<int>& wait_ids) {
  // Signals still consumed after removal.
  std::vector<bool> drop(static_cast<std::size_t>(tac.size()) + 1, false);
  for (const int id : wait_ids) drop[static_cast<std::size_t>(id)] = true;
  std::map<int, bool> live;
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait && !drop[static_cast<std::size_t>(instr.id)])
      live[instr.signal_stmt] = true;
  }
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kSend && !live.count(instr.signal_stmt))
      drop[static_cast<std::size_t>(instr.id)] = true;
  }

  TacFunction out;
  out.reg_names = tac.reg_names;
  out.iter_reg = tac.iter_reg;
  out.scalar_regs = tac.scalar_regs;
  out.iter_var = tac.iter_var;
  std::vector<int> remap(static_cast<std::size_t>(tac.size()) + 1, 0);
  for (const auto& instr : tac.instrs) {
    if (drop[static_cast<std::size_t>(instr.id)]) continue;
    TacInstr copy = instr;
    copy.id = static_cast<int>(out.instrs.size()) + 1;
    remap[static_cast<std::size_t>(instr.id)] = copy.id;
    out.instrs.push_back(std::move(copy));
  }
  for (auto& instr : out.instrs) {
    for (auto& g : instr.guarded_instrs)
      g = remap[static_cast<std::size_t>(g)];
    std::erase(instr.guarded_instrs, 0);
  }
  return out;
}

TacFunction eliminate_redundant_waits(const TacFunction& tac,
                                      const MachineConfig& config,
                                      int* removed_count) {
  const Dfg dfg(tac, config);
  const auto redundant = find_redundant_wait_instrs(tac, dfg);
  if (removed_count != nullptr)
    *removed_count = static_cast<int>(redundant.size());
  if (redundant.empty()) return tac;
  return remove_waits(tac, redundant);
}

}  // namespace sbmp
