#include "sbmp/dfg/redundancy.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace sbmp {

namespace {

/// Max signal statement index used by any sync instruction (for sizing
/// the flat per-signal lookup tables), or -1 with no sync at all.
int max_signal_stmt(const TacFunction& tac) {
  int max_stmt = -1;
  for (const auto& instr : tac.instrs) {
    if (instr.is_sync() && instr.signal_stmt > max_stmt)
      max_stmt = instr.signal_stmt;
  }
  return max_stmt;
}

/// Flat per-candidate cross-edge index: for each send instruction, the
/// active waits (minus the candidate) consuming its signal, as a CSR
/// over instruction ids. Replaces the per-call std::map / std::multimap
/// the BFS used to rebuild for every (source, sink) probe.
struct CrossEdges {
  std::vector<std::int32_t> off;    ///< per send id; size n + 2
  std::vector<int> waits;           ///< wait ids grouped by send id

  CrossEdges(const TacFunction& tac, const std::vector<int>& send_of_signal,
             const std::vector<int>& active_waits, int candidate) {
    const int n = tac.size();
    off.assign(static_cast<std::size_t>(n) + 2, 0);
    const auto send_for = [&](int w) {
      const int stmt = tac.by_id(w).signal_stmt;
      return stmt >= 0 && stmt < static_cast<int>(send_of_signal.size())
                 ? send_of_signal[static_cast<std::size_t>(stmt)]
                 : -1;
    };
    for (const int w : active_waits) {
      if (w == candidate) continue;
      const int s = send_for(w);
      if (s >= 0) ++off[static_cast<std::size_t>(s) + 1];
    }
    for (int i = 0; i <= n; ++i)
      off[static_cast<std::size_t>(i) + 1] += off[static_cast<std::size_t>(i)];
    waits.resize(static_cast<std::size_t>(off[static_cast<std::size_t>(n) + 1]));
    std::vector<std::int32_t> at(off.begin(), off.end() - 1);
    for (const int w : active_waits) {
      if (w == candidate) continue;
      const int s = send_for(w);
      if (s >= 0)
        waits[static_cast<std::size_t>(at[static_cast<std::size_t>(s)]++)] = w;
    }
  }
};

/// BFS over the unrolled graph: nodes (offset, instr) with offsets in
/// [-depth, 0]. Same-offset edges are the DFG arcs (minus the candidate
/// wait's); cross edges go from a send instruction at offset k-d' to an
/// active wait on that signal at offset k. Checks whether `from` at
/// offset -depth reaches `to` at offset 0. `visited` and `queue` are
/// caller-owned scratch, reset here, so repeated probes reuse them.
bool reaches(const TacFunction& tac, const Dfg& dfg, const CrossEdges& cross,
             int candidate, std::int64_t depth, int from, int to,
             std::vector<std::uint8_t>& visited,
             std::vector<std::pair<std::int64_t, int>>& queue) {
  const int n = tac.size();
  const auto node = [&](std::int64_t off, int id) {
    return static_cast<std::size_t>((off + depth) * (n + 1) + id);
  };
  visited.assign(static_cast<std::size_t>(depth + 1) * (n + 1), 0);
  queue.clear();
  queue.push_back({-depth, from});
  visited[node(-depth, from)] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [off, id] = queue[head];
    if (off == 0 && id == to) return true;
    const auto visit = [&](std::int64_t o, int v) {
      if (o < -depth || o > 0) return;
      if (visited[node(o, v)] == 0) {
        visited[node(o, v)] = 1;
        queue.push_back({o, v});
      }
    };
    if (id != candidate) {
      for (const auto& e : dfg.succs(id)) visit(off, e.to);
    }
    if (tac.by_id(id).op == Opcode::kSend) {
      const auto lo = static_cast<std::size_t>(
          cross.off[static_cast<std::size_t>(id)]);
      const auto hi = static_cast<std::size_t>(
          cross.off[static_cast<std::size_t>(id) + 1]);
      for (std::size_t i = lo; i < hi; ++i) {
        const int w = cross.waits[i];
        visit(off + tac.by_id(w).sync_distance, w);
      }
    }
  }
  return false;
}

bool wait_is_covered(const TacFunction& tac, const Dfg& dfg,
                     const std::vector<int>& send_of_signal,
                     const std::vector<int>& active_waits, int candidate,
                     std::vector<std::uint8_t>& visited,
                     std::vector<std::pair<std::int64_t, int>>& queue) {
  const auto& wait = tac.by_id(candidate);
  // Source accesses: the guarded instructions of this signal's send.
  const int send_id =
      wait.signal_stmt >= 0 &&
              wait.signal_stmt < static_cast<int>(send_of_signal.size())
          ? send_of_signal[static_cast<std::size_t>(wait.signal_stmt)]
          : -1;
  if (send_id < 0 || wait.guarded_instrs.empty()) return false;
  const auto& send = tac.by_id(send_id);
  const CrossEdges cross(tac, send_of_signal, active_waits, candidate);
  for (const int src : send.guarded_instrs) {
    for (const int snk : wait.guarded_instrs) {
      if (!reaches(tac, dfg, cross, candidate, wait.sync_distance, src, snk,
                   visited, queue))
        return false;
    }
  }
  return true;
}

}  // namespace

std::vector<int> find_redundant_wait_instrs(const TacFunction& tac,
                                            const Dfg& dfg) {
  // Per-thread working set: this analysis runs for every compiled loop
  // (the eliminate-redundant-waits default), so its buffers are retained
  // across calls. Each is fully re-initialized below.
  struct RedundancyScratch {
    std::vector<int> send_of_signal;
    std::vector<int> waits;
    std::vector<int> order;
    std::vector<int> active;
    std::vector<std::uint8_t> visited;
    std::vector<std::pair<std::int64_t, int>> queue;
  };
  thread_local RedundancyScratch scratch;

  // Send instruction per signal statement (flat, built once).
  std::vector<int>& send_of_signal = scratch.send_of_signal;
  send_of_signal.assign(static_cast<std::size_t>(max_signal_stmt(tac)) + 1,
                        -1);
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kSend)
      send_of_signal[static_cast<std::size_t>(instr.signal_stmt)] = instr.id;
  }

  std::vector<int>& waits = scratch.waits;
  waits.clear();
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait) waits.push_back(instr.id);
  }
  // Longest distance first: long waits are the likeliest to be covered
  // by chains of shorter ones, and mutual covers must not both drop.
  // Ties keep ascending id (the pre-sort order), reproducing the
  // historical stable_sort without its temporary buffer.
  std::vector<int>& order = scratch.order;
  order.assign(waits.begin(), waits.end());
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::int64_t da = tac.by_id(a).sync_distance;
    const std::int64_t db = tac.by_id(b).sync_distance;
    return da != db ? da > db : a < b;
  });

  std::vector<int>& active = scratch.active;
  active.assign(waits.begin(), waits.end());
  std::vector<int> removed;
  std::vector<std::uint8_t>& visited = scratch.visited;
  std::vector<std::pair<std::int64_t, int>>& queue = scratch.queue;
  for (const int w : order) {
    if (wait_is_covered(tac, dfg, send_of_signal, active, w, visited, queue)) {
      active.erase(std::find(active.begin(), active.end(), w));
      removed.push_back(w);
    }
  }
  std::sort(removed.begin(), removed.end());
  return removed;
}

TacFunction remove_waits(const TacFunction& tac,
                         const std::vector<int>& wait_ids) {
  // Signals still consumed after removal, as a flat per-signal bitmap.
  std::vector<bool> drop(static_cast<std::size_t>(tac.size()) + 1, false);
  for (const int id : wait_ids) drop[static_cast<std::size_t>(id)] = true;
  std::vector<std::uint8_t> live(
      static_cast<std::size_t>(max_signal_stmt(tac)) + 1, 0);
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait && !drop[static_cast<std::size_t>(instr.id)])
      live[static_cast<std::size_t>(instr.signal_stmt)] = 1;
  }
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kSend &&
        live[static_cast<std::size_t>(instr.signal_stmt)] == 0)
      drop[static_cast<std::size_t>(instr.id)] = true;
  }

  TacFunction out;
  out.reg_names = tac.reg_names;
  out.iter_reg = tac.iter_reg;
  out.scalar_regs = tac.scalar_regs;
  out.iter_var = tac.iter_var;
  std::vector<int> remap(static_cast<std::size_t>(tac.size()) + 1, 0);
  for (const auto& instr : tac.instrs) {
    if (drop[static_cast<std::size_t>(instr.id)]) continue;
    TacInstr copy = instr;
    copy.id = static_cast<int>(out.instrs.size()) + 1;
    remap[static_cast<std::size_t>(instr.id)] = copy.id;
    out.instrs.push_back(std::move(copy));
  }
  for (auto& instr : out.instrs) {
    for (auto& g : instr.guarded_instrs)
      g = remap[static_cast<std::size_t>(g)];
    std::erase(instr.guarded_instrs, 0);
  }
  return out;
}

TacFunction eliminate_redundant_waits(const TacFunction& tac,
                                      const MachineDesc& config,
                                      int* removed_count,
                                      std::optional<Dfg>* dfg_out) {
  TacFunction out = tac;
  eliminate_redundant_waits_inplace(out, config, removed_count, dfg_out);
  return out;
}

void eliminate_redundant_waits_inplace(TacFunction& tac,
                                       const MachineDesc& config,
                                       int* removed_count,
                                       std::optional<Dfg>* dfg_out) {
  Dfg dfg(tac, config);
  const auto redundant = find_redundant_wait_instrs(tac, dfg);
  if (removed_count != nullptr)
    *removed_count = static_cast<int>(redundant.size());
  if (redundant.empty()) {
    if (dfg_out != nullptr) *dfg_out = std::move(dfg);
    return;
  }
  tac = remove_waits(tac, redundant);
  // The contract is "dfg_out always matches the resulting TAC": building
  // the post-removal DFG here (the one place that knows removal
  // happened) lets every caller drop its own rebuild-if-absent logic.
  if (dfg_out != nullptr) dfg_out->emplace(tac, config);
}

}  // namespace sbmp
