#include "sbmp/dfg/dfg.h"

#include <algorithm>
#include <queue>
#include <set>

namespace sbmp {

const char* component_kind_name(ComponentKind k) {
  switch (k) {
    case ComponentKind::kPlain:
      return "plain";
    case ComponentKind::kSig:
      return "Sig";
    case ComponentKind::kWat:
      return "Wat";
    case ComponentKind::kSigwat:
      return "Sigwat";
  }
  return "?";
}

namespace {
/// Exact same-iteration alias test for two affine subscripts: with equal
/// coefficients the offsets decide; with different coefficients the
/// subscripts may coincide for some iteration, so assume aliasing.
bool may_alias_same_iteration(const AffineIndex& a, const AffineIndex& b) {
  if (a.coef == b.coef) return a.offset == b.offset;
  return true;
}
}  // namespace

Dfg::Dfg(const TacFunction& tac, const MachineConfig& config) {
  n_ = tac.size();
  succs_.resize(static_cast<std::size_t>(n_) + 1);
  preds_.resize(static_cast<std::size_t>(n_) + 1);

  // Register flow edges: virtual registers are single-assignment, so a
  // def site is unique; map reg -> defining instruction.
  std::vector<int> def_site(tac.reg_names.size(), 0);
  for (const auto& instr : tac.instrs) {
    const auto use = [&](const Operand& op) {
      if (!op.is_reg()) return;
      const int def = def_site[static_cast<std::size_t>(op.reg)];
      if (def != 0)
        add_edge(def, instr.id, config.latency(tac.by_id(def).op),
                 EdgeKind::kData);
    };
    use(instr.a);
    use(instr.b);
    if (instr.dst != 0) def_site[static_cast<std::size_t>(instr.dst)] = instr.id;
  }

  // Same-iteration memory ordering.
  for (int i = 1; i <= n_; ++i) {
    const auto& a = tac.by_id(i);
    if (!a.is_mem()) continue;
    for (int j = i + 1; j <= n_; ++j) {
      const auto& b = tac.by_id(j);
      if (!b.is_mem() || a.array != b.array) continue;
      if (a.op == Opcode::kLoad && b.op == Opcode::kLoad) continue;
      if (may_alias_same_iteration(a.mem_index, b.mem_index))
        add_edge(i, j, 1, EdgeKind::kMem);
    }
  }

  // Synchronization-condition arcs.
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait) {
      for (const int guarded : instr.guarded_instrs)
        add_edge(instr.id, guarded, 1, EdgeKind::kSync);
    } else if (instr.op == Opcode::kSend) {
      for (const int guarded : instr.guarded_instrs)
        add_edge(guarded, instr.id, 1, EdgeKind::kSync);
    }
  }

  // Instruction-level synchronization pairs.
  for (const auto& wait : tac.instrs) {
    if (wait.op != Opcode::kWait) continue;
    for (const auto& send : tac.instrs) {
      if (send.op == Opcode::kSend && send.signal_stmt == wait.signal_stmt) {
        pairs_.push_back(
            {wait.id, send.id, wait.signal_stmt, wait.sync_distance});
      }
    }
  }

  partition_components(tac);
}

void Dfg::add_edge(int from, int to, int latency, EdgeKind kind) {
  // Skip duplicate edges with identical endpoints; keep the max latency.
  for (auto& e : succs_[static_cast<std::size_t>(from)]) {
    if (e.to == to) {
      if (latency > e.latency) {
        e.latency = latency;
        for (auto& p : preds_[static_cast<std::size_t>(to)])
          if (p.from == from) p.latency = latency;
      }
      return;
    }
  }
  succs_[static_cast<std::size_t>(from)].push_back({from, to, latency, kind});
  preds_[static_cast<std::size_t>(to)].push_back({from, to, latency, kind});
}

void Dfg::partition_components(const TacFunction& tac) {
  // "Free" nodes compute pure functions of live-in registers (address
  // arithmetic over the iteration number and loop parameters). They are
  // schedulable anywhere, and the codegen's address value-numbering makes
  // them common ancestors of many statements (the paper's shared
  // `t1 = 4*I`), so routing weak connectivity through them would merge
  // genuinely independent Sig/Wat/Sigwat graphs. They are excluded from
  // the partition (component -1) and placed on demand by the schedulers.
  free_.assign(static_cast<std::size_t>(n_) + 1, false);
  for (const auto& instr : tac.instrs) {
    if (instr.is_mem() || instr.is_sync()) continue;
    bool free = true;
    const auto check = [&](const Operand& op) {
      if (!op.is_reg()) return;
      if (tac.is_live_in(op.reg)) return;
      // Non-live-in operand: free only if its producer is free.
      for (const auto& e : preds_[static_cast<std::size_t>(instr.id)]) {
        if (tac.by_id(e.from).dst == op.reg &&
            !free_[static_cast<std::size_t>(e.from)])
          free = false;
      }
    };
    check(instr.a);
    check(instr.b);
    free_[static_cast<std::size_t>(instr.id)] = free;
  }

  component_.assign(static_cast<std::size_t>(n_) + 1, -1);
  int next = 0;
  for (int start = 1; start <= n_; ++start) {
    if (free_[static_cast<std::size_t>(start)]) continue;
    if (component_[static_cast<std::size_t>(start)] != -1) continue;
    const int comp = next++;
    std::queue<int> queue;
    queue.push(start);
    component_[static_cast<std::size_t>(start)] = comp;
    while (!queue.empty()) {
      const int id = queue.front();
      queue.pop();
      const auto visit = [&](int other) {
        if (free_[static_cast<std::size_t>(other)]) return;
        if (component_[static_cast<std::size_t>(other)] == -1) {
          component_[static_cast<std::size_t>(other)] = comp;
          queue.push(other);
        }
      };
      for (const auto& e : succs_[static_cast<std::size_t>(id)]) visit(e.to);
      for (const auto& e : preds_[static_cast<std::size_t>(id)]) visit(e.from);
    }
  }
  component_kinds_.assign(static_cast<std::size_t>(next), ComponentKind::kPlain);
  component_members_.assign(static_cast<std::size_t>(next), {});
  std::vector<bool> has_sig(static_cast<std::size_t>(next), false);
  std::vector<bool> has_wat(static_cast<std::size_t>(next), false);
  for (const auto& instr : tac.instrs) {
    if (free_[static_cast<std::size_t>(instr.id)]) continue;
    const auto comp = static_cast<std::size_t>(component_of(instr.id));
    component_members_[comp].push_back(instr.id);
    if (instr.op == Opcode::kSend) has_sig[comp] = true;
    if (instr.op == Opcode::kWait) has_wat[comp] = true;
  }
  for (std::size_t c = 0; c < component_kinds_.size(); ++c) {
    if (has_sig[c] && has_wat[c])
      component_kinds_[c] = ComponentKind::kSigwat;
    else if (has_sig[c])
      component_kinds_[c] = ComponentKind::kSig;
    else if (has_wat[c])
      component_kinds_[c] = ComponentKind::kWat;
  }
}

std::vector<int> Dfg::sync_path(const SyncPair& pair) const {
  // BFS for the node-count-shortest directed path wait -> send.
  std::vector<int> parent(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<bool> visited(static_cast<std::size_t>(n_) + 1, false);
  std::queue<int> queue;
  queue.push(pair.wait_instr);
  visited[static_cast<std::size_t>(pair.wait_instr)] = true;
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop();
    if (id == pair.send_instr) {
      std::vector<int> path;
      for (int at = id; at != 0; at = parent[static_cast<std::size_t>(at)])
        path.push_back(at);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const auto& e : succs_[static_cast<std::size_t>(id)]) {
      if (!visited[static_cast<std::size_t>(e.to)]) {
        visited[static_cast<std::size_t>(e.to)] = true;
        parent[static_cast<std::size_t>(e.to)] = id;
        queue.push(e.to);
      }
    }
  }
  return {};
}

std::vector<int> Dfg::heights() const {
  std::vector<int> height(static_cast<std::size_t>(n_) + 1, 0);
  // Instructions are emitted in a topological order (defs precede uses,
  // memory/sync arcs point forward), so one reverse sweep suffices.
  for (int id = n_; id >= 1; --id) {
    int h = 0;
    for (const auto& e : succs_[static_cast<std::size_t>(id)])
      h = std::max(h, e.latency + height[static_cast<std::size_t>(e.to)]);
    height[static_cast<std::size_t>(id)] = h;
  }
  return height;
}

std::vector<int> Dfg::ancestors(int id) const {
  std::vector<bool> seen(static_cast<std::size_t>(n_) + 1, false);
  std::vector<int> out;
  std::queue<int> queue;
  queue.push(id);
  seen[static_cast<std::size_t>(id)] = true;
  while (!queue.empty()) {
    const int at = queue.front();
    queue.pop();
    for (const auto& e : preds_[static_cast<std::size_t>(at)]) {
      if (!seen[static_cast<std::size_t>(e.from)]) {
        seen[static_cast<std::size_t>(e.from)] = true;
        out.push_back(e.from);
        queue.push(e.from);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sbmp
