#include "sbmp/dfg/dfg.h"

#include <algorithm>
#include <queue>

#include "sbmp/support/arena.h"

namespace sbmp {

const char* component_kind_name(ComponentKind k) {
  switch (k) {
    case ComponentKind::kPlain:
      return "plain";
    case ComponentKind::kSig:
      return "Sig";
    case ComponentKind::kWat:
      return "Wat";
    case ComponentKind::kSigwat:
      return "Sigwat";
  }
  return "?";
}

namespace {
/// Exact same-iteration alias test for two affine subscripts: with equal
/// coefficients the offsets decide; with different coefficients the
/// subscripts may coincide for some iteration, so assume aliasing.
bool may_alias_same_iteration(const AffineIndex& a, const AffineIndex& b) {
  if (a.coef == b.coef) return a.offset == b.offset;
  return true;
}

/// Per-thread build scratch. Every DFG build on a thread reuses the same
/// arena (reset, not freed), so concurrent compiles on a shared pool
/// stop meeting in the allocator: after a worker's first build, its
/// scratch comes from thread-local blocks with zero malloc traffic. The
/// arena is reset at the top of each build and all pointers into it die
/// with the constructor, which never re-enters itself on one thread.
Arena& build_arena() {
  thread_local Arena arena;
  arena.reset();
  return arena;
}
}  // namespace

Dfg::Dfg(const TacFunction& tac, const MachineDesc& config) {
  n_ = tac.size();
  Arena& arena = build_arena();

  // The edge generators below emit a chronological stream of raw edge
  // events into one arena array (bounded up front, so it never moves).
  // Duplicate (from, to) events are then folded exactly the way the old
  // incremental add_edge did: the first occurrence keeps its position
  // and kind, later ones only raise the latency. Two stable counting
  // sorts of the surviving events — by source and by destination — give
  // the successor and predecessor CSR arrays with per-node adjacency in
  // precisely the historical insertion order (schedulers depend on it).
  std::size_t mem_count = 0;
  std::size_t sync_count = 0;
  for (const auto& instr : tac.instrs) {
    if (instr.is_mem()) ++mem_count;
    if (instr.op == Opcode::kWait || instr.op == Opcode::kSend)
      sync_count += instr.guarded_instrs.size();
  }
  const std::size_t raw_cap =
      2 * static_cast<std::size_t>(n_) +
      mem_count * (mem_count > 0 ? mem_count - 1 : 0) / 2 + sync_count;
  DfgEdge* raw = arena.allocate<DfgEdge>(raw_cap);
  std::size_t raw_n = 0;
  const auto emit = [&](int from, int to, int latency, EdgeKind kind) {
    raw[raw_n++] = {from, to, latency, kind};
  };

  // Register flow edges: virtual registers are single-assignment, so a
  // def site is unique; map reg -> defining instruction.
  int* def_site = arena.allocate_zeroed<int>(tac.reg_names.size());
  for (const auto& instr : tac.instrs) {
    const auto use = [&](const Operand& op) {
      if (!op.is_reg()) return;
      const int def = def_site[static_cast<std::size_t>(op.reg)];
      if (def != 0)
        emit(def, instr.id, config.latency(tac.by_id(def).op),
             EdgeKind::kData);
    };
    use(instr.a);
    use(instr.b);
    if (instr.dst != 0)
      def_site[static_cast<std::size_t>(instr.dst)] = instr.id;
  }

  // Same-iteration memory ordering.
  for (int i = 1; i <= n_; ++i) {
    const auto& a = tac.by_id(i);
    if (!a.is_mem()) continue;
    for (int j = i + 1; j <= n_; ++j) {
      const auto& b = tac.by_id(j);
      if (!b.is_mem() || a.array != b.array) continue;
      if (a.op == Opcode::kLoad && b.op == Opcode::kLoad) continue;
      if (may_alias_same_iteration(a.mem_index, b.mem_index))
        emit(i, j, 1, EdgeKind::kMem);
    }
  }

  // Synchronization-condition arcs.
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait) {
      for (const int guarded : instr.guarded_instrs)
        emit(instr.id, guarded, 1, EdgeKind::kSync);
    } else if (instr.op == Opcode::kSend) {
      for (const int guarded : instr.guarded_instrs)
        emit(guarded, instr.id, 1, EdgeKind::kSync);
    }
  }

  // Instruction-level synchronization pairs.
  for (const auto& wait : tac.instrs) {
    if (wait.op != Opcode::kWait) continue;
    for (const auto& send : tac.instrs) {
      if (send.op == Opcode::kSend && send.signal_stmt == wait.signal_stmt) {
        pairs_.push_back(
            {wait.id, send.id, wait.signal_stmt, wait.sync_distance});
      }
    }
  }

  // Stable counting sort of the event stream by source node; within one
  // bucket the chronological order is preserved.
  auto* cnt = arena.allocate_zeroed<std::int32_t>(
      static_cast<std::size_t>(n_) + 2);
  for (std::size_t i = 0; i < raw_n; ++i) ++cnt[raw[i].from + 1];
  for (int f = 0; f <= n_; ++f) cnt[f + 1] += cnt[f];
  auto* pos = arena.allocate<std::int32_t>(static_cast<std::size_t>(n_) + 1);
  std::copy(cnt, cnt + n_ + 1, pos);
  auto* sorted = arena.allocate<std::int32_t>(raw_n);
  for (std::size_t i = 0; i < raw_n; ++i)
    sorted[pos[raw[i].from]++] = static_cast<std::int32_t>(i);

  // Per-bucket dedup: first occurrence survives (keeping its kind),
  // duplicates fold their latency into it via max.
  auto* keep = arena.allocate_zeroed<std::uint8_t>(raw_n);
  std::size_t kept_total = 0;
  for (int f = 1; f <= n_; ++f) {
    const std::int32_t lo = cnt[f];
    const std::int32_t hi = cnt[f + 1];
    for (std::int32_t i = lo; i < hi; ++i) {
      DfgEdge& e = raw[sorted[i]];
      bool dup = false;
      for (std::int32_t j = lo; j < i; ++j) {
        if (keep[sorted[j]] == 0) continue;
        DfgEdge& first = raw[sorted[j]];
        if (first.to == e.to) {
          if (e.latency > first.latency) first.latency = e.latency;
          dup = true;
          break;
        }
      }
      if (!dup) {
        keep[sorted[i]] = 1;
        ++kept_total;
      }
    }
  }

  // Successor CSR: the surviving events in (from, chronological) order.
  succ_edges_.resize(kept_total);
  std::size_t w = 0;
  for (std::size_t i = 0; i < raw_n; ++i) {
    const std::int32_t r = sorted[i];
    if (keep[r]) succ_edges_[w++] = raw[r];
  }
  succ_off_.assign(static_cast<std::size_t>(n_) + 2, 0);
  for (const DfgEdge& e : succ_edges_) ++succ_off_[static_cast<std::size_t>(e.from) + 1];
  for (int f = 0; f <= n_; ++f)
    succ_off_[static_cast<std::size_t>(f) + 1] +=
        succ_off_[static_cast<std::size_t>(f)];

  // Predecessor CSR: surviving events in (to, chronological) order —
  // chronological is the old per-node pred insertion order, which
  // place_ancestors_asap walks.
  pred_off_.assign(static_cast<std::size_t>(n_) + 2, 0);
  for (std::size_t i = 0; i < raw_n; ++i)
    if (keep[i]) ++pred_off_[static_cast<std::size_t>(raw[i].to) + 1];
  for (int t = 0; t <= n_; ++t)
    pred_off_[static_cast<std::size_t>(t) + 1] +=
        pred_off_[static_cast<std::size_t>(t)];
  pred_edges_.resize(kept_total);
  auto* ppos = arena.allocate<std::int32_t>(static_cast<std::size_t>(n_) + 1);
  std::copy(pred_off_.data(), pred_off_.data() + n_ + 1, ppos);
  for (std::size_t i = 0; i < raw_n; ++i)
    if (keep[i]) pred_edges_[static_cast<std::size_t>(ppos[raw[i].to]++)] = raw[i];

  partition_components(tac);

  // Critical-path heights: instructions are emitted in a topological
  // order (defs precede uses, memory/sync arcs point forward), so one
  // reverse sweep suffices.
  height_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int id = n_; id >= 1; --id) {
    int h = 0;
    for (const auto& e : succs(id))
      h = std::max(h, e.latency + height_[static_cast<std::size_t>(e.to)]);
    height_[static_cast<std::size_t>(id)] = h;
  }
}

void Dfg::partition_components(const TacFunction& tac) {
  // "Free" nodes compute pure functions of live-in registers (address
  // arithmetic over the iteration number and loop parameters). They are
  // schedulable anywhere, and the codegen's address value-numbering makes
  // them common ancestors of many statements (the paper's shared
  // `t1 = 4*I`), so routing weak connectivity through them would merge
  // genuinely independent Sig/Wat/Sigwat graphs. They are excluded from
  // the partition (component -1) and placed on demand by the schedulers.
  free_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& instr : tac.instrs) {
    if (instr.is_mem() || instr.is_sync()) continue;
    bool free = true;
    const auto check = [&](const Operand& op) {
      if (!op.is_reg()) return;
      if (tac.is_live_in(op.reg)) return;
      // Non-live-in operand: free only if its producer is free.
      for (const auto& e : preds(instr.id)) {
        if (tac.by_id(e.from).dst == op.reg &&
            free_[static_cast<std::size_t>(e.from)] == 0)
          free = false;
      }
    };
    check(instr.a);
    check(instr.b);
    free_[static_cast<std::size_t>(instr.id)] = free ? 1 : 0;
  }

  component_.assign(static_cast<std::size_t>(n_) + 1, -1);
  std::vector<int> queue(static_cast<std::size_t>(n_) + 1);
  int next = 0;
  for (int start = 1; start <= n_; ++start) {
    if (free_[static_cast<std::size_t>(start)] != 0) continue;
    if (component_[static_cast<std::size_t>(start)] != -1) continue;
    const int comp = next++;
    std::size_t head = 0;
    std::size_t tail = 0;
    queue[tail++] = start;
    component_[static_cast<std::size_t>(start)] = comp;
    while (head < tail) {
      const int id = queue[head++];
      const auto visit = [&](int other) {
        if (free_[static_cast<std::size_t>(other)] != 0) return;
        if (component_[static_cast<std::size_t>(other)] == -1) {
          component_[static_cast<std::size_t>(other)] = comp;
          queue[tail++] = other;
        }
      };
      for (const auto& e : succs(id)) visit(e.to);
      for (const auto& e : preds(id)) visit(e.from);
    }
  }
  component_kinds_.assign(static_cast<std::size_t>(next),
                          ComponentKind::kPlain);
  std::vector<std::uint8_t> has_sig(static_cast<std::size_t>(next), 0);
  std::vector<std::uint8_t> has_wat(static_cast<std::size_t>(next), 0);
  member_off_.assign(static_cast<std::size_t>(next) + 1, 0);
  for (const auto& instr : tac.instrs) {
    if (free_[static_cast<std::size_t>(instr.id)] != 0) continue;
    const auto comp = static_cast<std::size_t>(component_of(instr.id));
    ++member_off_[comp + 1];
    if (instr.op == Opcode::kSend) has_sig[comp] = 1;
    if (instr.op == Opcode::kWait) has_wat[comp] = 1;
  }
  for (int c = 0; c < next; ++c)
    member_off_[static_cast<std::size_t>(c) + 1] +=
        member_off_[static_cast<std::size_t>(c)];
  member_ids_.resize(
      static_cast<std::size_t>(member_off_[static_cast<std::size_t>(next)]));
  std::vector<std::int32_t> mpos(member_off_.begin(),
                                 member_off_.end() - 1);
  for (const auto& instr : tac.instrs) {
    if (free_[static_cast<std::size_t>(instr.id)] != 0) continue;
    const auto comp = static_cast<std::size_t>(component_of(instr.id));
    member_ids_[static_cast<std::size_t>(mpos[comp]++)] = instr.id;
  }
  for (std::size_t c = 0; c < component_kinds_.size(); ++c) {
    if (has_sig[c] != 0 && has_wat[c] != 0)
      component_kinds_[c] = ComponentKind::kSigwat;
    else if (has_sig[c] != 0)
      component_kinds_[c] = ComponentKind::kSig;
    else if (has_wat[c] != 0)
      component_kinds_[c] = ComponentKind::kWat;
  }
}

std::vector<int> Dfg::sync_path(const SyncPair& pair) const {
  std::vector<int> path;
  sync_path(pair, path);
  return path;
}

void Dfg::sync_path(const SyncPair& pair, std::vector<int>& out) const {
  // BFS for the node-count-shortest directed path wait -> send. The
  // working set is per-thread scratch (assign re-initializes, capacity
  // survives); the queue is a plain vector scanned by index since BFS
  // only ever appends and reads forward.
  struct BfsScratch {
    std::vector<int> parent;
    std::vector<std::uint8_t> visited;
    std::vector<int> queue;
  };
  thread_local BfsScratch scratch;
  out.clear();
  std::vector<int>& parent = scratch.parent;
  std::vector<std::uint8_t>& visited = scratch.visited;
  std::vector<int>& queue = scratch.queue;
  parent.assign(static_cast<std::size_t>(n_) + 1, 0);
  visited.assign(static_cast<std::size_t>(n_) + 1, 0);
  queue.clear();
  queue.push_back(pair.wait_instr);
  visited[static_cast<std::size_t>(pair.wait_instr)] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int id = queue[head];
    if (id == pair.send_instr) {
      for (int at = id; at != 0; at = parent[static_cast<std::size_t>(at)])
        out.push_back(at);
      std::reverse(out.begin(), out.end());
      return;
    }
    for (const auto& e : succs(id)) {
      if (visited[static_cast<std::size_t>(e.to)] == 0) {
        visited[static_cast<std::size_t>(e.to)] = 1;
        parent[static_cast<std::size_t>(e.to)] = id;
        queue.push_back(e.to);
      }
    }
  }
}

std::vector<int> Dfg::ancestors(int id) const {
  std::vector<bool> seen(static_cast<std::size_t>(n_) + 1, false);
  std::vector<int> out;
  std::queue<int> queue;
  queue.push(id);
  seen[static_cast<std::size_t>(id)] = true;
  while (!queue.empty()) {
    const int at = queue.front();
    queue.pop();
    for (const auto& e : preds(at)) {
      if (!seen[static_cast<std::size_t>(e.from)]) {
        seen[static_cast<std::size_t>(e.from)] = true;
        out.push_back(e.from);
        queue.push(e.from);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sbmp
