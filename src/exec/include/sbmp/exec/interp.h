#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "sbmp/codegen/tac.h"
#include "sbmp/exec/memory.h"
#include "sbmp/ir/loop.h"
#include "sbmp/support/status.h"

namespace sbmp {

// ---------------------------------------------------------------------
// Value model.
//
// Registers and memory cells are raw 64-bit bit patterns; the *use
// site* decides the interpretation. Every operation below is fully
// defined and platform-stable (wrap-around integer arithmetic in
// unsigned space, IEEE-754 double arithmetic, saturating float->int
// truncation), so the DOACROSS executor and the serial reference
// interpreter produce bit-identical results on any host and at any
// thread count — which is exactly what the differential check pins.

[[nodiscard]] inline std::uint64_t exec_bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

[[nodiscard]] inline double exec_double_of(std::uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Saturating truncation of a double to int64; NaN maps to 0. Used when
/// a float-typed register feeds an integer context (e.g. a real scalar
/// inside an address expression) so mixed-type programs stay defined.
[[nodiscard]] inline std::int64_t exec_f2i(double v) {
  if (v != v) return 0;
  constexpr double kLimit = 9223372036854775808.0;  // 2^63
  if (v >= kLimit) return std::numeric_limits<std::int64_t>::max();
  if (v <= -kLimit) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(v);
}

/// Wrap-around int64 arithmetic (computed in unsigned space: defined).
[[nodiscard]] inline std::int64_t exec_iadd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
[[nodiscard]] inline std::int64_t exec_isub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
[[nodiscard]] inline std::int64_t exec_imul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
/// Integer division with the two UB edges pinned: x/0 == 0 and
/// INT64_MIN / -1 == INT64_MIN.
[[nodiscard]] inline std::int64_t exec_idiv(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}
/// Shift with the count masked to [0, 63] (negative or oversized counts
/// are defined instead of UB; codegen itself only emits `<< 2`).
[[nodiscard]] inline std::int64_t exec_ishl(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                   << (static_cast<std::uint64_t>(b) & 63u));
}

// ---------------------------------------------------------------------
// The compiled program.

/// Micro-op the interpreter executes; the TAC opcode with the float/int
/// split resolved at build time so the hot loop is one flat switch.
enum class XOp : std::uint8_t {
  kIntAdd,
  kIntSub,
  kIntMul,
  kIntDiv,
  kShl,
  kFloatAdd,
  kFloatSub,
  kFloatMul,
  kFloatDiv,
  kLoad,
  kStore,
  kWait,
  kSend,
};

/// Operand with every conversion decision made at build time. Registers
/// are single-assignment, so each register has one static type; when a
/// use site wants the other interpretation the operand carries an
/// explicit convert kind, and immediates are pre-encoded in the type
/// the use site reads.
struct XOperand {
  enum class Kind : std::uint8_t {
    kNone,
    kReg,         ///< register already in the use-site type
    kRegToFloat,  ///< int-typed register feeding a float context
    kRegToInt,    ///< float-typed register feeding an int context
    kImm,         ///< `bits` pre-encoded in the use-site type
  };
  Kind kind = Kind::kNone;
  std::int32_t reg = 0;
  std::uint64_t bits = 0;
};

struct XInstr {
  XOp op = XOp::kIntAdd;
  std::int32_t id = 0;  ///< source TacInstr id, for diagnostics
  std::int32_t dst = 0;
  std::int32_t array = -1;  ///< kLoad/kStore: index into ExecMemory.arrays
  XOperand a;
  XOperand b;
  // kWait / kSend only:
  std::int32_t signal_stmt = -1;
  std::int64_t sync_distance = 0;
};

/// Runtime fault raised by a single micro-op (out-of-range or
/// misaligned address). By construction — array bounds are derived from
/// the same affine subscripts the addresses are computed from — a fault
/// indicates an executor bug, not a bad loop, and maps to kInternal.
struct ExecFault {
  std::int32_t instr_id = 0;
  std::string message;
};

/// A LoopReport's TAC lowered to the executable form for one concrete
/// iteration count and memory seed: typed operands, array indexes
/// resolved, bounds and live-in values precomputed.
class ExecProgram {
 public:
  /// Compiles `tac` for `iterations` runs of `loop`'s body. Fails with
  /// kResource when a subscript leaves the addressable range or the
  /// total footprint exceeds `max_memory_bytes`; kInternal on malformed
  /// TAC (unknown register, immediate-only store address).
  [[nodiscard]] static Status build(const TacFunction& tac, const Loop& loop,
                                    std::int64_t iterations,
                                    std::uint64_t memory_seed,
                                    std::int64_t max_memory_bytes,
                                    ExecProgram* out);

  /// Instructions in TAC id order (`instrs()[id - 1]`).
  [[nodiscard]] const std::vector<XInstr>& instrs() const { return instrs_; }
  [[nodiscard]] std::int64_t iterations() const { return iterations_; }
  [[nodiscard]] std::int64_t lower() const { return lower_; }
  [[nodiscard]] int reg_count() const { return reg_count_; }
  [[nodiscard]] int iter_reg() const { return iter_reg_; }
  [[nodiscard]] int signal_width() const { return signal_width_; }
  [[nodiscard]] std::int64_t max_wait_distance() const {
    return max_wait_distance_;
  }
  /// Whether any kSend posts this signal statement (waits on a
  /// send-less signal are skipped, matching the simulator).
  [[nodiscard]] bool send_exists(int stmt) const {
    return stmt >= 0 && stmt < signal_width_ &&
           send_exists_[static_cast<std::size_t>(stmt)];
  }

  /// Freshly initialised memory: every cell a deterministic function of
  /// (seed, array name, element index) alone — identical for every
  /// engine that executes this program.
  [[nodiscard]] ExecMemory initial_memory() const;

  /// Register frame with live-ins (scalars) set and everything else
  /// zero. Registers are single-assignment and defined before use
  /// within the body, so one frame per worker can be reused across
  /// iterations; only the iteration register changes per iteration.
  [[nodiscard]] std::vector<std::uint64_t> frame_template() const;

 private:
  std::vector<XInstr> instrs_;
  std::vector<std::pair<int, std::uint64_t>> live_ins_;  ///< reg -> bits
  struct ArrayPlan {
    std::string name;
    bool is_float = false;
    std::int64_t first = 0;
    std::int64_t count = 0;
  };
  std::vector<ArrayPlan> arrays_;
  std::uint64_t seed_ = 0;
  std::int64_t iterations_ = 0;
  std::int64_t lower_ = 0;
  int reg_count_ = 0;
  int iter_reg_ = 0;
  int signal_width_ = 0;
  std::int64_t max_wait_distance_ = 0;
  std::vector<char> send_exists_;
};

/// Executes one non-sync micro-op. Returns false on a runtime fault
/// (bounds/alignment), filling `fault`. kWait/kSend are the caller's
/// job: the DOACROSS executor lowers them onto the SignalBoard and the
/// serial reference skips them.
[[nodiscard]] bool exec_step(const XInstr& x, std::uint64_t* regs,
                             ExecMemory& memory, ExecFault* fault);

/// Serial reference semantics: iterations in order, the body in program
/// (id) order, sync ops skipped. This is the ground truth the threaded
/// executor must match bit-for-bit.
[[nodiscard]] Status run_reference_interp(const ExecProgram& program,
                                          ExecMemory* memory);

}  // namespace sbmp
