#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sbmp {

/// Futex-style parking lot shared by every blocking site of one
/// executor run (signal waits, the ring-reuse gate, halt). The
/// handshake mirrors the ThreadPool's sleeper-gated submit: a waiter
/// registers in the seq_cst `sleepers_` counter before rechecking its
/// predicate under the mutex; a poster publishes its seq_cst store
/// first and only touches the mutex when the counter is non-zero. The
/// seq_cst total order makes the race benign in both directions —
/// either the poster sees the sleeper and notifies, or the sleeper's
/// predicate load is ordered after the poster's store and passes — so
/// the uncontended post path is one atomic load and waits cannot be
/// missed.
class WaitHub {
 public:
  struct Outcome {
    bool satisfied = false;  ///< false only when the run was halted
    bool blocked = false;    ///< the slow path (parking) was taken
  };

  /// Spins briefly on `pred`, then parks until `pred()` or `halt()`.
  /// `pred` must read only seq_cst (or stronger-ordered) atomics.
  template <class Pred>
  [[nodiscard]] Outcome await(Pred&& pred) {
    for (int spin = 0; spin < kSpinRounds; ++spin) {
      if (pred()) return {true, false};
      if (halted()) return {false, false};
    }
    Outcome out;
    out.blocked = true;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return pred() || halted(); });
      out.satisfied = pred();
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    return out;
  }

  /// Called after a seq_cst store that may satisfy a parked waiter. The
  /// empty lock section serializes with a waiter between its predicate
  /// recheck and cv_.wait, so the notify cannot slip into that window.
  void wake() {
    if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }

  /// Aborts the run: every current and future await returns
  /// unsatisfied. Used on runtime faults so no worker deadlocks waiting
  /// for a signal its failed peer will never send.
  void halt() {
    halted_.store(true, std::memory_order_seq_cst);
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }

  [[nodiscard]] bool halted() const {
    return halted_.load(std::memory_order_seq_cst);
  }

 private:
  // Short spin: DOACROSS signals usually arrive within a few groups of
  // work, and on an oversubscribed host parking early beats burning the
  // producer's time slice.
  static constexpr int kSpinRounds = 64;

  std::atomic<int> sleepers_{0};
  std::atomic<bool> halted_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// The IterationSync primitive: `Send_Signal`/`Wait_Signal` lowered to
/// a bounded ring of atomic sequence counters per signal statement —
/// the live-thread analogue of the simulator's per-iteration signal
/// buffer (both size their history with `signal_window_rows`).
///
/// Slot `(k mod rows, stmt)` holds `k + 1` once iteration k has sent
/// signal `stmt` (0 = never sent). A waiter for the send of iteration s
/// passes when the slot value reaches `s + 1`; seeing a *newer* value
/// `s' + 1 > s + 1` in the reused slot is also sufficient, because the
/// executor's ring-reuse gate only lets iteration s' start (and thus
/// re-post the slot) after iteration s has completed entirely. The
/// seq_cst store/load pair carries the happens-before edge that makes
/// the guarded plain-memory accesses race-free.
class SignalBoard {
 public:
  /// `rows` is a minimum history depth; rounded up to a power of two so
  /// ring indexing is a mask.
  SignalBoard(int signal_width, std::int64_t rows)
      : width_(signal_width > 0 ? signal_width : 1) {
    std::int64_t pow2 = 1;
    while (pow2 < rows) pow2 <<= 1;
    rows_ = pow2;
    mask_ = pow2 - 1;
    slots_ = std::vector<std::atomic<std::int64_t>>(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_));
  }

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] WaitHub& hub() { return hub_; }

  /// Send_Signal(stmt) from iteration k.
  void post(int stmt, std::int64_t k) {
    slot(stmt, k).store(k + 1, std::memory_order_seq_cst);
    hub_.wake();
  }

  /// Wait_Signal(stmt, src_iter): blocks until iteration `src_iter` has
  /// posted (or a later iteration reused its slot — see class comment).
  [[nodiscard]] WaitHub::Outcome await_signal(int stmt,
                                              std::int64_t src_iter) {
    std::atomic<std::int64_t>& s = slot(stmt, src_iter);
    const std::int64_t needed = src_iter + 1;
    return hub_.await([&s, needed] {
      return s.load(std::memory_order_seq_cst) >= needed;
    });
  }

 private:
  [[nodiscard]] std::atomic<std::int64_t>& slot(int stmt, std::int64_t k) {
    return slots_[static_cast<std::size_t>(k & mask_) *
                      static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(stmt)];
  }

  int width_;
  std::int64_t rows_ = 1;
  std::int64_t mask_ = 0;
  std::vector<std::atomic<std::int64_t>> slots_;
  WaitHub hub_;
};

}  // namespace sbmp
