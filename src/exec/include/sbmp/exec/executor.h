#pragma once

#include <cstdint>

#include "sbmp/core/pipeline.h"
#include "sbmp/exec/interp.h"
#include "sbmp/exec/memory.h"

namespace sbmp {

class Tracer;
class MetricsRegistry;

/// Parameters of one real-thread execution.
struct ExecOptions {
  /// Worker threads. Clamped below to 1 and to the iteration count;
  /// anything above LoopExecutor::kMaxThreads is refused with kResource
  /// (a typed failure, not a silent clamp — the caller asked for a
  /// machine shape this process will not provide).
  int threads = 1;
  /// Iterations to execute — an already-resolved literal count, exactly
  /// like SimOptions::iterations ("0 means trip count" is resolved by
  /// PipelineOptions::resolved_iterations, never here). <= 0 executes
  /// nothing and yields the initial memory.
  std::int64_t iterations = 100;
  /// Seed of the deterministic initial memory/live-in contents. The
  /// same seed always produces the same initial state, so divergence
  /// between two runs is attributable to scheduling alone.
  std::uint64_t memory_seed = 0x73626d7065786563ull;  // "sbmpexec"
  /// Busy-wait this long after each issue group, modelling per-group
  /// compute cost: the interpreted body is far cheaper than a real
  /// DLX group, so without artificial work the run measures pure
  /// synchronization overhead. 0 = interpreter speed.
  std::int64_t spin_ns_per_group = 0;
  /// Refuse (kResource) loops whose planned footprint exceeds this;
  /// <= 0 removes the cap.
  std::int64_t max_memory_bytes = 256ll << 20;
  /// Iteration waves traced per worker (spans named "exec_wave");
  /// bounds trace volume on long runs. 0 disables wave spans.
  int trace_waves_per_worker = 32;
  /// Test-only divergence probe: flips one result bit after a
  /// successful run, proving the differential detector is live (the
  /// executor's analogue of the simulator's --mutate campaign).
  bool corrupt_result = false;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// Synchronization traffic of one run.
struct ExecStats {
  std::int64_t iterations = 0;
  int threads = 0;
  /// SignalBoard ring rows (power of two; 0 for reference runs).
  std::int64_t window = 0;
  std::int64_t sends = 0;          ///< Send_Signal posts
  std::int64_t waits = 0;          ///< Wait_Signal with a live partner
  std::int64_t blocked_waits = 0;  ///< signal waits that parked
  std::int64_t gate_blocks = 0;    ///< ring-reuse gate parks
};

/// Outcome of one execution: the final data state plus how it ran.
struct ExecResult {
  Status status;
  std::int64_t wall_ns = 0;  ///< execution region only (setup excluded)
  std::uint64_t fingerprint = 0;
  ExecMemory memory;
  ExecStats stats;

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Runs a compiled DOACROSS schedule on live threads.
///
/// Iterations are distributed cyclically (worker w executes iterations
/// w, w+N, w+2N, ... — the paper's "iteration k on processor k mod P");
/// within an iteration the workers walk the schedule's issue groups in
/// order, interpreting instruction semantics over a per-worker register
/// frame and the shared ExecMemory, with Sig/Wat pairs lowered onto the
/// SignalBoard. A ring-reuse gate delays iteration k until iteration
/// k - window has fully completed, which both bounds the signal history
/// (like the simulator's buffer) and guarantees sequence values in a
/// reused slot only grow.
///
/// The differential contract: run() at any thread count produces memory
/// byte-identical to run_reference()'s serial program-order
/// interpretation — verified by verify(), which returns kExecDivergence
/// on any mismatch. See docs/execution.md.
class LoopExecutor {
 public:
  /// Hard ceiling on worker threads per run.
  static constexpr int kMaxThreads = 512;

  LoopExecutor(Loop loop, TacFunction tac, Schedule schedule);
  /// Convenience: executes the schedule a compile produced.
  explicit LoopExecutor(const LoopReport& report);

  /// Static shape errors (schedule does not cover the TAC, bad ids);
  /// run() echoes this status without starting threads.
  [[nodiscard]] const Status& setup_status() const { return setup_status_; }

  /// DOACROSS execution across options.threads workers.
  [[nodiscard]] ExecResult run(const ExecOptions& options) const;

  /// Serial program-order interpretation of the same program — the
  /// ground truth for the differential check (ignores schedule, sync
  /// and thread options; shares the seed and iteration count).
  [[nodiscard]] ExecResult run_reference(const ExecOptions& options) const;

  /// kExecDivergence (with the first differing cell) when the two final
  /// states are not bit-identical; ok when they are.
  [[nodiscard]] static Status verify(const ExecResult& executed,
                                     const ExecResult& reference);

 private:
  Loop loop_;
  TacFunction tac_;
  Schedule schedule_;
  Status setup_status_;
};

}  // namespace sbmp
