#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sbmp {

/// Backing store of one array over exactly the element range the loop
/// can touch. The compiled addresses are byte addresses `4 * (c*I + k)`
/// (codegen scales subscripts by the element size), so an element index
/// recovered at runtime is `addr >> 2`; `first` is the element index of
/// `cells[0]`, letting negative and offset subscripts map into a dense
/// vector. Cells are raw 64-bit bit patterns: integer elements hold an
/// int64 two's-complement value, real elements an IEEE-754 double, and
/// all arithmetic moves bit patterns so an executed state can be
/// compared for byte identity against the serial interpretation.
struct ExecArray {
  std::string name;
  bool is_float = false;
  std::int64_t first = 0;  ///< element index of cells[0]
  std::vector<std::uint64_t> cells;
};

/// The complete data state of one executed loop: every array the TAC
/// touches, sized at program-build time from the affine subscript
/// extremes over the iteration range. This is the object the
/// executor-vs-reference differential compares — two runs agree exactly
/// when their ExecMemory fingerprints (and hence every cell bit) agree.
struct ExecMemory {
  std::vector<ExecArray> arrays;

  /// Order-sensitive FNV-1a/murmur fingerprint over names, layouts and
  /// every cell bit pattern. Stable across platforms and runs.
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] std::int64_t total_cells() const;

  /// Human-readable description of the first mismatch between two
  /// states (array-by-array, then cell-by-cell); empty when identical.
  [[nodiscard]] static std::string first_difference(const ExecMemory& a,
                                                    const ExecMemory& b);
};

}  // namespace sbmp
