#include "sbmp/exec/executor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "sbmp/exec/sync.h"
#include "sbmp/obs/metrics.h"
#include "sbmp/obs/trace.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/support/overflow.h"

namespace sbmp {

namespace {

constexpr const char* kStage = "exec";

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Busy-waits for `ns` — models per-group compute cost (see
/// ExecOptions::spin_ns_per_group). A sleep would be far too coarse at
/// the tens-of-nanoseconds granularity a DLX issue group represents.
void spin_for(std::int64_t ns) {
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
  }
}

/// Per-worker tallies, merged after the join (no shared counters on the
/// hot path).
struct WorkerTally {
  std::int64_t sends = 0;
  std::int64_t waits = 0;
  std::int64_t blocked_waits = 0;
  std::int64_t gate_blocks = 0;
};

}  // namespace

LoopExecutor::LoopExecutor(Loop loop, TacFunction tac, Schedule schedule)
    : loop_(std::move(loop)),
      tac_(std::move(tac)),
      schedule_(std::move(schedule)) {
  // The schedule must cover the TAC exactly once: the executor walks
  // groups, so an unscheduled instruction would silently never run.
  const int size = tac_.size();
  std::vector<char> seen(static_cast<std::size_t>(size) + 1, 0);
  int scheduled = 0;
  for (const auto& group : schedule_.groups) {
    for (const int id : group) {
      if (id < 1 || id > size || seen[static_cast<std::size_t>(id)] != 0) {
        setup_status_ = Status::error(
            StatusCode::kInternal, kStage,
            "schedule references instruction " + std::to_string(id) +
                " out of range or twice");
        return;
      }
      seen[static_cast<std::size_t>(id)] = 1;
      ++scheduled;
    }
  }
  if (scheduled != size)
    setup_status_ = Status::error(
        StatusCode::kInternal, kStage,
        "schedule covers " + std::to_string(scheduled) + " of " +
            std::to_string(size) + " instructions");
}

LoopExecutor::LoopExecutor(const LoopReport& report)
    : LoopExecutor(report.loop, report.tac, report.schedule) {}

ExecResult LoopExecutor::run(const ExecOptions& options) const {
  ExecResult result;
  if (!setup_status_.ok()) {
    result.status = setup_status_;
    return result;
  }
  if (options.threads > kMaxThreads) {
    result.status = Status::error(
        StatusCode::kResource, kStage,
        "thread count " + std::to_string(options.threads) +
            " exceeds the executor ceiling of " + std::to_string(kMaxThreads));
    return result;
  }

  ExecProgram program;
  result.status =
      ExecProgram::build(tac_, loop_, options.iterations, options.memory_seed,
                         options.max_memory_bytes, &program);
  if (!result.status.ok()) return result;

  const std::int64_t n = program.iterations();
  const int threads = static_cast<int>(std::clamp<std::int64_t>(
      options.threads, 1, std::max<std::int64_t>(n, 1)));
  result.stats.iterations = n;
  result.stats.threads = threads;

  if (options.metrics != nullptr)
    options.metrics->counter("sbmp_exec_runs_total")->inc();

  result.memory = program.initial_memory();
  if (n == 0) {
    result.fingerprint = result.memory.fingerprint();
    return result;
  }

  // Signal history sized exactly like the simulator's ring: deepest
  // wait plus one, active workers plus one, clamped to the trip count.
  const std::int64_t rows = std::min(
      signal_window_rows(program.max_wait_distance(), threads),
      sat_add(n, 1));
  SignalBoard board(program.signal_width(), rows);
  result.stats.window = board.rows();

  // Flatten the schedule into group-ordered micro-ops once; workers
  // then run over one contiguous array per iteration.
  std::vector<XInstr> ordered;
  ordered.reserve(program.instrs().size());
  std::vector<std::size_t> group_begin;
  group_begin.reserve(schedule_.groups.size() + 1);
  for (const auto& group : schedule_.groups) {
    group_begin.push_back(ordered.size());
    for (const int id : group)
      ordered.push_back(program.instrs()[static_cast<std::size_t>(id - 1)]);
  }
  group_begin.push_back(ordered.size());
  const std::size_t group_count = schedule_.groups.size();

  // Per-worker completion counts, read by the ring-reuse gate. All
  // iterations <= T are complete iff every worker w has completed
  // ceil((T - w + 1) / threads) of its cyclically assigned iterations.
  std::unique_ptr<std::atomic<std::int64_t>[]> done(
      new std::atomic<std::int64_t>[static_cast<std::size_t>(threads)]);
  for (int w = 0; w < threads; ++w)
    done[static_cast<std::size_t>(w)].store(0, std::memory_order_seq_cst);

  std::atomic<bool> failed{false};
  Status worker_error;  // written only by the failed-CAS winner
  const auto fail = [&](Status status) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true,
                                       std::memory_order_seq_cst))
      worker_error = std::move(status);
    board.hub().halt();
  };

  std::vector<WorkerTally> tallies(static_cast<std::size_t>(threads));
  const std::vector<std::uint64_t> frame = program.frame_template();
  const int iter_reg = program.iter_reg();
  const std::int64_t lower = program.lower();
  const std::int64_t window = board.rows();
  const std::int64_t spin_ns = options.spin_ns_per_group;
  ExecMemory& memory = result.memory;
  Tracer* const tracer = options.tracer;

  const auto worker = [&](int w) {
    WorkerTally& tally = tallies[static_cast<std::size_t>(w)];
    std::vector<std::uint64_t> regs = frame;
    std::atomic<std::int64_t>& my_done = done[static_cast<std::size_t>(w)];
    // Wave spans: bound trace volume by grouping this worker's
    // iterations into at most trace_waves_per_worker spans.
    const std::int64_t mine =
        n > w ? (n - 1 - w) / threads + 1 : 0;
    const std::int64_t wave_len =
        tracer != nullptr && options.trace_waves_per_worker > 0 && mine > 0
            ? (mine - 1) / options.trace_waves_per_worker + 1
            : 0;
    Tracer::Span wave;
    std::int64_t local = 0;
    std::int64_t completed = 0;
    for (std::int64_t k = w; k < n; k += threads, ++local) {
      if (wave_len > 0 && local % wave_len == 0) {
        wave = Tracer::begin(tracer, "exec_wave");
        wave.arg("worker", w);
        wave.arg("first_iteration", k);
      }
      // Ring-reuse gate: iteration k may only start once iteration
      // k - window has fully completed, so the signal slot about to be
      // re-posted has no live readers and slot sequences only grow.
      if (k >= window) {
        const std::int64_t target = k - window;
        const auto outcome = board.hub().await([&] {
          for (int w2 = 0; w2 < threads; ++w2) {
            const std::int64_t need =
                target >= w2 ? (target - w2) / threads + 1 : 0;
            if (done[static_cast<std::size_t>(w2)].load(
                    std::memory_order_seq_cst) < need)
              return false;
          }
          return true;
        });
        if (outcome.blocked) ++tally.gate_blocks;
        if (!outcome.satisfied) return;
      }
      regs[static_cast<std::size_t>(iter_reg)] =
          static_cast<std::uint64_t>(lower) + static_cast<std::uint64_t>(k);
      for (std::size_t g = 0; g < group_count; ++g) {
        for (std::size_t s = group_begin[g]; s < group_begin[g + 1]; ++s) {
          const XInstr& x = ordered[s];
          if (x.op == XOp::kWait) {
            const std::int64_t src = k - x.sync_distance;
            // Matches the simulator: waits whose source iteration does
            // not exist, or whose signal is never sent, impose nothing.
            if (src < 0 || !program.send_exists(x.signal_stmt)) continue;
            ++tally.waits;
            const auto outcome = board.await_signal(x.signal_stmt, src);
            if (outcome.blocked) ++tally.blocked_waits;
            if (!outcome.satisfied) return;
          } else if (x.op == XOp::kSend) {
            ++tally.sends;
            board.post(x.signal_stmt, k);
          } else {
            ExecFault fault;
            if (!exec_step(x, regs.data(), memory, &fault)) {
              fail(Status::error(
                  StatusCode::kInternal, kStage,
                  "runtime fault at instruction " +
                      std::to_string(fault.instr_id) + ", iteration " +
                      std::to_string(k) + ": " + fault.message));
              return;
            }
          }
        }
        if (spin_ns > 0) spin_for(spin_ns);
      }
      my_done.store(++completed, std::memory_order_seq_cst);
      board.hub().wake();
    }
  };

  auto run_span = Tracer::begin(tracer, "exec_run");
  run_span.arg("threads", threads);
  run_span.arg("iterations", n);
  run_span.arg("window", window);

  const std::int64_t t0 = now_ns();
  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads) - 1);
    try {
      for (int w = 1; w < threads; ++w) pool.emplace_back(worker, w);
    } catch (const std::system_error& e) {
      fail(Status::error(StatusCode::kResource, kStage,
                         std::string("worker thread start failed: ") +
                             e.what()));
      for (auto& t : pool) t.join();
      result.status = worker_error;
      return result;
    }
    worker(0);
    for (auto& t : pool) t.join();
  }
  result.wall_ns = now_ns() - t0;
  run_span.close();

  if (failed.load(std::memory_order_seq_cst)) {
    result.status = worker_error;
    return result;
  }

  if (options.corrupt_result) {
    for (auto& arr : result.memory.arrays) {
      if (arr.cells.empty()) continue;
      arr.cells.front() ^= 1;
      break;
    }
  }

  for (const WorkerTally& tally : tallies) {
    result.stats.sends += tally.sends;
    result.stats.waits += tally.waits;
    result.stats.blocked_waits += tally.blocked_waits;
    result.stats.gate_blocks += tally.gate_blocks;
  }
  result.fingerprint = result.memory.fingerprint();

  if (options.metrics != nullptr) {
    MetricsRegistry& m = *options.metrics;
    m.counter("sbmp_exec_iterations_total")->inc(n);
    m.counter("sbmp_exec_sends_total")->inc(result.stats.sends);
    m.counter("sbmp_exec_waits_total")->inc(result.stats.waits);
    m.counter("sbmp_exec_blocked_waits_total")
        ->inc(result.stats.blocked_waits);
    m.counter("sbmp_exec_gate_blocks_total")->inc(result.stats.gate_blocks);
    m.histogram("sbmp_exec_run_ns", "", phase_latency_bounds_ns())
        ->observe(result.wall_ns);
  }
  return result;
}

ExecResult LoopExecutor::run_reference(const ExecOptions& options) const {
  ExecResult result;
  if (!setup_status_.ok()) {
    result.status = setup_status_;
    return result;
  }
  ExecProgram program;
  result.status =
      ExecProgram::build(tac_, loop_, options.iterations, options.memory_seed,
                         options.max_memory_bytes, &program);
  if (!result.status.ok()) return result;
  result.stats.iterations = program.iterations();
  result.stats.threads = 1;
  const std::int64_t t0 = now_ns();
  result.status = run_reference_interp(program, &result.memory);
  result.wall_ns = now_ns() - t0;
  if (result.status.ok()) result.fingerprint = result.memory.fingerprint();
  return result;
}

Status LoopExecutor::verify(const ExecResult& executed,
                            const ExecResult& reference) {
  if (!executed.status.ok()) return executed.status;
  if (!reference.status.ok()) return reference.status;
  if (executed.fingerprint == reference.fingerprint) return Status::okay();
  std::string diff =
      ExecMemory::first_difference(executed.memory, reference.memory);
  if (diff.empty()) diff = "fingerprint mismatch with no cell difference";
  return Status::error(StatusCode::kExecDivergence, kStage,
                       "executed state diverges from serial interpretation: " +
                           diff);
}

}  // namespace sbmp
