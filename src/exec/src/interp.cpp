#include "sbmp/exec/interp.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sbmp/support/hash.h"
#include "sbmp/support/overflow.h"
#include "sbmp/support/rng.h"

namespace sbmp {

namespace {

constexpr const char* kStage = "exec";

/// Largest element-index magnitude the executor addresses. Byte
/// addresses are element indexes shifted left by 2; staying under 2^60
/// keeps the shift (and its inverse) exact in int64.
constexpr std::int64_t kMaxElemMagnitude = std::int64_t{1} << 60;

/// Deterministic initial value for one memory cell or live-in scalar:
/// a pure function of (seed, name hash, element index). Values are
/// small integers — divided by 8 for real elements, so they are exactly
/// representable and early float arithmetic stays exact — which keeps
/// differential mismatches readable.
std::uint64_t seeded_bits(std::uint64_t seed, std::uint64_t name_hash,
                          std::int64_t elem, bool is_float) {
  SplitMix64 rng(seed ^ name_hash ^
                 (static_cast<std::uint64_t>(elem) * 0x9e3779b97f4a7c15ull));
  const std::int64_t v = rng.range(-1000, 1000);
  if (is_float) return exec_bits_of(static_cast<double>(v) / 8.0);
  return static_cast<std::uint64_t>(v);
}

std::int64_t fetch_int(const XOperand& o, const std::uint64_t* regs) {
  switch (o.kind) {
    case XOperand::Kind::kNone:
      return 0;
    case XOperand::Kind::kReg:
      return static_cast<std::int64_t>(regs[o.reg]);
    case XOperand::Kind::kRegToInt:
      return exec_f2i(exec_double_of(regs[o.reg]));
    case XOperand::Kind::kRegToFloat:
      return 0;  // never built for an int context
    case XOperand::Kind::kImm:
      return static_cast<std::int64_t>(o.bits);
  }
  return 0;
}

double fetch_float(const XOperand& o, const std::uint64_t* regs) {
  switch (o.kind) {
    case XOperand::Kind::kNone:
      return 0.0;
    case XOperand::Kind::kReg:
      return exec_double_of(regs[o.reg]);
    case XOperand::Kind::kRegToFloat:
      return static_cast<double>(static_cast<std::int64_t>(regs[o.reg]));
    case XOperand::Kind::kRegToInt:
      return 0.0;  // never built for a float context
    case XOperand::Kind::kImm:
      return exec_double_of(o.bits);
  }
  return 0.0;
}

}  // namespace

Status ExecProgram::build(const TacFunction& tac, const Loop& loop,
                          std::int64_t iterations, std::uint64_t memory_seed,
                          std::int64_t max_memory_bytes, ExecProgram* out) {
  ExecProgram p;
  p.seed_ = memory_seed;
  p.iterations_ = std::max<std::int64_t>(iterations, 0);
  p.lower_ = loop.lower;
  p.reg_count_ = static_cast<int>(tac.reg_names.size());
  p.iter_reg_ = tac.iter_reg;
  if (p.iter_reg_ <= 0 || p.iter_reg_ >= p.reg_count_)
    return Status::error(StatusCode::kInternal, kStage,
                         "iteration register out of range");

  // Static register typing: registers are single-assignment, so each
  // has exactly one type — live-ins from the loop's element-type table,
  // temporaries from their defining instruction.
  std::vector<char> reg_float(static_cast<std::size_t>(p.reg_count_), 0);
  std::vector<std::pair<int, std::uint64_t>> live_ins;
  for (const auto& [name, reg] : tac.scalar_regs) {
    if (reg <= 0 || reg >= p.reg_count_)
      return Status::error(StatusCode::kInternal, kStage,
                           "scalar register out of range: " + name);
    const bool is_float = loop.array_type(name) == ElemType::kReal;
    reg_float[static_cast<std::size_t>(reg)] = is_float ? 1 : 0;
    live_ins.emplace_back(
        reg, seeded_bits(memory_seed, hash_bytes("scalar:" + name), 0,
                         is_float));
  }
  p.live_ins_ = std::move(live_ins);

  // Array planning: one dense store per array, sized from the affine
  // subscript extremes over the executed iteration range. Affine
  // subscripts are monotone in the iteration variable, so the extremes
  // sit at the range endpoints.
  std::map<std::string, std::size_t> array_index;
  struct Extent {
    bool any = false;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
  };
  std::vector<Extent> extents;
  const std::int64_t n = p.iterations_;
  const std::int64_t endpoints[2] = {
      loop.lower, sat_add(loop.lower, n > 0 ? n - 1 : 0)};
  for (const auto& instr : tac.instrs) {
    if (!instr.is_mem()) continue;
    const auto [it, inserted] =
        array_index.emplace(instr.array, p.arrays_.size());
    if (inserted) {
      ArrayPlan plan;
      plan.name = instr.array;
      plan.is_float = loop.array_type(instr.array) == ElemType::kReal;
      p.arrays_.push_back(std::move(plan));
      extents.emplace_back();
    }
    if (n == 0) continue;
    Extent& ext = extents[it->second];
    for (const std::int64_t i : endpoints) {
      if (mul_overflows(instr.mem_index.coef, i) ||
          add_overflows(instr.mem_index.coef * i, instr.mem_index.offset))
        return Status::error(StatusCode::kResource, kStage,
                             "subscript overflows the addressable range: " +
                                 instr.array + "[" +
                                 instr.mem_index.to_string(tac.iter_var) + "]");
      const std::int64_t idx = instr.mem_index.eval(i);
      if (!ext.any) {
        ext.any = true;
        ext.lo = ext.hi = idx;
      } else {
        ext.lo = std::min(ext.lo, idx);
        ext.hi = std::max(ext.hi, idx);
      }
    }
  }
  const std::uint64_t byte_cap =
      max_memory_bytes > 0 ? static_cast<std::uint64_t>(max_memory_bytes)
                           : std::numeric_limits<std::uint64_t>::max();
  std::uint64_t total_bytes = 0;
  for (std::size_t ai = 0; ai < p.arrays_.size(); ++ai) {
    if (!extents[ai].any) continue;
    const std::int64_t lo = extents[ai].lo;
    const std::int64_t hi = extents[ai].hi;
    if (lo < -kMaxElemMagnitude || hi > kMaxElemMagnitude)
      return Status::error(StatusCode::kResource, kStage,
                           "array " + p.arrays_[ai].name +
                               " subscript magnitude exceeds the executor's "
                               "addressable range");
    const std::uint64_t count = range_span(lo, hi);
    // Unconditional sanity ceiling (2^58 cells = 2 EiB) keeps the byte
    // math below overflow-free even with the cap disabled.
    if (count > (std::uint64_t{1} << 58) || count > byte_cap / 8 ||
        (total_bytes += count * 8) > byte_cap)
      return Status::error(
          StatusCode::kResource, kStage,
          "loop memory footprint exceeds the executor cap (" +
              std::to_string(max_memory_bytes) + " bytes)");
    p.arrays_[ai].first = lo;
    p.arrays_[ai].count = static_cast<std::int64_t>(count);
  }

  // Lower each instruction, resolving operand conversions against the
  // static register types and pre-encoding immediates in the use-site
  // type.
  const auto operand = [&](const Operand& o, bool want_float,
                           XOperand* x) -> bool {
    switch (o.kind) {
      case Operand::Kind::kNone:
        x->kind = XOperand::Kind::kNone;
        return true;
      case Operand::Kind::kImm:
        x->kind = XOperand::Kind::kImm;
        x->bits = want_float ? exec_bits_of(static_cast<double>(o.imm))
                             : static_cast<std::uint64_t>(o.imm);
        return true;
      case Operand::Kind::kReg: {
        if (o.reg <= 0 || o.reg >= p.reg_count_) return false;
        const bool have_float =
            reg_float[static_cast<std::size_t>(o.reg)] != 0;
        x->reg = o.reg;
        x->kind = have_float == want_float ? XOperand::Kind::kReg
                  : want_float             ? XOperand::Kind::kRegToFloat
                                           : XOperand::Kind::kRegToInt;
        return true;
      }
    }
    return false;
  };

  p.instrs_.reserve(tac.instrs.size());
  for (const auto& instr : tac.instrs) {
    XInstr x;
    x.id = instr.id;
    bool want_float_a = false;
    bool want_float_b = false;
    bool dst_float = false;
    bool has_dst = true;
    switch (instr.op) {
      case Opcode::kAddI:
        x.op = XOp::kIntAdd;
        break;
      case Opcode::kMulI:
        x.op = XOp::kIntMul;
        break;
      case Opcode::kShl:
        x.op = XOp::kShl;
        break;
      case Opcode::kAdd:
        x.op = instr.is_float ? XOp::kFloatAdd : XOp::kIntAdd;
        want_float_a = want_float_b = dst_float = instr.is_float;
        break;
      case Opcode::kSub:
        x.op = instr.is_float ? XOp::kFloatSub : XOp::kIntSub;
        want_float_a = want_float_b = dst_float = instr.is_float;
        break;
      case Opcode::kMul:
        x.op = instr.is_float ? XOp::kFloatMul : XOp::kIntMul;
        want_float_a = want_float_b = dst_float = instr.is_float;
        break;
      case Opcode::kDiv:
        x.op = instr.is_float ? XOp::kFloatDiv : XOp::kIntDiv;
        want_float_a = want_float_b = dst_float = instr.is_float;
        break;
      case Opcode::kLoad:
        x.op = XOp::kLoad;
        dst_float = p.arrays_[array_index.at(instr.array)].is_float;
        break;
      case Opcode::kStore:
        x.op = XOp::kStore;
        want_float_b = p.arrays_[array_index.at(instr.array)].is_float;
        has_dst = false;
        break;
      case Opcode::kWait:
        x.op = XOp::kWait;
        has_dst = false;
        break;
      case Opcode::kSend:
        x.op = XOp::kSend;
        has_dst = false;
        break;
    }
    if (instr.is_mem())
      x.array = static_cast<std::int32_t>(array_index.at(instr.array));
    if (instr.is_sync()) {
      x.signal_stmt = instr.signal_stmt;
      x.sync_distance = instr.sync_distance;
      if (instr.signal_stmt >= p.signal_width_)
        p.signal_width_ = instr.signal_stmt + 1;
      if (instr.op == Opcode::kWait)
        p.max_wait_distance_ =
            std::max(p.max_wait_distance_, instr.sync_distance);
    } else {
      if (!operand(instr.a, want_float_a, &x.a) ||
          !operand(instr.b, want_float_b, &x.b))
        return Status::error(StatusCode::kInternal, kStage,
                             "malformed operand in instruction " +
                                 std::to_string(instr.id));
      if (has_dst) {
        if (instr.dst <= 0 || instr.dst >= p.reg_count_)
          return Status::error(StatusCode::kInternal, kStage,
                               "destination register out of range in "
                               "instruction " +
                                   std::to_string(instr.id));
        x.dst = instr.dst;
        reg_float[static_cast<std::size_t>(instr.dst)] = dst_float ? 1 : 0;
      }
    }
    p.instrs_.push_back(x);
  }
  p.send_exists_.assign(static_cast<std::size_t>(p.signal_width_), 0);
  for (const auto& instr : tac.instrs)
    if (instr.op == Opcode::kSend)
      p.send_exists_[static_cast<std::size_t>(instr.signal_stmt)] = 1;

  *out = std::move(p);
  return Status::okay();
}

ExecMemory ExecProgram::initial_memory() const {
  ExecMemory memory;
  memory.arrays.reserve(arrays_.size());
  for (const auto& plan : arrays_) {
    ExecArray arr;
    arr.name = plan.name;
    arr.is_float = plan.is_float;
    arr.first = plan.first;
    arr.cells.resize(static_cast<std::size_t>(plan.count));
    const std::uint64_t name_hash = hash_bytes("array:" + plan.name);
    for (std::int64_t c = 0; c < plan.count; ++c)
      arr.cells[static_cast<std::size_t>(c)] =
          seeded_bits(seed_, name_hash, plan.first + c, plan.is_float);
    memory.arrays.push_back(std::move(arr));
  }
  return memory;
}

std::vector<std::uint64_t> ExecProgram::frame_template() const {
  std::vector<std::uint64_t> regs(static_cast<std::size_t>(reg_count_), 0);
  for (const auto& [reg, bits] : live_ins_)
    regs[static_cast<std::size_t>(reg)] = bits;
  return regs;
}

bool exec_step(const XInstr& x, std::uint64_t* regs, ExecMemory& memory,
               ExecFault* fault) {
  switch (x.op) {
    case XOp::kIntAdd:
      regs[x.dst] = static_cast<std::uint64_t>(
          exec_iadd(fetch_int(x.a, regs), fetch_int(x.b, regs)));
      return true;
    case XOp::kIntSub:
      regs[x.dst] = static_cast<std::uint64_t>(
          exec_isub(fetch_int(x.a, regs), fetch_int(x.b, regs)));
      return true;
    case XOp::kIntMul:
      regs[x.dst] = static_cast<std::uint64_t>(
          exec_imul(fetch_int(x.a, regs), fetch_int(x.b, regs)));
      return true;
    case XOp::kIntDiv:
      regs[x.dst] = static_cast<std::uint64_t>(
          exec_idiv(fetch_int(x.a, regs), fetch_int(x.b, regs)));
      return true;
    case XOp::kShl:
      regs[x.dst] = static_cast<std::uint64_t>(
          exec_ishl(fetch_int(x.a, regs), fetch_int(x.b, regs)));
      return true;
    case XOp::kFloatAdd:
      regs[x.dst] =
          exec_bits_of(fetch_float(x.a, regs) + fetch_float(x.b, regs));
      return true;
    case XOp::kFloatSub:
      regs[x.dst] =
          exec_bits_of(fetch_float(x.a, regs) - fetch_float(x.b, regs));
      return true;
    case XOp::kFloatMul:
      regs[x.dst] =
          exec_bits_of(fetch_float(x.a, regs) * fetch_float(x.b, regs));
      return true;
    case XOp::kFloatDiv:
      regs[x.dst] =
          exec_bits_of(fetch_float(x.a, regs) / fetch_float(x.b, regs));
      return true;
    case XOp::kLoad:
    case XOp::kStore: {
      const std::int64_t addr = fetch_int(x.a, regs);
      if ((addr & 3) != 0) {
        fault->instr_id = x.id;
        fault->message = "misaligned byte address " + std::to_string(addr);
        return false;
      }
      const std::int64_t elem = addr >> 2;
      ExecArray& arr = memory.arrays[static_cast<std::size_t>(x.array)];
      const std::int64_t off = elem - arr.first;
      if (off < 0 || off >= static_cast<std::int64_t>(arr.cells.size())) {
        fault->instr_id = x.id;
        fault->message = arr.name + "[" + std::to_string(elem) +
                         "] outside planned extent [" +
                         std::to_string(arr.first) + ", " +
                         std::to_string(arr.first +
                                        static_cast<std::int64_t>(
                                            arr.cells.size()) -
                                        1) +
                         "]";
        return false;
      }
      if (x.op == XOp::kLoad) {
        regs[x.dst] = arr.cells[static_cast<std::size_t>(off)];
      } else {
        arr.cells[static_cast<std::size_t>(off)] =
            arr.is_float
                ? exec_bits_of(fetch_float(x.b, regs))
                : static_cast<std::uint64_t>(fetch_int(x.b, regs));
      }
      return true;
    }
    case XOp::kWait:
    case XOp::kSend:
      return true;  // synchronization is the caller's concern
  }
  return true;
}

Status run_reference_interp(const ExecProgram& program, ExecMemory* memory) {
  *memory = program.initial_memory();
  std::vector<std::uint64_t> regs = program.frame_template();
  const std::vector<XInstr>& instrs = program.instrs();
  const int iter_reg = program.iter_reg();
  const std::int64_t n = program.iterations();
  for (std::int64_t k = 0; k < n; ++k) {
    // Unsigned addition: wraps identically to the threaded executor on
    // degenerate bounds instead of overflowing.
    regs[static_cast<std::size_t>(iter_reg)] =
        static_cast<std::uint64_t>(program.lower()) +
        static_cast<std::uint64_t>(k);
    for (const XInstr& x : instrs) {
      if (x.op == XOp::kWait || x.op == XOp::kSend) continue;
      ExecFault fault;
      if (!exec_step(x, regs.data(), *memory, &fault))
        return Status::error(StatusCode::kInternal, kStage,
                             "reference interpretation fault at instruction " +
                                 std::to_string(fault.instr_id) + ": " +
                                 fault.message);
    }
  }
  return Status::okay();
}

}  // namespace sbmp
