#include "sbmp/exec/memory.h"

#include <cstdio>
#include <cstring>

#include "sbmp/support/hash.h"

namespace sbmp {

namespace {

/// Renders a cell for diff messages: value plus the raw bit pattern,
/// because divergence is defined bit-wise — two doubles can round to
/// the same decimal string while differing in the last mantissa bit.
std::string render_cell(std::uint64_t bits, bool is_float) {
  char buf[64];
  if (is_float) {
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    std::snprintf(buf, sizeof buf, "%.17g (bits %016llx)", v,
                  static_cast<unsigned long long>(bits));
  } else {
    std::snprintf(buf, sizeof buf, "%lld (bits %016llx)",
                  static_cast<long long>(static_cast<std::int64_t>(bits)),
                  static_cast<unsigned long long>(bits));
  }
  return buf;
}

}  // namespace

std::uint64_t ExecMemory::fingerprint() const {
  Hasher64 h;
  h.update_u64(arrays.size());
  for (const auto& a : arrays) {
    h.update(a.name);
    h.update_u64(a.is_float ? 1 : 0);
    h.update_i64(a.first);
    h.update_u64(a.cells.size());
    for (const std::uint64_t cell : a.cells) h.update_u64(cell);
  }
  return h.digest();
}

std::int64_t ExecMemory::total_cells() const {
  std::int64_t total = 0;
  for (const auto& a : arrays) total += static_cast<std::int64_t>(a.cells.size());
  return total;
}

std::string ExecMemory::first_difference(const ExecMemory& a,
                                         const ExecMemory& b) {
  if (a.arrays.size() != b.arrays.size())
    return "array count " + std::to_string(a.arrays.size()) + " vs " +
           std::to_string(b.arrays.size());
  for (std::size_t i = 0; i < a.arrays.size(); ++i) {
    const ExecArray& x = a.arrays[i];
    const ExecArray& y = b.arrays[i];
    if (x.name != y.name) return "array name " + x.name + " vs " + y.name;
    if (x.first != y.first || x.cells.size() != y.cells.size())
      return "array " + x.name + " layout [" + std::to_string(x.first) + " +" +
             std::to_string(x.cells.size()) + "] vs [" +
             std::to_string(y.first) + " +" + std::to_string(y.cells.size()) +
             "]";
    for (std::size_t c = 0; c < x.cells.size(); ++c) {
      if (x.cells[c] == y.cells[c]) continue;
      const std::int64_t elem = x.first + static_cast<std::int64_t>(c);
      return x.name + "[" + std::to_string(elem) +
             "]: " + render_cell(x.cells[c], x.is_float) + " vs " +
             render_cell(y.cells[c], y.is_float);
    }
  }
  return "";
}

}  // namespace sbmp
