#pragma once

#include <map>
#include <string>
#include <vector>

#include "sbmp/codegen/tac.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// The live range of one virtual register over the issue groups of a
/// schedule. Iterations run on distinct processors, so ranges never
/// cross iterations: they live inside [0, schedule length).
struct LiveRange {
  int vreg = 0;
  int start = 0;     ///< group index of the definition (0 for live-ins)
  int end = 0;       ///< group index of the last use
  bool live_in = false;  ///< iteration number / loop parameter
  int uses = 0;

  [[nodiscard]] bool overlaps(const LiveRange& other) const {
    return start <= other.end && other.start <= end;
  }
};

/// Result of assigning physical registers to one scheduled iteration.
struct RegAllocResult {
  int physical_regs = 0;
  std::vector<LiveRange> ranges;        ///< sorted by start
  std::map<int, int> assignment;        ///< vreg -> physical (spilled absent)
  std::vector<int> spilled;             ///< vregs without a register
  int max_pressure = 0;                 ///< peak simultaneously-live vregs
  /// Dynamic cost estimate of the spills: one reload per use and one
  /// store per definition of every spilled range.
  int spill_cost = 0;

  [[nodiscard]] bool fits() const { return spilled.empty(); }
  [[nodiscard]] std::string to_string(const TacFunction& tac) const;
};

/// Computes the live ranges of `tac` under `schedule` order. Live-in
/// registers (the iteration number and loop parameters) start at group 0.
[[nodiscard]] std::vector<LiveRange> compute_live_ranges(
    const TacFunction& tac, const Schedule& schedule);

/// Linear-scan register allocation (Poletto/Sarkar): ranges sorted by
/// start, the active range with the furthest end spills when the file is
/// exhausted. Live-ins participate like any other range.
[[nodiscard]] RegAllocResult allocate_registers(const TacFunction& tac,
                                                const Schedule& schedule,
                                                int physical_regs);

/// Checks that no two ranges sharing a physical register overlap;
/// returns human-readable violations (empty = valid). Exposed for tests
/// and as a sanity harness for alternative allocators.
[[nodiscard]] std::vector<std::string> verify_allocation(
    const RegAllocResult& result);

}  // namespace sbmp
