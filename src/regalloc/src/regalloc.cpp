#include "sbmp/regalloc/regalloc.h"

#include <algorithm>
#include <set>

namespace sbmp {

std::string RegAllocResult::to_string(const TacFunction& tac) const {
  std::string out = std::to_string(ranges.size()) + " ranges, peak pressure " +
                    std::to_string(max_pressure) + ", " +
                    std::to_string(physical_regs) + " registers";
  if (spilled.empty()) {
    out += ", no spills";
  } else {
    out += ", " + std::to_string(spilled.size()) +
           " spills (cost " + std::to_string(spill_cost) + "):";
    for (const int vreg : spilled) out += " " + tac.reg_name(vreg);
  }
  return out;
}

std::vector<LiveRange> compute_live_ranges(const TacFunction& tac,
                                           const Schedule& schedule) {
  std::map<int, LiveRange> by_vreg;

  const auto def = [&](int vreg, int slot) {
    auto [it, inserted] = by_vreg.try_emplace(vreg);
    if (inserted) {
      it->second.vreg = vreg;
      it->second.start = slot;
      it->second.end = slot;
    }
  };
  const auto use = [&](const Operand& op, int slot) {
    if (!op.is_reg()) return;
    auto [it, inserted] = by_vreg.try_emplace(op.reg);
    LiveRange& range = it->second;
    if (inserted) {
      // First sighting is a use: a live-in register.
      range.vreg = op.reg;
      range.start = 0;
      range.end = slot;
      range.live_in = true;
    }
    range.end = std::max(range.end, slot);
    ++range.uses;
  };

  // Virtual registers are single-assignment and defs precede uses in
  // any verified schedule. Record definitions first so that the use
  // pass can tell live-ins (first sighting is a use) from defined
  // registers.
  for (const auto& instr : tac.instrs) {
    if (instr.dst != 0) def(instr.dst, schedule.slot(instr.id));
  }
  for (std::size_t g = 0; g < schedule.groups.size(); ++g) {
    for (const int id : schedule.groups[g]) {
      const auto& instr = tac.by_id(id);
      use(instr.a, static_cast<int>(g));
      use(instr.b, static_cast<int>(g));
    }
  }

  std::vector<LiveRange> ranges;
  for (auto& [vreg, range] : by_vreg) {
    if (tac.is_live_in(vreg)) {
      range.live_in = true;
      range.start = 0;
    }
    ranges.push_back(range);
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const LiveRange& a, const LiveRange& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.vreg < b.vreg;
            });
  return ranges;
}

RegAllocResult allocate_registers(const TacFunction& tac,
                                  const Schedule& schedule,
                                  int physical_regs) {
  RegAllocResult result;
  result.physical_regs = physical_regs;
  result.ranges = compute_live_ranges(tac, schedule);

  // Peak pressure: sweep over group boundaries.
  std::vector<int> delta(static_cast<std::size_t>(schedule.length()) + 2, 0);
  for (const auto& range : result.ranges) {
    ++delta[static_cast<std::size_t>(range.start)];
    --delta[static_cast<std::size_t>(range.end) + 1];
  }
  int live = 0;
  for (const int d : delta) {
    live += d;
    result.max_pressure = std::max(result.max_pressure, live);
  }

  // Linear scan with furthest-end spilling.
  std::set<int> free_regs;
  for (int r = 0; r < physical_regs; ++r) free_regs.insert(r);
  // Active ranges ordered by (end, vreg).
  std::set<std::pair<int, const LiveRange*>> active;

  for (const auto& range : result.ranges) {
    // Expire ranges ending strictly before this start.
    while (!active.empty() && active.begin()->first < range.start) {
      free_regs.insert(result.assignment.at(active.begin()->second->vreg));
      active.erase(active.begin());
    }
    if (!free_regs.empty()) {
      const int reg = *free_regs.begin();
      free_regs.erase(free_regs.begin());
      result.assignment[range.vreg] = reg;
      active.insert({range.end, &range});
      continue;
    }
    // Spill whichever live range ends last.
    if (!active.empty() && active.rbegin()->first > range.end) {
      const LiveRange* victim = active.rbegin()->second;
      const int reg = result.assignment.at(victim->vreg);
      active.erase(std::prev(active.end()));
      result.assignment.erase(victim->vreg);
      result.spilled.push_back(victim->vreg);
      result.spill_cost += victim->uses + (victim->live_in ? 0 : 1);
      result.assignment[range.vreg] = reg;
      active.insert({range.end, &range});
    } else {
      result.spilled.push_back(range.vreg);
      result.spill_cost += range.uses + (range.live_in ? 0 : 1);
    }
  }
  std::sort(result.spilled.begin(), result.spilled.end());
  return result;
}

std::vector<std::string> verify_allocation(const RegAllocResult& result) {
  std::vector<std::string> violations;
  for (std::size_t i = 0; i < result.ranges.size(); ++i) {
    const auto ai = result.assignment.find(result.ranges[i].vreg);
    if (ai == result.assignment.end()) continue;
    if (ai->second < 0 || ai->second >= result.physical_regs) {
      violations.push_back("vreg " + std::to_string(result.ranges[i].vreg) +
                           " assigned out-of-file register " +
                           std::to_string(ai->second));
    }
    for (std::size_t j = i + 1; j < result.ranges.size(); ++j) {
      const auto aj = result.assignment.find(result.ranges[j].vreg);
      if (aj == result.assignment.end()) continue;
      if (ai->second == aj->second &&
          result.ranges[i].overlaps(result.ranges[j])) {
        violations.push_back(
            "vregs " + std::to_string(result.ranges[i].vreg) + " and " +
            std::to_string(result.ranges[j].vreg) +
            " share register " + std::to_string(ai->second) +
            " but their live ranges overlap");
      }
    }
  }
  // Every virtual register is either assigned or spilled.
  for (const auto& range : result.ranges) {
    const bool assigned = result.assignment.count(range.vreg) != 0;
    const bool spilled =
        std::binary_search(result.spilled.begin(), result.spilled.end(),
                           range.vreg);
    if (assigned == spilled) {
      violations.push_back("vreg " + std::to_string(range.vreg) +
                           " must be exactly one of assigned/spilled");
    }
  }
  return violations;
}

}  // namespace sbmp
