#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sbmp {

/// Stable content hashing for the persistent schedule cache.
///
/// The cache key must be identical across runs, platforms and compiler
/// versions — std::hash guarantees none of that — so the fingerprint is
/// pinned to a fixed algorithm: incremental FNV-1a over the canonical
/// byte encoding of the inputs, finished with the murmur3 64-bit
/// avalanche so that short inputs still spread over the whole domain.
/// Two independently seeded lanes give a 128-bit fingerprint; a
/// collision would silently serve one loop's schedule for another, so
/// 64 bits alone is too small a margin for a cache that may hold
/// millions of entries.

class Hasher64 {
 public:
  static constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

  explicit constexpr Hasher64(std::uint64_t seed = kFnvBasis)
      : state_(seed) {}

  constexpr void update(std::string_view bytes) {
    for (const char c : bytes)
      state_ = (state_ ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }

  constexpr void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ = (state_ ^ (v & 0xffu)) * kFnvPrime;
      v >>= 8;
    }
  }

  constexpr void update_i64(std::int64_t v) {
    update_u64(static_cast<std::uint64_t>(v));
  }

  /// murmur3 fmix64 over the accumulated state.
  [[nodiscard]] constexpr std::uint64_t digest() const {
    std::uint64_t h = state_;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
  }

 private:
  std::uint64_t state_;
};

/// 128-bit content fingerprint; the value IS the cache address (the
/// on-disk entry is named by `to_hex()`), so it must never depend on
/// anything but the hashed bytes.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] constexpr bool operator==(const Fingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  [[nodiscard]] constexpr bool operator!=(const Fingerprint& o) const {
    return !(*this == o);
  }

  /// 32 lowercase hex characters, hi lane first.
  [[nodiscard]] std::string to_hex() const;

  /// Parses exactly 32 hex characters; returns false on anything else.
  [[nodiscard]] static bool from_hex(std::string_view hex, Fingerprint* out);
};

/// Fingerprints a byte string with two independently seeded lanes.
[[nodiscard]] Fingerprint fingerprint_bytes(std::string_view bytes);

/// One-lane convenience hash (checksums, hash tables); NOT a cache key.
[[nodiscard]] constexpr std::uint64_t hash_bytes(std::string_view bytes) {
  Hasher64 h;
  h.update(bytes);
  return h.digest();
}

}  // namespace sbmp
