#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "sbmp/support/source_location.h"

namespace sbmp {

/// Severity of a diagnostic message.
enum class DiagSeverity { kError, kWarning, kNote };

/// One diagnostic message with an optional source location.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Collects diagnostics produced by the frontend and analysis passes.
///
/// Passes report through a DiagEngine instead of throwing so that callers
/// can surface every problem in a source file at once. `ok()` is the
/// single success predicate: true iff no error-severity diagnostic was
/// reported.
class DiagEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  [[nodiscard]] bool ok() const { return error_count_ == 0; }
  [[nodiscard]] int error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// All diagnostics rendered one per line; empty string when none.
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  int error_count_ = 0;
};

/// Thrown by convenience entry points (`parse_or_throw` etc.) that convert
/// collected diagnostics into an exception for callers who do not want to
/// manage a DiagEngine themselves.
class SbmpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace sbmp
