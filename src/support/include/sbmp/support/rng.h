#pragma once

#include <cstdint>

#include "sbmp/support/overflow.h"

namespace sbmp {

/// Deterministic 64-bit PRNG (SplitMix64). Used by the random DOACROSS
/// loop generator so that test sweeps and benches are exactly
/// reproducible across platforms; <random> distributions are not
/// implementation-stable, so we avoid them.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi. The span
  /// and the final sum run in uint64 modular arithmetic (range_span in
  /// overflow.h): `hi - lo` itself overflows int64 for mixed-sign
  /// extremes, and a span of 0 means the full int64 domain, where a
  /// modulus would be `% 0` (UB) — there every 64-bit draw is already
  /// uniform. Draws over spans that fit the old arithmetic are
  /// bit-identical to it, so seeded test sweeps keep their sequences.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = range_span(lo, hi);
    const std::uint64_t draw = span == 0 ? next() : next() % span;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
  }

  /// Bernoulli draw with probability `percent`/100.
  constexpr bool chance(int percent) { return range(1, 100) <= percent; }

 private:
  std::uint64_t state_;
};

}  // namespace sbmp
