#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sbmp {

/// Fixed-size work-stealing thread pool.
///
/// Each worker owns a deque: it pushes and pops its own work at the back
/// (LIFO, cache-warm) and steals from other workers at the front (FIFO,
/// oldest task first), so large tasks submitted early migrate to idle
/// workers instead of serializing behind their submitter. External
/// `submit` calls distribute round-robin across the worker deques.
///
/// Submission is engineered for the saturated case: a queued-task
/// counter (no per-queue mutex scans) backs the idle predicate, and the
/// wake mutex is touched only when a sleeper actually exists, so a busy
/// pool pays one queue lock and two atomics per task — no
/// condition-variable traffic at all.
///
/// The pool is a pure execution substrate: it imposes no ordering, and
/// callers that need deterministic results must aggregate by task index
/// (see `parallel_for`, which the parallel pipeline engine builds on).
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 uses default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Tasks must not throw;
  /// wrap throwing work (parallel_for does this for its bodies).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency(), never less than 1.
  [[nodiscard]] static int default_thread_count();

 private:
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);
  bool try_steal(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex mu_;  ///< guards the condition variables below
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::int64_t> pending_{0};  ///< submitted, not yet finished
  std::atomic<std::int64_t> queued_{0};   ///< sitting in a queue right now
  std::atomic<int> sleepers_{0};          ///< workers blocked on work_cv_
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin submit target
};

/// The process-wide shared pool, created lazily on first use with
/// default_thread_count() workers. Batch entry points (`compile`, the
/// bench grids, the sbmpd fan-out) all run on this one pool, so a
/// process pays thread-spawn cost once, ever — not once per batch. The
/// instance is intentionally never destroyed: its idle workers park on a
/// condition variable and die with the process, which sidesteps
/// static-destruction-order hazards for late parallel work at exit.
ThreadPool& shared_thread_pool();

/// Per-call-site adaptive chunk sizing for `parallel_for`.
///
/// A call site that owns one of these (typically a function-local
/// static) gets chunks sized from the *measured* per-item cost of its
/// previous batches instead of the fixed ~4-chunks-per-worker split:
/// each runner reads the monotonic clock once per claimed chunk (never
/// per item), the drained totals update an EWMA ns/item estimate, and
/// the next call splits the range so one chunk costs roughly
/// `kTargetChunkNs` — fewer claim/steal transitions for cheap items,
/// finer rebalancing for expensive ones. The chunk count stays clamped
/// to [workers, kMaxChunksPerWorker x workers] (and never exceeds the
/// item count), so every worker still participates and the
/// failure-aggregation and byte-identity contracts of parallel_for are
/// untouched — chunking can change only scheduling, never which indices
/// run or how results aggregate.
///
/// Thread-safe: the estimate is one relaxed atomic, and concurrent
/// parallel_for calls sharing a tuner just race their (equally valid)
/// updates.
struct ChunkTuner {
  /// Target wall-clock cost of one chunk. ~16x a claim's atomic +
  /// steal overhead even for microsecond items, small enough that an
  /// 8-worker pool rebalances a 30-item batch of 100µs compiles.
  static constexpr std::int64_t kTargetChunkNs = 100'000;
  static constexpr std::int64_t kMaxChunksPerWorker = 32;

  /// EWMA estimate of one item's cost; 0 = no batch measured yet (the
  /// caller falls back to the fixed heuristic).
  std::atomic<std::int64_t> ns_per_item{0};
};

/// Runs `body(i)` for every i in [begin, end) on `pool`, blocking until
/// all complete. The range is split into contiguous chunks — ~4x per
/// worker, or adaptively sized when `tuner` is given (see ChunkTuner) —
/// and the calling thread claims and runs chunks alongside the pool
/// workers, so a loop is never slower than running it inline. Bodies run
/// concurrently in unspecified order and every body runs even after
/// another throws. Failures are aggregated after the loop drains:
/// exactly one failed index rethrows the original exception
/// (type-preserving); several throw one ParallelForError
/// (sbmp/support/status.h) listing every failed index and message in
/// index order, so one bad item can never hide the rest of a batch.
/// Safe to call from multiple threads sharing one pool: completion is
/// tracked per call, not pool-wide.
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ChunkTuner* tuner = nullptr);

/// Convenience form running on the shared process-wide pool with
/// concurrency capped at `jobs` (the cap counts the calling thread,
/// which participates). `jobs` <= 1 runs the loop inline on the calling
/// thread in index order — no pool involvement, and results are
/// bit-identical to the pool path (including the aggregate failure
/// semantics above) — so callers can expose a `--jobs 1` escape hatch
/// that bypasses threading entirely. `jobs` 0 uses
/// ThreadPool::default_thread_count().
void parallel_for(int jobs, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ChunkTuner* tuner = nullptr);

}  // namespace sbmp
