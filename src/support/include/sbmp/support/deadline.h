#pragma once

#include <chrono>
#include <cstdint>

namespace sbmp {

/// A monotonic time budget for an operation. Deadlines — not timeouts —
/// are the primitive that composes: a per-request budget set at the top
/// of a compile propagates down through every frame read and write (and
/// over the wire to the daemon), each layer asking "how long do *I* have
/// left" instead of re-granting itself a fresh allowance. Built on
/// steady_clock so wall-clock adjustments can never extend or collapse
/// a budget.
///
/// The default-constructed Deadline is infinite (no limit), which keeps
/// every pre-deadline call site's behavior when one is threaded through.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No limit.
  constexpr Deadline() = default;

  [[nodiscard]] static Deadline infinite() { return Deadline(); }

  [[nodiscard]] static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  /// The CLI idiom: a positive budget arms a deadline, 0 (or negative)
  /// means "no limit" — so `--io-timeout-ms 0` disables the budget.
  [[nodiscard]] static Deadline after_ms_opt(std::int64_t ms) {
    return ms > 0 ? after_ms(ms) : infinite();
  }

  [[nodiscard]] bool is_infinite() const { return infinite_; }

  [[nodiscard]] bool expired() const {
    return !infinite_ && Clock::now() >= at_;
  }

  /// Remaining budget, clamped to >= 0. Callers must check
  /// is_infinite() first if "unbounded" and "out of time" differ.
  [[nodiscard]] std::int64_t remaining_ms() const {
    if (infinite_) return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  /// The timeout argument for poll(2): -1 blocks forever (infinite
  /// deadline). A sub-millisecond remainder rounds up to 1ms so a
  /// nearly-expired deadline polls once instead of busy-spinning, and
  /// the value is clamped into int range.
  [[nodiscard]] int poll_timeout_ms() const {
    if (infinite_) return -1;
    if (expired()) return 0;
    const std::int64_t ms = remaining_ms();
    if (ms <= 0) return 1;
    if (ms > 0x7fffffff) return 0x7fffffff;
    return static_cast<int>(ms);
  }

  /// The earlier (stricter) of two deadlines — how an io budget and a
  /// request budget fold at a frame boundary.
  [[nodiscard]] Deadline earlier(const Deadline& other) const {
    if (infinite_) return other;
    if (other.infinite_) return *this;
    Deadline d;
    d.infinite_ = false;
    d.at_ = at_ < other.at_ ? at_ : other.at_;
    return d;
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

}  // namespace sbmp
