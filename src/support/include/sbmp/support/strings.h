#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sbmp {

/// Returns `s` with leading and trailing ASCII whitespace removed.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Formats `value` with `decimals` digits after the point (locale-free).
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Formats `value` as a percentage string like "83.37%".
[[nodiscard]] std::string format_percent(double fraction, int decimals = 2);

/// printf-appends to `out`. Report renderers build their output in
/// strings (loops render off-thread and print in order, so output is
/// identical for any job count); this is their one formatting primitive,
/// shared by the CLI driver and the serving layer.
__attribute__((format(printf, 2, 3))) void appendf(std::string& out,
                                                   const char* fmt, ...);

}  // namespace sbmp
