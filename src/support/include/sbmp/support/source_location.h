#pragma once

#include <cstdint>
#include <string>

namespace sbmp {

/// A position in a LoopLang source buffer. Lines and columns are 1-based;
/// the default-constructed value (0,0) means "unknown location".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool known() const { return line != 0; }
  [[nodiscard]] std::string to_string() const {
    if (!known()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace sbmp
