#pragma once

#include <cstdint>
#include <limits>

namespace sbmp {

/// Saturating 64-bit arithmetic for cycle math. The analytic LBD model
/// multiplies chain length by span shift — at iteration counts like
/// n = 2^40 the product n x (i - j + 1) can exceed int64, and plain
/// arithmetic would wrap (undefined behaviour) into a small or negative
/// "time". Saturating to the int64 extremes keeps every derived quantity
/// a valid bound: a saturated parallel time still dominates every real
/// schedule, so comparisons and maxima stay meaningful.

[[nodiscard]] inline std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  return out;
}

[[nodiscard]] inline std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    return (a < 0) == (b < 0) ? std::numeric_limits<std::int64_t>::max()
                              : std::numeric_limits<std::int64_t>::min();
  return out;
}

/// True when `a + b` would overflow int64.
[[nodiscard]] inline bool add_overflows(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  return __builtin_add_overflow(a, b, &out);
}

/// True when `a * b` would overflow int64.
[[nodiscard]] inline bool mul_overflows(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  return __builtin_mul_overflow(a, b, &out);
}

/// Width of the inclusive integer range [lo, hi] as uint64, computed in
/// modular arithmetic so mixed-sign extremes (where `hi - lo` overflows
/// int64) stay defined. Returns 0 when the range covers the full int64
/// domain (the true width, 2^64, is unrepresentable); callers must treat
/// 0 as "every value" — in particular it is NOT a valid modulus.
/// Requires lo <= hi.
[[nodiscard]] constexpr std::uint64_t range_span(std::int64_t lo,
                                                 std::int64_t hi) {
  return static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
}

}  // namespace sbmp
