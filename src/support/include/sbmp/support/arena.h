#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace sbmp {

/// Bump allocator for short-lived build scratch.
///
/// The compile hot path (DFG construction, the schedulers) needs many
/// small temporary arrays whose lifetimes all end together. Giving each
/// its own std::vector costs one malloc/free pair apiece and scatters
/// them across the heap; an Arena hands out pointers from a few large
/// blocks instead, so the scratch stays contiguous and the whole set is
/// released at once when the arena dies (or via reset()).
///
/// Only trivially-destructible element types are supported — nothing is
/// ever destroyed individually, memory is simply reclaimed in bulk.
class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = kDefaultBlockBytes) {
    grow(first_block_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. Never returns nullptr; zero-byte requests
  /// yield a valid (unusable) pointer.
  [[nodiscard]] void* allocate_bytes(std::size_t bytes, std::size_t align) {
    Block& block = blocks_.back();
    std::size_t offset = (block.used + (align - 1)) & ~(align - 1);
    if (offset + bytes > block.size) {
      grow(bytes + align);
      return allocate_bytes(bytes, align);
    }
    block.used = offset + bytes;
    return block.data.get() + offset;
  }

  /// Uninitialized typed array of `count` elements.
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T)));
  }

  /// Zero-initialized typed array of `count` elements.
  template <typename T>
  [[nodiscard]] T* allocate_zeroed(std::size_t count) {
    T* out = allocate<T>(count);
    for (std::size_t i = 0; i < count; ++i) out[i] = T{};
    return out;
  }

  /// Total bytes currently reserved across all blocks.
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Forgets every allocation but keeps the reserved blocks, so a reused
  /// arena stops hitting malloc after its first build.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
  }

 private:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void grow(std::size_t min_bytes) {
    std::size_t size = blocks_.empty() ? min_bytes : blocks_.back().size * 2;
    if (size < min_bytes) size = min_bytes;
    blocks_.push_back({std::make_unique<std::byte[]>(size), size, 0});
  }

  std::vector<Block> blocks_;
};

}  // namespace sbmp
