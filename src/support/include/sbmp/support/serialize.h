#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sbmp/support/status.h"

namespace sbmp {

/// Tagged, length-delimited record serialization for on-disk cache
/// artifacts and wire messages.
///
/// The format is line-structured text with raw byte payloads, chosen so
/// a cache entry can be inspected with a pager while still carrying
/// arbitrary bytes (loop sources and diagnostics contain newlines):
///
///   sbmp-record v1\n
///   i <name> <decimal int64>\n
///   s <name> <byte count>\n<raw bytes>\n
///   ...
///   end <16 hex chars>\n
///
/// The trailing `end` line carries the FNV/murmur checksum (hash_bytes)
/// of everything before it, so truncation — the typical artifact of a
/// crash mid-write — and bit rot are both detected at open time rather
/// than surfacing as a half-parsed report. Readers consume fields in
/// writer order by name; any mismatch is a structured kInput Status,
/// never an exception, because a corrupt cache entry must degrade to a
/// miss.
class RecordWriter {
 public:
  RecordWriter();

  void add_int(std::string_view name, std::int64_t value);
  void add_string(std::string_view name, std::string_view value);

  /// Appends the checksum trailer and returns the finished payload.
  /// The writer must not be reused afterwards.
  [[nodiscard]] std::string finish();

 private:
  std::string out_;
};

class RecordReader {
 public:
  /// Verifies the header and checksum trailer of `payload`. The reader
  /// keeps a view into `payload`, which must outlive it.
  [[nodiscard]] static Status open(std::string_view payload,
                                   RecordReader* out);

  /// Reads the next field, which must be an int named `name`.
  [[nodiscard]] Status read_int(std::string_view name, std::int64_t* out);
  /// Reads the next field, which must be a string named `name`.
  [[nodiscard]] Status read_string(std::string_view name, std::string* out);
  /// True when every field has been consumed.
  [[nodiscard]] bool at_end() const { return cursor_ >= body_.size(); }

 private:
  [[nodiscard]] Status next_line(std::string_view* out);

  std::string_view body_;  ///< fields only: header and trailer stripped
  std::size_t cursor_ = 0;
};

}  // namespace sbmp
