#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sbmp/support/status.h"

namespace sbmp {

/// Filesystem primitives for the persistent cache. Every operation
/// returns a structured Status (stage "io") instead of throwing: disk
/// trouble under a cache must degrade to a miss, not take the process
/// down, and the caller decides how loud to be about it.

/// Reads the whole file into `out`.
[[nodiscard]] Status read_file(const std::string& path, std::string* out);

/// Crash-safe write: the bytes land in a uniquely named temporary in the
/// same directory, are flushed, and are atomically renamed over `path`.
/// A reader therefore sees either the old content or the new content,
/// never a torn write — the invariant the schedule cache's corruption
/// handling is built on.
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       std::string_view data);

/// mkdir -p: creates `path` and any missing parents.
[[nodiscard]] Status ensure_directory(const std::string& path);

struct DirEntry {
  std::string name;  ///< basename, not the full path
  std::int64_t size = 0;
  /// Modification time in nanoseconds since the epoch (second precision
  /// where the filesystem offers no better); the cache's LRU clock.
  std::int64_t mtime_ns = 0;
};

/// Lists the regular files of `path`, sorted by name (deterministic
/// regardless of directory hash order).
[[nodiscard]] Status list_directory(const std::string& path,
                                    std::vector<DirEntry>* out);

/// Deletes `path`; missing files are not an error (a concurrent evictor
/// may have won the race).
[[nodiscard]] Status remove_file(const std::string& path);

/// Bumps `path`'s modification time to now (the LRU touch on cache hit).
[[nodiscard]] Status touch_file(const std::string& path);

[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace sbmp
