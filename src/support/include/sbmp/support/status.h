#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sbmp/support/diagnostics.h"

namespace sbmp {

/// Failure classes of the pipeline, ordered by severity. The numeric
/// value IS the process exit code of `sbmpc` (see docs/robustness.md):
/// 0 = success, 1 = input diagnostics (parse/restructure/unsupported
/// input), 2 = usage error, 3 = validation failure (a produced schedule
/// failed the cross-layer validator), 4 = internal error (a stage threw
/// something the input does not explain).
///
/// Codes 5-8 are the serving-path failure classes (docs/serving.md,
/// "Failure modes & degradation"): they only reach a process exit code
/// through `sbmpc --remote` without `--fallback-local`, and they are the
/// codes the client's RetryPolicy keys on — kTimeout, kUnavailable and
/// kOverloaded are transient (retry-safe: the daemon's compile is
/// idempotent and no partial result was accepted), everything at or
/// below kInternal is not.
/// Codes 9-10 are the execution-backend failure classes (src/exec,
/// docs/execution.md): kExecDivergence means the real-thread run of a
/// schedule produced memory that differs from the serial interpretation
/// of the same loop — the runtime analogue of kValidation, and never
/// retryable (the schedule itself is wrong or raced). kResource means a
/// runtime resource could not be acquired (worker thread start failed,
/// the loop's memory footprint exceeds the executor cap); the compile
/// artifacts are still valid, only the execution was refused.
enum class StatusCode : int {
  kOk = 0,
  kInput = 1,
  kUsage = 2,
  kValidation = 3,
  kInternal = 4,
  kTimeout = 5,       ///< a Deadline expired before the operation finished
  kUnavailable = 6,   ///< transport failure: connect refused, peer vanished,
                      ///< frame truncated mid-stream
  kOverloaded = 7,    ///< daemon shed the request (admission control);
                      ///< retry with backoff, never immediately
  kFrameTooLarge = 8, ///< peer sent a frame beyond kMaxFramePayload
  kExecDivergence = 9, ///< executed results diverged from the serial
                       ///< interpretation (runtime validation failure)
  kResource = 10,      ///< execution refused: thread start failed or the
                       ///< loop exceeds the executor's memory cap
};

/// Largest valid StatusCode value; wire decoders bound-check against it.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kResource;

[[nodiscard]] const char* status_code_name(StatusCode code);

/// Process exit code for a status code (the identity mapping, kept as a
/// named function so call sites document intent and the contract has a
/// single definition to test against).
[[nodiscard]] constexpr int exit_code(StatusCode code) {
  return static_cast<int>(code);
}

/// The worse (higher-numbered) of two codes; used to fold many per-loop
/// failures into one process exit code.
[[nodiscard]] constexpr StatusCode worst_code(StatusCode a, StatusCode b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// One structured pipeline outcome: a code, the stage that produced it,
/// and a human-readable message. Carried through the pipeline engines in
/// place of bare SbmpError strings so callers can aggregate failures,
/// keep partial results, and map outcomes to exit codes without string
/// matching.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string stage;  ///< e.g. "restructure", "validate"; empty when ok.
  std::string message;

  [[nodiscard]] bool ok() const { return code == StatusCode::kOk; }
  /// "validation error in sched: ..." rendering; empty string when ok.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static Status okay() { return {}; }
  [[nodiscard]] static Status error(StatusCode code, std::string stage,
                                    std::string message) {
    return {code, std::move(stage), std::move(message)};
  }
};

/// Exception form of a Status for boundaries that must still throw (the
/// single-loop `run_pipeline` entry points keep their throwing
/// contract). Catch sites recover the structured code instead of
/// pattern-matching what().
class StatusError : public SbmpError {
 public:
  explicit StatusError(Status status)
      : SbmpError(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// One failed index of a parallel_for batch.
struct IndexedFailure {
  std::int64_t index = 0;
  std::string message;
};

/// Aggregate thrown by parallel_for when more than one body failed:
/// every failure is surfaced, sorted by index, so one bad item in a
/// batch can no longer hide the others. A single failure rethrows the
/// original exception instead (type-preserving).
class ParallelForError : public SbmpError {
 public:
  explicit ParallelForError(std::vector<IndexedFailure> failures);

  [[nodiscard]] const std::vector<IndexedFailure>& failures() const {
    return failures_;
  }

 private:
  std::vector<IndexedFailure> failures_;
};

}  // namespace sbmp
