#pragma once

#include <string>
#include <vector>

namespace sbmp {

/// Renders an aligned plain-text table, used by the benchmark harnesses to
/// print the paper's tables. Column widths auto-fit the widest cell.
class TextTable {
 public:
  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at the current position.
  void add_separator();

  /// Renders the table. The first column is left-aligned, the rest are
  /// right-aligned (numeric convention).
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace sbmp
