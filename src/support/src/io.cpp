#include "sbmp/support/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sbmp {

namespace {

Status io_error(const std::string& what, const std::string& path) {
  return Status::error(StatusCode::kInput, "io",
                       what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Status read_file(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return io_error("cannot open", path);
  out->clear();
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = io_error("cannot read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return Status::okay();
}

Status write_file_atomic(const std::string& path, std::string_view data) {
  // Unique per process and per call, so concurrent writers of the same
  // entry never collide on the temporary; last rename wins, and both
  // wrote identical bytes anyway in the cache's use.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return io_error("cannot create temporary", tmp);
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = io_error("cannot write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status s = io_error("cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    const Status s = io_error("cannot close", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status s = io_error("cannot rename into", path);
    ::unlink(tmp.c_str());
    return s;
  }
  return Status::okay();
}

Status ensure_directory(const std::string& path) {
  if (path.empty())
    return Status::error(StatusCode::kInput, "io", "empty directory path");
  std::string prefix;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    prefix = path.substr(0, i == 0 ? 1 : i);  // keep a leading "/"
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return io_error("cannot create directory", prefix);
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
    return Status::error(StatusCode::kInput, "io",
                         "'" + path + "' exists but is not a directory");
  return Status::okay();
}

Status list_directory(const std::string& path, std::vector<DirEntry>* out) {
  out->clear();
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return io_error("cannot open directory", path);
  while (true) {
    errno = 0;
    const dirent* entry = ::readdir(dir);
    if (entry == nullptr) {
      if (errno != 0) {
        const Status s = io_error("cannot list directory", path);
        ::closedir(dir);
        return s;
      }
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((path + "/" + name).c_str(), &st) != 0) continue;
    if (!S_ISREG(st.st_mode)) continue;
    DirEntry e;
    e.name = name;
    e.size = static_cast<std::int64_t>(st.st_size);
    e.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                 st.st_mtim.tv_nsec;
    out->push_back(std::move(e));
  }
  ::closedir(dir);
  std::sort(out->begin(), out->end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return Status::okay();
}

Status remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    return io_error("cannot remove", path);
  return Status::okay();
}

Status touch_file(const std::string& path) {
  if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) != 0)
    return io_error("cannot touch", path);
  return Status::okay();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace sbmp
