#include "sbmp/support/serialize.h"

#include <charconv>

#include "sbmp/support/hash.h"

namespace sbmp {

namespace {

constexpr std::string_view kHeader = "sbmp-record v1\n";
constexpr std::string_view kTrailerTag = "end ";

Status corrupt(std::string message) {
  return Status::error(StatusCode::kInput, "serialize", std::move(message));
}

bool parse_i64(std::string_view text, std::int64_t* out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

std::string checksum_hex(std::string_view bytes) {
  const std::uint64_t sum = hash_bytes(bytes);
  std::string hex;
  for (int shift = 60; shift >= 0; shift -= 4)
    hex += "0123456789abcdef"[(sum >> shift) & 0xf];
  return hex;
}

}  // namespace

RecordWriter::RecordWriter() : out_(kHeader) {}

void RecordWriter::add_int(std::string_view name, std::int64_t value) {
  out_ += "i ";
  out_ += name;
  out_ += ' ';
  out_ += std::to_string(value);
  out_ += '\n';
}

void RecordWriter::add_string(std::string_view name, std::string_view value) {
  out_ += "s ";
  out_ += name;
  out_ += ' ';
  out_ += std::to_string(value.size());
  out_ += '\n';
  out_ += value;
  out_ += '\n';
}

std::string RecordWriter::finish() {
  // The checksum covers every byte before the hex digits, including the
  // trailer tag itself — RecordReader::open recomputes over the same
  // span.
  out_ += kTrailerTag;
  out_ += checksum_hex(out_);
  out_ += '\n';
  return std::move(out_);
}

Status RecordReader::open(std::string_view payload, RecordReader* out) {
  if (payload.substr(0, kHeader.size()) != kHeader)
    return corrupt("missing or unknown record header");
  // The trailer is the final "end <16 hex>\n" line; everything before it
  // is covered by the checksum.
  constexpr std::size_t kTrailerSize = 4 + 16 + 1;  // "end " + hex + '\n'
  if (payload.size() < kHeader.size() + kTrailerSize)
    return corrupt("record truncated before trailer");
  const std::size_t trailer_at = payload.size() - kTrailerSize;
  const std::string_view trailer = payload.substr(trailer_at);
  if (trailer.substr(0, kTrailerTag.size()) != kTrailerTag ||
      trailer.back() != '\n')
    return corrupt("record trailer malformed (truncated write?)");
  const std::string_view stored = trailer.substr(kTrailerTag.size(), 16);
  const std::string computed =
      checksum_hex(payload.substr(0, trailer_at + kTrailerTag.size()));
  if (stored != computed)
    return corrupt("record checksum mismatch: stored " + std::string(stored) +
                   ", computed " + computed);
  out->body_ = payload.substr(kHeader.size(),
                              trailer_at - kHeader.size());
  out->cursor_ = 0;
  return Status::okay();
}

Status RecordReader::next_line(std::string_view* out) {
  if (at_end()) return corrupt("record ended while a field was expected");
  const std::size_t nl = body_.find('\n', cursor_);
  if (nl == std::string_view::npos)
    return corrupt("record field line is unterminated");
  *out = body_.substr(cursor_, nl - cursor_);
  cursor_ = nl + 1;
  return Status::okay();
}

Status RecordReader::read_int(std::string_view name, std::int64_t* out) {
  std::string_view line;
  if (Status s = next_line(&line); !s.ok()) return s;
  const std::string expect = "i " + std::string(name) + " ";
  if (line.substr(0, expect.size()) != expect)
    return corrupt("expected int field '" + std::string(name) +
                   "', found line '" + std::string(line.substr(0, 64)) + "'");
  if (!parse_i64(line.substr(expect.size()), out))
    return corrupt("int field '" + std::string(name) +
                   "' holds a non-integer value");
  return Status::okay();
}

Status RecordReader::read_string(std::string_view name, std::string* out) {
  std::string_view line;
  if (Status s = next_line(&line); !s.ok()) return s;
  const std::string expect = "s " + std::string(name) + " ";
  if (line.substr(0, expect.size()) != expect)
    return corrupt("expected string field '" + std::string(name) +
                   "', found line '" + std::string(line.substr(0, 64)) + "'");
  std::int64_t size = 0;
  if (!parse_i64(line.substr(expect.size()), &size) || size < 0)
    return corrupt("string field '" + std::string(name) +
                   "' has a malformed byte count");
  const auto bytes = static_cast<std::size_t>(size);
  if (body_.size() - cursor_ < bytes + 1 || body_[cursor_ + bytes] != '\n')
    return corrupt("string field '" + std::string(name) +
                   "' is shorter than its declared byte count");
  out->assign(body_.substr(cursor_, bytes));
  cursor_ += bytes + 1;
  return Status::okay();
}

}  // namespace sbmp
