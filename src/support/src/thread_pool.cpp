#include "sbmp/support/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <system_error>
#include <utility>

#include "sbmp/support/status.h"

namespace sbmp {

namespace {

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Per-call failure collector shared by the pool and inline paths, so
/// both surface every failed index identically: one failure rethrows the
/// original exception (type-preserving, the historical contract), more
/// than one throws a ParallelForError listing all of them by index.
struct FailureSet {
  std::mutex mu;
  std::exception_ptr first;
  std::int64_t first_index = 0;
  std::vector<IndexedFailure> failures;

  void record(std::int64_t index) {
    const std::string message = describe_current_exception();
    std::lock_guard<std::mutex> lock(mu);
    if (!first || index < first_index) {
      first = std::current_exception();
      first_index = index;
    }
    failures.push_back({index, message});
  }

  [[noreturn]] void rethrow() {
    if (failures.size() == 1) std::rethrow_exception(first);
    std::sort(failures.begin(), failures.end(),
              [](const IndexedFailure& a, const IndexedFailure& b) {
                return a.index < b.index;
              });
    throw ParallelForError(std::move(failures));
  }

  /// Steal the collected state into `out`, leaving this set empty. Used
  /// by the chunked path so the caller rethrows from a stack-local copy:
  /// the shared per-call block may be destroyed later on a worker thread
  /// (a stale runner stub dropping the last reference), and that
  /// destruction must not release the exception_ptr the caller is still
  /// holding live.
  void drain_into(FailureSet& out) {
    out.first = std::move(first);
    first = nullptr;
    out.first_index = first_index;
    out.failures = std::move(failures);
    failures.clear();
  }

  [[nodiscard]] bool any() const { return !failures.empty(); }
};

/// State of one chunked parallel_for call. The range is pre-split into
/// `chunks` contiguous pieces; runners (pool tasks plus the calling
/// thread) claim pieces through `next_chunk` until none remain, so load
/// balances dynamically while each claimed piece stays a cache-friendly
/// contiguous index run. Heap-allocated and shared with every runner
/// task: when the caller drains all chunks itself (a busy pool), its
/// runner stubs may execute after the call already returned, and must
/// still find this state alive — they claim no chunk and exit without
/// ever touching `body`.
struct ChunkedLoop {
  std::int64_t begin = 0;
  std::int64_t n = 0;
  std::int64_t chunks = 0;
  const std::function<void(std::int64_t)>* body = nullptr;
  bool measure = false;  ///< feed a ChunkTuner from this call's chunks
  std::atomic<std::int64_t> next_chunk{0};
  std::atomic<std::int64_t> chunks_done{0};
  std::atomic<std::int64_t> measured_ns{0};
  std::atomic<std::int64_t> measured_items{0};
  std::mutex mu;
  std::condition_variable done_cv;
  FailureSet failures;

  void run() {
    const std::int64_t base = n / chunks;
    const std::int64_t rem = n % chunks;
    // Measurement costs one clock read per *chunk* boundary (never per
    // item): each runner carries the previous boundary's timestamp, so
    // chunk k's cost is the delta to the read that closed chunk k-1.
    auto mark = measure ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
    for (;;) {
      const std::int64_t k =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (k >= chunks) return;
      const std::int64_t lo = begin + k * base + std::min(k, rem);
      const std::int64_t hi = lo + base + (k < rem ? 1 : 0);
      for (std::int64_t i = lo; i < hi; ++i) {
        try {
          (*body)(i);
        } catch (...) {
          failures.record(i);
        }
      }
      if (measure) {
        // Accumulate before the chunks_done increment: its acq_rel pair
        // with the caller's acquire wait makes these adds visible to the
        // tuner update that follows the drain.
        const auto now = std::chrono::steady_clock::now();
        measured_ns.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark)
                .count(),
            std::memory_order_relaxed);
        measured_items.fetch_add(hi - lo, std::memory_order_relaxed);
        mark = now;
      }
      if (chunks_done.fetch_add(1, std::memory_order_acq_rel) == chunks - 1) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

/// Chunk count for a batch of `n` items on `workers` runners: the fixed
/// ~4-per-worker split until `tuner` has a measured estimate, then
/// enough chunks that one chunk costs ~ChunkTuner::kTargetChunkNs,
/// clamped so every worker gets work but claim traffic stays bounded.
std::int64_t pick_chunks(std::int64_t n, int workers,
                         const ChunkTuner* tuner) {
  const std::int64_t est =
      tuner != nullptr ? tuner->ns_per_item.load(std::memory_order_relaxed)
                       : 0;
  if (est <= 0) return std::min<std::int64_t>(n, std::int64_t{4} * workers);
  const std::int64_t per_chunk =
      std::max<std::int64_t>(1, ChunkTuner::kTargetChunkNs / est);
  const std::int64_t want = (n + per_chunk - 1) / per_chunk;
  const std::int64_t clamped = std::clamp<std::int64_t>(
      want, workers, ChunkTuner::kMaxChunksPerWorker * workers);
  return std::min<std::int64_t>(n, clamped);
}

/// Folds one drained batch into `tuner`: EWMA with a 3/4 memory, so one
/// anomalous batch (page faults, a stolen core) shifts the estimate by
/// at most a quarter of the way.
void update_tuner(ChunkTuner& tuner, std::int64_t batch_ns,
                  std::int64_t batch_items) {
  if (batch_items <= 0) return;
  const std::int64_t fresh =
      std::max<std::int64_t>(1, batch_ns / batch_items);
  const std::int64_t prev =
      tuner.ns_per_item.load(std::memory_order_relaxed);
  const std::int64_t est = prev <= 0 ? fresh : (3 * prev + fresh) / 4;
  tuner.ns_per_item.store(est, std::memory_order_relaxed);
}

/// The inline path shared by `jobs <= 1` and degenerate ranges: index
/// order on the calling thread, with the exact pooled failure contract.
void run_inline(std::int64_t begin, std::int64_t end,
                const std::function<void(std::int64_t)>& body) {
  FailureSet failures;
  for (std::int64_t i = begin; i < end; ++i) {
    try {
      body(i);
    } catch (...) {
      failures.record(i);
    }
  }
  if (failures.any()) failures.rethrow();
}

/// Chunked fan-out over `pool` with total concurrency (pool runners plus
/// the participating caller) capped at `max_workers`.
void parallel_for_capped(ThreadPool& pool, int max_workers,
                         std::int64_t begin, std::int64_t end,
                         const std::function<void(std::int64_t)>& body,
                         ChunkTuner* tuner) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int workers = static_cast<int>(std::min<std::int64_t>(
      {static_cast<std::int64_t>(std::max(max_workers, 1)),
       static_cast<std::int64_t>(pool.size()) + 1, n}));
  if (workers <= 1) {
    run_inline(begin, end, body);
    return;
  }
  auto state = std::make_shared<ChunkedLoop>();
  state->begin = begin;
  state->n = n;
  state->chunks = pick_chunks(n, workers, tuner);
  state->body = &body;
  state->measure = tuner != nullptr;
  for (int w = 0; w + 1 < workers; ++w)
    pool.submit([state] { state->run(); });
  state->run();  // the calling thread is worker 0
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&state] {
      return state->chunks_done.load(std::memory_order_acquire) ==
             state->chunks;
    });
  }
  if (tuner != nullptr)
    update_tuner(*tuner,
                 state->measured_ns.load(std::memory_order_relaxed),
                 state->measured_items.load(std::memory_order_relaxed));
  // All chunks are done (acq_rel fetch_add / acquire wait above), so the
  // caller owns the failure state now. Drain it to a local before
  // throwing — see FailureSet::drain_into.
  if (state->failures.any()) {
    FailureSet local;
    state->failures.drain_into(local);
    local.rethrow();
  }
}

}  // namespace

int ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int count = threads > 0 ? threads : default_thread_count();
  queues_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    queues_.push_back(std::make_unique<WorkQueue>());
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    try {
      workers_.emplace_back(
          [this, i] { worker_loop(static_cast<std::size_t>(i)); });
    } catch (const std::system_error&) {
      // Out of thread resources: run with however many workers exist.
      // Extra queues are harmless — workers steal from all of them.
      if (workers_.empty()) throw;
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true);
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
    queued_.fetch_add(1, std::memory_order_seq_cst);
  }
  // Wake a worker only when one is actually asleep. The seq_cst pair
  // (queued_ write above, sleepers_ read here) against the worker's
  // (sleepers_ write under mu_, queued_ read in its wait predicate)
  // closes the lost-wakeup race: if this read misses a worker about to
  // sleep, that worker's predicate — checked after its sleepers_
  // increment — is guaranteed to see the new queued_ count and skip the
  // sleep. A saturated pool therefore never touches mu_ on submit.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> lock(mu_); }
    work_cv_.notify_one();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  WorkQueue& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& out) {
  const std::size_t count = queues_.size();
  for (std::size_t k = 1; k < count; ++k) {
    WorkQueue& q = *queues_[(self + k) % count];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task) || try_steal(self, task)) {
      task();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_.load()) return;
    // Register as a sleeper before the predicate check (both under mu_),
    // so a submitter that saw sleepers_ == 0 must have published its
    // queued_ increment first — the predicate then sees it and skips
    // the sleep. queued_ is a counter, not a lock scan: going idle no
    // longer takes every per-queue mutex.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    work_cv_.wait(lock, [this] {
      return stop_.load() ||
             queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stop_.load() && queued_.load(std::memory_order_seq_cst) <= 0)
      return;
  }
}

ThreadPool& shared_thread_pool() {
  // Intentionally leaked (never destroyed): the workers idle on the
  // condition variable until process exit, so no static-destruction
  // ordering can race a late parallel_for against a dying pool. The
  // pointer lives in static storage, so leak checkers see the block as
  // reachable.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ChunkTuner* tuner) {
  parallel_for_capped(pool, pool.size() + 1, begin, end, body, tuner);
}

void parallel_for(int jobs, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ChunkTuner* tuner) {
  const int resolved = jobs > 0 ? jobs : ThreadPool::default_thread_count();
  if (resolved <= 1 || end - begin <= 1) {
    run_inline(begin, end, body);
    return;
  }
  parallel_for_capped(shared_thread_pool(), resolved, begin, end, body,
                      tuner);
}

}  // namespace sbmp
