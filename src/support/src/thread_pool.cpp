#include "sbmp/support/thread_pool.h"

#include <algorithm>
#include <exception>
#include <system_error>
#include <utility>

#include "sbmp/support/status.h"

namespace sbmp {

namespace {

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Per-call failure collector shared by the pool and inline paths, so
/// both surface every failed index identically: one failure rethrows the
/// original exception (type-preserving, the historical contract), more
/// than one throws a ParallelForError listing all of them by index.
struct FailureSet {
  std::mutex mu;
  std::exception_ptr first;
  std::int64_t first_index = 0;
  std::vector<IndexedFailure> failures;

  void record(std::int64_t index) {
    const std::string message = describe_current_exception();
    std::lock_guard<std::mutex> lock(mu);
    if (!first || index < first_index) {
      first = std::current_exception();
      first_index = index;
    }
    failures.push_back({index, message});
  }

  [[noreturn]] void rethrow() {
    if (failures.size() == 1) std::rethrow_exception(first);
    std::sort(failures.begin(), failures.end(),
              [](const IndexedFailure& a, const IndexedFailure& b) {
                return a.index < b.index;
              });
    throw ParallelForError(std::move(failures));
  }

  [[nodiscard]] bool any() const { return !failures.empty(); }
};

}  // namespace

int ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int count = threads > 0 ? threads : default_thread_count();
  queues_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    queues_.push_back(std::make_unique<WorkQueue>());
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    try {
      workers_.emplace_back(
          [this, i] { worker_loop(static_cast<std::size_t>(i)); });
    } catch (const std::system_error&) {
      // Out of thread resources: run with however many workers exist.
      // Extra queues are harmless — workers steal from all of them.
      if (workers_.empty()) throw;
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true);
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // Pairing the notify with mu_ closes the race against a worker that
    // found every queue empty and is about to sleep.
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  WorkQueue& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t self, std::function<void()>& out) {
  const std::size_t count = queues_.size();
  for (std::size_t k = 1; k < count; ++k) {
    WorkQueue& q = *queues_[(self + k) % count];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::have_queued_work() {
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> lock(q->mu);
    if (!q->tasks.empty()) return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task) || try_steal(self, task)) {
      task();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_.load()) return;
    work_cv_.wait(lock, [this] { return stop_.load() || have_queued_work(); });
    if (stop_.load() && !have_queued_work()) return;
  }
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body) {
  if (end <= begin) return;
  struct LoopState {
    std::atomic<std::int64_t> remaining;
    std::mutex mu;
    std::condition_variable done_cv;
    FailureSet failures;
  };
  LoopState state;
  state.remaining.store(end - begin, std::memory_order_relaxed);
  for (std::int64_t i = begin; i < end; ++i) {
    pool.submit([&state, &body, i] {
      try {
        body(i);
      } catch (...) {
        state.failures.record(i);
      }
      if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state.mu);
        state.done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.done_cv.wait(lock, [&state] {
    return state.remaining.load(std::memory_order_acquire) == 0;
  });
  if (state.failures.any()) state.failures.rethrow();
}

void parallel_for(int jobs, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body) {
  const int resolved = jobs > 0 ? jobs : ThreadPool::default_thread_count();
  if (resolved <= 1 || end - begin <= 1) {
    // The inline path must match the pool path's failure semantics: run
    // every index even after one throws, then surface all failures.
    FailureSet failures;
    for (std::int64_t i = begin; i < end; ++i) {
      try {
        body(i);
      } catch (...) {
        failures.record(i);
      }
    }
    if (failures.any()) failures.rethrow();
    return;
  }
  // More workers than indices would just be idle threads (and an absurd
  // --jobs could exhaust thread resources); clamp to the range size.
  ThreadPool pool(static_cast<int>(
      std::min<std::int64_t>(resolved, end - begin)));
  parallel_for(pool, begin, end, body);
}

}  // namespace sbmp
