#include "sbmp/support/status.h"

namespace sbmp {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInput:
      return "input error";
    case StatusCode::kUsage:
      return "usage error";
    case StatusCode::kValidation:
      return "validation error";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kTimeout:
      return "deadline exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kFrameTooLarge:
      return "frame too large";
    case StatusCode::kExecDivergence:
      return "execution divergence";
    case StatusCode::kResource:
      return "resource unavailable";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "";
  std::string out = status_code_name(code);
  if (!stage.empty()) {
    out += " in ";
    out += stage;
  }
  out += ": ";
  out += message;
  return out;
}

namespace {

std::string render_failures(const std::vector<IndexedFailure>& failures) {
  std::string out = "parallel_for: " + std::to_string(failures.size()) +
                    " tasks failed:";
  for (const auto& f : failures) {
    out += "\n  [" + std::to_string(f.index) + "] " + f.message;
  }
  return out;
}

}  // namespace

ParallelForError::ParallelForError(std::vector<IndexedFailure> failures)
    : SbmpError(render_failures(failures)), failures_(std::move(failures)) {}

}  // namespace sbmp
