#include "sbmp/support/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace sbmp {

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const auto first = s.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(ws);
  return s.substr(first, last - first + 1);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

void appendf(std::string& out, const char* fmt, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, fmt);
  const int needed = std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  if (needed < static_cast<int>(sizeof buffer)) {
    out.append(buffer, static_cast<std::size_t>(needed > 0 ? needed : 0));
    return;
  }
  std::vector<char> big(static_cast<std::size_t>(needed) + 1);
  va_start(args, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, args);
  va_end(args);
  out.append(big.data(), static_cast<std::size_t>(needed));
}

}  // namespace sbmp
