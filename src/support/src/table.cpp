#include "sbmp/support/table.h"

#include <algorithm>

namespace sbmp {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back({std::move(row), false});
}

void TextTable::add_separator() { rows_.push_back({{}, true}); }

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      widths[c] = std::max(widths[c], cells[c].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.separator) widen(r.cells);

  auto emit_row = [&](std::string& out, const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      if (c == 0) {
        out += cell;
        out.append(widths[c] - cell.size(), ' ');
      } else {
        out += "  ";
        out.append(widths[c] - cell.size(), ' ');
        out += cell;
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::size_t total = 0;
  for (auto w : widths) total += w;
  total += 2 * (ncols - 1);

  std::string out;
  if (!header_.empty()) {
    emit_row(out, header_);
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      out.append(total, '-');
      out += '\n';
    } else {
      emit_row(out, r.cells);
    }
  }
  return out;
}

}  // namespace sbmp
