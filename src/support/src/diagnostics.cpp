#include "sbmp/support/diagnostics.h"

namespace sbmp {

namespace {
const char* severity_name(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::string out;
  if (loc.known()) {
    out += loc.to_string();
    out += ": ";
  }
  out += severity_name(severity);
  out += ": ";
  out += message;
  return out;
}

void DiagEngine::error(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagEngine::warning(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kWarning, loc, std::move(message)});
}

void DiagEngine::note(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kNote, loc, std::move(message)});
}

std::string DiagEngine::render() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

void DiagEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace sbmp
