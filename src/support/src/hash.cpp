#include "sbmp/support/hash.h"

namespace sbmp {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void append_hex_u64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4)
    out += kHexDigits[(v >> shift) & 0xf];
}

bool parse_hex_u64(std::string_view hex, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace

std::string Fingerprint::to_hex() const {
  std::string out;
  out.reserve(32);
  append_hex_u64(out, hi);
  append_hex_u64(out, lo);
  return out;
}

bool Fingerprint::from_hex(std::string_view hex, Fingerprint* out) {
  if (hex.size() != 32) return false;
  return parse_hex_u64(hex.substr(0, 16), &out->hi) &&
         parse_hex_u64(hex.substr(16, 16), &out->lo);
}

Fingerprint fingerprint_bytes(std::string_view bytes) {
  // The second lane's seed is the first FNV prime multiple of the basis
  // xored with a fixed pattern — any constant distinct from kFnvBasis
  // decorrelates the lanes; what matters is that it never changes.
  Hasher64 a;
  Hasher64 b(Hasher64::kFnvBasis ^ 0x9e3779b97f4a7c15ull);
  a.update(bytes);
  b.update(bytes);
  return {a.digest(), b.digest()};
}

}  // namespace sbmp
