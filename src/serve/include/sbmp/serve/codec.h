#pragma once

#include <cstdint>
#include <string>

#include "sbmp/core/pipeline.h"
#include "sbmp/support/hash.h"
#include "sbmp/support/status.h"

namespace sbmp {

/// Serialization of pipeline artifacts for the persistent schedule
/// cache and the sbmpd wire protocol.
///
/// A cached entry does NOT store every LoopReport member. The pipeline
/// is deterministic in (loop, options), so the cheap front half — parse,
/// dependence analysis, synchronization insertion, codegen, DFG — is
/// recomputed on load from the canonical loop source, and only the
/// expensive, derived artifacts are stored: the schedule, the simulated
/// cycle counts, and the violation/status verdicts. Recomputing the
/// front half on load is also what makes the safety contract cheap to
/// enforce: the decoder re-runs verify_schedule and (when the options
/// ask for validation) validate_pipeline against the *reconstructed*
/// state, so a stale or tampered entry whose schedule no longer fits the
/// loop is rejected as a miss instead of shipping a mis-synchronized
/// schedule.

/// Version of the cache entry format AND of everything fingerprinted
/// into the cache key. Bump it whenever either changes meaning: the
/// entry layout, the canonical loop rendering, the option set, or any
/// pipeline stage whose output the cache persists (scheduler, simulator,
/// sync insertion). A bump orphans old entries (they miss on the
/// fingerprint), which is exactly the desired invalidation.
inline constexpr std::int64_t kScheduleCacheFormatVersion = 1;

/// Content address of a (loop, options) compile: a 128-bit fingerprint
/// over the canonical LoopLang rendering of `loop`, every
/// PipelineOptions field that can change the report (the same set
/// ResultCache::key pins, and in the same order), and the format
/// version. cache_dir/cache_max_bytes are excluded — storage location
/// must not partition the key space.
[[nodiscard]] Fingerprint schedule_fingerprint(const Loop& loop,
                                               const PipelineOptions& options);

/// Serializes the cacheable artifacts of `report`. The encoding is
/// deterministic: byte-equal encodings iff the stored fields are equal,
/// which is what the cold-vs-warm byte-identity tests compare.
[[nodiscard]] std::string encode_loop_report(const LoopReport& report,
                                             const Fingerprint& fingerprint);

/// Decodes `payload` into a full LoopReport, recomputing the front half
/// of the pipeline under `options` and re-verifying the stored schedule
/// (see the file comment). Returns a non-ok Status — and leaves `*out`
/// unspecified — when the payload is corrupt, was written by another
/// format version, does not match `expected` (content address mismatch),
/// or fails re-validation; the caller treats every such status as a
/// cache miss.
[[nodiscard]] Status decode_loop_report(const std::string& payload,
                                        const PipelineOptions& options,
                                        const Fingerprint& expected,
                                        LoopReport* out);

/// Serializes every semantically relevant PipelineOptions field for the
/// wire protocol (cache_dir/cache_max_bytes stay host-local).
[[nodiscard]] std::string encode_pipeline_options(
    const PipelineOptions& options);

[[nodiscard]] Status decode_pipeline_options(const std::string& payload,
                                             PipelineOptions* out);

}  // namespace sbmp
