#pragma once

#include <cstdint>

#include "sbmp/serve/admission.h"
#include "sbmp/serve/server.h"
#include "sbmp/serve/transport.h"

namespace sbmp {

/// Per-connection budgets for serve_session. Zero disables a limit,
/// matching the CLI convention.
struct SessionLimits {
  std::int64_t io_timeout_ms = 0;    ///< budget for moving one frame
  std::int64_t idle_timeout_ms = 0;  ///< budget between frames (reaper)
  std::int64_t max_requests = 0;     ///< compile requests per connection
};

/// Why a session ended — the daemon logs it, tests assert on it.
enum class SessionEnd {
  kPeerClosed,    ///< clean EOF between frames
  kIdleTimeout,   ///< no frame arrived within idle_timeout_ms
  kIoError,       ///< transport failure / torn frame / mid-frame stall
  kProtocolError, ///< malformed frame (bad magic, unknown type, ...)
  kFrameTooLarge, ///< peer declared an oversized frame (typed refusal sent)
  kRequestLimit,  ///< max_requests served; peer must reconnect
};

/// One serving session: frames in, frames out, until the peer hangs up,
/// misbehaves, or exhausts a limit. This is the daemon's whole
/// per-connection logic as a library function, so sbmpd, tests and the
/// chaos harness exercise the identical code path.
///
/// Robustness contract:
///  * every compile request is answered with a typed compile-response
///    Status — shed (kOverloaded via `admission`), expired deadline
///    (kTimeout), refused pipeline, malformed payload — the session
///    only ends without a response when the transport itself fails;
///  * an oversized frame draws a kFrameTooLarge response, then the
///    session ends (a length-prefixed stream cannot resync past an
///    untrusted length);
///  * the request's deadline_ms field bounds the server-side work: a
///    request that arrives already expired is answered kTimeout without
///    compiling;
///  * no call blocks past the limits — a stalled peer costs
///    io_timeout_ms, a silent one idle_timeout_ms, never a thread.
///
/// `admission` may be nullptr (no admission control, e.g. trusted
/// in-process callers).
SessionEnd serve_session(ScheduleServer& server, AdmissionController* admission,
                         Transport& transport, const SessionLimits& limits);

/// Answers one compile request payload; never throws. Any failure —
/// malformed request, unparsable loop, pipeline refusal, expired
/// deadline, shed — travels back as the response payload's Status.
/// Exposed for the daemon's metrics hook and for direct tests.
[[nodiscard]] std::string handle_compile_request(
    ScheduleServer& server, AdmissionController* admission,
    const std::string& payload);

}  // namespace sbmp
