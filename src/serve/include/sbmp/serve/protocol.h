#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sbmp/support/status.h"

namespace sbmp {

/// Length-prefixed framing for the sbmpd Unix-domain-socket protocol.
///
/// Every message is one frame:
///
///   offset  size  field
///   0       4     magic "SBMP" (0x53 0x42 0x4d 0x50 on the wire)
///   4       4     frame type (little-endian u32, FrameType below)
///   8       8     payload length (little-endian u64)
///   16      n     payload bytes
///
/// Payloads are RecordWriter records (sbmp/support/serialize.h), so the
/// wire format shares the cache codec: a compile request carries the
/// encoded PipelineOptions plus the canonical loop source, a compile
/// response carries a Status plus the encoded LoopReport — the same
/// artifact the disk cache stores, which is what makes `--remote`
/// byte-identical to local runs (the client decodes through the same
/// re-validating codec). See docs/serving.md for the full contract.

enum class FrameType : std::uint32_t {
  kCompileRequest = 1,
  kCompileResponse = 2,
  kPing = 3,
  kPong = 4,
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Frames larger than this are refused as malformed — a daemon must not
/// be made to allocate unbounded memory by one bad client.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/// Writes one frame to `fd`, handling partial writes and EINTR.
[[nodiscard]] Status write_frame(int fd, FrameType type,
                                 std::string_view payload);

/// Reads one frame from `fd`. A clean EOF before any byte returns
/// kInput with stage "eof" (the peer hung up between frames, which the
/// daemon treats as end-of-session, not an error); anything torn
/// mid-frame is a protocol error.
[[nodiscard]] Status read_frame(int fd, Frame* out);

/// Creates, binds and listens on a Unix-domain socket at `path`
/// (unlinking any stale socket file first). Returns the listening fd
/// through `out_fd`.
[[nodiscard]] Status listen_unix(const std::string& path, int* out_fd);

/// Connects to the daemon's socket; returns the connected fd.
[[nodiscard]] Status connect_unix(const std::string& path, int* out_fd);

/// Builds a compile-request payload (options record + loop source) and
/// parses it back. The loop travels as canonical LoopLang source — the
/// same rendering the cache fingerprints — so client and server agree
/// on the loop identity byte for byte.
[[nodiscard]] std::string encode_compile_request(
    const std::string& options_payload, std::string_view loop_source);
[[nodiscard]] Status decode_compile_request(const std::string& payload,
                                            std::string* options_payload,
                                            std::string* loop_source);

/// Builds a compile-response payload (status + encoded report; the
/// report payload is empty when the status is non-ok) and parses it
/// back.
[[nodiscard]] std::string encode_compile_response(
    const Status& status, std::string_view report_payload);
[[nodiscard]] Status decode_compile_response(const std::string& payload,
                                             Status* status,
                                             std::string* report_payload);

}  // namespace sbmp
