#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sbmp/obs/metrics.h"
#include "sbmp/serve/transport.h"
#include "sbmp/support/deadline.h"
#include "sbmp/support/status.h"

namespace sbmp {

/// Length-prefixed framing for the sbmpd Unix-domain-socket protocol.
///
/// Every message is one frame:
///
///   offset  size  field
///   0       4     magic "SBM" + protocol revision (kProtocolRevision)
///   4       4     frame type (little-endian u32, FrameType below)
///   8       8     payload length (little-endian u64)
///   16      n     payload bytes
///
/// The magic's fourth byte IS the protocol revision: revision 'P' (the
/// original "SBMP") spoke only compile/ping; revision '2' added the STAT
/// introspection frames; revision '3' added the deadline_ms field to
/// compile requests so a client's remaining budget propagates to the
/// daemon; revision '4' replaced the per-field machine columns in the
/// options payload with the canonical MachineDesc string (machine
/// grammar in docs/machines.md), so a pre-MachineDesc peer and a
/// current one refuse each other at the frame layer instead of
/// mis-decoding options. A reader that sees "SBM" with a different fourth byte reports
/// a clean version-mismatch Status instead of the generic bad-magic
/// error, so mixed-version client/daemon pairs fail with an actionable
/// message rather than a protocol mystery.
///
/// Payloads are RecordWriter records (sbmp/support/serialize.h), so the
/// wire format shares the cache codec: a compile request carries the
/// encoded PipelineOptions plus the canonical loop source, a compile
/// response carries a Status plus the encoded LoopReport — the same
/// artifact the disk cache stores, which is what makes `--remote`
/// byte-identical to local runs (the client decodes through the same
/// re-validating codec). See docs/serving.md for the full contract.

/// Fourth magic byte. Bump whenever a frame type or payload schema
/// changes incompatibly.
inline constexpr char kProtocolRevision = '4';

enum class FrameType : std::uint32_t {
  kCompileRequest = 1,
  kCompileResponse = 2,
  kPing = 3,
  kPong = 4,
  kStatRequest = 5,   ///< empty payload
  kStatResponse = 6,  ///< encode_stat_snapshot payload
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Frames larger than this are refused as malformed — a daemon must not
/// be made to allocate unbounded memory by one bad client. The refusal
/// is typed: the reader returns StatusCode::kFrameTooLarge, and the
/// daemon answers with a kFrameTooLarge compile-response Status before
/// closing (a length-prefixed stream cannot be resynchronised past an
/// untrusted length).
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/// Writes one frame, handling partial writes and EINTR. The deadline
/// covers the whole frame: a peer that stops draining its socket yields
/// kTimeout, not a wedged writer.
[[nodiscard]] Status write_frame(Transport& transport, FrameType type,
                                 std::string_view payload,
                                 const Deadline& deadline);

/// Reads one frame within the deadline. Failure classes:
///  * clean EOF before any byte — kUnavailable with stage "eof" (the
///    peer hung up between frames; the daemon treats this as
///    end-of-session, not an error);
///  * EOF mid-frame (truncated) or a transport error — kUnavailable,
///    the retryable class: no partial result was accepted;
///  * deadline expiry — kTimeout;
///  * declared payload beyond kMaxFramePayload — kFrameTooLarge;
///  * bad magic / unknown revision — kInput (malformed, never retried).
[[nodiscard]] Status read_frame(Transport& transport, Frame* out,
                                const Deadline& deadline);

/// The daemon's between-frames variant: the peer may sit silent under
/// `idle_deadline` (infinite = keep idle connections) before the first
/// header byte; once that byte lands the peer is mid-frame and the
/// transfer runs under a fresh `io_timeout_ms` budget (0 = unlimited).
/// A timeout while waiting for the first byte is the idle reaper firing
/// and carries stage "idle"; a mid-frame timeout is an I/O stall and
/// carries the usual stage "deadline" — callers classify the two
/// session endings apart.
[[nodiscard]] Status read_frame(Transport& transport, Frame* out,
                                const Deadline& idle_deadline,
                                std::int64_t io_timeout_ms);

/// Untimed fd conveniences (wrap the fd in FdTransport with an infinite
/// deadline). Test plumbing and trusted in-process pairs only; the
/// serving path always passes a Deadline.
[[nodiscard]] Status write_frame(int fd, FrameType type,
                                 std::string_view payload);
[[nodiscard]] Status read_frame(int fd, Frame* out);

/// Creates, binds and listens on a Unix-domain socket at `path`
/// (unlinking any stale socket file first). Returns the listening fd
/// through `out_fd`.
[[nodiscard]] Status listen_unix(const std::string& path, int* out_fd);

/// Connects to the daemon's socket; returns the connected fd. Failure
/// is kUnavailable — the daemon not running is a transient, retryable
/// condition, not bad input.
[[nodiscard]] Status connect_unix(const std::string& path, int* out_fd);

/// Builds a compile-request payload (options record + loop source +
/// deadline) and parses it back. The loop travels as canonical LoopLang
/// source — the same rendering the cache fingerprints — so client and
/// server agree on the loop identity byte for byte. `deadline_ms` is the
/// client's remaining budget for this request (0 = none): the daemon
/// starts its own Deadline from it on receipt, so a request that has
/// already missed its budget is answered kTimeout instead of compiled
/// into a response nobody is waiting for.
[[nodiscard]] std::string encode_compile_request(
    const std::string& options_payload, std::string_view loop_source,
    std::int64_t deadline_ms = 0);
[[nodiscard]] Status decode_compile_request(const std::string& payload,
                                            std::string* options_payload,
                                            std::string* loop_source,
                                            std::int64_t* deadline_ms = nullptr);

/// Builds a compile-response payload (status + encoded report; the
/// report payload is empty when the status is non-ok) and parses it
/// back.
[[nodiscard]] std::string encode_compile_response(
    const Status& status, std::string_view report_payload);
[[nodiscard]] Status decode_compile_response(const std::string& payload,
                                             Status* status,
                                             std::string* report_payload);

// ---------------------------------------------------------------------
// Daemon introspection (the STAT frames).

/// Aggregate serving statistics. Lives here — not in server.h — because
/// it is wire format: the daemon encodes it into a kStatResponse and the
/// client decodes the same typed struct, so both sides share one
/// definition by construction.
struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t compiles = 0;           ///< actual run_pipeline executions
  std::int64_t singleflight_joins = 0; ///< requests that rode another's run
  std::int64_t memory_hits = 0;
  std::int64_t disk_hits = 0;
  std::int64_t corrupt_entries = 0;
};

/// Version of the StatSnapshot payload schema, carried inside the
/// payload itself (the frame revision covers framing; this covers the
/// snapshot's field set). Bump when fields change meaning or layout.
inline constexpr std::int64_t kStatFormatVersion = 1;

/// Everything a kStatResponse carries: the classic server tallies plus
/// the full metrics snapshot (every counter, gauge and latency histogram
/// the process registered, including per-phase compile latencies).
struct StatSnapshot {
  std::int64_t version = kStatFormatVersion;
  ServerStats server;
  MetricsSnapshot metrics;
};

/// Encodes/decodes a StatSnapshot payload. decode rejects a payload
/// whose embedded version differs from kStatFormatVersion with a clean
/// kInput Status (stage "protocol") naming both versions.
[[nodiscard]] std::string encode_stat_snapshot(const StatSnapshot& snapshot);
[[nodiscard]] Status decode_stat_snapshot(const std::string& payload,
                                          StatSnapshot* out);

}  // namespace sbmp
