#pragma once

#include <cstddef>
#include <cstdint>

#include "sbmp/support/deadline.h"
#include "sbmp/support/rng.h"
#include "sbmp/support/status.h"

namespace sbmp {

/// Byte-stream seam under the frame protocol. Production traffic flows
/// through FdTransport (poll-based timed socket I/O); the chaos harness
/// interposes FaultyTransport to inject the whole adversarial envelope
/// — stalls, truncations, disconnects, corruption, short reads/writes —
/// without touching kernel state, so `bench_serve --chaos` can assert
/// the never-hang/never-wrong-bytes invariant deterministically.
///
/// Contract shared by every implementation:
///  * read_some returns between 1 and `cap` bytes through `*got`;
///    `*got == 0` with an ok Status is clean EOF (the peer hung up).
///  * write_some accepts between 1 and `size` bytes through `*put`
///    (short writes are normal; callers loop).
///  * A deadline that expires mid-call yields StatusCode::kTimeout.
///  * Transport-level failures (reset, refused, EPIPE) yield
///    StatusCode::kUnavailable — the retryable class — never process
///    death: implementations suppress SIGPIPE (MSG_NOSIGNAL) and retry
///    EINTR internally.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual Status read_some(char* buf, std::size_t cap,
                                         std::size_t* got,
                                         const Deadline& deadline) = 0;
  [[nodiscard]] virtual Status write_some(const char* buf, std::size_t size,
                                          std::size_t* put,
                                          const Deadline& deadline) = 0;
};

/// The production transport: a connected socket fd (not owned). Reads
/// and writes poll() first so every byte moved is covered by the
/// caller's Deadline; EINTR storms are absorbed by retrying both the
/// poll and the transfer syscall.
class FdTransport final : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}

  [[nodiscard]] Status read_some(char* buf, std::size_t cap, std::size_t* got,
                                 const Deadline& deadline) override;
  [[nodiscard]] Status write_some(const char* buf, std::size_t size,
                                  std::size_t* put,
                                  const Deadline& deadline) override;

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Per-operation fault probabilities (percent, 0-100) for
/// FaultyTransport. Stalls model a slow or wedged peer; truncation a
/// peer that dies mid-frame (clean FIN); disconnects a reset connection;
/// corruption a misbehaving peer or broken middlebox; shorts exercise
/// every partial-read/partial-write loop.
struct NetFaults {
  int stall_pct = 0;       ///< sleep before the operation
  int stall_ms = 20;       ///< maximum stall length (uniform 1..stall_ms)
  int truncate_pct = 0;    ///< sticky: reads hit EOF from now on
  int disconnect_pct = 0;  ///< sticky: both directions fail kUnavailable
  int corrupt_pct = 0;     ///< flip one bit in a delivered read
  int short_pct = 0;       ///< cap this transfer at a few bytes

  /// The preset the chaos campaign runs: every fault class armed at
  /// rates that keep most requests completing (so wrong-bytes bugs have
  /// traffic to hide in) while every trial batch still sees faults.
  [[nodiscard]] static NetFaults chaos() {
    NetFaults f;
    f.stall_pct = 10;
    f.stall_ms = 5;
    f.truncate_pct = 4;
    f.disconnect_pct = 4;
    f.corrupt_pct = 4;
    f.short_pct = 25;
    return f;
  }
};

/// Seeded fault-injecting wrapper around another Transport. All
/// randomness comes from one SplitMix64, so a (seed, traffic) pair
/// replays bit-identically — a failing chaos trial is a reproducible
/// test case, not an anecdote. Truncation and disconnection are sticky,
/// like the real conditions they model: a dead socket stays dead.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, const NetFaults& faults,
                  std::uint64_t seed)
      : inner_(inner), faults_(faults), rng_(seed) {}

  [[nodiscard]] Status read_some(char* buf, std::size_t cap, std::size_t* got,
                                 const Deadline& deadline) override;
  [[nodiscard]] Status write_some(const char* buf, std::size_t size,
                                  std::size_t* put,
                                  const Deadline& deadline) override;

  struct Injected {
    std::int64_t stalls = 0;
    std::int64_t truncations = 0;
    std::int64_t disconnects = 0;
    std::int64_t corruptions = 0;
    std::int64_t shorts = 0;
    [[nodiscard]] std::int64_t total() const {
      return stalls + truncations + disconnects + corruptions + shorts;
    }
  };
  [[nodiscard]] const Injected& injected() const { return injected_; }

 private:
  void maybe_stall();

  Transport& inner_;
  NetFaults faults_;
  SplitMix64 rng_;
  Injected injected_;
  bool dead_ = false;       ///< disconnect fired
  bool truncated_ = false;  ///< truncation fired
};

}  // namespace sbmp
