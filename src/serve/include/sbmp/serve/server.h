#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/serve/disk_cache.h"

namespace sbmp {

/// The one seam between "wants a loop compiled" and "how it gets
/// compiled". sbmpc renders reports against this interface, so local
/// runs, cached runs and --remote runs through sbmpd produce
/// byte-identical output by construction — only the compile transport
/// differs.
class LoopCompiler {
 public:
  virtual ~LoopCompiler() = default;
  /// Same contract as run_pipeline(Loop, PipelineOptions): returns the
  /// full report, throws StatusError for loops the pipeline refuses.
  [[nodiscard]] virtual LoopReport compile(const Loop& loop,
                                           const PipelineOptions& options) = 0;
};

/// Uncached pass-through to run_pipeline.
class DirectCompiler final : public LoopCompiler {
 public:
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options) override;
};

/// Two-level caching compiler: in-memory ResultCache in front of the
/// persistent DiskCache (either may be null). Lookup order is memory,
/// disk, compile; a compile back-fills both levels, a disk hit
/// back-fills memory. Disk entries are decoded through the codec's
/// integrity and re-validation gates, so a corrupt or stale entry is
/// invalidated and recompiled — the warm path can only ever return the
/// bytes the cold path would have produced.
class CachingCompiler final : public LoopCompiler {
 public:
  CachingCompiler(ResultCache* memory, DiskCache* disk)
      : memory_(memory), disk_(disk) {}

  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options) override;

  /// Disk entries rejected by the codec since construction.
  [[nodiscard]] std::int64_t corrupt_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return corrupt_entries_;
  }
  /// Actual run_pipeline executions (misses at both cache levels).
  [[nodiscard]] std::int64_t compiles() const {
    std::lock_guard<std::mutex> lock(mu_);
    return compiles_;
  }
  /// Most recent decode rejection; ok() when none occurred.
  [[nodiscard]] Status last_decode_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_decode_error_;
  }

 private:
  ResultCache* memory_;
  DiskCache* disk_;
  mutable std::mutex mu_;
  std::int64_t corrupt_entries_ = 0;
  std::int64_t compiles_ = 0;
  Status last_decode_error_;
};

struct ServerOptions {
  /// Worker threads for compile_batch; 0 = one per hardware thread.
  int jobs = 0;
  /// Directory of the persistent schedule cache; empty = memory only.
  std::string cache_dir;
  std::int64_t cache_max_bytes = 256ll << 20;
};

/// One loop-compilation request as the server consumes it.
struct CompileRequest {
  Loop loop;
  PipelineOptions options;
};

/// Aggregate statistics of one ScheduleServer.
struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t compiles = 0;           ///< actual run_pipeline executions
  std::int64_t singleflight_joins = 0; ///< requests that rode another's run
  std::int64_t memory_hits = 0;
  std::int64_t disk_hits = 0;
  std::int64_t corrupt_entries = 0;
};

/// Long-lived serving core: accepts single requests or batches,
/// deduplicates identical in-flight requests (single-flight: concurrent
/// callers of the same (loop, options) share one pipeline run instead of
/// burning a worker each), consults the two-level cache before
/// compiling, and fans batches out over the work-stealing ThreadPool.
/// The daemon wraps this over a socket; in-process callers (benches,
/// tests) use it directly.
class ScheduleServer {
 public:
  explicit ScheduleServer(ServerOptions options);

  /// Single-flight cached compile. Throws StatusError exactly like
  /// run_pipeline for loops the pipeline refuses.
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options);

  /// Compiles every request on the pool. Order-stable: result i belongs
  /// to request i, and a failed request yields a stub report carrying
  /// the error status (batches never abort on one bad loop).
  [[nodiscard]] std::vector<LoopReport> compile_batch(
      const std::vector<CompileRequest>& requests);

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] DiskCache* disk_cache() { return disk_.get(); }

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const LoopReport> report;  ///< set on success
    Status failure;                            ///< set when the run threw
  };

  ServerOptions options_;
  std::unique_ptr<DiskCache> disk_;
  ResultCache memory_;
  CachingCompiler compiler_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  ServerStats stats_;
};

}  // namespace sbmp
