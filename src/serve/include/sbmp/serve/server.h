#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/serve/disk_cache.h"
#include "sbmp/serve/protocol.h"

namespace sbmp {

/// The one seam between "wants a loop compiled" and "how it gets
/// compiled". sbmpc renders reports against this interface, so local
/// runs, cached runs and --remote runs through sbmpd produce
/// byte-identical output by construction — only the compile transport
/// differs. Requests and results are the core facade types
/// (CompileRequest/CompileResult in sbmp/core/pipeline.h): the serving
/// layer adds transports and caches, never its own request shape.
class LoopCompiler {
 public:
  virtual ~LoopCompiler() = default;
  /// Same contract as run_pipeline(Loop, PipelineOptions): returns the
  /// full report, throws StatusError for loops the pipeline refuses.
  [[nodiscard]] virtual LoopReport compile(const Loop& loop,
                                           const PipelineOptions& options) = 0;

  /// Facade form: never throws pipeline errors; a refused compile
  /// yields a stub report carrying the structured Status, exactly like
  /// the core compile() facade. Implemented on top of the virtual
  /// overload, so every transport inherits it.
  [[nodiscard]] CompileResult compile(const CompileRequest& request);
};

/// Uncached pass-through to run_pipeline.
class DirectCompiler final : public LoopCompiler {
 public:
  using LoopCompiler::compile;
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options) override;
};

/// Two-level caching compiler: in-memory ResultCache in front of the
/// persistent DiskCache (either may be null). Lookup order is memory,
/// disk, compile; a compile back-fills both levels, a disk hit
/// back-fills memory. Disk entries are decoded through the codec's
/// integrity and re-validation gates, so a corrupt or stale entry is
/// invalidated and recompiled — the warm path can only ever return the
/// bytes the cold path would have produced.
class CachingCompiler final : public LoopCompiler {
 public:
  /// `metrics` (optional) publishes the compile/corrupt counters on a
  /// shared registry; without one the compiler keeps private
  /// instruments. The accessors below read whichever is active.
  CachingCompiler(ResultCache* memory, DiskCache* disk,
                  MetricsRegistry* metrics = nullptr)
      : memory_(memory),
        disk_(disk),
        corrupt_entries_(
            metrics != nullptr
                ? metrics->counter("sbmp_codec_corrupt_entries_total")
                : &own_corrupt_entries_),
        compiles_(metrics != nullptr
                      ? metrics->counter("sbmp_compiles_total")
                      : &own_compiles_) {}

  using LoopCompiler::compile;
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options) override;

  /// Disk entries rejected by the codec since construction.
  [[nodiscard]] std::int64_t corrupt_entries() const {
    return corrupt_entries_->value();
  }
  /// Actual run_pipeline executions (misses at both cache levels).
  [[nodiscard]] std::int64_t compiles() const { return compiles_->value(); }
  /// Most recent decode rejection; ok() when none occurred.
  [[nodiscard]] Status last_decode_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_decode_error_;
  }

 private:
  ResultCache* memory_;
  DiskCache* disk_;
  mutable std::mutex mu_;
  Counter own_corrupt_entries_;
  Counter own_compiles_;
  Counter* corrupt_entries_;
  Counter* compiles_;
  Status last_decode_error_;
};

struct ServerOptions {
  /// Worker threads for compile_batch; 0 = one per hardware thread.
  int jobs = 0;
  /// Directory of the persistent schedule cache; empty = memory only.
  std::string cache_dir;
  std::int64_t cache_max_bytes = 256ll << 20;
  /// Shared metrics registry; nullptr makes the server own one (see
  /// ScheduleServer::metrics()). Either way every component — memory
  /// cache, disk cache, codec, single-flight — publishes on the same
  /// registry, which is what the STAT frame and the Prometheus dump
  /// snapshot.
  MetricsRegistry* metrics = nullptr;
};

/// Long-lived serving core: accepts single requests or batches,
/// deduplicates identical in-flight requests (single-flight: concurrent
/// callers of the same (loop, options) share one pipeline run instead of
/// burning a worker each), consults the two-level cache before
/// compiling, and fans batches out over the work-stealing ThreadPool.
/// The daemon wraps this over a socket; in-process callers (benches,
/// tests) use it directly.
class ScheduleServer {
 public:
  explicit ScheduleServer(ServerOptions options);

  /// Single-flight cached compile. Throws StatusError exactly like
  /// run_pipeline for loops the pipeline refuses.
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options);

  /// Facade form of the single compile: never throws pipeline errors.
  [[nodiscard]] CompileResult compile(const CompileRequest& request);

  /// Compiles every request on the pool. Order-stable: result i belongs
  /// to request i, and a failed request yields a stub report carrying
  /// the error status (batches never abort on one bad loop).
  [[nodiscard]] std::vector<LoopReport> compile_batch(
      const std::vector<CompileRequest>& requests);

  /// Compatibility shim assembling the classic tallies from the metrics
  /// registry (the pre-registry API; serve_test runs against it
  /// unmodified).
  [[nodiscard]] ServerStats stats() const;
  /// Typed introspection snapshot — the exact payload of a kStatResponse
  /// frame and the source of the Prometheus dump.
  [[nodiscard]] StatSnapshot stat_snapshot() const;
  /// The registry every component of this server publishes on (the
  /// injected one, or the server-owned registry when none was).
  [[nodiscard]] MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] DiskCache* disk_cache() { return disk_.get(); }

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const LoopReport> report;  ///< set on success
    Status failure;                            ///< set when the run threw
  };

  ServerOptions options_;
  MetricsRegistry own_metrics_;
  MetricsRegistry* metrics_;  ///< injected registry or &own_metrics_
  std::unique_ptr<DiskCache> disk_;
  ResultCache memory_;
  CachingCompiler compiler_;
  Counter* requests_;
  Counter* singleflight_joins_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
};

}  // namespace sbmp
