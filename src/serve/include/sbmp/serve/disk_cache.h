#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "sbmp/obs/metrics.h"
#include "sbmp/support/hash.h"
#include "sbmp/support/status.h"

namespace sbmp {

/// Persistent content-addressed artifact store.
///
/// Entries are opaque byte payloads named by their key fingerprint
/// (`<32 hex>.sbmpsched`); the cache knows nothing about the payload
/// format — the codec owns encoding and the integrity/re-validation
/// gates, the cache owns durability and bounded size:
///
///   * crash safety: every store is write-temporary + fsync + atomic
///     rename, so a reader observes whole entries or nothing;
///   * bounded size: when the directory exceeds `max_bytes`, entries are
///     evicted oldest-modification-first (ties broken by name, so
///     eviction order is deterministic); a hit touches the entry's
///     mtime, making the policy LRU;
///   * failure isolation: every filesystem problem is folded into a
///     miss (load) or a dropped store, counted, and kept as
///     `last_error()` for diagnostics — a broken disk degrades the
///     cache, never the pipeline.
///
/// All methods are thread-safe.
class DiskCache {
 public:
  static constexpr const char* kEntrySuffix = ".sbmpsched";

  /// Point-in-time view assembled from the Counter instruments (the
  /// pre-registry API, kept as a compatibility shim).
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t stores = 0;
    std::int64_t evictions = 0;
    std::int64_t io_errors = 0;
  };

  /// Creates the directory eagerly; a failure is remembered (see
  /// `init_status`) and turns every operation into a counted no-op.
  /// `metrics` (optional) publishes the tallies as
  /// `sbmp_disk_cache_*_total` counters on a shared registry; without
  /// one the cache keeps private instruments.
  DiskCache(std::string dir, std::int64_t max_bytes,
            MetricsRegistry* metrics = nullptr);

  [[nodiscard]] const Status& init_status() const { return init_status_; }

  /// Returns the entry payload, or nullopt on miss or any io error.
  [[nodiscard]] std::optional<std::string> load(const Fingerprint& key);

  /// Stores `payload` under `key` and enforces the size cap.
  void store(const Fingerprint& key, std::string_view payload);

  /// Deletes the entry (the codec found it corrupt or stale).
  void invalidate(const Fingerprint& key);

  [[nodiscard]] Stats stats() const;
  /// Most recent io-level failure; ok() when none occurred.
  [[nodiscard]] Status last_error() const;
  [[nodiscard]] const std::string& directory() const { return dir_; }

 private:
  void record_error(Status status);
  void evict_to_cap();
  [[nodiscard]] std::string entry_path(const Fingerprint& key) const;

  const std::string dir_;
  const std::int64_t max_bytes_;
  Status init_status_;
  mutable std::mutex mu_;
  // Tally instruments: registry-owned when one was injected, otherwise
  // the private set below. Set once in the constructor.
  Counter own_hits_, own_misses_, own_stores_, own_evictions_,
      own_io_errors_;
  Counter* hits_;
  Counter* misses_;
  Counter* stores_;
  Counter* evictions_;
  Counter* io_errors_;
  Status last_error_;
};

}  // namespace sbmp
