#pragma once

#include <string>

#include "sbmp/serve/server.h"

namespace sbmp {

/// LoopCompiler that routes every compile through a running sbmpd
/// daemon (`sbmpc --remote <socket>`).
///
/// The client does not blindly trust the daemon: the response payload is
/// decoded through the same codec as a disk-cache entry, which
/// recomputes the pipeline front half locally and re-verifies /
/// re-validates the returned schedule against it. A daemon that returns
/// a stale, corrupt or mismatched artifact produces a structured error,
/// never a silently wrong report — and a healthy daemon produces a
/// report byte-identical to a local run by the same construction.
class RemoteCompiler final : public LoopCompiler {
 public:
  /// Connects eagerly; throws StatusError (kInput) when no daemon
  /// listens at `socket_path`.
  explicit RemoteCompiler(std::string socket_path);
  ~RemoteCompiler() override;

  RemoteCompiler(const RemoteCompiler&) = delete;
  RemoteCompiler& operator=(const RemoteCompiler&) = delete;

  using LoopCompiler::compile;
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options) override;

  /// Round-trips a ping frame; throws StatusError when the daemon does
  /// not answer correctly.
  void ping();

  /// Round-trips a STAT frame and returns the daemon's typed snapshot
  /// (server tallies + full metrics). Throws StatusError on transport
  /// failure or a stat-format version mismatch.
  [[nodiscard]] StatSnapshot stat();

 private:
  std::string socket_path_;
  int fd_ = -1;
};

}  // namespace sbmp
