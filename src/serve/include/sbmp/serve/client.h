#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "sbmp/serve/server.h"
#include "sbmp/support/deadline.h"
#include "sbmp/support/rng.h"

namespace sbmp {

/// True for the failure classes a client may retry: kTimeout,
/// kUnavailable and kOverloaded. These are transient AND idempotent-safe
/// — the daemon's compile is a pure function of (loop, options) and no
/// partial result was accepted. Everything else is NOT retried: input /
/// usage / validation failures would fail identically again, and a
/// response that decoded but failed local re-validation (kInternal) is a
/// daemon-integrity problem that a retry would merely repeat.
[[nodiscard]] bool retryable_failure(const Status& status);

/// Bounded retry with jittered exponential backoff. Attempt n (1-based)
/// sleeps uniform(0, min(initial_backoff_ms << (n-1), max_backoff_ms))
/// before retrying — full jitter, the discipline that avoids retry
/// convoys when many clients see the same daemon hiccup.
struct RetryPolicy {
  int max_attempts = 3;               ///< total tries, first included
  std::int64_t initial_backoff_ms = 10;
  std::int64_t max_backoff_ms = 250;

  [[nodiscard]] static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// The backoff delay before retry number `attempt` (1 = first retry).
/// Deterministic in `rng`; exposed for tests.
[[nodiscard]] std::int64_t backoff_delay_ms(const RetryPolicy& policy,
                                            int attempt, SplitMix64& rng);

struct RemoteOptions {
  std::string socket_path;
  std::int64_t io_timeout_ms = 0;  ///< per-frame transfer budget (0 = none)
  std::int64_t deadline_ms = 0;    ///< per-request budget covering every
                                   ///< attempt, backoff included; also
                                   ///< propagated to the daemon (0 = none)
  RetryPolicy retry;
  std::uint64_t jitter_seed = 0;   ///< 0 = seed from this
};

/// LoopCompiler that routes every compile through a running sbmpd
/// daemon (`sbmpc --remote <socket>`).
///
/// The client does not blindly trust the daemon: the response payload is
/// decoded through the same codec as a disk-cache entry, which
/// recomputes the pipeline front half locally and re-verifies /
/// re-validates the returned schedule against it. A daemon that returns
/// a stale, corrupt or mismatched artifact produces a structured error,
/// never a silently wrong report — and a healthy daemon produces a
/// report byte-identical to a local run by the same construction.
///
/// Resilience: connection is lazy (first use), every frame moves under
/// the io/deadline budgets, and compile() retries retryable_failure
/// outcomes per RetryPolicy, reconnecting between attempts. A
/// kOverloaded response is honored as backpressure — it backs off like
/// any retry, it never tight-loops.
class RemoteCompiler final : public LoopCompiler {
 public:
  explicit RemoteCompiler(RemoteOptions options);
  /// Convenience: default budgets and retries against `socket_path`.
  explicit RemoteCompiler(std::string socket_path);
  ~RemoteCompiler() override;

  RemoteCompiler(const RemoteCompiler&) = delete;
  RemoteCompiler& operator=(const RemoteCompiler&) = delete;

  using LoopCompiler::compile;
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options) override;

  /// Round-trips a ping frame; throws StatusError when the daemon does
  /// not answer correctly. Single attempt (health probes should see
  /// failures, not paper over them).
  void ping();

  /// Round-trips a STAT frame and returns the daemon's typed snapshot
  /// (server tallies + full metrics). Throws StatusError on transport
  /// failure or a stat-format version mismatch.
  [[nodiscard]] StatSnapshot stat();

  struct Tallies {
    std::int64_t retries = 0;     ///< attempts beyond the first
    std::int64_t reconnects = 0;  ///< sockets re-dialed after a failure
  };
  [[nodiscard]] Tallies tallies() const;

 private:
  /// Dials the socket if not connected. Returns kUnavailable on failure.
  [[nodiscard]] Status ensure_connected();
  void disconnect();
  /// One request/response exchange on the current connection.
  [[nodiscard]] Status roundtrip(FrameType request_type,
                                 const std::string& payload,
                                 FrameType expected_type, Frame* out,
                                 const Deadline& deadline);

  RemoteOptions options_;
  mutable std::mutex mu_;  ///< one frame conversation at a time; concurrent
                           ///< render workers sharing this compiler
                           ///< serialize their round-trips here
  int fd_ = -1;
  SplitMix64 jitter_;
  Tallies tallies_;
};

/// Graceful degradation (`sbmpc --remote S --fallback-local`): compile
/// through `primary`, and when it fails with a retryable (transient)
/// class — its own retry budget already exhausted — compile through
/// `fallback` instead. Non-transient failures pass through: bad input
/// fails identically everywhere, and falling back would just pay for the
/// same diagnosis twice.
///
/// A circuit breaker stops paying the primary's timeout tax under total
/// outage: after `kBreakerThreshold` consecutive transient failures all
/// traffic goes straight to the fallback (the breaker never half-opens
/// within one process run — sbmpc is a batch tool, not a server).
class FallbackCompiler final : public LoopCompiler {
 public:
  FallbackCompiler(LoopCompiler& primary, LoopCompiler& fallback);

  using LoopCompiler::compile;
  [[nodiscard]] LoopReport compile(const Loop& loop,
                                   const PipelineOptions& options) override;

  static constexpr int kBreakerThreshold = 3;

  /// Compiles answered by the fallback (degradations).
  [[nodiscard]] std::int64_t fallbacks() const;
  [[nodiscard]] bool breaker_open() const;

 private:
  LoopCompiler& primary_;
  LoopCompiler& fallback_;
  mutable std::mutex mu_;
  std::int64_t fallbacks_ = 0;
  int consecutive_failures_ = 0;
};

}  // namespace sbmp
