#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sbmp/support/deadline.h"
#include "sbmp/support/status.h"

namespace sbmp {

/// Admission limits for the daemon's request path. Zero means
/// unlimited, matching the CLI convention everywhere else in the tree.
struct AdmissionOptions {
  std::int64_t max_inflight = 0;    ///< concurrent compiles (0 = unlimited)
  std::int64_t max_queue = 0;       ///< waiters beyond inflight (0 = none
                                    ///< queue; only meaningful with
                                    ///< max_inflight set)
  std::int64_t queue_timeout_ms = 250;  ///< longest a waiter may queue
};

/// Bounded-concurrency gate with load-shedding. `admit()` either grants
/// a slot, queues within bounds, or returns kOverloaded immediately —
/// it never blocks past min(queue_timeout, caller deadline), so a
/// saturated daemon degrades into fast typed refusals instead of a
/// convoy of stuck clients.
///
/// The queue is LIFO: when a slot frees, the NEWEST waiter runs first.
/// Under sustained overload FIFO serves every request after it has aged
/// toward its deadline (everything times out: goodput → 0); LIFO serves
/// fresh requests while they still have budget and sheds the stale tail
/// — the standard adaptive-overload discipline.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Grants a slot, waiting up to min(options.queue_timeout_ms,
  /// `deadline`) in the bounded queue. Returns ok on admission,
  /// kOverloaded when shed (queue full or wait exhausted), kTimeout
  /// when the caller's own deadline expired while queued. Every ok MUST
  /// be paired with exactly one release().
  [[nodiscard]] Status admit(const Deadline& deadline);

  /// Releases a slot; hands it directly to the newest waiter if any.
  void release();

  struct Counters {
    std::int64_t admitted = 0;
    std::int64_t queued = 0;         ///< admissions that had to wait
    std::int64_t shed_queue_full = 0;
    std::int64_t shed_timeout = 0;   ///< queue_timeout or caller deadline
    std::int64_t inflight = 0;       ///< current, not cumulative
    std::int64_t queue_depth = 0;    ///< current, not cumulative
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Waiter {
    std::condition_variable cv;
    bool granted = false;
  };

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::vector<Waiter*> queue_;  ///< back = newest = next granted
  Counters counters_;
};

}  // namespace sbmp
