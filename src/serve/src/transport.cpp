#include "sbmp/serve/transport.h"

#include <limits.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace sbmp {

namespace {

Status timeout_error(const char* what) {
  return Status::error(StatusCode::kTimeout, "deadline",
                       std::string(what) + " timed out");
}

Status transport_error(const char* what) {
  return Status::error(StatusCode::kUnavailable, "transport",
                       std::string(what) + ": " + std::strerror(errno));
}

/// Waits for `events` on `fd` within the deadline. EINTR recomputes the
/// remaining budget and retries, so a signal storm costs time, never
/// correctness.
Status poll_ready(int fd, short events, const Deadline& deadline,
                  const char* what) {
  for (;;) {
    if (deadline.expired()) return timeout_error(what);
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int n = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      return transport_error(what);
    }
    if (n == 0) return timeout_error(what);
    // POLLERR/POLLHUP fall through to the transfer syscall, which
    // reports the precise condition (EOF vs reset).
    return Status::okay();
  }
}

}  // namespace

Status FdTransport::read_some(char* buf, std::size_t cap, std::size_t* got,
                              const Deadline& deadline) {
  *got = 0;
  if (cap == 0) return Status::okay();
  for (;;) {
    if (Status s = poll_ready(fd_, POLLIN, deadline, "socket read"); !s.ok())
      return s;
    // MSG_DONTWAIT so a spurious poll wakeup re-enters the poll loop
    // (and keeps burning the deadline) instead of parking the thread in
    // a blocking recv the Deadline no longer covers.
    const ssize_t n = ::recv(fd_, buf, cap, MSG_DONTWAIT);
    if (n >= 0) {
      *got = static_cast<std::size_t>(n);  // 0 = clean EOF
      return Status::okay();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
    if (errno == ENOTSOCK) {
      // Plain-fd fallback (tests may frame over pipes). read(2) after
      // POLLIN returns whatever is buffered without blocking.
      const ssize_t m = ::read(fd_, buf, cap);
      if (m >= 0) {
        *got = static_cast<std::size_t>(m);
        return Status::okay();
      }
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    }
    return transport_error("socket read failed");
  }
}

Status FdTransport::write_some(const char* buf, std::size_t size,
                               std::size_t* put, const Deadline& deadline) {
  *put = 0;
  if (size == 0) return Status::okay();
  for (;;) {
    if (Status s = poll_ready(fd_, POLLOUT, deadline, "socket write"); !s.ok())
      return s;
    // MSG_NOSIGNAL: a vanished peer must surface as a Status
    // (kUnavailable via EPIPE), never as SIGPIPE process death.
    // MSG_DONTWAIT: POLLOUT only promises *some* buffer space; a
    // blocking send of a frame larger than the socket buffer would park
    // this thread until the peer drains it — past any deadline, wedging
    // a handler against a client that stopped reading. The non-blocking
    // send takes the partial write instead (callers loop), and EAGAIN
    // re-enters the poll loop still under the deadline.
    const ssize_t n = ::send(fd_, buf, size, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) {
      *put = static_cast<std::size_t>(n);
      return Status::okay();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
    if (errno == ENOTSOCK) {
      // Plain-fd fallback (tests may frame over pipes). A pipe write of
      // at most PIPE_BUF bytes after POLLOUT fits the free slot poll
      // just reported, so it cannot block; larger blocking pipe writes
      // could stall until the reader drains everything.
      const std::size_t chunk =
          size < static_cast<std::size_t>(PIPE_BUF)
              ? size
              : static_cast<std::size_t>(PIPE_BUF);
      const ssize_t m = ::write(fd_, buf, chunk);
      if (m >= 0) {
        *put = static_cast<std::size_t>(m);
        return Status::okay();
      }
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    }
    return transport_error("socket write failed");
  }
}

void FaultyTransport::maybe_stall() {
  if (faults_.stall_pct > 0 && rng_.chance(faults_.stall_pct)) {
    ++injected_.stalls;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        rng_.range(1, faults_.stall_ms > 0 ? faults_.stall_ms : 1)));
  }
}

Status FaultyTransport::read_some(char* buf, std::size_t cap,
                                  std::size_t* got,
                                  const Deadline& deadline) {
  *got = 0;
  maybe_stall();
  if (dead_)
    return Status::error(StatusCode::kUnavailable, "transport",
                         "injected disconnect");
  if (truncated_) return Status::okay();  // sticky EOF
  if (faults_.disconnect_pct > 0 && rng_.chance(faults_.disconnect_pct)) {
    ++injected_.disconnects;
    dead_ = true;
    return Status::error(StatusCode::kUnavailable, "transport",
                         "injected disconnect");
  }
  if (faults_.truncate_pct > 0 && rng_.chance(faults_.truncate_pct)) {
    ++injected_.truncations;
    truncated_ = true;
    return Status::okay();  // EOF now and forever
  }
  std::size_t effective = cap;
  if (cap > 1 && faults_.short_pct > 0 && rng_.chance(faults_.short_pct)) {
    ++injected_.shorts;
    effective = static_cast<std::size_t>(
        rng_.range(1, static_cast<std::int64_t>(cap > 8 ? 8 : cap)));
  }
  if (Status s = inner_.read_some(buf, effective, got, deadline); !s.ok())
    return s;
  if (*got > 0 && faults_.corrupt_pct > 0 && rng_.chance(faults_.corrupt_pct)) {
    ++injected_.corruptions;
    const std::size_t at = static_cast<std::size_t>(
        rng_.range(0, static_cast<std::int64_t>(*got) - 1));
    buf[at] = static_cast<char>(buf[at] ^ (1 << rng_.range(0, 7)));
  }
  return Status::okay();
}

Status FaultyTransport::write_some(const char* buf, std::size_t size,
                                   std::size_t* put,
                                   const Deadline& deadline) {
  *put = 0;
  maybe_stall();
  if (dead_ || truncated_)
    return Status::error(StatusCode::kUnavailable, "transport",
                         "injected disconnect");
  if (faults_.disconnect_pct > 0 && rng_.chance(faults_.disconnect_pct)) {
    ++injected_.disconnects;
    dead_ = true;
    return Status::error(StatusCode::kUnavailable, "transport",
                         "injected disconnect");
  }
  std::size_t effective = size;
  if (size > 1 && faults_.short_pct > 0 && rng_.chance(faults_.short_pct)) {
    ++injected_.shorts;
    effective = static_cast<std::size_t>(
        rng_.range(1, static_cast<std::int64_t>(size > 8 ? 8 : size)));
  }
  return inner_.write_some(buf, effective, put, deadline);
}

}  // namespace sbmp
