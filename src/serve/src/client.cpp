#include "sbmp/serve/client.h"

#include <unistd.h>

#include <mutex>
#include <utility>

#include "sbmp/serve/codec.h"
#include "sbmp/serve/protocol.h"

namespace sbmp {

namespace {

// One connection carries one frame conversation at a time; concurrent
// render workers sharing a RemoteCompiler serialize their round-trips
// here (the daemon's parallelism lives across connections and inside
// its own batch engine, not inside a single client pipe).
std::mutex g_roundtrip_mu;

[[noreturn]] void throw_status(Status status) {
  throw StatusError(std::move(status));
}

}  // namespace

RemoteCompiler::RemoteCompiler(std::string socket_path)
    : socket_path_(std::move(socket_path)) {
  if (Status s = connect_unix(socket_path_, &fd_); !s.ok()) throw_status(s);
}

RemoteCompiler::~RemoteCompiler() {
  if (fd_ >= 0) ::close(fd_);
}

void RemoteCompiler::ping() {
  std::lock_guard<std::mutex> lock(g_roundtrip_mu);
  if (Status s = write_frame(fd_, FrameType::kPing, ""); !s.ok())
    throw_status(s);
  Frame frame;
  if (Status s = read_frame(fd_, &frame); !s.ok()) throw_status(s);
  if (frame.type != FrameType::kPong)
    throw_status(Status::error(StatusCode::kInternal, "protocol",
                               "daemon answered ping with frame type " +
                                   std::to_string(static_cast<int>(frame.type))));
}

StatSnapshot RemoteCompiler::stat() {
  Frame frame;
  {
    std::lock_guard<std::mutex> lock(g_roundtrip_mu);
    if (Status s = write_frame(fd_, FrameType::kStatRequest, ""); !s.ok())
      throw_status(s);
    if (Status s = read_frame(fd_, &frame); !s.ok()) throw_status(s);
  }
  if (frame.type != FrameType::kStatResponse)
    throw_status(Status::error(StatusCode::kInternal, "protocol",
                               "daemon answered stat with frame type " +
                                   std::to_string(static_cast<int>(frame.type))));
  StatSnapshot snapshot;
  if (Status s = decode_stat_snapshot(frame.payload, &snapshot); !s.ok())
    throw_status(s);
  return snapshot;
}

LoopReport RemoteCompiler::compile(const Loop& loop,
                                   const PipelineOptions& options) {
  const std::string request = encode_compile_request(
      encode_pipeline_options(options), loop.to_string());
  Frame frame;
  {
    std::lock_guard<std::mutex> lock(g_roundtrip_mu);
    if (Status s = write_frame(fd_, FrameType::kCompileRequest, request);
        !s.ok())
      throw_status(s);
    if (Status s = read_frame(fd_, &frame); !s.ok()) throw_status(s);
  }
  if (frame.type != FrameType::kCompileResponse)
    throw_status(Status::error(StatusCode::kInternal, "protocol",
                               "daemon answered compile with frame type " +
                                   std::to_string(static_cast<int>(frame.type))));
  Status remote_status;
  std::string report_payload;
  if (Status s =
          decode_compile_response(frame.payload, &remote_status, &report_payload);
      !s.ok())
    throw_status(s);
  // The daemon reports loops the pipeline refuses through the response
  // status; surface them as the same StatusError a local run_pipeline
  // would have thrown.
  if (!remote_status.ok()) throw_status(remote_status);

  // Trust-but-verify: decode re-runs the pipeline front half and the
  // verification gates locally against the options we asked for.
  LoopReport report;
  const Fingerprint fp = schedule_fingerprint(loop, options);
  if (Status s = decode_loop_report(report_payload, options, fp, &report);
      !s.ok())
    throw_status(Status::error(
        StatusCode::kInternal, "remote",
        "daemon returned an artifact the local re-validation rejects: " +
            s.message));
  return report;
}

}  // namespace sbmp
