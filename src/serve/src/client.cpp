#include "sbmp/serve/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "sbmp/serve/codec.h"
#include "sbmp/serve/protocol.h"
#include "sbmp/serve/transport.h"

namespace sbmp {

namespace {

[[noreturn]] void throw_status(Status status) {
  throw StatusError(std::move(status));
}

std::uint64_t default_jitter_seed(const void* self) {
  // Distinct per client instance and per process run, so concurrent
  // clients never share a jitter sequence (the convoy the jitter
  // exists to break). Tests that need determinism set options.jitter_seed.
  return static_cast<std::uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count()) ^
         reinterpret_cast<std::uintptr_t>(self);
}

}  // namespace

bool retryable_failure(const Status& status) {
  switch (status.code) {
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
    case StatusCode::kOverloaded:
      return true;
    default:
      return false;
  }
}

std::int64_t backoff_delay_ms(const RetryPolicy& policy, int attempt,
                              SplitMix64& rng) {
  if (attempt < 1) attempt = 1;
  // Exponential ceiling with full jitter: uniform(0, min(initial <<
  // (attempt-1), max)). Shift guarded against overflow.
  std::int64_t ceiling = policy.initial_backoff_ms > 0
                             ? policy.initial_backoff_ms
                             : 1;
  for (int i = 1; i < attempt && ceiling < policy.max_backoff_ms; ++i)
    ceiling *= 2;
  ceiling = std::min(ceiling, std::max<std::int64_t>(policy.max_backoff_ms, 1));
  return rng.range(0, ceiling);
}

RemoteCompiler::RemoteCompiler(RemoteOptions options)
    : options_(std::move(options)),
      jitter_(options_.jitter_seed != 0 ? options_.jitter_seed
                                        : default_jitter_seed(this)) {}

RemoteCompiler::RemoteCompiler(std::string socket_path)
    : RemoteCompiler([&] {
        RemoteOptions o;
        o.socket_path = std::move(socket_path);
        return o;
      }()) {}

RemoteCompiler::~RemoteCompiler() {
  if (fd_ >= 0) ::close(fd_);
}

Status RemoteCompiler::ensure_connected() {
  if (fd_ >= 0) return Status::okay();
  return connect_unix(options_.socket_path, &fd_);
}

void RemoteCompiler::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status RemoteCompiler::roundtrip(FrameType request_type,
                                 const std::string& payload,
                                 FrameType expected_type, Frame* out,
                                 const Deadline& deadline) {
  if (Status s = ensure_connected(); !s.ok()) return s;
  FdTransport transport(fd_);
  if (Status s = write_frame(transport, request_type, payload, deadline);
      !s.ok())
    return s;
  if (Status s = read_frame(transport, out, deadline); !s.ok()) {
    // A clean EOF where a response was due is a truncated conversation
    // (daemon died / reaped us) — kUnavailable either way; normalize
    // the stage for the caller's diagnostics.
    if (s.stage == "eof")
      return Status::error(StatusCode::kUnavailable, "protocol",
                           "daemon hung up before responding");
    return s;
  }
  if (out->type != expected_type)
    return Status::error(
        StatusCode::kInternal, "protocol",
        "daemon answered frame type " +
            std::to_string(static_cast<int>(request_type)) + " with type " +
            std::to_string(static_cast<int>(out->type)));
  return Status::okay();
}

void RemoteCompiler::ping() {
  std::lock_guard<std::mutex> lock(mu_);
  const Deadline deadline = Deadline::after_ms_opt(options_.io_timeout_ms);
  Frame frame;
  if (Status s = roundtrip(FrameType::kPing, "", FrameType::kPong, &frame,
                           deadline);
      !s.ok()) {
    disconnect();
    throw_status(s);
  }
}

StatSnapshot RemoteCompiler::stat() {
  Frame frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Deadline deadline = Deadline::after_ms_opt(options_.io_timeout_ms);
    if (Status s = roundtrip(FrameType::kStatRequest, "",
                             FrameType::kStatResponse, &frame, deadline);
        !s.ok()) {
      disconnect();
      throw_status(s);
    }
  }
  StatSnapshot snapshot;
  if (Status s = decode_stat_snapshot(frame.payload, &snapshot); !s.ok())
    throw_status(s);
  return snapshot;
}

LoopReport RemoteCompiler::compile(const Loop& loop,
                                   const PipelineOptions& options) {
  // One deadline covers the whole request: every attempt, every backoff
  // sleep. Each attempt tells the daemon how much budget is left so
  // server-side work is bounded by the same clock.
  const Deadline request_deadline = Deadline::after_ms_opt(options_.deadline_ms);
  const std::string options_payload = encode_pipeline_options(options);
  const std::string loop_source = loop.to_string();

  Status failure;
  for (int attempt = 1;; ++attempt) {
    if (request_deadline.expired()) {
      // Out of budget before the attempt even starts (possible on the
      // very first one): fail fast rather than ship a doomed request.
      failure = Status::error(StatusCode::kTimeout, "client",
                              "request deadline expired before the request "
                              "could be sent");
      break;
    }
    // On the wire, deadline_ms=0 means "no limit" — so a nearly-expired
    // budget must clamp UP to 1ms, never down to 0, or the daemon would
    // read "take all the time you like" from a client that is almost
    // out of time.
    const std::int64_t budget_ms =
        request_deadline.is_infinite()
            ? 0
            : std::max<std::int64_t>(1, request_deadline.remaining_ms());
    const std::string request =
        encode_compile_request(options_payload, loop_source, budget_ms);
    const Deadline io_deadline =
        request_deadline.earlier(Deadline::after_ms_opt(options_.io_timeout_ms));

    Frame frame;
    Status s;
    {
      std::lock_guard<std::mutex> lock(mu_);
      s = roundtrip(FrameType::kCompileRequest, request,
                    FrameType::kCompileResponse, &frame, io_deadline);
      if (!s.ok()) disconnect();
    }
    std::string report_payload;
    if (s.ok()) {
      Status remote_status;
      s = decode_compile_response(frame.payload, &remote_status,
                                  &report_payload);
      // The daemon reports loops the pipeline refuses — and its own
      // sheds/timeouts — through the response status; transient classes
      // re-enter the retry loop, the rest surface as the StatusError a
      // local run_pipeline would have thrown.
      if (s.ok() && !remote_status.ok()) s = remote_status;
    }
    if (s.ok()) {
      // Trust-but-verify: decode re-runs the pipeline front half and
      // the verification gates locally against the options we asked
      // for. NEVER retried — a daemon handing back artifacts that fail
      // local re-validation will do it again.
      LoopReport report;
      const Fingerprint fp = schedule_fingerprint(loop, options);
      if (Status ds = decode_loop_report(report_payload, options, fp, &report);
          !ds.ok())
        throw_status(Status::error(
            StatusCode::kInternal, "remote",
            "daemon returned an artifact the local re-validation rejects: " +
                ds.message));
      return report;
    }

    if (!retryable_failure(s) || attempt >= options_.retry.max_attempts ||
        request_deadline.expired()) {
      failure = std::move(s);
      break;
    }
    std::int64_t delay = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++tallies_.retries;
      ++tallies_.reconnects;
      delay = backoff_delay_ms(options_.retry, attempt, jitter_);
    }
    if (!request_deadline.is_infinite())
      delay = std::min(delay, request_deadline.remaining_ms());
    if (delay > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  throw_status(std::move(failure));
}

RemoteCompiler::Tallies RemoteCompiler::tallies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tallies_;
}

FallbackCompiler::FallbackCompiler(LoopCompiler& primary,
                                   LoopCompiler& fallback)
    : primary_(primary), fallback_(fallback) {}

LoopReport FallbackCompiler::compile(const Loop& loop,
                                     const PipelineOptions& options) {
  bool degraded = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (consecutive_failures_ >= kBreakerThreshold) {
      // Breaker open: the primary has proven unreachable; stop paying
      // its timeout tax for the rest of this run.
      ++fallbacks_;
      degraded = true;
    }
  }
  if (!degraded) {
    try {
      LoopReport report = primary_.compile(loop, options);
      std::lock_guard<std::mutex> lock(mu_);
      consecutive_failures_ = 0;
      return report;
    } catch (const StatusError& e) {
      if (!retryable_failure(e.status())) throw;
      std::lock_guard<std::mutex> lock(mu_);
      ++consecutive_failures_;
      ++fallbacks_;
    }
  }
  return fallback_.compile(loop, options);
}

std::int64_t FallbackCompiler::fallbacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fallbacks_;
}

bool FallbackCompiler::breaker_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_ >= kBreakerThreshold;
}

}  // namespace sbmp
