#include "sbmp/serve/server.h"

#include <utility>

#include "sbmp/serve/codec.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp {

CompileResult LoopCompiler::compile(const CompileRequest& request) {
  CompileResult out;
  try {
    out.report = compile(request.loop, request.options);
  } catch (const StatusError& e) {
    out.report.name = request.loop.name;
    out.report.loop = request.loop;
    out.report.status = e.status();
  } catch (const SbmpError& e) {
    out.report.name = request.loop.name;
    out.report.loop = request.loop;
    out.report.status =
        Status::error(StatusCode::kInternal, "pipeline", e.what());
  }
  return out;
}

LoopReport DirectCompiler::compile(const Loop& loop,
                                   const PipelineOptions& options) {
  return run_pipeline(loop, options);
}

LoopReport CachingCompiler::compile(const Loop& loop,
                                    const PipelineOptions& options) {
  const std::string key =
      memory_ != nullptr ? ResultCache::key(loop, options) : std::string();
  if (memory_ != nullptr) {
    if (const auto hit = memory_->lookup(key)) return *hit;
  }
  Fingerprint fp;
  if (disk_ != nullptr) {
    fp = schedule_fingerprint(loop, options);
    if (const auto payload = disk_->load(fp)) {
      LoopReport report;
      if (Status s = decode_loop_report(*payload, options, fp, &report);
          s.ok()) {
        if (memory_ != nullptr) return *memory_->insert(key, std::move(report));
        return report;
      } else {
        // Stale, corrupt or tampered entry: drop it and recompile. The
        // rejection is a diagnostic, never a failure of the compile.
        disk_->invalidate(fp);
        corrupt_entries_->inc();
        std::lock_guard<std::mutex> lock(mu_);
        last_decode_error_ = std::move(s);
      }
    }
  }
  compiles_->inc();
  LoopReport report = run_pipeline(loop, options);
  if (disk_ != nullptr) disk_->store(fp, encode_loop_report(report, fp));
  if (memory_ != nullptr) return *memory_->insert(key, std::move(report));
  return report;
}

ScheduleServer::ScheduleServer(ServerOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics : &own_metrics_),
      disk_(options_.cache_dir.empty()
                ? nullptr
                : std::make_unique<DiskCache>(options_.cache_dir,
                                              options_.cache_max_bytes,
                                              metrics_)),
      memory_(ResultCache::kDefaultShards, metrics_),
      compiler_(&memory_, disk_.get(), metrics_),
      requests_(metrics_->counter("sbmp_server_requests_total")),
      singleflight_joins_(
          metrics_->counter("sbmp_server_singleflight_joins_total")) {}

LoopReport ScheduleServer::compile(const Loop& loop,
                                   const PipelineOptions& options) {
  const std::string key = ResultCache::key(loop, options);
  std::shared_ptr<Inflight> flight;
  bool leader = false;
  requests_->inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;
      singleflight_joins_->inc();
    } else {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(key, flight);
      leader = true;
    }
  }
  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (!flight->failure.ok()) throw StatusError(flight->failure);
    return *flight->report;
  }
  // Leader: run the (cached) compile, publish the outcome, and retire
  // the flight so later identical requests take the cache path.
  const auto publish = [&](std::shared_ptr<const LoopReport> report,
                           Status failure) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->report = std::move(report);
    flight->failure = std::move(failure);
    flight->done = true;
    flight->cv.notify_all();
  };
  try {
    auto report =
        std::make_shared<const LoopReport>(compiler_.compile(loop, options));
    publish(report, Status::okay());
    return *report;
  } catch (const StatusError& e) {
    publish(nullptr, e.status());
    throw;
  } catch (const SbmpError& e) {
    const Status failure =
        Status::error(StatusCode::kInternal, "pipeline", e.what());
    publish(nullptr, failure);
    throw StatusError(failure);
  }
}

std::vector<LoopReport> ScheduleServer::compile_batch(
    const std::vector<CompileRequest>& requests) {
  std::vector<LoopReport> reports(requests.size());
  parallel_for(options_.jobs, 0, static_cast<std::int64_t>(requests.size()),
               [&](std::int64_t i) {
                 const CompileRequest& request =
                     requests[static_cast<std::size_t>(i)];
                 LoopReport& slot = reports[static_cast<std::size_t>(i)];
                 try {
                   slot = compile(request.loop, request.options);
                 } catch (const StatusError& e) {
                   slot.name = request.loop.name;
                   slot.loop = request.loop;
                   slot.status = e.status();
                 }
               });
  return reports;
}

CompileResult ScheduleServer::compile(const CompileRequest& request) {
  CompileResult out;
  try {
    out.report = compile(request.loop, request.options);
  } catch (const StatusError& e) {
    out.report.name = request.loop.name;
    out.report.loop = request.loop;
    out.report.status = e.status();
  }
  return out;
}

ServerStats ScheduleServer::stats() const {
  ServerStats out;
  out.requests = requests_->value();
  out.singleflight_joins = singleflight_joins_->value();
  out.memory_hits = memory_.hits();
  out.compiles = compiler_.compiles();
  out.corrupt_entries = compiler_.corrupt_entries();
  if (disk_ != nullptr) out.disk_hits = disk_->stats().hits;
  return out;
}

StatSnapshot ScheduleServer::stat_snapshot() const {
  StatSnapshot out;
  out.server = stats();
  out.metrics = metrics_->snapshot();
  return out;
}

}  // namespace sbmp
