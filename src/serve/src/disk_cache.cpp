#include "sbmp/serve/disk_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sbmp/support/io.h"
#include "sbmp/support/strings.h"

namespace sbmp {

DiskCache::DiskCache(std::string dir, std::int64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  init_status_ = ensure_directory(dir_);
  if (!init_status_.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.io_errors;
    last_error_ = init_status_;
  }
}

std::string DiskCache::entry_path(const Fingerprint& key) const {
  return dir_ + "/" + key.to_hex() + kEntrySuffix;
}

void DiskCache::record_error(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.io_errors;
  last_error_ = std::move(status);
}

std::optional<std::string> DiskCache::load(const Fingerprint& key) {
  if (!init_status_.ok()) return std::nullopt;
  const std::string path = entry_path(key);
  std::string payload;
  if (!file_exists(path)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  if (Status s = read_file(path, &payload); !s.ok()) {
    record_error(std::move(s));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  // LRU touch: a hit makes the entry the newest candidate. A failed
  // touch only skews eviction order, so it is recorded but not fatal.
  if (Status s = touch_file(path); !s.ok()) record_error(std::move(s));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  return payload;
}

void DiskCache::store(const Fingerprint& key, std::string_view payload) {
  if (!init_status_.ok()) return;
  if (Status s = write_file_atomic(entry_path(key), payload); !s.ok()) {
    record_error(std::move(s));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
  }
  evict_to_cap();
}

void DiskCache::invalidate(const Fingerprint& key) {
  if (!init_status_.ok()) return;
  if (Status s = remove_file(entry_path(key)); !s.ok())
    record_error(std::move(s));
}

void DiskCache::evict_to_cap() {
  if (max_bytes_ <= 0) return;
  std::vector<DirEntry> entries;
  if (Status s = list_directory(dir_, &entries); !s.ok()) {
    record_error(std::move(s));
    return;
  }
  std::int64_t total = 0;
  std::vector<DirEntry> cached;
  for (auto& e : entries) {
    if (e.name.size() <= std::string_view(kEntrySuffix).size() ||
        e.name.substr(e.name.size() -
                      std::string_view(kEntrySuffix).size()) != kEntrySuffix)
      continue;  // foreign files (and in-flight temporaries) are not ours
    total += e.size;
    cached.push_back(std::move(e));
  }
  if (total <= max_bytes_) return;
  // Deterministic LRU: oldest modification first, names as tiebreak.
  std::sort(cached.begin(), cached.end(),
            [](const DirEntry& a, const DirEntry& b) {
              if (a.mtime_ns != b.mtime_ns) return a.mtime_ns < b.mtime_ns;
              return a.name < b.name;
            });
  for (const DirEntry& e : cached) {
    if (total <= max_bytes_) break;
    if (Status s = remove_file(dir_ + "/" + e.name); !s.ok()) {
      record_error(std::move(s));
      continue;
    }
    total -= e.size;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.evictions;
  }
}

DiskCache::Stats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status DiskCache::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace sbmp
