#include "sbmp/serve/disk_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sbmp/support/io.h"
#include "sbmp/support/strings.h"

namespace sbmp {

DiskCache::DiskCache(std::string dir, std::int64_t max_bytes,
                     MetricsRegistry* metrics)
    : dir_(std::move(dir)),
      max_bytes_(max_bytes),
      hits_(metrics != nullptr
                ? metrics->counter("sbmp_disk_cache_hits_total")
                : &own_hits_),
      misses_(metrics != nullptr
                  ? metrics->counter("sbmp_disk_cache_misses_total")
                  : &own_misses_),
      stores_(metrics != nullptr
                  ? metrics->counter("sbmp_disk_cache_stores_total")
                  : &own_stores_),
      evictions_(metrics != nullptr
                     ? metrics->counter("sbmp_disk_cache_evictions_total")
                     : &own_evictions_),
      io_errors_(metrics != nullptr
                     ? metrics->counter("sbmp_disk_cache_io_errors_total")
                     : &own_io_errors_) {
  init_status_ = ensure_directory(dir_);
  if (!init_status_.ok()) {
    io_errors_->inc();
    std::lock_guard<std::mutex> lock(mu_);
    last_error_ = init_status_;
  }
}

std::string DiskCache::entry_path(const Fingerprint& key) const {
  return dir_ + "/" + key.to_hex() + kEntrySuffix;
}

void DiskCache::record_error(Status status) {
  io_errors_->inc();
  std::lock_guard<std::mutex> lock(mu_);
  last_error_ = std::move(status);
}

std::optional<std::string> DiskCache::load(const Fingerprint& key) {
  if (!init_status_.ok()) return std::nullopt;
  const std::string path = entry_path(key);
  std::string payload;
  if (!file_exists(path)) {
    misses_->inc();
    return std::nullopt;
  }
  if (Status s = read_file(path, &payload); !s.ok()) {
    record_error(std::move(s));
    misses_->inc();
    return std::nullopt;
  }
  // LRU touch: a hit makes the entry the newest candidate. A failed
  // touch only skews eviction order, so it is recorded but not fatal.
  if (Status s = touch_file(path); !s.ok()) record_error(std::move(s));
  hits_->inc();
  return payload;
}

void DiskCache::store(const Fingerprint& key, std::string_view payload) {
  if (!init_status_.ok()) return;
  if (Status s = write_file_atomic(entry_path(key), payload); !s.ok()) {
    record_error(std::move(s));
    return;
  }
  stores_->inc();
  evict_to_cap();
}

void DiskCache::invalidate(const Fingerprint& key) {
  if (!init_status_.ok()) return;
  if (Status s = remove_file(entry_path(key)); !s.ok())
    record_error(std::move(s));
}

void DiskCache::evict_to_cap() {
  if (max_bytes_ <= 0) return;
  std::vector<DirEntry> entries;
  if (Status s = list_directory(dir_, &entries); !s.ok()) {
    record_error(std::move(s));
    return;
  }
  std::int64_t total = 0;
  std::vector<DirEntry> cached;
  for (auto& e : entries) {
    if (e.name.size() <= std::string_view(kEntrySuffix).size() ||
        e.name.substr(e.name.size() -
                      std::string_view(kEntrySuffix).size()) != kEntrySuffix)
      continue;  // foreign files (and in-flight temporaries) are not ours
    total += e.size;
    cached.push_back(std::move(e));
  }
  if (total <= max_bytes_) return;
  // Deterministic LRU: oldest modification first, names as tiebreak.
  std::sort(cached.begin(), cached.end(),
            [](const DirEntry& a, const DirEntry& b) {
              if (a.mtime_ns != b.mtime_ns) return a.mtime_ns < b.mtime_ns;
              return a.name < b.name;
            });
  for (const DirEntry& e : cached) {
    if (total <= max_bytes_) break;
    if (Status s = remove_file(dir_ + "/" + e.name); !s.ok()) {
      record_error(std::move(s));
      continue;
    }
    total -= e.size;
    evictions_->inc();
  }
}

DiskCache::Stats DiskCache::stats() const {
  Stats out;
  out.hits = hits_->value();
  out.misses = misses_->value();
  out.stores = stores_->value();
  out.evictions = evictions_->value();
  out.io_errors = io_errors_->value();
  return out;
}

Status DiskCache::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace sbmp
