#include "sbmp/serve/admission.h"

#include <algorithm>
#include <chrono>

namespace sbmp {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

Status AdmissionController::admit(const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_inflight <= 0 ||
      counters_.inflight < options_.max_inflight) {
    ++counters_.inflight;
    ++counters_.admitted;
    return Status::okay();
  }
  if (options_.max_queue <= 0 ||
      counters_.queue_depth >= options_.max_queue) {
    ++counters_.shed_queue_full;
    return Status::error(StatusCode::kOverloaded, "admission",
                         "daemon at capacity (inflight " +
                             std::to_string(counters_.inflight) + ", queue " +
                             std::to_string(counters_.queue_depth) + ")");
  }

  Waiter self;
  queue_.push_back(&self);
  ++counters_.queue_depth;
  ++counters_.queued;
  // queue_timeout_ms <= 0 means the wait is bounded only by the
  // caller's own deadline (after_ms_opt's 0-disables convention).
  const Deadline wait_deadline =
      deadline.earlier(Deadline::after_ms_opt(options_.queue_timeout_ms));
  while (!self.granted) {
    if (wait_deadline.is_infinite()) {
      self.cv.wait(lock);
      continue;
    }
    const auto budget = std::chrono::milliseconds(
        std::max<std::int64_t>(wait_deadline.remaining_ms(), 0));
    if (self.cv.wait_for(lock, budget) == std::cv_status::timeout &&
        !self.granted && wait_deadline.expired()) {
      // Not granted in time: pull ourselves out of the queue. release()
      // can race us to the grant — it signals under the same mutex, so
      // after reacquiring the lock `granted` is authoritative.
      queue_.erase(std::remove(queue_.begin(), queue_.end(), &self),
                   queue_.end());
      --counters_.queue_depth;
      const bool caller_expired = deadline.expired();
      if (caller_expired) {
        ++counters_.shed_timeout;
        return Status::error(StatusCode::kTimeout, "admission",
                             "request deadline expired while queued");
      }
      ++counters_.shed_timeout;
      return Status::error(
          StatusCode::kOverloaded, "admission",
          "queued " + std::to_string(options_.queue_timeout_ms) +
              " ms without a slot; shedding");
    }
  }
  // Granted: release() already transferred the slot (inflight stays
  // constant) and removed us from the queue.
  ++counters_.admitted;
  return Status::okay();
}

void AdmissionController::release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    // LIFO: hand the slot to the NEWEST waiter — it has the most
    // remaining deadline budget. inflight is unchanged (slot transfer).
    Waiter* next = queue_.back();
    queue_.pop_back();
    --counters_.queue_depth;
    next->granted = true;
    next->cv.notify_one();
    return;
  }
  --counters_.inflight;
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace sbmp
