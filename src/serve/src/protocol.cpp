#include "sbmp/serve/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sbmp/support/serialize.h"

namespace sbmp {

namespace {

constexpr char kMagic[4] = {'S', 'B', 'M', 'P'};
constexpr std::size_t kHeaderSize = 16;

Status proto_error(std::string message) {
  return Status::error(StatusCode::kInput, "protocol", std::move(message));
}

Status sys_error(const std::string& what) {
  return Status::error(StatusCode::kInternal, "protocol",
                       what + ": " + std::strerror(errno));
}

void put_u32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(in[i]);
  return v;
}

std::uint64_t get_u64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(in[i]);
  return v;
}

Status write_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("socket write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::okay();
}

/// Reads exactly `size` bytes. `*eof_ok` in: whether a clean EOF before
/// the first byte is acceptable; out: whether that clean EOF happened.
Status read_all(int fd, char* data, std::size_t size, bool* eof_ok) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("socket read failed");
    }
    if (n == 0) {
      if (got == 0 && eof_ok != nullptr && *eof_ok) return Status::okay();
      return proto_error("peer closed the connection mid-frame");
    }
    if (eof_ok != nullptr) *eof_ok = false;
    got += static_cast<std::size_t>(n);
  }
  if (eof_ok != nullptr) *eof_ok = false;
  return Status::okay();
}

}  // namespace

Status write_frame(int fd, FrameType type, std::string_view payload) {
  char header[kHeaderSize];
  std::memcpy(header, kMagic, 4);
  put_u32(header + 4, static_cast<std::uint32_t>(type));
  put_u64(header + 8, payload.size());
  if (Status s = write_all(fd, header, kHeaderSize); !s.ok()) return s;
  return write_all(fd, payload.data(), payload.size());
}

Status read_frame(int fd, Frame* out) {
  char header[kHeaderSize];
  bool clean_eof = true;
  if (Status s = read_all(fd, header, kHeaderSize, &clean_eof); !s.ok())
    return s;
  if (clean_eof) return Status::error(StatusCode::kInput, "eof", "peer hung up");
  if (std::memcmp(header, kMagic, 4) != 0)
    return proto_error("bad frame magic (not an sbmpd peer?)");
  const std::uint32_t type = get_u32(header + 4);
  if (type < static_cast<std::uint32_t>(FrameType::kCompileRequest) ||
      type > static_cast<std::uint32_t>(FrameType::kPong))
    return proto_error("unknown frame type " + std::to_string(type));
  const std::uint64_t length = get_u64(header + 8);
  if (length > kMaxFramePayload)
    return proto_error("frame payload of " + std::to_string(length) +
                       " bytes exceeds the " +
                       std::to_string(kMaxFramePayload) + "-byte cap");
  out->type = static_cast<FrameType>(type);
  out->payload.resize(static_cast<std::size_t>(length));
  if (length == 0) return Status::okay();
  return read_all(fd, out->payload.data(), out->payload.size(), nullptr);
}

Status listen_unix(const std::string& path, int* out_fd) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    return proto_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("cannot create socket");
  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s = sys_error("cannot bind '" + path + "'");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = sys_error("cannot listen on '" + path + "'");
    ::close(fd);
    return s;
  }
  *out_fd = fd;
  return Status::okay();
}

Status connect_unix(const std::string& path, int* out_fd) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    return proto_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("cannot create socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const Status s = Status::error(
        StatusCode::kInput, "protocol",
        "cannot connect to sbmpd at '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  *out_fd = fd;
  return Status::okay();
}

std::string encode_compile_request(const std::string& options_payload,
                                   std::string_view loop_source) {
  RecordWriter w;
  w.add_string("options", options_payload);
  w.add_string("loop", loop_source);
  return w.finish();
}

Status decode_compile_request(const std::string& payload,
                              std::string* options_payload,
                              std::string* loop_source) {
  RecordReader r;
  if (Status s = RecordReader::open(payload, &r); !s.ok()) return s;
  if (Status s = r.read_string("options", options_payload); !s.ok()) return s;
  if (Status s = r.read_string("loop", loop_source); !s.ok()) return s;
  if (!r.at_end()) return proto_error("trailing fields in compile request");
  return Status::okay();
}

std::string encode_compile_response(const Status& status,
                                    std::string_view report_payload) {
  RecordWriter w;
  w.add_int("code", static_cast<std::int64_t>(status.code));
  w.add_string("stage", status.stage);
  w.add_string("message", status.message);
  w.add_string("report", report_payload);
  return w.finish();
}

Status decode_compile_response(const std::string& payload, Status* status,
                               std::string* report_payload) {
  RecordReader r;
  if (Status s = RecordReader::open(payload, &r); !s.ok()) return s;
  std::int64_t code = 0;
  if (Status s = r.read_int("code", &code); !s.ok()) return s;
  if (code < 0 || code > static_cast<std::int64_t>(StatusCode::kInternal))
    return proto_error("response carries unknown status code " +
                       std::to_string(code));
  status->code = static_cast<StatusCode>(code);
  if (Status s = r.read_string("stage", &status->stage); !s.ok()) return s;
  if (Status s = r.read_string("message", &status->message); !s.ok()) return s;
  if (Status s = r.read_string("report", report_payload); !s.ok()) return s;
  if (!r.at_end()) return proto_error("trailing fields in compile response");
  return Status::okay();
}

}  // namespace sbmp
