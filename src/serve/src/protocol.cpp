#include "sbmp/serve/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sbmp/support/serialize.h"
#include "sbmp/support/strings.h"

namespace sbmp {

namespace {

constexpr char kMagic[4] = {'S', 'B', 'M', kProtocolRevision};
constexpr std::size_t kHeaderSize = 16;

Status proto_error(std::string message) {
  return Status::error(StatusCode::kInput, "protocol", std::move(message));
}

Status sys_error(const std::string& what) {
  return Status::error(StatusCode::kInternal, "protocol",
                       what + ": " + std::strerror(errno));
}

void put_u32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(in[i]);
  return v;
}

std::uint64_t get_u64(const char* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(in[i]);
  return v;
}

Status write_all(Transport& transport, const char* data, std::size_t size,
                 const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < size) {
    std::size_t put = 0;
    if (Status s = transport.write_some(data + sent, size - sent, &put,
                                        deadline);
        !s.ok())
      return s;
    sent += put;
  }
  return Status::okay();
}

/// Reads exactly `size` bytes. `*eof_ok` in: whether a clean EOF before
/// the first byte is acceptable; out: whether that clean EOF happened.
/// EOF mid-frame is a truncated stream: kUnavailable (retryable — no
/// partial result was accepted), never a hang.
Status read_all(Transport& transport, char* data, std::size_t size,
                bool* eof_ok, const Deadline& deadline) {
  std::size_t got = 0;
  while (got < size) {
    std::size_t n = 0;
    if (Status s = transport.read_some(data + got, size - got, &n, deadline);
        !s.ok())
      return s;
    if (n == 0) {
      if (got == 0 && eof_ok != nullptr && *eof_ok) return Status::okay();
      return Status::error(StatusCode::kUnavailable, "protocol",
                           "peer closed the connection mid-frame");
    }
    if (eof_ok != nullptr) *eof_ok = false;
    got += n;
  }
  if (eof_ok != nullptr) *eof_ok = false;
  return Status::okay();
}

/// Validates a fully-read header and reads the payload it declares.
Status finish_frame(Transport& transport, Frame* out,
                    const char header[kHeaderSize], const Deadline& deadline) {
  if (std::memcmp(header, kMagic, 4) != 0) {
    // An sbmpd peer of a different protocol revision shares the "SBM"
    // prefix; tell the operator which revisions disagree instead of
    // pretending the peer is not sbmpd at all.
    if (std::memcmp(header, kMagic, 3) == 0)
      return proto_error(
          std::string("protocol revision mismatch: peer speaks revision '") +
          header[3] + "', this build speaks revision '" + kProtocolRevision +
          "'");
    return proto_error("bad frame magic (not an sbmpd peer?)");
  }
  const std::uint32_t type = get_u32(header + 4);
  if (type < static_cast<std::uint32_t>(FrameType::kCompileRequest) ||
      type > static_cast<std::uint32_t>(FrameType::kStatResponse))
    return proto_error("unknown frame type " + std::to_string(type));
  const std::uint64_t length = get_u64(header + 8);
  if (length > kMaxFramePayload)
    return Status::error(StatusCode::kFrameTooLarge, "protocol",
                         "frame payload of " + std::to_string(length) +
                             " bytes exceeds the " +
                             std::to_string(kMaxFramePayload) + "-byte cap");
  out->type = static_cast<FrameType>(type);
  out->payload.resize(static_cast<std::size_t>(length));
  if (length == 0) return Status::okay();
  return read_all(transport, out->payload.data(), out->payload.size(), nullptr,
                  deadline);
}

}  // namespace

Status write_frame(Transport& transport, FrameType type,
                   std::string_view payload, const Deadline& deadline) {
  // One contiguous buffer so the header and payload share write_some
  // calls — fewer syscalls, and fault injection perturbs the whole
  // frame uniformly.
  std::string wire;
  wire.resize(kHeaderSize + payload.size());
  std::memcpy(wire.data(), kMagic, 4);
  put_u32(wire.data() + 4, static_cast<std::uint32_t>(type));
  put_u64(wire.data() + 8, payload.size());
  std::memcpy(wire.data() + kHeaderSize, payload.data(), payload.size());
  return write_all(transport, wire.data(), wire.size(), deadline);
}

Status write_frame(int fd, FrameType type, std::string_view payload) {
  FdTransport transport(fd);
  return write_frame(transport, type, payload, Deadline());
}

Status read_frame(Transport& transport, Frame* out, const Deadline& deadline) {
  char header[kHeaderSize];
  bool clean_eof = true;
  if (Status s = read_all(transport, header, kHeaderSize, &clean_eof, deadline);
      !s.ok())
    return s;
  if (clean_eof)
    return Status::error(StatusCode::kUnavailable, "eof", "peer hung up");
  return finish_frame(transport, out, header, deadline);
}

Status read_frame(Transport& transport, Frame* out,
                  const Deadline& idle_deadline, std::int64_t io_timeout_ms) {
  // Phase one: wait for the first header byte on the idle clock. An
  // infinite idle_deadline is the documented "keep idle connections"
  // mode — the wait is unbounded, but a drain's shutdown(SHUT_RD) still
  // wakes it with a clean EOF.
  char header[kHeaderSize];
  std::size_t got = 0;
  if (Status s = transport.read_some(header, 1, &got, idle_deadline);
      !s.ok()) {
    if (s.code == StatusCode::kTimeout)
      return Status::error(StatusCode::kTimeout, "idle",
                           "no frame arrived within the idle budget");
    return s;
  }
  if (got == 0)
    return Status::error(StatusCode::kUnavailable, "eof", "peer hung up");
  // Phase two: the peer is mid-frame; the (usually tighter) io budget
  // starts now, from the first byte, so a mid-frame stall is charged to
  // the transfer clock — never silently to the idle allowance.
  const Deadline io_deadline = Deadline::after_ms_opt(io_timeout_ms);
  if (Status s =
          read_all(transport, header + 1, kHeaderSize - 1, nullptr, io_deadline);
      !s.ok())
    return s;
  return finish_frame(transport, out, header, io_deadline);
}

Status read_frame(int fd, Frame* out) {
  FdTransport transport(fd);
  return read_frame(transport, out, Deadline());
}

Status listen_unix(const std::string& path, int* out_fd) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    return proto_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("cannot create socket");
  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s = sys_error("cannot bind '" + path + "'");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = sys_error("cannot listen on '" + path + "'");
    ::close(fd);
    return s;
  }
  *out_fd = fd;
  return Status::okay();
}

Status connect_unix(const std::string& path, int* out_fd) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    return proto_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return sys_error("cannot create socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    // Daemon-not-running is a transient, retryable condition (the
    // RetryPolicy and --fallback-local both key on kUnavailable).
    const Status s = Status::error(
        StatusCode::kUnavailable, "protocol",
        "cannot connect to sbmpd at '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  *out_fd = fd;
  return Status::okay();
}

std::string encode_compile_request(const std::string& options_payload,
                                   std::string_view loop_source,
                                   std::int64_t deadline_ms) {
  RecordWriter w;
  w.add_string("options", options_payload);
  w.add_string("loop", loop_source);
  w.add_int("deadline_ms", deadline_ms);  // revision '3' field; 0 = none
  return w.finish();
}

Status decode_compile_request(const std::string& payload,
                              std::string* options_payload,
                              std::string* loop_source,
                              std::int64_t* deadline_ms) {
  RecordReader r;
  if (Status s = RecordReader::open(payload, &r); !s.ok()) return s;
  if (Status s = r.read_string("options", options_payload); !s.ok()) return s;
  if (Status s = r.read_string("loop", loop_source); !s.ok()) return s;
  std::int64_t budget = 0;
  if (Status s = r.read_int("deadline_ms", &budget); !s.ok()) return s;
  if (budget < 0) return proto_error("negative deadline_ms in compile request");
  if (deadline_ms != nullptr) *deadline_ms = budget;
  if (!r.at_end()) return proto_error("trailing fields in compile request");
  return Status::okay();
}

std::string encode_compile_response(const Status& status,
                                    std::string_view report_payload) {
  RecordWriter w;
  w.add_int("code", static_cast<std::int64_t>(status.code));
  w.add_string("stage", status.stage);
  w.add_string("message", status.message);
  w.add_string("report", report_payload);
  return w.finish();
}

Status decode_compile_response(const std::string& payload, Status* status,
                               std::string* report_payload) {
  RecordReader r;
  if (Status s = RecordReader::open(payload, &r); !s.ok()) return s;
  std::int64_t code = 0;
  if (Status s = r.read_int("code", &code); !s.ok()) return s;
  if (code < 0 || code > static_cast<std::int64_t>(kMaxStatusCode))
    return proto_error("response carries unknown status code " +
                       std::to_string(code));
  status->code = static_cast<StatusCode>(code);
  if (Status s = r.read_string("stage", &status->stage); !s.ok()) return s;
  if (Status s = r.read_string("message", &status->message); !s.ok()) return s;
  if (Status s = r.read_string("report", report_payload); !s.ok()) return s;
  if (!r.at_end()) return proto_error("trailing fields in compile response");
  return Status::okay();
}

namespace {

/// Int vectors travel as comma-joined decimal strings inside one record
/// field (the record format has no repeated fields; a joined string
/// keeps the payload pager-inspectable).
std::string join_ints(const std::vector<std::int64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

Status split_ints(const std::string& joined, std::vector<std::int64_t>* out) {
  out->clear();
  if (joined.empty()) return Status::okay();
  for (const std::string_view part : split(joined, ',')) {
    errno = 0;
    char* end = nullptr;
    const std::string text(part);
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
      return proto_error("bad integer '" + text + "' in stat snapshot");
    out->push_back(static_cast<std::int64_t>(v));
  }
  return Status::okay();
}

}  // namespace

std::string encode_stat_snapshot(const StatSnapshot& snapshot) {
  RecordWriter w;
  w.add_int("version", snapshot.version);
  w.add_int("requests", snapshot.server.requests);
  w.add_int("compiles", snapshot.server.compiles);
  w.add_int("singleflight_joins", snapshot.server.singleflight_joins);
  w.add_int("memory_hits", snapshot.server.memory_hits);
  w.add_int("disk_hits", snapshot.server.disk_hits);
  w.add_int("corrupt_entries", snapshot.server.corrupt_entries);
  w.add_int("samples", static_cast<std::int64_t>(snapshot.metrics.samples.size()));
  for (const MetricSample& sample : snapshot.metrics.samples) {
    w.add_string("name", sample.name);
    w.add_string("labels", sample.labels);
    w.add_int("kind", static_cast<std::int64_t>(sample.kind));
    w.add_int("value", sample.value);
    w.add_string("bounds", join_ints(sample.bounds));
    w.add_string("counts", join_ints(sample.counts));
    w.add_int("count", sample.count);
    w.add_int("sum", sample.sum);
  }
  return w.finish();
}

Status decode_stat_snapshot(const std::string& payload, StatSnapshot* out) {
  RecordReader r;
  if (Status s = RecordReader::open(payload, &r); !s.ok()) return s;
  StatSnapshot snapshot;
  if (Status s = r.read_int("version", &snapshot.version); !s.ok()) return s;
  if (snapshot.version != kStatFormatVersion)
    return proto_error("stat snapshot version mismatch: peer encodes v" +
                       std::to_string(snapshot.version) +
                       ", this build decodes v" +
                       std::to_string(kStatFormatVersion));
  if (Status s = r.read_int("requests", &snapshot.server.requests); !s.ok())
    return s;
  if (Status s = r.read_int("compiles", &snapshot.server.compiles); !s.ok())
    return s;
  if (Status s = r.read_int("singleflight_joins",
                            &snapshot.server.singleflight_joins);
      !s.ok())
    return s;
  if (Status s = r.read_int("memory_hits", &snapshot.server.memory_hits);
      !s.ok())
    return s;
  if (Status s = r.read_int("disk_hits", &snapshot.server.disk_hits); !s.ok())
    return s;
  if (Status s = r.read_int("corrupt_entries",
                            &snapshot.server.corrupt_entries);
      !s.ok())
    return s;
  std::int64_t count = 0;
  if (Status s = r.read_int("samples", &count); !s.ok()) return s;
  if (count < 0 || count > 65536)
    return proto_error("implausible stat sample count " +
                       std::to_string(count));
  snapshot.metrics.samples.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    MetricSample sample;
    if (Status s = r.read_string("name", &sample.name); !s.ok()) return s;
    if (Status s = r.read_string("labels", &sample.labels); !s.ok()) return s;
    std::int64_t kind = 0;
    if (Status s = r.read_int("kind", &kind); !s.ok()) return s;
    if (kind < 0 || kind > static_cast<std::int64_t>(
                               MetricSample::Kind::kHistogram))
      return proto_error("unknown metric kind " + std::to_string(kind));
    sample.kind = static_cast<MetricSample::Kind>(kind);
    if (Status s = r.read_int("value", &sample.value); !s.ok()) return s;
    std::string joined;
    if (Status s = r.read_string("bounds", &joined); !s.ok()) return s;
    if (Status s = split_ints(joined, &sample.bounds); !s.ok()) return s;
    if (Status s = r.read_string("counts", &joined); !s.ok()) return s;
    if (Status s = split_ints(joined, &sample.counts); !s.ok()) return s;
    if (sample.kind == MetricSample::Kind::kHistogram &&
        sample.counts.size() != sample.bounds.size() + 1)
      return proto_error("histogram sample '" + sample.name +
                         "' bucket/bound arity mismatch");
    if (Status s = r.read_int("count", &sample.count); !s.ok()) return s;
    if (Status s = r.read_int("sum", &sample.sum); !s.ok()) return s;
    snapshot.metrics.samples.push_back(std::move(sample));
  }
  if (!r.at_end()) return proto_error("trailing fields in stat snapshot");
  *out = std::move(snapshot);
  return Status::okay();
}

}  // namespace sbmp
