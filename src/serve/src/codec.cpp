#include "sbmp/serve/codec.h"

#include <charconv>
#include <utility>

#include "sbmp/core/parallel.h"
#include "sbmp/dfg/redundancy.h"
#include "sbmp/support/serialize.h"

namespace sbmp {

namespace {

Status reject(std::string message) {
  return Status::error(StatusCode::kInput, "cache", std::move(message));
}

std::string encode_ints(const std::vector<int>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(values[i]);
  }
  return out;
}

bool decode_ints(std::string_view text, std::vector<int>* out) {
  out->clear();
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    int value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) return false;
    out->push_back(value);
    p = next;
    if (p < end) {
      if (*p != ' ') return false;
      ++p;
      if (p == end) return false;  // trailing separator
    }
  }
  return true;
}

void add_string_list(RecordWriter& w, const char* name,
                     const std::vector<std::string>& values) {
  w.add_int(std::string(name) + "_count", static_cast<std::int64_t>(values.size()));
  for (const std::string& v : values) w.add_string(name, v);
}

Status read_string_list(RecordReader& r, const char* name,
                        std::vector<std::string>* out) {
  std::int64_t count = 0;
  if (Status s = r.read_int(std::string(name) + "_count", &count); !s.ok())
    return s;
  if (count < 0 || count > 100000)
    return reject("implausible list count for " + std::string(name));
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    std::string v;
    if (Status s = r.read_string(name, &v); !s.ok()) return s;
    out->push_back(std::move(v));
  }
  return Status::okay();
}

}  // namespace

Fingerprint schedule_fingerprint(const Loop& loop,
                                 const PipelineOptions& options) {
  // ResultCache::key already canonicalizes the exact input set of
  // run_pipeline (loop rendering + every semantic option); reusing it
  // here guarantees the in-memory and on-disk caches can never disagree
  // about which runs are "the same". The version is appended so a format
  // bump orphans every old entry.
  std::string data = ResultCache::key(loop, options);
  data += '\x1e';
  data += "sbmp-cache-v";
  data += std::to_string(kScheduleCacheFormatVersion);
  return fingerprint_bytes(data);
}

std::string encode_loop_report(const LoopReport& report,
                               const Fingerprint& fingerprint) {
  RecordWriter w;
  w.add_int("version", kScheduleCacheFormatVersion);
  w.add_string("fingerprint", fingerprint.to_hex());
  w.add_string("name", report.name);
  w.add_string("loop", report.loop.to_string());
  w.add_int("doall", report.doall ? 1 : 0);
  w.add_int("waits_eliminated", report.waits_eliminated);
  w.add_int("used_list_fallback", report.used_list_fallback ? 1 : 0);
  w.add_int("groups", static_cast<std::int64_t>(report.schedule.groups.size()));
  for (const auto& group : report.schedule.groups)
    w.add_string("group", encode_ints(group));
  w.add_string("slots", encode_ints(report.schedule.slot_of));
  w.add_int("sim_parallel_time", report.sim.parallel_time);
  w.add_int("sim_iteration_time", report.sim.iteration_time);
  w.add_int("sim_stall_cycles", report.sim.stall_cycles);
  w.add_int("sim_schedule_length", report.sim.schedule_length);
  add_string_list(w, "schedule_violation", report.schedule_violations);
  add_string_list(w, "ordering_violation", report.ordering_violations);
  add_string_list(w, "validation_violation", report.validation_violations);
  w.add_int("status_code", static_cast<std::int64_t>(report.status.code));
  w.add_string("status_stage", report.status.stage);
  w.add_string("status_message", report.status.message);
  return w.finish();
}

Status decode_loop_report(const std::string& payload,
                          const PipelineOptions& options,
                          const Fingerprint& expected, LoopReport* out) {
  RecordReader r;
  if (Status s = RecordReader::open(payload, &r); !s.ok()) return s;

  std::int64_t version = 0;
  if (Status s = r.read_int("version", &version); !s.ok()) return s;
  if (version != kScheduleCacheFormatVersion)
    return reject("entry format version " + std::to_string(version) +
                  " != " + std::to_string(kScheduleCacheFormatVersion));
  std::string fp_hex;
  if (Status s = r.read_string("fingerprint", &fp_hex); !s.ok()) return s;
  Fingerprint stored_fp;
  if (!Fingerprint::from_hex(fp_hex, &stored_fp) || stored_fp != expected)
    return reject("entry fingerprint does not match the requested key");

  LoopReport report;
  std::string loop_source;
  if (Status s = r.read_string("name", &report.name); !s.ok()) return s;
  if (Status s = r.read_string("loop", &loop_source); !s.ok()) return s;
  std::int64_t doall = 0;
  std::int64_t stored_waits = 0;
  std::int64_t fallback = 0;
  if (Status s = r.read_int("doall", &doall); !s.ok()) return s;
  if (Status s = r.read_int("waits_eliminated", &stored_waits); !s.ok())
    return s;
  if (Status s = r.read_int("used_list_fallback", &fallback); !s.ok())
    return s;

  // Reconstruct the deterministic front half of the pipeline from the
  // canonical source. Any exception here means the entry does not
  // describe a compilable loop — a miss, never a crash.
  try {
    report.loop = parse_single_loop_or_throw(loop_source);
    report.deps = analyze_dependences(report.loop);
    if (!report.deps.is_synchronizable())
      return reject("cached loop is not synchronizable; the pipeline would "
                    "have refused it");
    report.synced =
        insert_synchronization(report.loop, report.deps, options.sync);
    report.tac = generate_tac(report.synced);
    if (options.eliminate_redundant_waits) {
      // dfg_out always matches the returned TAC, so no rebuild here.
      report.tac = eliminate_redundant_waits(report.tac, options.machine,
                                             &report.waits_eliminated,
                                             &report.dfg);
    } else {
      report.dfg.emplace(report.tac, options.machine);
    }
  } catch (const SbmpError& e) {
    return reject(std::string("cached loop no longer compiles: ") + e.what());
  }
  report.doall = report.deps.is_doall();
  if (report.doall != (doall != 0))
    return reject("cached doall flag disagrees with dependence analysis");
  if (report.name != report.loop.name)
    return reject("cached report name disagrees with the loop it stores");
  if (report.waits_eliminated != static_cast<int>(stored_waits))
    return reject("cached waits_eliminated disagrees with the redundancy "
                  "pass");
  report.used_list_fallback = fallback != 0;

  // Schedule: stored verbatim, then re-verified against the
  // reconstructed TAC/DFG below.
  std::int64_t group_count = 0;
  if (Status s = r.read_int("groups", &group_count); !s.ok()) return s;
  if (group_count < 0 || group_count > 1000000)
    return reject("implausible schedule group count");
  report.schedule.groups.resize(static_cast<std::size_t>(group_count));
  for (auto& group : report.schedule.groups) {
    std::string text;
    if (Status s = r.read_string("group", &text); !s.ok()) return s;
    if (!decode_ints(text, &group))
      return reject("malformed schedule group encoding");
  }
  std::string slots_text;
  if (Status s = r.read_string("slots", &slots_text); !s.ok()) return s;
  if (!decode_ints(slots_text, &report.schedule.slot_of))
    return reject("malformed schedule slot encoding");
  if (report.schedule.slot_of.size() !=
      static_cast<std::size_t>(report.tac.size()) + 1)
    return reject("schedule slot table does not cover the reconstructed "
                  "instruction set");
  for (const auto& group : report.schedule.groups) {
    for (const int id : group) {
      if (id < 1 || id > report.tac.size())
        return reject("schedule references instruction " +
                      std::to_string(id) + " outside the reconstructed TAC");
    }
  }

  if (Status s = r.read_int("sim_parallel_time", &report.sim.parallel_time);
      !s.ok())
    return s;
  if (Status s = r.read_int("sim_iteration_time", &report.sim.iteration_time);
      !s.ok())
    return s;
  if (Status s = r.read_int("sim_stall_cycles", &report.sim.stall_cycles);
      !s.ok())
    return s;
  std::int64_t sched_len = 0;
  if (Status s = r.read_int("sim_schedule_length", &sched_len); !s.ok())
    return s;
  report.sim.schedule_length = static_cast<int>(sched_len);

  std::vector<std::string> stored_schedule_viol;
  std::vector<std::string> stored_ordering_viol;
  std::vector<std::string> stored_validation_viol;
  if (Status s =
          read_string_list(r, "schedule_violation", &stored_schedule_viol);
      !s.ok())
    return s;
  if (Status s =
          read_string_list(r, "ordering_violation", &stored_ordering_viol);
      !s.ok())
    return s;
  if (Status s = read_string_list(r, "validation_violation",
                                  &stored_validation_viol);
      !s.ok())
    return s;
  std::int64_t status_code = 0;
  if (Status s = r.read_int("status_code", &status_code); !s.ok()) return s;
  if (Status s = r.read_string("status_stage", &report.status.stage); !s.ok())
    return s;
  if (Status s = r.read_string("status_message", &report.status.message);
      !s.ok())
    return s;

  // Safety gate: the stored schedule must still verify against the
  // reconstructed TAC/DFG, and when validation is on, the cross-layer
  // validator must reproduce the stored verdict exactly. Any
  // disagreement means the entry is stale or tampered with: reject it
  // (the caller recompiles) rather than ship a schedule whose verdict
  // we cannot reproduce.
  report.schedule_violations = verify_schedule(
      report.tac, *report.dfg, options.machine, report.schedule);
  if (report.schedule_violations != stored_schedule_viol)
    return reject("re-verification of the cached schedule disagrees with "
                  "its stored verdict");
  if (!options.check_ordering && !stored_ordering_viol.empty())
    return reject("cached ordering verdict present without check_ordering");
  report.ordering_violations = std::move(stored_ordering_viol);
  if (options.validate) {
    report.validation_violations =
        validate_pipeline(report, options);
    if (report.validation_violations != stored_validation_viol)
      return reject("re-validation of the cached schedule disagrees with "
                    "its stored verdict");
  } else {
    if (!stored_validation_viol.empty())
      return reject("cached validation verdict present without validate");
    report.validation_violations.clear();
  }

  // A cached entry can only be a clean run or a validation failure that
  // run_pipeline returned (thrown failures are never cached); its status
  // must agree with the violation lists.
  report.status.code = static_cast<StatusCode>(status_code);
  const bool valid = report.valid();
  if (report.status.code == StatusCode::kOk) {
    if (!valid || !report.status.stage.empty() ||
        !report.status.message.empty())
      return reject("cached ok status disagrees with stored violations");
  } else if (report.status.code == StatusCode::kValidation) {
    if (valid)
      return reject("cached validation status carries no violations");
  } else {
    return reject("cached status code " + std::to_string(status_code) +
                  " is not a cacheable outcome");
  }

  if (!r.at_end()) return reject("trailing fields in cache entry");
  *out = std::move(report);
  return Status::okay();
}

std::string encode_pipeline_options(const PipelineOptions& options) {
  RecordWriter w;
  w.add_int("version", kScheduleCacheFormatVersion);
  // The whole machine travels as its canonical textual form: one field
  // whose grammar is versioned by docs/machines.md instead of a column
  // per struct member, so adding a machine parameter no longer reshapes
  // the wire record (protocol revision '4').
  w.add_string("machine", options.machine.to_string());
  w.add_int("scheduler", static_cast<int>(options.scheduler));
  w.add_int("contiguous_paths", options.sync_aware.contiguous_paths ? 1 : 0);
  w.add_int("convert_lfd", options.sync_aware.convert_lfd ? 1 : 0);
  w.add_int("eliminate_redundant", options.sync.eliminate_redundant ? 1 : 0);
  w.add_int("iterations", options.iterations);
  w.add_int("processors", options.processors);
  w.add_int("check_ordering", options.check_ordering ? 1 : 0);
  w.add_int("eliminate_redundant_waits",
            options.eliminate_redundant_waits ? 1 : 0);
  w.add_int("never_degrade", options.never_degrade ? 1 : 0);
  w.add_int("validate", options.validate ? 1 : 0);
  w.add_int("validate_tolerance", options.validate_tolerance);
  return w.finish();
}

Status decode_pipeline_options(const std::string& payload,
                               PipelineOptions* out) {
  RecordReader r;
  if (Status s = RecordReader::open(payload, &r); !s.ok()) return s;
  PipelineOptions options;
  std::int64_t v = 0;
  if (Status s = r.read_int("version", &v); !s.ok()) return s;
  if (v != kScheduleCacheFormatVersion)
    return reject("options encoded by format version " + std::to_string(v));
  const auto read_i = [&](const char* name, std::int64_t* dst) {
    return r.read_int(name, dst);
  };
  std::int64_t i = 0;
  std::string machine_text;
  if (Status s = r.read_string("machine", &machine_text); !s.ok()) return s;
  if (Status s = parse_machine_desc(machine_text, &options.machine); !s.ok())
    return reject("malformed machine desc: " + s.message);
  if (Status s = read_i("scheduler", &i); !s.ok()) return s;
  if (i < 0 || i > static_cast<int>(SchedulerKind::kSyncAware))
    return reject("unknown scheduler kind " + std::to_string(i));
  options.scheduler = static_cast<SchedulerKind>(i);
  if (Status s = read_i("contiguous_paths", &i); !s.ok()) return s;
  options.sync_aware.contiguous_paths = i != 0;
  if (Status s = read_i("convert_lfd", &i); !s.ok()) return s;
  options.sync_aware.convert_lfd = i != 0;
  if (Status s = read_i("eliminate_redundant", &i); !s.ok()) return s;
  options.sync.eliminate_redundant = i != 0;
  if (Status s = read_i("iterations", &options.iterations); !s.ok()) return s;
  if (Status s = read_i("processors", &i); !s.ok()) return s;
  options.processors = static_cast<int>(i);
  if (Status s = read_i("check_ordering", &i); !s.ok()) return s;
  options.check_ordering = i != 0;
  if (Status s = read_i("eliminate_redundant_waits", &i); !s.ok()) return s;
  options.eliminate_redundant_waits = i != 0;
  if (Status s = read_i("never_degrade", &i); !s.ok()) return s;
  options.never_degrade = i != 0;
  if (Status s = read_i("validate", &i); !s.ok()) return s;
  options.validate = i != 0;
  if (Status s = read_i("validate_tolerance", &options.validate_tolerance);
      !s.ok())
    return s;
  if (!r.at_end()) return reject("trailing fields in options record");
  *out = std::move(options);
  return Status::okay();
}

}  // namespace sbmp
