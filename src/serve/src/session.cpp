#include "sbmp/serve/session.h"

#include <chrono>
#include <string>

#include "sbmp/core/pipeline.h"
#include "sbmp/serve/codec.h"
#include "sbmp/serve/protocol.h"
#include "sbmp/support/deadline.h"

namespace sbmp {

namespace {

/// Serving-path outcome counters, labelled by failure class. One
/// counter family keeps the Prometheus dump and the STAT frame in sync
/// about how the daemon degraded under pressure.
Counter* outcome_counter(ScheduleServer& server, const char* outcome) {
  return server.metrics().counter("sbmp_serve_outcomes_total",
                                  std::string("outcome=\"") + outcome + "\"");
}

}  // namespace

std::string handle_compile_request(ScheduleServer& server,
                                   AdmissionController* admission,
                                   const std::string& payload) {
  Histogram* latency = server.metrics().histogram(
      "sbmp_server_request_ns", "", phase_latency_bounds_ns());
  const auto t0 = std::chrono::steady_clock::now();
  const auto observe = [&] {
    latency->observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  };

  std::string options_payload;
  std::string loop_source;
  std::int64_t deadline_ms = 0;
  Status status = decode_compile_request(payload, &options_payload,
                                         &loop_source, &deadline_ms);
  PipelineOptions options;
  if (status.ok()) status = decode_pipeline_options(options_payload, &options);

  // The client stamped its remaining budget into the request; honoring
  // it here means a daemon under load refuses stale work instead of
  // compiling responses nobody is waiting for. The budget restarts on
  // receipt (queue/transfer time already came out of the client's own
  // clock; re-subtracting it here would double-charge without clock
  // agreement between the processes).
  const Deadline request_deadline = Deadline::after_ms_opt(deadline_ms);

  bool admitted = false;
  if (status.ok() && admission != nullptr) {
    const auto q0 = std::chrono::steady_clock::now();
    status = admission->admit(request_deadline);
    admitted = status.ok();
    server.metrics()
        .histogram("sbmp_serve_queue_wait_ms", "", serve_wait_bounds_ms())
        ->observe(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - q0)
                      .count());
  }
  if (status.ok() && request_deadline.expired())
    status = Status::error(StatusCode::kTimeout, "daemon",
                           "request deadline expired before compile");

  // Observability hooks are process-local pointers, never wire fields:
  // attach this daemon's registry so remote compiles feed the same
  // per-phase latency histograms as everything else in the process.
  options.metrics = &server.metrics();
  std::string response;
  if (status.ok()) {
    try {
      const Loop loop = parse_single_loop_or_throw(loop_source);
      const LoopReport report = server.compile(loop, options);
      response = encode_compile_response(
          Status::okay(),
          encode_loop_report(report, schedule_fingerprint(loop, options)));
    } catch (const StatusError& e) {
      status = e.status();
    } catch (const SbmpError& e) {
      status = Status::error(StatusCode::kInput, "parse", e.what());
    } catch (const std::exception& e) {
      status = Status::error(StatusCode::kInternal, "daemon", e.what());
    }
  }
  if (admitted) admission->release();

  switch (status.code) {
    case StatusCode::kOk:
      outcome_counter(server, "ok")->inc();
      break;
    case StatusCode::kOverloaded:
      outcome_counter(server, "shed")->inc();
      break;
    case StatusCode::kTimeout:
      outcome_counter(server, "timeout")->inc();
      break;
    default:
      outcome_counter(server, "error")->inc();
      break;
  }
  observe();
  if (!status.ok()) return encode_compile_response(status, "");
  return response;
}

SessionEnd serve_session(ScheduleServer& server, AdmissionController* admission,
                         Transport& transport, const SessionLimits& limits) {
  std::int64_t served = 0;
  for (;;) {
    Frame frame;
    // Between frames only the idle reaper clock runs — with
    // --idle-timeout-ms 0 the wait is unbounded, honoring the
    // documented "keep idle connections" default (the drain's
    // shutdown(SHUT_RD) still wakes it). Once the first byte of a frame
    // lands, the two-phase read_frame switches to a fresh io budget, so
    // an idle-reaper firing and a mid-frame stall classify apart.
    const Deadline idle_deadline =
        Deadline::after_ms_opt(limits.idle_timeout_ms);
    const Status rs =
        read_frame(transport, &frame, idle_deadline, limits.io_timeout_ms);
    if (!rs.ok()) {
      if (rs.stage == "eof") return SessionEnd::kPeerClosed;
      if (rs.code == StatusCode::kTimeout)
        return rs.stage == "idle" ? SessionEnd::kIdleTimeout
                                  : SessionEnd::kIoError;
      if (rs.code == StatusCode::kFrameTooLarge) {
        // Typed refusal: tell the peer what it did before hanging up
        // (best effort — the stream is unrecoverable either way).
        outcome_counter(server, "frame_too_large")->inc();
        const Deadline wd = Deadline::after_ms_opt(limits.io_timeout_ms);
        (void)write_frame(transport, FrameType::kCompileResponse,
                          encode_compile_response(rs, ""), wd);
        return SessionEnd::kFrameTooLarge;
      }
      if (rs.code == StatusCode::kUnavailable) return SessionEnd::kIoError;
      return SessionEnd::kProtocolError;
    }

    const Deadline write_deadline = Deadline::after_ms_opt(limits.io_timeout_ms);
    if (frame.type == FrameType::kPing) {
      if (!write_frame(transport, FrameType::kPong, "", write_deadline).ok())
        return SessionEnd::kIoError;
      continue;
    }
    if (frame.type == FrameType::kStatRequest) {
      const std::string snapshot = encode_stat_snapshot(server.stat_snapshot());
      if (!write_frame(transport, FrameType::kStatResponse, snapshot,
                       write_deadline)
               .ok())
        return SessionEnd::kIoError;
      continue;
    }
    if (frame.type != FrameType::kCompileRequest)
      return SessionEnd::kProtocolError;

    const std::string response =
        handle_compile_request(server, admission, frame.payload);
    if (!write_frame(transport, FrameType::kCompileResponse, response,
                     write_deadline)
             .ok())
      return SessionEnd::kIoError;
    ++served;
    if (limits.max_requests > 0 && served >= limits.max_requests)
      return SessionEnd::kRequestLimit;
  }
}

}  // namespace sbmp
