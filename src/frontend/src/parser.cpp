#include "sbmp/frontend/parser.h"

#include <utility>

#include "sbmp/frontend/lexer.h"

namespace sbmp {

namespace {

/// Recursive-descent parser over the token stream. Error recovery is
/// line-based: on a statement-level error we skip to the next newline;
/// on a loop-level error we skip to the matching "end".
class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  PreProgram parse() {
    PreProgram program;
    skip_newlines();
    while (!at(TokKind::kEof)) {
      if (auto loop = parse_loop()) program.loops.push_back(std::move(*loop));
      skip_newlines();
    }
    return program;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(TokKind k) const { return peek().kind == k; }
  bool at_ident(std::string_view word) const {
    return at(TokKind::kIdent) && peek().text == word;
  }
  Token advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool expect(TokKind k, const char* context) {
    if (at(k)) {
      advance();
      return true;
    }
    diags_.error(peek().loc, std::string("expected ") + tok_kind_name(k) +
                                 " " + context + ", found " +
                                 tok_kind_name(peek().kind));
    return false;
  }

  void skip_newlines() {
    while (at(TokKind::kNewline)) advance();
  }

  void skip_to_newline() {
    while (!at(TokKind::kNewline) && !at(TokKind::kEof)) advance();
  }

  void skip_to_end_keyword() {
    while (!at(TokKind::kEof)) {
      if (at_ident("end")) {
        advance();
        return;
      }
      advance();
    }
  }

  std::optional<PreLoop> parse_loop() {
    PreLoop loop;
    if (at_ident("loop")) {
      advance();
      if (at(TokKind::kIdent)) {
        loop.name = std::string(advance().text);
      } else {
        diags_.error(peek().loc, "expected loop name after 'loop'");
      }
      skip_newlines();
    }
    if (at_ident("doacross")) {
      loop.declared_doacross = true;
      advance();
    } else if (at_ident("do")) {
      advance();
    } else {
      diags_.error(peek().loc, "expected 'do' or 'doacross'");
      skip_to_end_keyword();
      return std::nullopt;
    }
    if (!at(TokKind::kIdent)) {
      diags_.error(peek().loc, "expected induction variable name");
      skip_to_end_keyword();
      return std::nullopt;
    }
    loop.iter_var = std::string(advance().text);
    bool header_ok = expect(TokKind::kAssign, "in loop header");
    header_ok = header_ok && parse_bound(loop.lower);
    header_ok = header_ok && expect(TokKind::kComma, "in loop header");
    header_ok = header_ok && parse_bound(loop.upper);
    if (!header_ok) {
      skip_to_end_keyword();
      return std::nullopt;
    }
    expect(TokKind::kNewline, "after loop header");

    while (true) {
      skip_newlines();
      if (at(TokKind::kEof)) {
        diags_.error(peek().loc, "missing 'end' for loop");
        return std::nullopt;
      }
      if (at_ident("end")) {
        advance();
        break;
      }
      if (at_ident("int") || at_ident("real")) {
        parse_decl(loop);
        continue;
      }
      if (at_ident("init")) {
        parse_init(loop);
        continue;
      }
      parse_statement(loop);
    }
    return loop;
  }

  bool parse_bound(std::int64_t& out) {
    bool negative = false;
    if (at(TokKind::kMinus)) {
      advance();
      negative = true;
    }
    if (!at(TokKind::kInt)) {
      diags_.error(peek().loc, "expected integer loop bound");
      return false;
    }
    out = advance().value;
    if (negative) out = -out;
    return true;
  }

  void parse_init(PreLoop& loop) {
    advance();  // 'init'
    if (!at(TokKind::kIdent)) {
      diags_.error(peek().loc, "expected scalar name after 'init'");
      skip_to_newline();
      return;
    }
    const std::string name = std::string(advance().text);
    if (!expect(TokKind::kAssign, "in init declaration")) {
      skip_to_newline();
      return;
    }
    std::int64_t value = 0;
    if (!parse_bound(value)) {
      skip_to_newline();
      return;
    }
    loop.scalar_inits[name] = value;
  }

  void parse_decl(PreLoop& loop) {
    const ElemType type = peek().text == "int" ? ElemType::kInt
                                               : ElemType::kReal;
    advance();
    while (true) {
      if (!at(TokKind::kIdent)) {
        diags_.error(peek().loc, "expected array name in declaration");
        skip_to_newline();
        return;
      }
      loop.array_types[std::string(advance().text)] = type;
      if (at(TokKind::kComma)) {
        advance();
        continue;
      }
      break;
    }
  }

  void parse_statement(PreLoop& loop) {
    if (!at(TokKind::kIdent)) {
      diags_.error(peek().loc, "expected statement");
      skip_to_newline();
      return;
    }
    PreStatement stmt;
    stmt.loc = peek().loc;
    const std::string target = std::string(advance().text);
    if (at(TokKind::kLBracket)) {
      auto lhs_index = parse_subscript(loop.iter_var);
      if (!lhs_index) {
        skip_to_newline();
        return;
      }
      stmt.lhs = ArrayRef{target, *lhs_index};
    } else {
      stmt.scalar_lhs = target;
    }
    if (!expect(TokKind::kAssign, "in assignment")) {
      skip_to_newline();
      return;
    }
    auto rhs = parse_expr(loop.iter_var);
    if (!rhs) {
      skip_to_newline();
      return;
    }
    stmt.rhs = std::move(*rhs);
    loop.body.push_back(std::move(stmt));
    if (!at(TokKind::kEof)) expect(TokKind::kNewline, "after statement");
  }

  /// Parses "[ expr ]" and reduces the expr to affine form.
  std::optional<AffineIndex> parse_subscript(const std::string& iter_var) {
    const SourceLoc open = peek().loc;
    if (!expect(TokKind::kLBracket, "to open subscript")) return std::nullopt;
    auto expr = parse_expr(iter_var);
    if (!expr) return std::nullopt;
    if (!expect(TokKind::kRBracket, "to close subscript")) return std::nullopt;
    auto affine = extract_affine(*expr, iter_var);
    if (!affine) {
      diags_.error(open, "subscript is not affine in '" + iter_var + "'");
      return std::nullopt;
    }
    return affine;
  }

  std::optional<Expr> parse_expr(const std::string& iter_var) {
    auto lhs = parse_addexpr(iter_var);
    while (lhs && at(TokKind::kShl)) {
      advance();
      auto rhs = parse_addexpr(iter_var);
      if (!rhs) return std::nullopt;
      lhs = make_bin(BinOp::kShl, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<Expr> parse_addexpr(const std::string& iter_var) {
    auto lhs = parse_term(iter_var);
    while (lhs && (at(TokKind::kPlus) || at(TokKind::kMinus))) {
      const BinOp op = at(TokKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      advance();
      auto rhs = parse_term(iter_var);
      if (!rhs) return std::nullopt;
      lhs = make_bin(op, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<Expr> parse_term(const std::string& iter_var) {
    auto lhs = parse_unary(iter_var);
    while (lhs && (at(TokKind::kStar) || at(TokKind::kSlash))) {
      const BinOp op = at(TokKind::kStar) ? BinOp::kMul : BinOp::kDiv;
      advance();
      auto rhs = parse_unary(iter_var);
      if (!rhs) return std::nullopt;
      lhs = make_bin(op, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  std::optional<Expr> parse_unary(const std::string& iter_var) {
    if (at(TokKind::kMinus)) {
      advance();
      auto operand = parse_unary(iter_var);
      if (!operand) return std::nullopt;
      // Fold -k for literals; otherwise lower as 0 - x.
      if (const auto* c = std::get_if<IntConst>(&*operand))
        return make_const(-c->value);
      return make_bin(BinOp::kSub, make_const(0), std::move(*operand));
    }
    return parse_primary(iter_var);
  }

  std::optional<Expr> parse_primary(const std::string& iter_var) {
    if (at(TokKind::kInt)) return make_const(advance().value);
    if (at(TokKind::kLParen)) {
      advance();
      auto inner = parse_expr(iter_var);
      if (!inner) return std::nullopt;
      if (!expect(TokKind::kRParen, "to close parenthesis"))
        return std::nullopt;
      return inner;
    }
    if (at(TokKind::kIdent)) {
      const std::string name = std::string(advance().text);
      if (at(TokKind::kLBracket)) {
        auto index = parse_subscript(iter_var);
        if (!index) return std::nullopt;
        return Expr{ArrayRef{name, *index}};
      }
      if (name == iter_var) return Expr{IterVar{}};
      return make_scalar(name);
    }
    diags_.error(peek().loc, std::string("expected expression, found ") +
                                 tok_kind_name(peek().kind));
    return std::nullopt;
  }

  std::vector<Token> tokens_;
  DiagEngine& diags_;
  std::size_t pos_ = 0;
};

/// Affine view of an expression: coef*iv + offset, or nullopt.
struct AffineView {
  std::int64_t coef = 0;
  std::int64_t offset = 0;
};

std::optional<AffineView> affine_view(const Expr& e,
                                      const std::string& iter_var) {
  if (std::holds_alternative<IterVar>(e)) return AffineView{1, 0};
  if (const auto* c = std::get_if<IntConst>(&e)) return AffineView{0, c->value};
  if (const auto* s = std::get_if<ScalarRef>(&e)) {
    // An identifier equal to the induction variable parses as IterVar, so
    // any ScalarRef here is a true scalar: not affine in iv.
    (void)s;
    return std::nullopt;
  }
  const auto* bin = std::get_if<BinaryExpr>(&e);
  if (!bin || !bin->lhs || !bin->rhs) return std::nullopt;
  const auto l = affine_view(*bin->lhs, iter_var);
  const auto r = affine_view(*bin->rhs, iter_var);
  if (!l || !r) return std::nullopt;
  switch (bin->op) {
    case BinOp::kAdd:
      return AffineView{l->coef + r->coef, l->offset + r->offset};
    case BinOp::kSub:
      return AffineView{l->coef - r->coef, l->offset - r->offset};
    case BinOp::kMul:
      if (l->coef == 0) return AffineView{l->offset * r->coef,
                                          l->offset * r->offset};
      if (r->coef == 0) return AffineView{r->offset * l->coef,
                                          r->offset * l->offset};
      return std::nullopt;  // iv*iv is quadratic
    case BinOp::kShl:
      if (r->coef != 0 || r->offset < 0 || r->offset > 62) return std::nullopt;
      return AffineView{l->coef << r->offset, l->offset << r->offset};
    case BinOp::kDiv:
      return std::nullopt;  // integer division is not affine in general
  }
  return std::nullopt;
}

}  // namespace

std::optional<AffineIndex> extract_affine(const Expr& e,
                                          const std::string& iter_var) {
  const auto view = affine_view(e, iter_var);
  if (!view) return std::nullopt;
  return AffineIndex{view->coef, view->offset};
}

PreProgram parse_pre_program(std::string_view source, DiagEngine& diags) {
  auto tokens = lex(source, diags);
  Parser parser(std::move(tokens), diags);
  return parser.parse();
}

PreProgram parse_pre_program_or_throw(std::string_view source) {
  DiagEngine diags;
  PreProgram program = parse_pre_program(source, diags);
  if (!diags.ok()) throw SbmpError("LoopLang parse failed:\n" + diags.render());
  return program;
}

PreLoop parse_single_pre_loop_or_throw(std::string_view source) {
  PreProgram program = parse_pre_program_or_throw(source);
  if (program.loops.size() != 1)
    throw SbmpError("expected exactly one loop, found " +
                    std::to_string(program.loops.size()));
  return std::move(program.loops.front());
}

Program parse_program(std::string_view source, DiagEngine& diags) {
  const PreProgram pre = parse_pre_program(source, diags);
  Program program;
  for (const auto& pre_loop : pre.loops) {
    bool plain = true;
    if (!pre_loop.scalar_inits.empty()) {
      diags.error({}, "loop '" + pre_loop.name +
                          "': init declarations require the restructuring "
                          "passes (parse_pre_program + restructure_loop)");
      plain = false;
    }
    for (const auto& stmt : pre_loop.body) {
      if (stmt.is_scalar()) {
        diags.error(stmt.loc,
                    "left-hand side must be an array element (scalar "
                    "assignments require the restructuring passes; use "
                    "parse_pre_program + restructure_loop)");
        plain = false;
      }
    }
    if (!plain) continue;
    if (auto loop = pre_to_plain(pre_loop)) program.loops.push_back(*loop);
  }
  return program;
}

Program parse_program_or_throw(std::string_view source) {
  DiagEngine diags;
  Program program = parse_program(source, diags);
  if (!diags.ok()) throw SbmpError("LoopLang parse failed:\n" + diags.render());
  return program;
}

Loop parse_single_loop_or_throw(std::string_view source) {
  Program program = parse_program_or_throw(source);
  if (program.loops.size() != 1)
    throw SbmpError("expected exactly one loop, found " +
                    std::to_string(program.loops.size()));
  return std::move(program.loops.front());
}

}  // namespace sbmp
