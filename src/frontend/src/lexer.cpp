#include "sbmp/frontend/lexer.h"

#include <cctype>

namespace sbmp {

const char* tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kInt:
      return "integer";
    case TokKind::kAssign:
      return "'='";
    case TokKind::kComma:
      return "','";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kPlus:
      return "'+'";
    case TokKind::kMinus:
      return "'-'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kShl:
      return "'<<'";
    case TokKind::kNewline:
      return "end of statement";
    case TokKind::kEof:
      return "end of input";
  }
  return "?";
}

std::vector<Token> lex(std::string_view source, DiagEngine& diags) {
  std::vector<Token> out;
  std::uint32_t line = 1;
  std::uint32_t col = 1;
  std::size_t pos = 0;

  const auto here = [&] { return SourceLoc{line, col}; };
  const auto push = [&](TokKind k, std::string_view text, SourceLoc loc,
                        std::int64_t value = 0) {
    out.push_back({k, text, value, loc});
  };
  const auto push_newline = [&](SourceLoc loc) {
    if (!out.empty() && out.back().kind != TokKind::kNewline)
      push(TokKind::kNewline, "", loc);
  };

  while (pos < source.size()) {
    const char c = source[pos];
    const SourceLoc loc = here();
    if (c == '\n') {
      push_newline(loc);
      ++pos;
      ++line;
      col = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++pos;
      ++col;
      continue;
    }
    if (c == '#' || c == '!') {
      while (pos < source.size() && source[pos] != '\n') {
        ++pos;
        ++col;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos;
      std::int64_t value = 0;
      while (end < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[end]))) {
        value = value * 10 + (source[end] - '0');
        ++end;
      }
      push(TokKind::kInt, source.substr(pos, end - pos), loc, value);
      col += static_cast<std::uint32_t>(end - pos);
      pos = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos;
      while (end < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[end])) ||
              source[end] == '_')) {
        ++end;
      }
      push(TokKind::kIdent, source.substr(pos, end - pos), loc);
      col += static_cast<std::uint32_t>(end - pos);
      pos = end;
      continue;
    }
    switch (c) {
      case '=':
        push(TokKind::kAssign, source.substr(pos, 1), loc);
        break;
      case ',':
        push(TokKind::kComma, source.substr(pos, 1), loc);
        break;
      case '[':
        push(TokKind::kLBracket, source.substr(pos, 1), loc);
        break;
      case ']':
        push(TokKind::kRBracket, source.substr(pos, 1), loc);
        break;
      case '(':
        push(TokKind::kLParen, source.substr(pos, 1), loc);
        break;
      case ')':
        push(TokKind::kRParen, source.substr(pos, 1), loc);
        break;
      case '+':
        push(TokKind::kPlus, source.substr(pos, 1), loc);
        break;
      case '-':
        push(TokKind::kMinus, source.substr(pos, 1), loc);
        break;
      case '*':
        push(TokKind::kStar, source.substr(pos, 1), loc);
        break;
      case '/':
        push(TokKind::kSlash, source.substr(pos, 1), loc);
        break;
      case ';':
        push_newline(loc);
        break;
      case '<':
        if (pos + 1 < source.size() && source[pos + 1] == '<') {
          push(TokKind::kShl, source.substr(pos, 2), loc);
          ++pos;
          ++col;
        } else {
          diags.error(loc, "unexpected character '<'");
        }
        break;
      default:
        diags.error(loc, std::string("unexpected character '") + c + "'");
        break;
    }
    ++pos;
    ++col;
  }
  push_newline(here());
  push(TokKind::kEof, "", here());
  return out;
}

}  // namespace sbmp
