#pragma once

#include <optional>
#include <string_view>

#include "sbmp/ir/loop.h"
#include "sbmp/ir/preloop.h"
#include "sbmp/support/diagnostics.h"

namespace sbmp {

/// Parses a LoopLang compilation unit.
///
/// Grammar (newline or ';' separates statements; '#'/'!' start comments):
///
///   program  := loop*
///   loop     := ["loop" IDENT] ("do" | "doacross") IDENT "=" INT "," INT NL
///               (decl NL | init NL | stmt NL)* "end"
///   decl     := ("int" | "real") IDENT ("," IDENT)*
///   init     := "init" IDENT "=" ["-"] INT
///   stmt     := IDENT "[" expr "]" "=" expr
///             | IDENT "=" expr                      (pre-loop form only)
///   expr     := addexpr ("<<" addexpr)*
///   addexpr  := term (("+" | "-") term)*
///   term     := unary (("*" | "/") unary)*
///   unary    := "-" unary | primary
///   primary  := IDENT "[" expr "]" | IDENT | INT | "(" expr ")"
///
/// Subscript expressions must reduce to the affine form `c*iv + k`;
/// anything else is a parse error (the dependence analysis is exact only
/// on affine subscripts, matching the paper's benchmark classes).
///
/// All problems are reported to `diags`; the returned Program contains
/// every loop that parsed cleanly.
[[nodiscard]] Program parse_program(std::string_view source,
                                    DiagEngine& diags);

/// Like `parse_program` but throws SbmpError carrying the rendered
/// diagnostics if any error was reported.
[[nodiscard]] Program parse_program_or_throw(std::string_view source);

/// Parses a source expected to contain exactly one loop; throws SbmpError
/// on errors or if the unit does not hold exactly one loop.
[[nodiscard]] Loop parse_single_loop_or_throw(std::string_view source);

/// Parses the *pre-restructuring* form, in which statements may assign
/// scalars (`sum = sum + A[I]`) and `init` declarations record scalar
/// entry values. The restructuring passes (sbmp/restructure) turn a
/// PreProgram into a plain Program; `parse_program` is equivalent to
/// parsing the pre form and rejecting any loop that still holds scalar
/// statements.
[[nodiscard]] PreProgram parse_pre_program(std::string_view source,
                                           DiagEngine& diags);

/// Like `parse_pre_program` but throws SbmpError on any diagnostic.
[[nodiscard]] PreProgram parse_pre_program_or_throw(std::string_view source);

/// Parses a source expected to contain exactly one pre-form loop.
[[nodiscard]] PreLoop parse_single_pre_loop_or_throw(std::string_view source);

/// Attempts to view `e` as an affine function `coef*iv + offset` of the
/// induction variable. Returns nullopt for non-affine shapes. Exposed for
/// tests and for the random-loop generator's round-trip checks.
[[nodiscard]] std::optional<AffineIndex> extract_affine(
    const Expr& e, const std::string& iter_var);

}  // namespace sbmp
