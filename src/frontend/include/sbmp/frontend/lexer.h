#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sbmp/support/diagnostics.h"
#include "sbmp/support/source_location.h"

namespace sbmp {

/// Token kinds of LoopLang.
enum class TokKind {
  kIdent,
  kInt,
  kAssign,    // =
  kComma,     // ,
  kLBracket,  // [
  kRBracket,  // ]
  kLParen,    // (
  kRParen,    // )
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kShl,      // <<
  kNewline,  // statement separator (also ';')
  kEof,
};

[[nodiscard]] const char* tok_kind_name(TokKind k);

/// One lexed token. `text` views into the source buffer for identifiers;
/// `value` holds the parsed integer for kInt.
struct Token {
  TokKind kind = TokKind::kEof;
  std::string_view text;
  std::int64_t value = 0;
  SourceLoc loc;
};

/// Tokenizes LoopLang source. Comments run from '#' or '!' to end of
/// line. Consecutive newlines are collapsed into one kNewline token.
/// Lexical errors are reported to `diags`; the offending characters are
/// skipped so parsing can continue.
[[nodiscard]] std::vector<Token> lex(std::string_view source,
                                     DiagEngine& diags);

}  // namespace sbmp
