#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "sbmp/support/status.h"

namespace sbmp {

/// Function-unit classes of the modeled superscalar processor, following
/// the paper's unit list: load/store unit, integer unit, floating-point
/// unit, multiplier, divider, shifter. Synchronization operations use no
/// function unit (kNone) but still consume an issue slot.
enum class FuClass : int {
  kLoadStore = 0,
  kInteger = 1,
  kFloat = 2,
  kMult = 3,
  kDiv = 4,
  kShift = 5,
  kNone = 6,
};

inline constexpr int kNumFuClasses = 6;  // excludes kNone

[[nodiscard]] const char* fu_class_name(FuClass c);

/// Short key of an FU class in the canonical MachineDesc form:
/// "ls", "int", "fp", "mul", "div", "shift".
[[nodiscard]] const char* fu_class_key(FuClass c);

/// Opcodes of the DLX-like three-address code the codegen emits.
enum class Opcode {
  kAddI,   // dst <- src1 + imm            (integer unit)
  kMulI,   // dst <- src1 * imm            (multiplier)
  kShl,    // dst <- src1 << imm/src2      (shifter)
  kLoad,   // dst <- array[src1]           (load/store unit)
  kStore,  // array[src1] <- src2          (load/store unit)
  kAdd,    // dst <- src1 + src2           (integer or float unit)
  kSub,    // dst <- src1 - src2           (integer or float unit)
  kMul,    // dst <- src1 * src2           (multiplier)
  kDiv,    // dst <- src1 / src2           (divider)
  kWait,   // Wait_Signal(S, i-d)          (no FU)
  kSend,   // Send_Signal(S)               (no FU)
};

inline constexpr int kNumOpcodes = 11;

[[nodiscard]] const char* opcode_name(Opcode op);

/// The function unit an instruction executes on. `is_float` selects the
/// floating-point adder for kAdd/kSub; multiply, divide and shift use
/// their dedicated units regardless of element type, matching the
/// paper's unit list.
[[nodiscard]] FuClass fu_class_of(Opcode op, bool is_float);

/// The paper's result-latency table: every unit is fully pipelined,
/// multiplies take 3 cycles, divides 6, and everything else (including
/// loads) a single cycle.
[[nodiscard]] constexpr std::array<int, kNumOpcodes> paper_latencies() {
  std::array<int, kNumOpcodes> lat{};
  for (int& cycles : lat) cycles = 1;
  lat[static_cast<int>(Opcode::kMulI)] = 3;
  lat[static_cast<int>(Opcode::kMul)] = 3;
  lat[static_cast<int>(Opcode::kDiv)] = 6;
  return lat;
}

/// Declarative description of one superscalar processor and of the
/// synchronization fabric of the multiprocessor built from it. This is
/// the single machine-model API: every field is plain data, validated by
/// `validate()` (typed Status, no asserts deep in the scheduler), and the
/// whole description round-trips through a canonical textual form
/// (`to_string` / `parse_machine_desc`) so machines travel unchanged
/// through CLI flags, the serve protocol, and cache keys.
struct MachineDesc {
  /// Instructions issued per cycle (paper evaluates 2 and 4).
  int issue_width = 4;
  /// Number of units per FU class (paper evaluates 1 and 2 for all).
  std::array<int, kNumFuClasses> fu_counts{1, 1, 1, 1, 1, 1};
  /// Per-opcode result latencies in cycles, indexed by Opcode. All units
  /// are fully pipelined. Replaces the historical
  /// (latency_mult, latency_div, latency_default) switch; loads now have
  /// an explicit entry instead of falling through to the default.
  std::array<int, kNumOpcodes> latencies = paper_latencies();
  /// Whether Wait/Send consume an issue slot (they never need an FU).
  bool sync_consumes_slot = true;
  /// Cycles for a signal to travel from a Send to the waiting
  /// processor: a wait may issue at send_cycle + signal_latency. The
  /// paper's model uses 1 (the next cycle); larger values model a
  /// synchronization network or a shared-memory flag round trip.
  int signal_latency = 1;
  /// Per-stream signal buffer depth of the synchronization network: a
  /// FIFO holding at most this many undelivered signals per stream, so
  /// iteration k's wait cannot issue before the wait `depth` iterations
  /// back has freed its slot. 0 models the paper's unbounded buffer.
  /// The simulator sizes its iteration ring from this via
  /// signal_window_rows; FaultPlan::signal_buffer_capacity remains as a
  /// fault-campaign override layered on top (its stalls count as fault
  /// events, the machine's own do not).
  int signal_buffer_depth = 0;

  [[nodiscard]] int fu_count(FuClass c) const {
    return c == FuClass::kNone ? issue_width
                               : fu_counts[static_cast<int>(c)];
  }

  [[nodiscard]] int latency(Opcode op) const {
    return latencies[static_cast<int>(op)];
  }

  void set_latency(Opcode op, int cycles) {
    latencies[static_cast<int>(op)] = cycles;
  }

  /// Smallest entry of the latency table; the schedulers use this to
  /// reject (or route around) sub-unit latencies.
  [[nodiscard]] int min_latency() const;

  /// Structural validity: issue_width >= 1, every FU count >= 1, every
  /// latency >= 1, signal_latency >= 0, signal_buffer_depth >= 0.
  /// Returns a typed Status (stage "machine") instead of asserting so
  /// CLI/daemon inputs fail with a diagnostic, not a crash.
  [[nodiscard]] Status validate() const;

  /// Canonical textual form, e.g.
  ///   "issue=4 fu=ls:1,int:1,fp:1,mul:1,div:1,shift:1
  ///    lat=muli:3,mul:3,div:6,*:1 sync=1 sig=1 buf=0"
  /// (one line; wrapped here for width). Round-trips exactly through
  /// parse_machine_desc; equal descriptions render identically, so the
  /// string is safe to embed in cache keys and wire messages.
  [[nodiscard]] std::string to_string() const;

  /// Short label like "2-issue(#FU=1)" used in the report tables; falls
  /// back to a compact FU listing when the counts are not uniform.
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool operator==(const MachineDesc&) const = default;

  /// Deprecated: use machines::paper(issue_width, fus_per_class).
  [[deprecated("use machines::paper(issue_width, fus_per_class)")]]
  [[nodiscard]] static MachineDesc paper(int issue_width, int fus_per_class);
};

/// Parses the canonical MachineDesc form (see docs/machines.md for the
/// grammar). Whitespace-separated `key=value` fields over the paper
/// defaults: `issue=N`, `fu=N` (uniform) or `fu=ls:1,int:2,...`,
/// `lat=mul:3,div:6,*:1` (`*` sets the whole table first, named opcodes
/// then override), `sync=0|1`, `sig=N`, `buf=N`. Unknown or duplicate
/// fields are errors; the result is validate()d before it is returned.
[[nodiscard]] Status parse_machine_desc(std::string_view text,
                                        MachineDesc* out);

/// Named machine presets.
namespace machines {

/// The paper's four experimental cases: issue width in {2,4} and
/// `fus_per_class` in {1,2}.
[[nodiscard]] MachineDesc paper(int issue_width, int fus_per_class);

/// The default machine of the whole pipeline: the paper's 4-issue,
/// one-unit-per-class processor with unbounded signal buffering.
[[nodiscard]] MachineDesc default_machine();

}  // namespace machines

/// Deprecated alias for the historical name; new code says MachineDesc.
using MachineConfig = MachineDesc;

}  // namespace sbmp
