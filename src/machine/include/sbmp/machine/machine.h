#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sbmp {

/// Function-unit classes of the modeled superscalar processor, following
/// the paper's unit list: load/store unit, integer unit, floating-point
/// unit, multiplier, divider, shifter. Synchronization operations use no
/// function unit (kNone) but still consume an issue slot.
enum class FuClass : int {
  kLoadStore = 0,
  kInteger = 1,
  kFloat = 2,
  kMult = 3,
  kDiv = 4,
  kShift = 5,
  kNone = 6,
};

inline constexpr int kNumFuClasses = 6;  // excludes kNone

[[nodiscard]] const char* fu_class_name(FuClass c);

/// Opcodes of the DLX-like three-address code the codegen emits.
enum class Opcode {
  kAddI,   // dst <- src1 + imm            (integer unit)
  kMulI,   // dst <- src1 * imm            (multiplier)
  kShl,    // dst <- src1 << imm/src2      (shifter)
  kLoad,   // dst <- array[src1]           (load/store unit)
  kStore,  // array[src1] <- src2          (load/store unit)
  kAdd,    // dst <- src1 + src2           (integer or float unit)
  kSub,    // dst <- src1 - src2           (integer or float unit)
  kMul,    // dst <- src1 * src2           (multiplier)
  kDiv,    // dst <- src1 / src2           (divider)
  kWait,   // Wait_Signal(S, i-d)          (no FU)
  kSend,   // Send_Signal(S)               (no FU)
};

[[nodiscard]] const char* opcode_name(Opcode op);

/// The function unit an instruction executes on. `is_float` selects the
/// floating-point adder for kAdd/kSub; multiply, divide and shift use
/// their dedicated units regardless of element type, matching the
/// paper's unit list.
[[nodiscard]] FuClass fu_class_of(Opcode op, bool is_float);

/// Configuration of one superscalar processor and of the multiprocessor
/// experiments built on it.
struct MachineConfig {
  /// Instructions issued per cycle (paper evaluates 2 and 4).
  int issue_width = 4;
  /// Number of units per FU class (paper evaluates 1 and 2 for all).
  std::array<int, kNumFuClasses> fu_counts{1, 1, 1, 1, 1, 1};
  /// Result latencies in cycles. All units are fully pipelined.
  int latency_mult = 3;
  int latency_div = 6;
  int latency_default = 1;
  /// Whether Wait/Send consume an issue slot (they never need an FU).
  bool sync_consumes_slot = true;
  /// Cycles for a signal to travel from a Send to the waiting
  /// processor: a wait may issue at send_cycle + signal_latency. The
  /// paper's model uses 1 (the next cycle); larger values model a
  /// synchronization network or a shared-memory flag round trip.
  int signal_latency = 1;

  [[nodiscard]] int fu_count(FuClass c) const {
    return c == FuClass::kNone ? issue_width
                               : fu_counts[static_cast<int>(c)];
  }

  [[nodiscard]] int latency(Opcode op) const {
    switch (op) {
      case Opcode::kMul:
      case Opcode::kMulI:
        return latency_mult;
      case Opcode::kDiv:
        return latency_div;
      default:
        return latency_default;
    }
  }

  /// The paper's four experimental cases: issue width in {2,4} and
  /// `fus_per_class` in {1,2}.
  [[nodiscard]] static MachineConfig paper(int issue_width,
                                           int fus_per_class);

  /// Short label like "2-issue(#FU=1)" used in the report tables.
  [[nodiscard]] std::string label() const;
};

}  // namespace sbmp
