#include "sbmp/machine/machine.h"

#include <algorithm>
#include <cctype>

namespace sbmp {
namespace {

Status desc_error(std::string message) {
  return Status::error(StatusCode::kInput, "machine", std::move(message));
}

/// Parses a non-negative decimal integer occupying the whole of `text`.
bool parse_int(std::string_view text, int* out) {
  if (text.empty() || text.size() > 9) return false;
  int value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

/// The latency value the canonical form abbreviates as `*`: the most
/// common table entry, smallest value on ties, so equal tables always
/// render identically.
int modal_latency(const std::array<int, kNumOpcodes>& latencies) {
  int best = latencies[0];
  int best_count = 0;
  for (const int candidate : latencies) {
    int count = 0;
    for (const int cycles : latencies) {
      if (cycles == candidate) ++count;
    }
    if (count > best_count || (count == best_count && candidate < best)) {
      best = candidate;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

const char* fu_class_name(FuClass c) {
  switch (c) {
    case FuClass::kLoadStore:
      return "load/store";
    case FuClass::kInteger:
      return "integer";
    case FuClass::kFloat:
      return "float";
    case FuClass::kMult:
      return "mult";
    case FuClass::kDiv:
      return "div";
    case FuClass::kShift:
      return "shift";
    case FuClass::kNone:
      return "none";
  }
  return "?";
}

const char* fu_class_key(FuClass c) {
  switch (c) {
    case FuClass::kLoadStore:
      return "ls";
    case FuClass::kInteger:
      return "int";
    case FuClass::kFloat:
      return "fp";
    case FuClass::kMult:
      return "mul";
    case FuClass::kDiv:
      return "div";
    case FuClass::kShift:
      return "shift";
    case FuClass::kNone:
      return "none";
  }
  return "?";
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kAddI:
      return "addi";
    case Opcode::kMulI:
      return "muli";
    case Opcode::kShl:
      return "shl";
    case Opcode::kLoad:
      return "load";
    case Opcode::kStore:
      return "store";
    case Opcode::kAdd:
      return "add";
    case Opcode::kSub:
      return "sub";
    case Opcode::kMul:
      return "mul";
    case Opcode::kDiv:
      return "div";
    case Opcode::kWait:
      return "wait";
    case Opcode::kSend:
      return "send";
  }
  return "?";
}

FuClass fu_class_of(Opcode op, bool is_float) {
  switch (op) {
    case Opcode::kAddI:
      return FuClass::kInteger;
    case Opcode::kMulI:
    case Opcode::kMul:
      return FuClass::kMult;
    case Opcode::kShl:
      return FuClass::kShift;
    case Opcode::kLoad:
    case Opcode::kStore:
      return FuClass::kLoadStore;
    case Opcode::kAdd:
    case Opcode::kSub:
      return is_float ? FuClass::kFloat : FuClass::kInteger;
    case Opcode::kDiv:
      return FuClass::kDiv;
    case Opcode::kWait:
    case Opcode::kSend:
      return FuClass::kNone;
  }
  return FuClass::kNone;
}

int MachineDesc::min_latency() const {
  return *std::min_element(latencies.begin(), latencies.end());
}

Status MachineDesc::validate() const {
  if (issue_width < 1) {
    return desc_error("issue_width must be >= 1, got " +
                      std::to_string(issue_width));
  }
  for (int c = 0; c < kNumFuClasses; ++c) {
    if (fu_counts[c] < 1) {
      return desc_error(std::string("fu count for ") +
                        fu_class_key(static_cast<FuClass>(c)) +
                        " must be >= 1, got " + std::to_string(fu_counts[c]));
    }
  }
  for (int op = 0; op < kNumOpcodes; ++op) {
    if (latencies[op] < 1) {
      return desc_error(std::string("latency for ") +
                        opcode_name(static_cast<Opcode>(op)) +
                        " must be >= 1, got " + std::to_string(latencies[op]));
    }
  }
  if (signal_latency < 0) {
    return desc_error("signal_latency must be >= 0, got " +
                      std::to_string(signal_latency));
  }
  if (signal_buffer_depth < 0) {
    return desc_error("signal_buffer_depth must be >= 0, got " +
                      std::to_string(signal_buffer_depth));
  }
  return Status::okay();
}

std::string MachineDesc::to_string() const {
  std::string out = "issue=" + std::to_string(issue_width) + " fu=";
  for (int c = 0; c < kNumFuClasses; ++c) {
    if (c > 0) out += ',';
    out += fu_class_key(static_cast<FuClass>(c));
    out += ':';
    out += std::to_string(fu_counts[c]);
  }
  const int base = modal_latency(latencies);
  out += " lat=";
  for (int op = 0; op < kNumOpcodes; ++op) {
    if (latencies[op] == base) continue;
    out += opcode_name(static_cast<Opcode>(op));
    out += ':';
    out += std::to_string(latencies[op]);
    out += ',';
  }
  out += "*:" + std::to_string(base);
  out += " sync=";
  out += sync_consumes_slot ? '1' : '0';
  out += " sig=" + std::to_string(signal_latency);
  out += " buf=" + std::to_string(signal_buffer_depth);
  return out;
}

std::string MachineDesc::label() const {
  const bool uniform =
      std::all_of(fu_counts.begin(), fu_counts.end(),
                  [&](int count) { return count == fu_counts[0]; });
  std::string out = std::to_string(issue_width) + "-issue(";
  if (uniform) {
    out += "#FU=" + std::to_string(fu_counts[0]);
  } else {
    out += "fu=";
    for (int c = 0; c < kNumFuClasses; ++c) {
      if (c > 0) out += ',';
      out += std::to_string(fu_counts[c]);
    }
  }
  out += ')';
  return out;
}

MachineDesc MachineDesc::paper(int issue_width, int fus_per_class) {
  return machines::paper(issue_width, fus_per_class);
}

Status parse_machine_desc(std::string_view text, MachineDesc* out) {
  MachineDesc desc = machines::default_machine();
  bool seen[6] = {};  // issue, fu, lat, sync, sig, buf
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    size_t end = pos;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    const std::string_view field = text.substr(pos, end - pos);
    pos = end;

    const size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return desc_error("expected key=value, got \"" + std::string(field) +
                        '"');
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);

    int slot;
    if (key == "issue") {
      slot = 0;
    } else if (key == "fu") {
      slot = 1;
    } else if (key == "lat") {
      slot = 2;
    } else if (key == "sync") {
      slot = 3;
    } else if (key == "sig") {
      slot = 4;
    } else if (key == "buf") {
      slot = 5;
    } else {
      return desc_error("unknown machine field \"" + std::string(key) +
                        "\" (expected issue/fu/lat/sync/sig/buf)");
    }
    if (seen[slot]) {
      return desc_error("duplicate machine field \"" + std::string(key) +
                        '"');
    }
    seen[slot] = true;

    if (key == "issue") {
      if (!parse_int(value, &desc.issue_width)) {
        return desc_error("issue wants an integer, got \"" +
                          std::string(value) + '"');
      }
    } else if (key == "sync") {
      if (value == "0") {
        desc.sync_consumes_slot = false;
      } else if (value == "1") {
        desc.sync_consumes_slot = true;
      } else {
        return desc_error("sync wants 0 or 1, got \"" + std::string(value) +
                          '"');
      }
    } else if (key == "sig") {
      if (!parse_int(value, &desc.signal_latency)) {
        return desc_error("sig wants an integer, got \"" +
                          std::string(value) + '"');
      }
    } else if (key == "buf") {
      if (!parse_int(value, &desc.signal_buffer_depth)) {
        return desc_error("buf wants an integer, got \"" +
                          std::string(value) + '"');
      }
    } else if (key == "fu") {
      int uniform = 0;
      if (parse_int(value, &uniform)) {
        desc.fu_counts.fill(uniform);
        continue;
      }
      // Comma list of class:count entries; unmentioned classes keep the
      // default of one unit.
      bool entry_seen[kNumFuClasses] = {};
      size_t p = 0;
      while (p <= value.size()) {
        size_t comma = value.find(',', p);
        if (comma == std::string_view::npos) comma = value.size();
        const std::string_view entry = value.substr(p, comma - p);
        const size_t colon = entry.find(':');
        if (colon == std::string_view::npos) {
          return desc_error("fu entry wants class:count, got \"" +
                            std::string(entry) + '"');
        }
        const std::string_view name = entry.substr(0, colon);
        int c = -1;
        for (int i = 0; i < kNumFuClasses; ++i) {
          if (name == fu_class_key(static_cast<FuClass>(i))) {
            c = i;
            break;
          }
        }
        if (c < 0) {
          return desc_error("unknown fu class \"" + std::string(name) +
                            "\" (expected ls/int/fp/mul/div/shift)");
        }
        if (entry_seen[c]) {
          return desc_error("duplicate fu class \"" + std::string(name) +
                            '"');
        }
        entry_seen[c] = true;
        if (!parse_int(entry.substr(colon + 1), &desc.fu_counts[c])) {
          return desc_error("fu count wants an integer, got \"" +
                            std::string(entry.substr(colon + 1)) + '"');
        }
        if (comma == value.size()) break;
        p = comma + 1;
      }
    } else {  // lat
      // `*` sets the whole table first (order-independent); named
      // opcodes then override in listed order.
      int star_cycles = -1;
      struct Entry {
        int op;
        int cycles;
      };
      Entry overrides[kNumOpcodes];
      int override_count = 0;
      bool entry_seen[kNumOpcodes] = {};
      size_t p = 0;
      while (p <= value.size()) {
        size_t comma = value.find(',', p);
        if (comma == std::string_view::npos) comma = value.size();
        const std::string_view entry = value.substr(p, comma - p);
        const size_t colon = entry.find(':');
        if (colon == std::string_view::npos) {
          return desc_error("lat entry wants opcode:cycles, got \"" +
                            std::string(entry) + '"');
        }
        const std::string_view name = entry.substr(0, colon);
        int cycles = 0;
        if (!parse_int(entry.substr(colon + 1), &cycles)) {
          return desc_error("lat cycles wants an integer, got \"" +
                            std::string(entry.substr(colon + 1)) + '"');
        }
        if (name == "*") {
          if (star_cycles >= 0) return desc_error("duplicate lat entry \"*\"");
          star_cycles = cycles;
        } else {
          int op = -1;
          for (int i = 0; i < kNumOpcodes; ++i) {
            if (name == opcode_name(static_cast<Opcode>(i))) {
              op = i;
              break;
            }
          }
          if (op < 0) {
            return desc_error("unknown opcode \"" + std::string(name) +
                              "\" in lat");
          }
          if (entry_seen[op]) {
            return desc_error("duplicate lat entry \"" + std::string(name) +
                              '"');
          }
          entry_seen[op] = true;
          overrides[override_count++] = {op, cycles};
        }
        if (comma == value.size()) break;
        p = comma + 1;
      }
      if (star_cycles >= 0) desc.latencies.fill(star_cycles);
      for (int i = 0; i < override_count; ++i) {
        desc.latencies[overrides[i].op] = overrides[i].cycles;
      }
    }
  }

  if (Status status = desc.validate(); !status.ok()) return status;
  *out = desc;
  return Status::okay();
}

namespace machines {

MachineDesc paper(int issue_width, int fus_per_class) {
  MachineDesc desc;
  desc.issue_width = issue_width;
  desc.fu_counts.fill(fus_per_class);
  return desc;
}

MachineDesc default_machine() { return MachineDesc{}; }

}  // namespace machines

}  // namespace sbmp
