#include "sbmp/machine/machine.h"

namespace sbmp {

const char* fu_class_name(FuClass c) {
  switch (c) {
    case FuClass::kLoadStore:
      return "load/store";
    case FuClass::kInteger:
      return "integer";
    case FuClass::kFloat:
      return "float";
    case FuClass::kMult:
      return "mult";
    case FuClass::kDiv:
      return "div";
    case FuClass::kShift:
      return "shift";
    case FuClass::kNone:
      return "none";
  }
  return "?";
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kAddI:
      return "addi";
    case Opcode::kMulI:
      return "muli";
    case Opcode::kShl:
      return "shl";
    case Opcode::kLoad:
      return "load";
    case Opcode::kStore:
      return "store";
    case Opcode::kAdd:
      return "add";
    case Opcode::kSub:
      return "sub";
    case Opcode::kMul:
      return "mul";
    case Opcode::kDiv:
      return "div";
    case Opcode::kWait:
      return "wait";
    case Opcode::kSend:
      return "send";
  }
  return "?";
}

FuClass fu_class_of(Opcode op, bool is_float) {
  switch (op) {
    case Opcode::kAddI:
      return FuClass::kInteger;
    case Opcode::kMulI:
    case Opcode::kMul:
      return FuClass::kMult;
    case Opcode::kShl:
      return FuClass::kShift;
    case Opcode::kLoad:
    case Opcode::kStore:
      return FuClass::kLoadStore;
    case Opcode::kAdd:
    case Opcode::kSub:
      return is_float ? FuClass::kFloat : FuClass::kInteger;
    case Opcode::kDiv:
      return FuClass::kDiv;
    case Opcode::kWait:
    case Opcode::kSend:
      return FuClass::kNone;
  }
  return FuClass::kNone;
}

MachineConfig MachineConfig::paper(int issue_width, int fus_per_class) {
  MachineConfig config;
  config.issue_width = issue_width;
  config.fu_counts.fill(fus_per_class);
  return config;
}

std::string MachineConfig::label() const {
  // All paper configs use a uniform FU count; report the first class.
  return std::to_string(issue_width) + "-issue(#FU=" +
         std::to_string(fu_counts[0]) + ")";
}

}  // namespace sbmp
