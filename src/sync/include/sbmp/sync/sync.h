#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sbmp/dep/dependence.h"
#include "sbmp/ir/loop.h"

namespace sbmp {

/// One `Wait_Signal(S, i-d)` operation, placed immediately before its
/// sink statement. `signal_stmt` names the dependence source statement
/// whose signal is awaited; `distance` is the dependence distance d.
struct WaitOp {
  int signal_stmt = 0;
  std::int64_t distance = 0;
  int sink_stmt = 0;       ///< Statement this wait is placed before.
  ArrayRef sink_ref;       ///< The guarded access in the sink statement.
  bool sink_is_write = false;  ///< True for anti/output dependences.

  [[nodiscard]] std::string to_string(const std::string& iter_var) const;
};

/// One `Send_Signal(S)` operation, placed immediately after its source
/// statement. A single send serves every dependence sourced at that
/// statement (the paper's Fig 1(b) emits one Send_Signal(S3) for two
/// dependences).
struct SendOp {
  int signal_stmt = 0;  ///< Statement this send is placed after (== S).
  ArrayRef src_ref;     ///< A guarded source access in that statement.
  bool src_is_write = true;  ///< False when only anti deps are sourced.

  [[nodiscard]] std::string to_string() const;
};

/// A DOACROSS loop with synchronization operations inserted.
struct SyncedLoop {
  Loop loop;
  std::vector<WaitOp> waits;  ///< Sorted by (sink_stmt, distance desc).
  std::vector<SendOp> sends;  ///< Sorted by signal_stmt.
  /// Loop-carried constant-distance dependences covered by the inserted
  /// synchronization.
  std::vector<Dependence> synced;
  /// Loop-carried dependences that cannot be expressed as uniform
  /// Wait(S, i-d) pairs (irregular distance). A loop with any of these
  /// must be executed serially; the suite never produces them.
  std::vector<Dependence> unsynchronizable;

  [[nodiscard]] bool synchronizable() const {
    return unsynchronizable.empty();
  }
  [[nodiscard]] const std::vector<WaitOp> waits_before(int stmt_id) const;
  /// True if `stmt_id` has a send placed after it.
  [[nodiscard]] bool has_send(int stmt_id) const;

  /// Renders the loop in the paper's Fig 1(b) style.
  [[nodiscard]] std::string to_string() const;
};

struct SyncOptions {
  /// Drop waits whose ordering constraint is already enforced
  /// transitively by the remaining synchronization (Midkiff/Padua-style
  /// covering analysis over statement execution order). Off by default
  /// to match the paper's insertion.
  ///
  /// CAUTION: statement-level covering is only sound when iterations
  /// execute their statements in order. Under instruction scheduling an
  /// unguarded sink load can issue in cycle 0, ahead of any covering
  /// chain, so a scheduled pipeline must use the access-level analysis
  /// in sbmp/dfg/redundancy.h (PipelineOptions::eliminate_redundant_waits)
  /// instead.
  bool eliminate_redundant = false;
};

/// Inserts Send/Wait pairs for every loop-carried constant-distance
/// dependence of `analysis`. Distinct dependences sharing (source stmt,
/// sink stmt, distance) collapse into one wait; distinct dependences
/// sharing a source statement share one send.
[[nodiscard]] SyncedLoop insert_synchronization(
    const Loop& loop, const DepAnalysis& analysis,
    const SyncOptions& options = {});

/// Convenience overload that runs the dependence analysis itself.
[[nodiscard]] SyncedLoop insert_synchronization(
    const Loop& loop, const SyncOptions& options = {});

/// Returns the indices (into `synced.waits`) of waits that are redundant
/// for in-order statement execution: their ordering is implied by
/// statement program order plus the other waits. See the caveat on
/// SyncOptions::eliminate_redundant — this is NOT sufficient under
/// instruction scheduling.
[[nodiscard]] std::vector<std::size_t> find_redundant_waits(
    const SyncedLoop& synced);

}  // namespace sbmp
