#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <queue>
#include <vector>

#include "sbmp/sync/sync.h"

namespace sbmp {

namespace {

/// Event positions of one iteration, in execution order:
/// waits-before-S1, S1, send-after-S1, waits-before-S2, ...
struct EventLayout {
  std::vector<int> wait_pos;          // per index into synced.waits
  std::map<int, int> stmt_pos;        // statement id -> position
  std::map<int, int> send_pos;        // signal stmt id -> position
  int count = 0;
};

EventLayout layout_events(const SyncedLoop& synced) {
  EventLayout layout;
  layout.wait_pos.resize(synced.waits.size(), -1);
  int pos = 0;
  for (const auto& stmt : synced.loop.body) {
    for (std::size_t w = 0; w < synced.waits.size(); ++w) {
      if (synced.waits[w].sink_stmt == stmt.id) layout.wait_pos[w] = pos++;
    }
    layout.stmt_pos[stmt.id] = pos++;
    if (synced.has_send(stmt.id)) layout.send_pos[stmt.id] = pos++;
  }
  layout.count = pos;
  return layout;
}

/// Tests whether, using program order plus the waits in `active` (bitmask
/// over synced.waits, with `candidate` cleared), execution of the source
/// statement in iteration -d is still forced before the sink statement in
/// iteration 0. The precedence graph is unrolled over iteration offsets
/// [-d, 0]: program order keeps the offset, a wait edge of distance d'
/// goes from (k-d', send position) to (k, wait position). Offsets only
/// increase along edges, so the window [-d, 0] is exact.
bool covered_without(const SyncedLoop& synced, const EventLayout& layout,
                     const std::vector<bool>& active, std::size_t candidate) {
  const WaitOp& probe = synced.waits[candidate];
  const std::int64_t depth = probe.distance;
  const int events = layout.count;
  const auto node = [&](std::int64_t offset, int pos) {
    return static_cast<std::size_t>((offset + depth) * events + pos);
  };
  std::vector<bool> visited(static_cast<std::size_t>(depth + 1) * events,
                            false);

  const int start_pos = layout.stmt_pos.at(probe.signal_stmt);
  const int goal_pos = layout.stmt_pos.at(probe.sink_stmt);

  std::queue<std::pair<std::int64_t, int>> queue;
  queue.push({-depth, start_pos});
  visited[node(-depth, start_pos)] = true;
  while (!queue.empty()) {
    const auto [offset, pos] = queue.front();
    queue.pop();
    if (offset == 0 && pos == goal_pos) return true;
    const auto visit = [&](std::int64_t o, int p) {
      if (o < -depth || o > 0) return;
      if (!visited[node(o, p)]) {
        visited[node(o, p)] = true;
        queue.push({o, p});
      }
    };
    // Program order within the iteration.
    if (pos + 1 < events) visit(offset, pos + 1);
    // Wait edges: the send event of signal S in iteration `offset`
    // precedes, for every active wait on S with distance d', the wait
    // event in iteration offset+d'. Only the send event itself roots the
    // edge: reaching a later position of this iteration does not imply
    // the send was preceded.
    for (std::size_t w = 0; w < synced.waits.size(); ++w) {
      if (w == candidate || !active[w]) continue;
      const WaitOp& other = synced.waits[w];
      const auto send_it = layout.send_pos.find(other.signal_stmt);
      if (send_it == layout.send_pos.end()) continue;
      if (pos == send_it->second)
        visit(offset + other.distance, layout.wait_pos[w]);
    }
  }
  return false;
}

}  // namespace

std::vector<std::size_t> find_redundant_waits(const SyncedLoop& synced) {
  const EventLayout layout = layout_events(synced);
  std::vector<bool> active(synced.waits.size(), true);

  // Greedy elimination, longest distance first: long-distance waits are
  // the most likely to be covered by chains of shorter ones, and two
  // mutually-covering waits must not both be dropped.
  std::vector<std::size_t> order(synced.waits.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (synced.waits[a].distance != synced.waits[b].distance)
      return synced.waits[a].distance > synced.waits[b].distance;
    return a < b;
  });

  std::vector<std::size_t> removed;
  for (const auto w : order) {
    if (covered_without(synced, layout, active, w)) {
      active[w] = false;
      removed.push_back(w);
    }
  }
  std::sort(removed.begin(), removed.end());
  return removed;
}

}  // namespace sbmp
