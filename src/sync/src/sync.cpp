#include "sbmp/sync/sync.h"

#include <algorithm>
#include <map>
#include <set>

namespace sbmp {

std::string WaitOp::to_string(const std::string& iter_var) const {
  std::string dist = iter_var;
  dist += distance >= 0 ? "-" : "+";
  dist += std::to_string(distance >= 0 ? distance : -distance);
  return "Wait_Signal(S" + std::to_string(signal_stmt) + ", " + dist + ")";
}

std::string SendOp::to_string() const {
  return "Send_Signal(S" + std::to_string(signal_stmt) + ")";
}

const std::vector<WaitOp> SyncedLoop::waits_before(int stmt_id) const {
  std::vector<WaitOp> out;
  for (const auto& w : waits)
    if (w.sink_stmt == stmt_id) out.push_back(w);
  return out;
}

bool SyncedLoop::has_send(int stmt_id) const {
  return std::any_of(sends.begin(), sends.end(), [stmt_id](const SendOp& s) {
    return s.signal_stmt == stmt_id;
  });
}

std::string SyncedLoop::to_string() const {
  std::string out = "DOACROSS " + loop.iter_var + " = " +
                    std::to_string(loop.lower) + ", " +
                    std::to_string(loop.upper) + "\n";
  for (const auto& stmt : loop.body) {
    for (const auto& w : waits_before(stmt.id))
      out += "  " + w.to_string(loop.iter_var) + ";\n";
    out += "  " + statement_to_string(stmt, loop.iter_var) + ";\n";
    for (const auto& s : sends) {
      if (s.signal_stmt == stmt.id) out += "  " + s.to_string() + ";\n";
    }
  }
  out += "END_DOACROSS\n";
  return out;
}

SyncedLoop insert_synchronization(const Loop& loop,
                                  const DepAnalysis& analysis,
                                  const SyncOptions& options) {
  SyncedLoop out;
  out.loop = loop;

  // Collect the synchronizable loop-carried dependences.
  for (const auto& dep : analysis.deps) {
    if (!dep.loop_carried()) continue;
    if (!dep.constant_distance) {
      out.unsynchronizable.push_back(dep);
      continue;
    }
    out.synced.push_back(dep);
  }

  // One wait per distinct (source stmt, sink stmt, distance); keep the
  // guarded access of the first dependence that produced it.
  std::set<std::tuple<int, int, std::int64_t>> wait_keys;
  for (const auto& dep : out.synced) {
    if (wait_keys.insert({dep.src_stmt, dep.snk_stmt, dep.distance}).second) {
      WaitOp wait;
      wait.signal_stmt = dep.src_stmt;
      wait.distance = dep.distance;
      wait.sink_stmt = dep.snk_stmt;
      wait.sink_ref = dep.snk_ref;
      wait.sink_is_write = dep.kind != DepKind::kFlow;
      out.waits.push_back(wait);
    }
  }
  std::sort(out.waits.begin(), out.waits.end(),
            [](const WaitOp& a, const WaitOp& b) {
              if (a.sink_stmt != b.sink_stmt) return a.sink_stmt < b.sink_stmt;
              if (a.distance != b.distance) return a.distance > b.distance;
              return a.signal_stmt < b.signal_stmt;
            });

  // One send per source statement.
  std::map<int, SendOp> sends;
  for (const auto& dep : out.synced) {
    auto [it, inserted] = sends.try_emplace(dep.src_stmt);
    if (inserted) {
      it->second.signal_stmt = dep.src_stmt;
      it->second.src_ref = dep.src_ref;
      it->second.src_is_write = dep.kind != DepKind::kAnti;
    } else if (dep.kind != DepKind::kAnti && !it->second.src_is_write) {
      // Prefer guarding the write when both read- and write-sourced
      // dependences share the statement: the write executes last, so a
      // send after it covers both.
      it->second.src_ref = dep.src_ref;
      it->second.src_is_write = true;
    }
  }
  for (auto& [stmt, send] : sends) out.sends.push_back(std::move(send));

  if (options.eliminate_redundant) {
    const auto redundant = find_redundant_waits(out);
    // Erase from the back so indices stay valid.
    for (auto it = redundant.rbegin(); it != redundant.rend(); ++it)
      out.waits.erase(out.waits.begin() + static_cast<std::ptrdiff_t>(*it));
    // Sends whose signal no wait consumes are dead.
    std::set<int> used;
    for (const auto& w : out.waits) used.insert(w.signal_stmt);
    std::erase_if(out.sends, [&](const SendOp& s) {
      return used.count(s.signal_stmt) == 0;
    });
  }
  return out;
}

SyncedLoop insert_synchronization(const Loop& loop,
                                  const SyncOptions& options) {
  return insert_synchronization(loop, analyze_dependences(loop), options);
}

}  // namespace sbmp
