#include "sbmp/dep/dependence.h"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace sbmp {

const char* dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::kFlow:
      return "flow";
    case DepKind::kAnti:
      return "anti";
    case DepKind::kOutput:
      return "output";
  }
  return "?";
}

std::string Dependence::to_string() const {
  std::string out = std::string(dep_kind_name(kind)) + " S" +
                    std::to_string(src_stmt) + " -> S" +
                    std::to_string(snk_stmt) + " on " + array() + " d=" +
                    std::to_string(distance);
  if (!constant_distance) out += " (irregular)";
  if (loop_carried()) out += lexically_forward ? " LFD" : " LBD";
  return out;
}

bool DepAnalysis::is_doall() const {
  return std::none_of(deps.begin(), deps.end(),
                      [](const Dependence& d) { return d.loop_carried(); });
}

bool DepAnalysis::is_synchronizable() const {
  return std::all_of(deps.begin(), deps.end(), [](const Dependence& d) {
    return !d.loop_carried() || d.constant_distance;
  });
}

int DepAnalysis::count_carried() const {
  return static_cast<int>(
      std::count_if(deps.begin(), deps.end(),
                    [](const Dependence& d) { return d.loop_carried(); }));
}

int DepAnalysis::count_lfd() const {
  return static_cast<int>(std::count_if(
      deps.begin(), deps.end(), [](const Dependence& d) {
        return d.loop_carried() && d.lexically_forward;
      }));
}

int DepAnalysis::count_lbd() const {
  return static_cast<int>(std::count_if(
      deps.begin(), deps.end(), [](const Dependence& d) {
        return d.loop_carried() && !d.lexically_forward;
      }));
}

int DepAnalysis::count_carried_of(DepKind kind) const {
  return static_cast<int>(std::count_if(
      deps.begin(), deps.end(), [kind](const Dependence& d) {
        return d.loop_carried() && d.kind == kind;
      }));
}

namespace {

/// One static memory access of the loop body.
struct Access {
  int stmt = 0;      ///< 1-based statement id.
  bool is_write = false;
  int phase = 0;     ///< 0 = RHS read, 1 = LHS write (within a statement).
  ArrayRef ref;
};

/// Execution order of two accesses within the same iteration.
bool executes_before(const Access& a, const Access& b) {
  if (a.stmt != b.stmt) return a.stmt < b.stmt;
  return a.phase < b.phase;
}

std::vector<Access> collect_accesses(const Loop& loop) {
  std::vector<Access> out;
  std::vector<ArrayRef> reads;
  for (const auto& stmt : loop.body) {
    reads.clear();
    collect_array_refs(stmt.rhs, reads);
    // Dedup repeated reads of the same element within one statement: they
    // produce identical dependences. A statement reads a handful of
    // refs, so scanning the ones already kept (first occurrence wins,
    // like the old set insert) needs no allocating lookup structure.
    const std::size_t stmt_begin = out.size();
    for (const auto& r : reads) {
      bool dup = false;
      for (std::size_t i = stmt_begin; i < out.size(); ++i) {
        const ArrayRef& kept = out[i].ref;
        if (kept.array == r.array && kept.index.coef == r.index.coef &&
            kept.index.offset == r.index.offset) {
          dup = true;
          break;
        }
      }
      if (!dup) out.push_back({stmt.id, false, 0, r});
    }
    out.push_back({stmt.id, true, 1, stmt.lhs});
  }
  return out;
}

DepKind kind_of(const Access& src, const Access& snk) {
  if (src.is_write && !snk.is_write) return DepKind::kFlow;
  if (!src.is_write && snk.is_write) return DepKind::kAnti;
  return DepKind::kOutput;
}

/// Accumulates the conflict distances observed for one ordered access
/// pair, then collapses them into at most two Dependence records: one
/// loop-independent (distance 0) and one loop-carried (minimum positive
/// distance; `constant` iff every observed positive distance is a
/// multiple of the minimum, which makes uniform Wait(S, i-d) sync sound).
struct PairConflicts {
  bool has_zero = false;
  std::vector<std::int64_t> positive;  ///< sorted ascending, unique

  void add(std::int64_t d) {
    if (d == 0) {
      has_zero = true;
      return;
    }
    const auto it = std::lower_bound(positive.begin(), positive.end(), d);
    if (it == positive.end() || *it != d) positive.insert(it, d);
  }

  void emit(const Access& src, const Access& snk, bool capped,
            std::vector<Dependence>& out) const {
    const bool forward = src.stmt < snk.stmt;
    if (has_zero) {
      out.push_back({kind_of(src, snk), src.stmt, snk.stmt, src.ref, snk.ref,
                     0, true, forward});
    }
    if (!positive.empty()) {
      const std::int64_t dmin = positive.front();
      bool constant = !capped;
      for (const auto d : positive) {
        if (d % dmin != 0) {
          constant = false;
          break;
        }
      }
      out.push_back({kind_of(src, snk), src.stmt, snk.stmt, src.ref, snk.ref,
                     dmin, constant, forward});
    }
  }
};

/// Enumeration cap: above this trip count, unequal-coefficient pairs are
/// handled conservatively instead of exactly.
constexpr std::int64_t kExactTripCap = 1 << 16;

/// Computes the conflicts of accesses `a` (iteration i1) and `b`
/// (iteration i2): all (i1, i2) in [L,U]^2 with equal addresses. Results
/// are fed into `fwd` (i1 < i2, distance i2-i1), `bwd` (i2 < i1) and the
/// distance-0 bucket of whichever pair executes first.
void conflicts(const Access& a, const Access& b, std::int64_t lo,
               std::int64_t hi, PairConflicts& fwd, PairConflicts& bwd,
               bool& capped) {
  const auto& ia = a.ref.index;
  const auto& ib = b.ref.index;
  const std::int64_t trip = hi - lo + 1;
  if (trip <= 0) return;

  const auto add_pair = [&](std::int64_t i1, std::int64_t i2) {
    if (i1 < i2)
      fwd.add(i2 - i1);
    else if (i2 < i1)
      bwd.add(i1 - i2);
    else if (executes_before(a, b))
      fwd.add(0);
    else if (executes_before(b, a))
      bwd.add(0);
    // Same access instance conflicting with itself is not a dependence.
  };

  if (ia.coef == ib.coef) {
    if (ia.coef == 0) {
      // Constant subscripts: either never conflict or conflict in every
      // iteration pair. The conflict relation is the complete graph,
      // whose ordering is exactly enforced by the distance-1 chain.
      if (ia.offset != ib.offset) return;
      if (&a != &b) add_pair(lo, lo);  // same-iteration order
      if (trip >= 2) {
        fwd.add(1);
        bwd.add(1);
      }
      return;
    }
    // c*i1 + b1 == c*i2 + b2  =>  i2 - i1 = (b1 - b2) / c.
    const std::int64_t diff = ia.offset - ib.offset;
    if (diff % ia.coef != 0) return;
    const std::int64_t delta = diff / ia.coef;  // i2 = i1 + delta
    const std::int64_t mag = delta >= 0 ? delta : -delta;
    if (mag >= trip) return;
    if (delta == 0 && &a == &b) return;
    if (delta >= 0)
      add_pair(lo, lo + delta);
    else
      add_pair(lo - delta, lo);
    return;
  }

  if (trip > kExactTripCap) {
    // Conservative fallback for irregular subscript pairs on huge loops:
    // assume both directions may conflict at any distance.
    capped = true;
    if (&a != &b || a.is_write) {
      fwd.add(1);
      bwd.add(1);
      if (executes_before(a, b)) fwd.add(0);
      if (executes_before(b, a)) bwd.add(0);
    }
    return;
  }

  // Exact enumeration: for each i2, solve for i1 (or enumerate when the
  // `a` subscript is constant).
  for (std::int64_t i2 = lo; i2 <= hi; ++i2) {
    const std::int64_t addr = ib.eval(i2);
    if (ia.coef == 0) {
      if (ia.offset != addr) continue;
      for (std::int64_t i1 = lo; i1 <= hi; ++i1) {
        if (&a == &b && i1 == i2) continue;
        add_pair(i1, i2);
      }
      continue;
    }
    const std::int64_t num = addr - ia.offset;
    if (num % ia.coef != 0) continue;
    const std::int64_t i1 = num / ia.coef;
    if (i1 < lo || i1 > hi) continue;
    if (&a == &b && i1 == i2) continue;
    add_pair(i1, i2);
  }
}

void dedup_and_sort(std::vector<Dependence>& deps) {
  // std::tie, not std::tuple: the by-value form copied src_ref.array
  // (a std::string) on every comparator call, i.e. O(n log n) string
  // copies per analysis. A tuple of references compares identically.
  const auto key = [](const Dependence& d) {
    return std::tie(d.src_stmt, d.snk_stmt, d.kind, d.src_ref.array,
                    d.src_ref.index.coef, d.src_ref.index.offset,
                    d.snk_ref.index.coef, d.snk_ref.index.offset,
                    d.distance);
  };
  std::sort(deps.begin(), deps.end(),
            [&](const Dependence& a, const Dependence& b) {
              return key(a) < key(b);
            });
  deps.erase(std::unique(deps.begin(), deps.end(),
                         [&](const Dependence& a, const Dependence& b) {
                           return key(a) == key(b);
                         }),
             deps.end());
}

}  // namespace

DepAnalysis analyze_dependences(const Loop& loop) {
  DepAnalysis result;
  const auto accesses = collect_accesses(loop);
  const std::int64_t lo = loop.lower;
  const std::int64_t hi = loop.upper;

  for (std::size_t x = 0; x < accesses.size(); ++x) {
    for (std::size_t y = x; y < accesses.size(); ++y) {
      const Access& a = accesses[x];
      const Access& b = accesses[y];
      if (a.ref.array != b.ref.array) continue;
      if (!a.is_write && !b.is_write) continue;
      if (x == y && !a.is_write) continue;
      PairConflicts fwd;  // a is source
      PairConflicts bwd;  // b is source
      bool capped = false;
      conflicts(a, b, lo, hi, fwd, bwd, capped);
      fwd.emit(a, b, capped, result.deps);
      bwd.emit(b, a, capped, result.deps);
    }
  }
  dedup_and_sort(result.deps);
  return result;
}

DepAnalysis analyze_dependences_bruteforce(const Loop& loop) {
  DepAnalysis result;
  const auto accesses = collect_accesses(loop);
  const std::int64_t lo = loop.lower;
  const std::int64_t hi = loop.upper;

  for (std::size_t x = 0; x < accesses.size(); ++x) {
    for (std::size_t y = x; y < accesses.size(); ++y) {
      const Access& a = accesses[x];
      const Access& b = accesses[y];
      if (a.ref.array != b.ref.array) continue;
      if (!a.is_write && !b.is_write) continue;
      if (x == y && !a.is_write) continue;
      PairConflicts fwd;
      PairConflicts bwd;
      for (std::int64_t i1 = lo; i1 <= hi; ++i1) {
        for (std::int64_t i2 = lo; i2 <= hi; ++i2) {
          if (x == y && i1 == i2) continue;
          if (a.ref.index.eval(i1) != b.ref.index.eval(i2)) continue;
          if (i1 < i2)
            fwd.add(i2 - i1);
          else if (i2 < i1)
            bwd.add(i1 - i2);
          else if (executes_before(a, b))
            fwd.add(0);
          else if (executes_before(b, a))
            bwd.add(0);
        }
      }
      fwd.emit(a, b, /*capped=*/false, result.deps);
      bwd.emit(b, a, /*capped=*/false, result.deps);
    }
  }
  dedup_and_sort(result.deps);
  return result;
}

}  // namespace sbmp
