#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sbmp/ir/loop.h"

namespace sbmp {

/// Classic data-dependence kinds.
enum class DepKind { kFlow, kAnti, kOutput };

[[nodiscard]] const char* dep_kind_name(DepKind k);

/// One data dependence between two statements of a loop.
///
/// `distance == 0` means loop-independent (same iteration); `distance > 0`
/// means loop-carried: the access in iteration `i` depends on the access
/// in iteration `i - distance`.
///
/// `lexically_forward` implements the paper's definition: the dependence
/// is forward iff the source statement occurs textually strictly before
/// the sink statement. A loop-carried dependence of a statement on itself
/// is therefore backward (LBD), which matches the paper's treatment of
/// recurrences (the Wait precedes the statement, the Send follows it).
struct Dependence {
  DepKind kind = DepKind::kFlow;
  int src_stmt = 0;  ///< 1-based id of the source statement.
  int snk_stmt = 0;  ///< 1-based id of the sink statement.
  ArrayRef src_ref;
  ArrayRef snk_ref;
  std::int64_t distance = 0;
  /// True when the dependence distance is the same for every iteration
  /// pair (always the case for equal subscript coefficients). Irregular
  /// dependences (coef mismatch) report the minimum positive distance and
  /// cannot be synchronized with the paper's Wait(S, i-d) scheme.
  bool constant_distance = true;
  bool lexically_forward = false;

  [[nodiscard]] bool loop_carried() const { return distance > 0; }
  [[nodiscard]] std::string array() const { return src_ref.array; }
  [[nodiscard]] std::string to_string() const;
};

/// Result of analyzing one loop.
struct DepAnalysis {
  std::vector<Dependence> deps;

  /// Doall iff no loop-carried dependence exists.
  [[nodiscard]] bool is_doall() const;
  /// True iff every loop-carried dependence has a constant distance, i.e.
  /// the loop can be run as a synchronized DOACROSS loop.
  [[nodiscard]] bool is_synchronizable() const;
  [[nodiscard]] int count_carried() const;
  [[nodiscard]] int count_lfd() const;  ///< loop-carried, lexically forward
  [[nodiscard]] int count_lbd() const;  ///< loop-carried, lexically backward
  [[nodiscard]] int count_carried_of(DepKind kind) const;
};

/// Analyzes all data dependences of `loop`.
///
/// Subscripts are affine (`c*i + k`), so the test is exact:
///  * equal coefficients solve in closed form to a constant distance;
///  * unequal coefficients are solved with the extended-gcd method over
///    the iteration box, collapsing the solution set into one
///    irregular dependence carrying the minimum positive distance.
///
/// Reads on the RHS of a statement execute before the write of its LHS,
/// which orders same-iteration same-statement conflicts.
[[nodiscard]] DepAnalysis analyze_dependences(const Loop& loop);

/// Reference implementation that enumerates every iteration pair
/// directly. Exponentially slower; used by property tests to validate
/// `analyze_dependences` on small loops.
[[nodiscard]] DepAnalysis analyze_dependences_bruteforce(const Loop& loop);

}  // namespace sbmp
