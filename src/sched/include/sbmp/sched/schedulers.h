#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// Available instruction schedulers.
enum class SchedulerKind {
  /// Program order packed onto the issue slots (a non-reordering
  /// superscalar); the weakest baseline.
  kInOrder,
  /// Classic list scheduling with critical-path priority — the paper's
  /// baseline ("T_a"). It respects the synchronization-condition arcs
  /// but optimizes only ILP, so waits float early and sends sink late,
  /// stretching LBD synchronization spans.
  kList,
  /// The synchronization-marker approach of the author's earlier
  /// ISPAN'94 work (the paper's reference [18]): every Wait/Send acts
  /// as a scheduling barrier, so instructions reorder freely *between*
  /// markers but never across them. Correct by construction, but it
  /// neither converts LBDs nor compacts paths.
  kSyncBarrier,
  /// The paper's synchronization-aware technique ("T_b").
  kSyncAware,
};

[[nodiscard]] const char* scheduler_name(SchedulerKind k);

/// In-order baseline: place each instruction at the earliest slot not
/// before its predecessor in program order.
[[nodiscard]] Schedule schedule_inorder(const TacFunction& tac,
                                        const Dfg& dfg,
                                        const MachineDesc& config);

/// Classic cycle-driven list scheduling, priority = latency-weighted
/// critical-path height.
[[nodiscard]] Schedule schedule_list(const TacFunction& tac, const Dfg& dfg,
                                     const MachineDesc& config);

/// The slot assignment schedule_list would produce, without
/// materializing the per-group instruction lists (one heap allocation
/// per nonempty slot). Fills `slot_of` (instruction id -> group index,
/// index 0 unused, capacity reused across calls) and returns the
/// schedule length. Placement decisions are bit-identical to
/// schedule_list's — the never-degrade guard relies on that to evaluate
/// the analytic bound of the would-be list schedule for free before
/// deciding whether to build it.
[[nodiscard]] int schedule_list_slots(const TacFunction& tac, const Dfg& dfg,
                                      const MachineDesc& config,
                                      std::vector<int>& slot_of);

/// Synchronization-marker scheduling (reference [18]): list-schedules
/// each span of instructions between consecutive sync operations, with
/// every Wait/Send placed after everything before it and before
/// everything after it in program order.
[[nodiscard]] Schedule schedule_sync_barrier(const TacFunction& tac,
                                             const Dfg& dfg,
                                             const MachineDesc& config);

/// Ablation switches for the sync-aware scheduler (all on reproduces the
/// paper's technique).
struct SyncAwareOptions {
  /// Schedule the nodes of each synchronization path in consecutive
  /// issue groups (Section 3.2's scheduling rule). Off: Sigwat
  /// components fall back to ASAP order.
  bool contiguous_paths = true;
  /// Convert Sig-graph and Wat-graph pairs into LFD by placing sends
  /// before / waits after their counterpart (Section 3.2). Off: those
  /// components are scheduled like plain ones.
  bool convert_lfd = true;
};

/// The paper's synchronization-aware scheduler:
///  1. Sigwat components first, in descending (n/d)*|SP| priority; inside
///     each, synchronization paths are placed in consecutive groups
///     (overlapping paths merged and scheduled together), ancestors
///     filled ASAP into spare lanes, then the remaining component nodes;
///  2. Sig components ASAP, putting each Send_Signal before its paired
///     Wait_Signal;
///  3. Wat components with each Wait_Signal constrained after its paired
///     Send_Signal;
///  4. remaining plain components ASAP into the holes.
/// `n_iterations` enters the priority (n/d)*|SP| of step 1.
[[nodiscard]] Schedule schedule_sync_aware(const TacFunction& tac,
                                           const Dfg& dfg,
                                           const MachineDesc& config,
                                           std::int64_t n_iterations,
                                           const SyncAwareOptions& options = {});

/// Dispatch by kind (sync-aware uses default options).
[[nodiscard]] Schedule run_scheduler(SchedulerKind kind,
                                     const TacFunction& tac, const Dfg& dfg,
                                     const MachineDesc& config,
                                     std::int64_t n_iterations);

/// Validates a schedule: every instruction placed exactly once, issue
/// width and function-unit capacities respected, and every DFG edge
/// satisfied with its full latency (slot(to) >= slot(from) + latency).
/// Returns human-readable violations; empty means valid.
[[nodiscard]] std::vector<std::string> verify_schedule(
    const TacFunction& tac, const Dfg& dfg, const MachineDesc& config,
    const Schedule& schedule);

}  // namespace sbmp
