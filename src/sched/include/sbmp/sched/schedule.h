#pragma once

#include <string>
#include <vector>

#include "sbmp/codegen/tac.h"

namespace sbmp {

/// A static schedule of one loop iteration: a sequence of issue groups.
/// Group `g` issues in cycle order after group `g-1`; the simulator may
/// stall a group for operand latencies or signal waits, but never
/// reorders instructions across groups.
struct Schedule {
  /// Instruction ids per issue group, in lane order.
  std::vector<std::vector<int>> groups;
  /// Instruction id -> group index (0-based). Index 0 is unused.
  std::vector<int> slot_of;

  [[nodiscard]] int length() const { return static_cast<int>(groups.size()); }
  [[nodiscard]] int slot(int id) const {
    return slot_of[static_cast<std::size_t>(id)];
  }

  /// Renders the schedule in the style of the paper's Fig 4: one issue
  /// group per line, lanes padded with '-', synchronization operations
  /// annotated on the right.
  [[nodiscard]] std::string to_string(const TacFunction& tac,
                                      int issue_width) const;
};

}  // namespace sbmp
