#pragma once

#include <string>
#include <vector>

#include "sbmp/codegen/tac.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"
#include "sbmp/sync/sync.h"

namespace sbmp {

/// Sig/Wat pairing integrity, checked against the synchronization
/// layer's SyncedLoop rather than the TAC's own cross-references: every
/// Wait_Signal must consume exactly one Send_Signal on its stream with a
/// consistent distance, every wait/send must trace back to a sync-layer
/// operation, and every sync-layer operation must be realized in the
/// code (waits may legally disappear only when `waits_eliminated` — the
/// pipeline ran redundant-wait elimination). A wait whose send is
/// missing would simply never block in hardware, silently losing the
/// dependence, so it is an error here rather than a runtime hazard.
[[nodiscard]] std::vector<std::string> verify_sync_pairing(
    const TacFunction& tac, const SyncedLoop& synced,
    bool waits_eliminated = false);

/// The paper's two synchronization conditions, checked directly against
/// the source/sink access instructions re-resolved from the SyncedLoop
/// (statement id, array, subscript, access kind) — deliberately NOT via
/// the DFG's kSync arcs or the TAC's guarded_instrs, so a dropped or
/// corrupted arc is itself detected:
///  1. a Send_Signal never issues before (or with) its source access:
///     slot(send) >= slot(src) + 1;
///  2. a Wait_Signal never issues after (or with) its sink access:
///     slot(snk) >= slot(wait) + 1.
/// Waits absent from the TAC are skipped (redundant-wait elimination);
/// pairing integrity is verify_sync_pairing's concern.
[[nodiscard]] std::vector<std::string> verify_sync_conditions(
    const TacFunction& tac, const SyncedLoop& synced,
    const Schedule& schedule);

}  // namespace sbmp
