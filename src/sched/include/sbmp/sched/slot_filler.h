#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// Incrementally builds a Schedule while tracking per-group issue and
/// function-unit capacity. Shared by all schedulers.
///
/// Capacity is indexed two ways: exact per-slot counters (issue_used_,
/// fu_used_) answer "is this slot full for this instruction", and a
/// parallel full-slot bitset (one lane for issue plus one per FU class,
/// 64 slots per word) lets the free-slot searches skip saturated slots a
/// word at a time instead of probing the counters one slot at a time.
class SlotFiller {
 public:
  /// `materialize` = false builds only the slot assignment (slot_of and
  /// the length), never touching the per-group id lists — the skip path
  /// of the never-degrade guard only needs slots for the analytic
  /// bound, and the group lists are one heap allocation per nonempty
  /// slot it would immediately discard. A slots-only filler supports
  /// take_slots() but not take().
  SlotFiller(const TacFunction& tac, const Dfg& dfg,
             const MachineDesc& config, bool materialize = true);
  SlotFiller(const SlotFiller&) = delete;
  SlotFiller& operator=(const SlotFiller&) = delete;
  ~SlotFiller();

  [[nodiscard]] bool placed(int id) const {
    return sched_.slot_of[static_cast<std::size_t>(id)] >= 0;
  }
  [[nodiscard]] int slot(int id) const {
    return sched_.slot_of[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int num_placed() const { return num_placed_; }
  [[nodiscard]] int length() const {
    return materialize_ ? sched_.length() : virtual_len_;
  }

  /// Earliest cycle at which `id` may issue given its placed
  /// predecessors; -1 if some predecessor is still unplaced.
  [[nodiscard]] int ready_slot(int id) const;

  /// Like ready_slot, but pretends predecessor `ignored_pred` does not
  /// exist (used to pre-compute a sink's slot before its wait is
  /// placed). Still -1 if another predecessor is unplaced.
  [[nodiscard]] int ready_slot_ignoring(int id, int ignored_pred) const;

  /// Latest slot in [0, limit) with capacity for `id`, or -1 when every
  /// slot below `limit` is full.
  [[nodiscard]] int latest_free_slot_before(int id, int limit) const;

  /// True if group `slot` has a free lane and a free function unit of the
  /// right class for `id` (slots beyond the current length are empty).
  [[nodiscard]] bool capacity_ok(int slot, int id) const;

  /// Places `id` at the earliest feasible slot >= max(min_slot,
  /// ready_slot(id)), appending groups as needed. All predecessors must
  /// already be placed. Returns the chosen slot.
  int place_earliest(int id, int min_slot);

  /// Places `id` at exactly `slot`; the caller must have checked
  /// readiness and capacity.
  void place_at(int id, int slot);

  /// Recursively places all unplaced transitive predecessors of `id` at
  /// their earliest feasible slots (ASAP with hole filling). Does not
  /// place `id` itself.
  void place_ancestors_asap(int id);

  /// Finalizes: asserts every instruction is placed and returns the
  /// schedule. Only valid on a materializing filler.
  [[nodiscard]] Schedule take();

  /// Slots-only finalization: asserts every instruction is placed,
  /// copies the slot assignment (id -> group index, index 0 unused)
  /// into `slot_of` reusing its capacity, and returns the schedule
  /// length. Valid on any filler; the only choice on a slots-only one.
  [[nodiscard]] int take_slots(std::vector<int>& slot_of);

 private:
  /// Lanes of the full-slot bitset: issue first, then one per FU class.
  static constexpr int kFullStride = 1 + kNumFuClasses;

  /// The capacity-tracking state, separated from the Schedule being
  /// built so it can be pooled: every compiled loop constructs one or
  /// two SlotFillers, and re-acquiring these vectors' heap blocks from a
  /// per-thread pool instead of reallocating them is a measurable win on
  /// the compile hot path. The pool hands blocks out exclusively, so
  /// nested live fillers (should any scheduler ever hold two) each get
  /// their own.
  struct Scratch {
    std::vector<int> issue_used;
    std::vector<std::array<int, kNumFuClasses>> fu_used;
    /// kFullStride words per 64 slots; bit set = lane saturated.
    std::vector<std::uint64_t> full;
  };

  /// This thread's parked Scratch blocks, handed out exclusively
  /// (popped on acquire, pushed back on release) so simultaneously live
  /// fillers never share one.
  [[nodiscard]] static std::vector<std::unique_ptr<Scratch>>& pool();

  void ensure_slot(int slot);
  [[nodiscard]] bool counts_for_issue(int id) const;
  /// First slot >= start with capacity for `id` (possibly length()).
  [[nodiscard]] int first_free_at_or_after(int id, int start) const;
  void mark_full(int slot, int lane) {
    scratch_->full[static_cast<std::size_t>(slot / 64) * kFullStride +
                   static_cast<std::size_t>(lane)] |=
        std::uint64_t{1} << (slot % 64);
  }

  const TacFunction& tac_;
  const Dfg& dfg_;
  const MachineDesc& config_;
  Schedule sched_;
  std::unique_ptr<Scratch> scratch_;
  int num_placed_ = 0;
  /// Schedule length when !materialize_ (sched_.groups stays empty).
  int virtual_len_ = 0;
  const bool materialize_;
};

}  // namespace sbmp
