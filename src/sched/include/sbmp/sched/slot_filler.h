#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// Incrementally builds a Schedule while tracking per-group issue and
/// function-unit capacity. Shared by all schedulers.
///
/// Capacity is indexed two ways: exact per-slot counters (issue_used_,
/// fu_used_) answer "is this slot full for this instruction", and a
/// parallel full-slot bitset (one lane for issue plus one per FU class,
/// 64 slots per word) lets the free-slot searches skip saturated slots a
/// word at a time instead of probing the counters one slot at a time.
class SlotFiller {
 public:
  SlotFiller(const TacFunction& tac, const Dfg& dfg,
             const MachineConfig& config);

  [[nodiscard]] bool placed(int id) const {
    return sched_.slot_of[static_cast<std::size_t>(id)] >= 0;
  }
  [[nodiscard]] int slot(int id) const {
    return sched_.slot_of[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int num_placed() const { return num_placed_; }
  [[nodiscard]] int length() const { return sched_.length(); }

  /// Earliest cycle at which `id` may issue given its placed
  /// predecessors; -1 if some predecessor is still unplaced.
  [[nodiscard]] int ready_slot(int id) const;

  /// Like ready_slot, but pretends predecessor `ignored_pred` does not
  /// exist (used to pre-compute a sink's slot before its wait is
  /// placed). Still -1 if another predecessor is unplaced.
  [[nodiscard]] int ready_slot_ignoring(int id, int ignored_pred) const;

  /// Latest slot in [0, limit) with capacity for `id`, or -1 when every
  /// slot below `limit` is full.
  [[nodiscard]] int latest_free_slot_before(int id, int limit) const;

  /// True if group `slot` has a free lane and a free function unit of the
  /// right class for `id` (slots beyond the current length are empty).
  [[nodiscard]] bool capacity_ok(int slot, int id) const;

  /// Places `id` at the earliest feasible slot >= max(min_slot,
  /// ready_slot(id)), appending groups as needed. All predecessors must
  /// already be placed. Returns the chosen slot.
  int place_earliest(int id, int min_slot);

  /// Places `id` at exactly `slot`; the caller must have checked
  /// readiness and capacity.
  void place_at(int id, int slot);

  /// Recursively places all unplaced transitive predecessors of `id` at
  /// their earliest feasible slots (ASAP with hole filling). Does not
  /// place `id` itself.
  void place_ancestors_asap(int id);

  /// Finalizes: asserts every instruction is placed and returns the
  /// schedule.
  [[nodiscard]] Schedule take();

 private:
  /// Lanes of the full-slot bitset: issue first, then one per FU class.
  static constexpr int kFullStride = 1 + kNumFuClasses;

  void ensure_slot(int slot);
  [[nodiscard]] bool counts_for_issue(int id) const;
  /// First slot >= start with capacity for `id` (possibly length()).
  [[nodiscard]] int first_free_at_or_after(int id, int start) const;
  void mark_full(int slot, int lane) {
    full_[static_cast<std::size_t>(slot / 64) * kFullStride +
          static_cast<std::size_t>(lane)] |= std::uint64_t{1} << (slot % 64);
  }

  const TacFunction& tac_;
  const Dfg& dfg_;
  const MachineConfig& config_;
  Schedule sched_;
  std::vector<int> issue_used_;
  std::vector<std::array<int, kNumFuClasses>> fu_used_;
  /// kFullStride words per 64 slots; bit set = that lane is saturated.
  std::vector<std::uint64_t> full_;
  int num_placed_ = 0;
};

}  // namespace sbmp
