#pragma once

#include <array>

#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// Incrementally builds a Schedule while tracking per-group issue and
/// function-unit capacity. Shared by all schedulers.
class SlotFiller {
 public:
  SlotFiller(const TacFunction& tac, const Dfg& dfg,
             const MachineConfig& config);

  [[nodiscard]] bool placed(int id) const {
    return sched_.slot_of[static_cast<std::size_t>(id)] >= 0;
  }
  [[nodiscard]] int slot(int id) const {
    return sched_.slot_of[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int num_placed() const { return num_placed_; }
  [[nodiscard]] int length() const { return sched_.length(); }

  /// Earliest cycle at which `id` may issue given its placed
  /// predecessors; -1 if some predecessor is still unplaced.
  [[nodiscard]] int ready_slot(int id) const;

  /// Like ready_slot, but pretends predecessor `ignored_pred` does not
  /// exist (used to pre-compute a sink's slot before its wait is
  /// placed). Still -1 if another predecessor is unplaced.
  [[nodiscard]] int ready_slot_ignoring(int id, int ignored_pred) const;

  /// Latest slot in [0, limit) with capacity for `id`, or -1 when every
  /// slot below `limit` is full.
  [[nodiscard]] int latest_free_slot_before(int id, int limit) const;

  /// True if group `slot` has a free lane and a free function unit of the
  /// right class for `id` (slots beyond the current length are empty).
  [[nodiscard]] bool capacity_ok(int slot, int id) const;

  /// Places `id` at the earliest feasible slot >= max(min_slot,
  /// ready_slot(id)), appending groups as needed. All predecessors must
  /// already be placed. Returns the chosen slot.
  int place_earliest(int id, int min_slot);

  /// Places `id` at exactly `slot`; the caller must have checked
  /// readiness and capacity.
  void place_at(int id, int slot);

  /// Recursively places all unplaced transitive predecessors of `id` at
  /// their earliest feasible slots (ASAP with hole filling). Does not
  /// place `id` itself.
  void place_ancestors_asap(int id);

  /// Finalizes: asserts every instruction is placed and returns the
  /// schedule.
  [[nodiscard]] Schedule take();

 private:
  void ensure_slot(int slot);
  [[nodiscard]] bool counts_for_issue(int id) const;

  const TacFunction& tac_;
  const Dfg& dfg_;
  const MachineConfig& config_;
  Schedule sched_;
  std::vector<int> issue_used_;
  std::vector<std::array<int, kNumFuClasses>> fu_used_;
  int num_placed_ = 0;
};

}  // namespace sbmp
