#pragma once

#include <array>
#include <string>

#include "sbmp/dfg/dfg.h"
#include "sbmp/machine/machine.h"
#include "sbmp/sched/schedule.h"

namespace sbmp {

/// Static occupancy statistics of one schedule on one machine shape.
struct ScheduleStats {
  int groups = 0;
  int instructions = 0;
  int empty_groups = 0;  ///< pure latency-padding groups
  /// Fraction of issue lanes filled: instructions / (groups * width).
  double issue_utilization = 0.0;
  /// Per-class busy fraction: issues on the class / (groups * #FU).
  std::array<double, kNumFuClasses> fu_utilization{};
  /// The quantity the paper's technique minimizes: the worst
  /// (send slot - wait slot + 1) over synchronization pairs; <= 0 when
  /// every pair is LFD.
  int worst_sync_span = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Computes occupancy statistics for `schedule`.
[[nodiscard]] ScheduleStats compute_schedule_stats(const TacFunction& tac,
                                                   const Dfg& dfg,
                                                   const Schedule& schedule,
                                                   const MachineDesc& config);

}  // namespace sbmp
