#include "sbmp/sched/schedulers.h"

namespace sbmp {

std::vector<std::string> verify_schedule(const TacFunction& tac,
                                         const Dfg& dfg,
                                         const MachineDesc& config,
                                         const Schedule& schedule) {
  std::vector<std::string> violations;
  const auto complain = [&](std::string msg) {
    violations.push_back(std::move(msg));
  };

  // Placement: every instruction exactly once, consistent maps.
  std::vector<int> seen(static_cast<std::size_t>(tac.size()) + 1, 0);
  for (std::size_t g = 0; g < schedule.groups.size(); ++g) {
    for (const int id : schedule.groups[g]) {
      if (id < 1 || id > tac.size()) {
        complain("group " + std::to_string(g) + " holds invalid id " +
                 std::to_string(id));
        continue;
      }
      ++seen[static_cast<std::size_t>(id)];
      if (schedule.slot(id) != static_cast<int>(g))
        complain("slot_of[" + std::to_string(id) + "] disagrees with group " +
                 std::to_string(g));
    }
  }
  for (int id = 1; id <= tac.size(); ++id) {
    if (seen[static_cast<std::size_t>(id)] != 1)
      complain("instruction " + std::to_string(id) + " placed " +
               std::to_string(seen[static_cast<std::size_t>(id)]) +
               " times");
  }
  if (!violations.empty()) return violations;  // structure is broken

  // Capacity: issue width and per-class function units.
  for (std::size_t g = 0; g < schedule.groups.size(); ++g) {
    int issued = 0;
    std::array<int, kNumFuClasses> fu_used{};
    for (const int id : schedule.groups[g]) {
      const auto& instr = tac.by_id(id);
      if (config.sync_consumes_slot || !instr.is_sync()) ++issued;
      const FuClass fu = instr.fu();
      if (fu != FuClass::kNone) ++fu_used[static_cast<std::size_t>(fu)];
    }
    if (issued > config.issue_width)
      complain("group " + std::to_string(g) + " issues " +
               std::to_string(issued) + " > width " +
               std::to_string(config.issue_width));
    for (int f = 0; f < kNumFuClasses; ++f) {
      if (fu_used[static_cast<std::size_t>(f)] >
          config.fu_count(static_cast<FuClass>(f)))
        complain("group " + std::to_string(g) + " oversubscribes " +
                 fu_class_name(static_cast<FuClass>(f)) + " units");
    }
  }

  // Dependences: full static latency satisfaction. The flat CSR edge
  // array is the per-node successor iteration, flattened.
  for (const auto& e : dfg.edges()) {
    if (schedule.slot(e.to) < schedule.slot(e.from) + e.latency)
      complain("edge " + std::to_string(e.from) + " -> " +
               std::to_string(e.to) + " violated: slots " +
               std::to_string(schedule.slot(e.from)) + " -> " +
               std::to_string(schedule.slot(e.to)) + ", latency " +
               std::to_string(e.latency));
  }
  return violations;
}

}  // namespace sbmp
