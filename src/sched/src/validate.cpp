#include "sbmp/sched/validate.h"

#include <algorithm>

namespace sbmp {

namespace {

std::vector<int> find_accesses(const TacFunction& tac, int stmt,
                               const ArrayRef& ref, bool is_write) {
  std::vector<int> out;
  for (const auto& instr : tac.instrs) {
    if (instr.stmt_id != stmt || !instr.is_mem()) continue;
    const bool write = instr.op == Opcode::kStore;
    if (write != is_write) continue;
    if (instr.array == ref.array && instr.mem_index == ref.index)
      out.push_back(instr.id);
  }
  return out;
}

/// The wait instruction realizing `op`, or 0 when absent.
int wait_instr_of(const TacFunction& tac, const WaitOp& op) {
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait && instr.signal_stmt == op.signal_stmt &&
        instr.sync_distance == op.distance && instr.stmt_id == op.sink_stmt)
      return instr.id;
  }
  return 0;
}

int send_instr_of(const TacFunction& tac, const SendOp& op) {
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kSend && instr.signal_stmt == op.signal_stmt)
      return instr.id;
  }
  return 0;
}

}  // namespace

std::vector<std::string> verify_sync_pairing(const TacFunction& tac,
                                             const SyncedLoop& synced,
                                             bool waits_eliminated) {
  std::vector<std::string> violations;
  const auto complain = [&](std::string msg) {
    violations.push_back(std::move(msg));
  };

  // Every sync-layer operation must be realized exactly once.
  for (const auto& send : synced.sends) {
    int count = 0;
    for (const auto& instr : tac.instrs)
      if (instr.op == Opcode::kSend && instr.signal_stmt == send.signal_stmt)
        ++count;
    if (count != 1)
      complain("Send_Signal(S" + std::to_string(send.signal_stmt) +
               ") realized " + std::to_string(count) +
               " times, expected exactly 1");
  }
  for (const auto& wait : synced.waits) {
    int count = 0;
    for (const auto& instr : tac.instrs)
      if (instr.op == Opcode::kWait &&
          instr.signal_stmt == wait.signal_stmt &&
          instr.sync_distance == wait.distance &&
          instr.stmt_id == wait.sink_stmt)
        ++count;
    if (count == 0 && !waits_eliminated)
      complain("Wait_Signal(S" + std::to_string(wait.signal_stmt) + ", " +
               synced.loop.iter_var + "-" + std::to_string(wait.distance) +
               ") before S" + std::to_string(wait.sink_stmt) +
               " has no wait instruction");
    if (count > 1)
      complain("Wait_Signal(S" + std::to_string(wait.signal_stmt) + ", " +
               synced.loop.iter_var + "-" + std::to_string(wait.distance) +
               ") before S" + std::to_string(wait.sink_stmt) +
               " realized " + std::to_string(count) + " times");
  }

  // Every sync instruction must trace back to the sync layer, and every
  // wait must have exactly one partner send on its stream with a legal
  // distance.
  for (const auto& instr : tac.instrs) {
    if (instr.op == Opcode::kWait) {
      const bool known =
          std::any_of(synced.waits.begin(), synced.waits.end(),
                      [&](const WaitOp& w) {
                        return w.signal_stmt == instr.signal_stmt &&
                               w.distance == instr.sync_distance &&
                               w.sink_stmt == instr.stmt_id;
                      });
      if (!known)
        complain("wait instr " + std::to_string(instr.id) +
                 " matches no sync-layer Wait_Signal");
      if (instr.sync_distance < 1)
        complain("wait instr " + std::to_string(instr.id) +
                 " has non-positive distance " +
                 std::to_string(instr.sync_distance));
      int partners = 0;
      for (const auto& other : tac.instrs)
        if (other.op == Opcode::kSend &&
            other.signal_stmt == instr.signal_stmt)
          ++partners;
      if (partners != 1)
        complain("wait instr " + std::to_string(instr.id) + " on stream S" +
                 std::to_string(instr.signal_stmt) + " has " +
                 std::to_string(partners) +
                 " partner sends, expected exactly 1 (an unpaired wait "
                 "never blocks)");
    } else if (instr.op == Opcode::kSend) {
      const bool known =
          std::any_of(synced.sends.begin(), synced.sends.end(),
                      [&](const SendOp& s) {
                        return s.signal_stmt == instr.signal_stmt;
                      });
      if (!known)
        complain("send instr " + std::to_string(instr.id) +
                 " matches no sync-layer Send_Signal");
    }
  }
  return violations;
}

std::vector<std::string> verify_sync_conditions(const TacFunction& tac,
                                                const SyncedLoop& synced,
                                                const Schedule& schedule) {
  std::vector<std::string> violations;
  const auto complain = [&](std::string msg) {
    violations.push_back(std::move(msg));
  };

  // Condition 1: the signal is sent only after its source access issued.
  for (const auto& send : synced.sends) {
    const int send_id = send_instr_of(tac, send);
    if (send_id == 0) continue;  // pairing's concern
    const std::vector<int> srcs =
        find_accesses(tac, send.signal_stmt, send.src_ref, send.src_is_write);
    if (srcs.empty()) {
      complain("send instr " + std::to_string(send_id) +
               ": source access " + send.src_ref.array + "[" +
               send.src_ref.index.to_string(synced.loop.iter_var) +
               "] of S" + std::to_string(send.signal_stmt) +
               " not found in the code");
      continue;
    }
    for (const int src : srcs) {
      if (schedule.slot(send_id) < schedule.slot(src) + 1)
        complain("sync condition 1 violated: send instr " +
                 std::to_string(send_id) + " (slot " +
                 std::to_string(schedule.slot(send_id)) +
                 ") does not follow its source access instr " +
                 std::to_string(src) + " (slot " +
                 std::to_string(schedule.slot(src)) + ")");
    }
  }

  // Condition 2: the sink access issues only after its wait issued.
  for (const auto& wait : synced.waits) {
    const int wait_id = wait_instr_of(tac, wait);
    if (wait_id == 0) continue;  // eliminated or missing (pairing's concern)
    const std::vector<int> snks =
        find_accesses(tac, wait.sink_stmt, wait.sink_ref, wait.sink_is_write);
    if (snks.empty()) {
      complain("wait instr " + std::to_string(wait_id) + ": sink access " +
               wait.sink_ref.array + "[" +
               wait.sink_ref.index.to_string(synced.loop.iter_var) +
               "] of S" + std::to_string(wait.sink_stmt) +
               " not found in the code");
      continue;
    }
    for (const int snk : snks) {
      if (schedule.slot(snk) < schedule.slot(wait_id) + 1)
        complain("sync condition 2 violated: sink access instr " +
                 std::to_string(snk) + " (slot " +
                 std::to_string(schedule.slot(snk)) +
                 ") does not follow its wait instr " +
                 std::to_string(wait_id) + " (slot " +
                 std::to_string(schedule.slot(wait_id)) + ")");
    }
  }
  return violations;
}

}  // namespace sbmp
