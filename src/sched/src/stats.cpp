#include "sbmp/sched/stats.h"

#include <algorithm>

#include "sbmp/support/strings.h"

namespace sbmp {

std::string ScheduleStats::to_string() const {
  std::string out = std::to_string(groups) + " groups, " +
                    std::to_string(instructions) + " instructions, " +
                    std::to_string(empty_groups) + " padding groups, " +
                    "issue " + format_percent(issue_utilization) + ", FU";
  for (int f = 0; f < kNumFuClasses; ++f) {
    out += " ";
    out += fu_class_name(static_cast<FuClass>(f));
    out += "=" + format_percent(fu_utilization[static_cast<std::size_t>(f)]);
  }
  out += ", worst sync span " + std::to_string(worst_sync_span);
  return out;
}

ScheduleStats compute_schedule_stats(const TacFunction& tac, const Dfg& dfg,
                                     const Schedule& schedule,
                                     const MachineDesc& config) {
  ScheduleStats stats;
  stats.groups = schedule.length();
  stats.instructions = tac.size();

  std::array<int, kNumFuClasses> fu_busy{};
  for (const auto& group : schedule.groups) {
    if (group.empty()) ++stats.empty_groups;
    for (const int id : group) {
      const FuClass fu = tac.by_id(id).fu();
      if (fu != FuClass::kNone) ++fu_busy[static_cast<std::size_t>(fu)];
    }
  }
  if (stats.groups > 0) {
    stats.issue_utilization =
        static_cast<double>(stats.instructions) /
        (static_cast<double>(stats.groups) * config.issue_width);
    for (int f = 0; f < kNumFuClasses; ++f) {
      const int units = config.fu_count(static_cast<FuClass>(f));
      stats.fu_utilization[static_cast<std::size_t>(f)] =
          static_cast<double>(fu_busy[static_cast<std::size_t>(f)]) /
          (static_cast<double>(stats.groups) * units);
    }
  }
  for (const auto& pair : dfg.pairs()) {
    stats.worst_sync_span =
        std::max(stats.worst_sync_span, schedule.slot(pair.send_instr) -
                                            schedule.slot(pair.wait_instr) +
                                            1);
  }
  return stats;
}

}  // namespace sbmp
