#include <algorithm>

#include "sbmp/sched/schedulers.h"
#include "sbmp/sched/slot_filler.h"

namespace sbmp {

namespace {

/// Per-thread working set of schedule_list, retained across calls: the
/// fallback path of every compiled loop runs the list scheduler, and at
/// corpus sizes the ~10 vector allocations per call (the bucket table's
/// inner vectors above all) cost as much as the scheduling itself. Each
/// call fully re-initializes what it reads; buckets are cleared (not
/// deallocated) so their heap blocks survive.
struct ListScratch {
  std::vector<int> order;
  std::vector<int> rank;
  std::vector<int> pending;
  std::vector<int> ready_time;
  std::vector<std::vector<int>> buckets;
  std::vector<int> avail;
};

ListScratch& list_scratch() {
  thread_local ListScratch scratch;
  return scratch;
}

/// The list-scheduling placement loop, shared verbatim by the
/// materializing (schedule_list) and slots-only (schedule_list_slots)
/// entry points so their decisions cannot diverge.
void run_list_placement(SlotFiller& filler, const TacFunction& tac,
                        const Dfg& dfg, const MachineDesc& config) {
  const std::vector<int>& height = dfg.heights();

  // Cycle-driven list scheduling: at each cycle, issue the ready
  // instructions in descending critical-path priority until capacity
  // runs out.
  const int n = tac.size();
  ListScratch& scratch = list_scratch();
  std::vector<int>& order = scratch.order;
  order.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i + 1;
  // Ties broken by ascending id reproduces stable_sort on the 1..n
  // sequence exactly, without stable_sort's temporary buffer.
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int ha = height[static_cast<std::size_t>(a)];
    const int hb = height[static_cast<std::size_t>(b)];
    return ha != hb ? ha > hb : a < b;
  });

  // A zero-latency edge can make a successor ready within the cycle
  // being scanned, mid-scan — the event-driven ready list below cannot
  // express that, so such machine configurations keep the original
  // rescan loop.
  if (config.min_latency() < 1) {
    int cycle = 0;
    while (filler.num_placed() < n) {
      for (const int id : order) {
        if (filler.placed(id)) continue;
        const int ready = filler.ready_slot(id);
        if (ready < 0 || ready > cycle) continue;
        if (!filler.capacity_ok(cycle, id)) continue;
        filler.place_at(id, cycle);
      }
      ++cycle;
    }
    return;
  }

  // Event-driven form of the same loop: with every edge latency >= 1,
  // placing an instruction can only make successors ready in a later
  // cycle, so instead of rescanning all unplaced instructions each
  // cycle, each instruction enters the bucket of the cycle its last
  // predecessor result arrives and then waits in a priority-ordered
  // avail list until capacity admits it. The placement decisions are
  // identical to the rescan loop's.
  std::vector<int>& rank = scratch.rank;
  rank.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i)
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  std::vector<int>& pending = scratch.pending;
  pending.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int>& ready_time = scratch.ready_time;
  ready_time.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::vector<int>>& buckets = scratch.buckets;
  for (auto& bucket : buckets) bucket.clear();
  if (buckets.empty()) buckets.resize(1);
  for (int id = 1; id <= n; ++id) {
    pending[static_cast<std::size_t>(id)] = dfg.indegree(id);
    if (pending[static_cast<std::size_t>(id)] == 0)
      buckets[0].push_back(id);
  }
  const auto by_rank = [&](int a, int b) {
    return rank[static_cast<std::size_t>(a)] <
           rank[static_cast<std::size_t>(b)];
  };
  // Ready but capacity-blocked, in rank order.
  std::vector<int>& avail = scratch.avail;
  avail.clear();
  int placed = 0;
  for (int cycle = 0; placed < n; ++cycle) {
    if (static_cast<std::size_t>(cycle) < buckets.size() &&
        !buckets[static_cast<std::size_t>(cycle)].empty()) {
      auto& fresh = buckets[static_cast<std::size_t>(cycle)];
      std::sort(fresh.begin(), fresh.end(), by_rank);
      const auto old = static_cast<std::ptrdiff_t>(avail.size());
      avail.insert(avail.end(), fresh.begin(), fresh.end());
      std::inplace_merge(avail.begin(), avail.begin() + old, avail.end(),
                         by_rank);
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < avail.size(); ++i) {
      const int id = avail[i];
      if (!filler.capacity_ok(cycle, id)) {
        avail[kept++] = id;
        continue;
      }
      filler.place_at(id, cycle);
      ++placed;
      for (const auto& e : dfg.succs(id)) {
        const auto to = static_cast<std::size_t>(e.to);
        const int at = cycle + e.latency;
        if (at > ready_time[to]) ready_time[to] = at;
        if (--pending[to] == 0) {
          if (buckets.size() <= static_cast<std::size_t>(ready_time[to]))
            buckets.resize(static_cast<std::size_t>(ready_time[to]) + 1);
          buckets[static_cast<std::size_t>(ready_time[to])].push_back(e.to);
        }
      }
    }
    avail.resize(kept);
  }
}

}  // namespace

const char* scheduler_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kInOrder:
      return "in-order";
    case SchedulerKind::kList:
      return "list";
    case SchedulerKind::kSyncBarrier:
      return "sync-marker";
    case SchedulerKind::kSyncAware:
      return "sync-aware";
  }
  return "?";
}

Schedule schedule_inorder(const TacFunction& tac, const Dfg& dfg,
                          const MachineDesc& config) {
  SlotFiller filler(tac, dfg, config);
  int min_slot = 0;
  for (const auto& instr : tac.instrs) {
    // A non-reordering superscalar never issues an instruction in a
    // cycle before one that precedes it in program order.
    min_slot = filler.place_earliest(instr.id, min_slot);
  }
  return filler.take();
}

Schedule schedule_list(const TacFunction& tac, const Dfg& dfg,
                       const MachineDesc& config) {
  SlotFiller filler(tac, dfg, config);
  run_list_placement(filler, tac, dfg, config);
  return filler.take();
}

int schedule_list_slots(const TacFunction& tac, const Dfg& dfg,
                        const MachineDesc& config,
                        std::vector<int>& slot_of) {
  SlotFiller filler(tac, dfg, config, /*materialize=*/false);
  run_list_placement(filler, tac, dfg, config);
  return filler.take_slots(slot_of);
}

Schedule schedule_sync_barrier(const TacFunction& tac, const Dfg& dfg,
                               const MachineDesc& config) {
  SlotFiller filler(tac, dfg, config);
  // Instructions between consecutive sync markers reorder freely (ASAP
  // with hole filling above the current floor); each marker is placed
  // after every earlier instruction and raises the floor for the rest.
  int floor = 0;
  int max_used = -1;
  std::vector<int> segment;
  const auto flush_segment = [&] {
    for (const int id : segment) {
      const int slot = filler.place_earliest(id, floor);
      if (slot > max_used) max_used = slot;
    }
    segment.clear();
  };
  for (const auto& instr : tac.instrs) {
    if (!instr.is_sync()) {
      segment.push_back(instr.id);
      continue;
    }
    flush_segment();
    const int slot = filler.place_earliest(instr.id, max_used + 1);
    if (slot > max_used) max_used = slot;
    floor = slot + 1;
  }
  flush_segment();
  return filler.take();
}

Schedule run_scheduler(SchedulerKind kind, const TacFunction& tac,
                       const Dfg& dfg, const MachineDesc& config,
                       std::int64_t n_iterations) {
  switch (kind) {
    case SchedulerKind::kInOrder:
      return schedule_inorder(tac, dfg, config);
    case SchedulerKind::kList:
      return schedule_list(tac, dfg, config);
    case SchedulerKind::kSyncBarrier:
      return schedule_sync_barrier(tac, dfg, config);
    case SchedulerKind::kSyncAware:
      return schedule_sync_aware(tac, dfg, config, n_iterations);
  }
  return schedule_list(tac, dfg, config);
}

}  // namespace sbmp
