#include <algorithm>

#include "sbmp/sched/schedulers.h"
#include "sbmp/sched/slot_filler.h"

namespace sbmp {

const char* scheduler_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kInOrder:
      return "in-order";
    case SchedulerKind::kList:
      return "list";
    case SchedulerKind::kSyncBarrier:
      return "sync-marker";
    case SchedulerKind::kSyncAware:
      return "sync-aware";
  }
  return "?";
}

Schedule schedule_inorder(const TacFunction& tac, const Dfg& dfg,
                          const MachineConfig& config) {
  SlotFiller filler(tac, dfg, config);
  int min_slot = 0;
  for (const auto& instr : tac.instrs) {
    // A non-reordering superscalar never issues an instruction in a
    // cycle before one that precedes it in program order.
    min_slot = filler.place_earliest(instr.id, min_slot);
  }
  return filler.take();
}

Schedule schedule_list(const TacFunction& tac, const Dfg& dfg,
                       const MachineConfig& config) {
  SlotFiller filler(tac, dfg, config);
  const std::vector<int> height = dfg.heights();

  // Cycle-driven list scheduling: at each cycle, issue the ready
  // instructions in descending critical-path priority until capacity
  // runs out.
  std::vector<int> order(static_cast<std::size_t>(tac.size()));
  for (int i = 0; i < tac.size(); ++i) order[static_cast<std::size_t>(i)] =
      i + 1;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return height[static_cast<std::size_t>(a)] >
           height[static_cast<std::size_t>(b)];
  });

  int cycle = 0;
  while (filler.num_placed() < tac.size()) {
    for (const int id : order) {
      if (filler.placed(id)) continue;
      const int ready = filler.ready_slot(id);
      if (ready < 0 || ready > cycle) continue;
      if (!filler.capacity_ok(cycle, id)) continue;
      filler.place_at(id, cycle);
    }
    ++cycle;
  }
  return filler.take();
}

Schedule schedule_sync_barrier(const TacFunction& tac, const Dfg& dfg,
                               const MachineConfig& config) {
  SlotFiller filler(tac, dfg, config);
  // Instructions between consecutive sync markers reorder freely (ASAP
  // with hole filling above the current floor); each marker is placed
  // after every earlier instruction and raises the floor for the rest.
  int floor = 0;
  int max_used = -1;
  std::vector<int> segment;
  const auto flush_segment = [&] {
    for (const int id : segment) {
      const int slot = filler.place_earliest(id, floor);
      if (slot > max_used) max_used = slot;
    }
    segment.clear();
  };
  for (const auto& instr : tac.instrs) {
    if (!instr.is_sync()) {
      segment.push_back(instr.id);
      continue;
    }
    flush_segment();
    const int slot = filler.place_earliest(instr.id, max_used + 1);
    if (slot > max_used) max_used = slot;
    floor = slot + 1;
  }
  flush_segment();
  return filler.take();
}

Schedule run_scheduler(SchedulerKind kind, const TacFunction& tac,
                       const Dfg& dfg, const MachineConfig& config,
                       std::int64_t n_iterations) {
  switch (kind) {
    case SchedulerKind::kInOrder:
      return schedule_inorder(tac, dfg, config);
    case SchedulerKind::kList:
      return schedule_list(tac, dfg, config);
    case SchedulerKind::kSyncBarrier:
      return schedule_sync_barrier(tac, dfg, config);
    case SchedulerKind::kSyncAware:
      return schedule_sync_aware(tac, dfg, config, n_iterations);
  }
  return schedule_list(tac, dfg, config);
}

}  // namespace sbmp
