#include <algorithm>
#include <cstdint>

#include "sbmp/sched/schedulers.h"
#include "sbmp/sched/slot_filler.h"

namespace sbmp {

namespace {

struct PairInfo {
  SyncPair pair;
  std::vector<int> path;  ///< SP(Wat, Sig); empty when convertible.
  double priority = 0.0;  ///< (n/d) * |SP|
  int idx = 0;            ///< dfg.pairs() position, the sort tiebreak
};

/// Per-thread working set of schedule_sync_aware, retained across calls
/// (one run per compiled loop). `pairs` is resized, never cleared, so
/// each PairInfo's path buffer keeps its capacity across loops.
struct SyncAwareScratch {
  std::vector<PairInfo> pairs;
  std::vector<double> sigwat_priority;
  std::vector<int> sigwat_order;
  std::vector<std::int32_t> wait_pair_off;
  std::vector<std::int32_t> wait_pair_idx;
  std::vector<std::int32_t> at;
};

SyncAwareScratch& sync_aware_scratch() {
  thread_local SyncAwareScratch scratch;
  return scratch;
}

/// ASAP hole-filling placement of every still-unplaced member of a
/// component, in instruction-id order (which is topological: codegen
/// emits defs before uses and all DFG arcs point forward).
void place_component_asap(SlotFiller& filler, const Dfg& dfg, int comp) {
  for (const int id : dfg.component_members(comp)) {
    if (!filler.placed(id)) {
      filler.place_ancestors_asap(id);  // shared free address nodes
      filler.place_earliest(id, 0);
    }
  }
}

}  // namespace

Schedule schedule_sync_aware(const TacFunction& tac, const Dfg& dfg,
                             const MachineDesc& config,
                             std::int64_t n_iterations,
                             const SyncAwareOptions& options) {
  SlotFiller filler(tac, dfg, config);
  if (n_iterations < 1) n_iterations = 1;

  // Synchronization paths and their (n/d)*|SP| priorities. Ties sort by
  // the dfg.pairs() position, which reproduces the historical
  // stable_sort order exactly without its temporary buffer.
  SyncAwareScratch& scratch = sync_aware_scratch();
  std::vector<PairInfo>& pairs = scratch.pairs;
  pairs.resize(dfg.pairs().size());
  for (std::size_t i = 0; i < dfg.pairs().size(); ++i) {
    const SyncPair& pair = dfg.pairs()[i];
    PairInfo& info = pairs[i];
    info.pair = pair;
    info.idx = static_cast<int>(i);
    dfg.sync_path(pair, info.path);
    const double n_over_d =
        static_cast<double>(n_iterations) /
        static_cast<double>(pair.distance > 0 ? pair.distance : 1);
    info.priority = n_over_d * static_cast<double>(info.path.size());
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const PairInfo& a, const PairInfo& b) {
              return a.priority != b.priority ? a.priority > b.priority
                                              : a.idx < b.idx;
            });

  // Order Sigwat components by their best internal path priority. A
  // flat per-component vector replaces the old std::map: a component
  // with no internal path keeps priority 0.0, which is what the map's
  // "absent" case compared as (every real path priority is positive).
  std::vector<double>& sigwat_priority = scratch.sigwat_priority;
  sigwat_priority.assign(static_cast<std::size_t>(dfg.num_components()), 0.0);
  for (const auto& info : pairs) {
    if (info.path.empty()) continue;
    const auto comp = static_cast<std::size_t>(
        dfg.component_of(info.pair.wait_instr));
    if (info.priority > sigwat_priority[comp])
      sigwat_priority[comp] = info.priority;
  }
  std::vector<int>& sigwat_order = scratch.sigwat_order;
  sigwat_order.clear();
  for (int c = 0; c < dfg.num_components(); ++c) {
    if (dfg.component_kind(c) == ComponentKind::kSigwat)
      sigwat_order.push_back(c);
  }
  // Ascending component id on ties = the pre-sort order, so this equals
  // the historical stable_sort.
  std::sort(sigwat_order.begin(), sigwat_order.end(), [&](int a, int b) {
    const double pa = sigwat_priority[static_cast<std::size_t>(a)];
    const double pb = sigwat_priority[static_cast<std::size_t>(b)];
    return pa != pb ? pa > pb : a < b;
  });

  // Phase 1: Sigwat components. Inside each, walk every synchronization
  // path in priority order, placing its nodes in consecutive groups
  // (ancestors drop into spare lanes of earlier groups). Paths sharing
  // nodes chain through the already-placed shared prefix, realizing the
  // paper's "schedule overlapping paths simultaneously" rule.
  for (const int comp : sigwat_order) {
    if (options.contiguous_paths) {
      for (const auto& info : pairs) {
        if (info.path.empty()) continue;
        if (dfg.component_of(info.pair.wait_instr) != comp) continue;
        int prev_slot = -1;
        for (std::size_t pi = 0; pi < info.path.size(); ++pi) {
          const int node = info.path[pi];
          if (filler.placed(node)) {
            prev_slot = filler.slot(node);
            continue;
          }
          if (tac.by_id(node).op == Opcode::kWait &&
              pi + 1 < info.path.size()) {
            // The span the LBD theorem charges runs from the wait to the
            // send, so the wait goes as LATE as possible: immediately
            // before its sink access becomes ready. Pre-place the sink's
            // other ancestors, compute its earliest slot, and tuck the
            // wait into the latest free slot below it.
            const int sink = info.path[pi + 1];
            for (const auto& e : dfg.preds(sink)) {
              if (e.from == node || filler.placed(e.from)) continue;
              filler.place_ancestors_asap(e.from);
              filler.place_earliest(e.from, 0);
            }
            const int sink_ready = filler.ready_slot_ignoring(sink, node);
            int wait_slot =
                filler.latest_free_slot_before(node, sink_ready);
            if (wait_slot <= prev_slot)
              wait_slot = -1;  // keep path order for chained pairs
            prev_slot = wait_slot >= 0
                            ? (filler.place_at(node, wait_slot), wait_slot)
                            : filler.place_earliest(node, prev_slot + 1);
            continue;
          }
          filler.place_ancestors_asap(node);
          prev_slot = filler.place_earliest(node, prev_slot + 1);
        }
      }
    }
    place_component_asap(filler, dfg, comp);
  }

  // Phase 2: Sig components ASAP, so every send lands before the (later,
  // deeper) wait it pairs with — the LBD -> LFD conversion.
  for (int c = 0; c < dfg.num_components(); ++c) {
    if (dfg.component_kind(c) != ComponentKind::kSig) continue;
    if (!options.convert_lfd) continue;
    place_component_asap(filler, dfg, c);
  }

  // Phase 3: Wat components; each wait is pinned after its paired send.
  // Pairs are pre-grouped by wait instruction so each wait consults only
  // its own pairs (the pin is a max over send slots, so group order
  // inside one wait is immaterial).
  std::vector<std::int32_t>& wait_pair_off = scratch.wait_pair_off;
  wait_pair_off.assign(static_cast<std::size_t>(tac.size()) + 2, 0);
  for (const auto& info : pairs)
    ++wait_pair_off[static_cast<std::size_t>(info.pair.wait_instr) + 1];
  for (int i = 0; i <= tac.size(); ++i)
    wait_pair_off[static_cast<std::size_t>(i) + 1] +=
        wait_pair_off[static_cast<std::size_t>(i)];
  std::vector<std::int32_t>& wait_pair_idx = scratch.wait_pair_idx;
  wait_pair_idx.resize(pairs.size());
  {
    std::vector<std::int32_t>& at = scratch.at;
    at.assign(wait_pair_off.begin(), wait_pair_off.end() - 1);
    for (std::size_t i = 0; i < pairs.size(); ++i)
      wait_pair_idx[static_cast<std::size_t>(
          at[static_cast<std::size_t>(pairs[i].pair.wait_instr)]++)] =
          static_cast<std::int32_t>(i);
  }
  for (int c = 0; c < dfg.num_components(); ++c) {
    if (dfg.component_kind(c) != ComponentKind::kWat) continue;
    for (const int id : dfg.component_members(c)) {
      if (filler.placed(id)) continue;
      int min_slot = 0;
      if (options.convert_lfd && tac.by_id(id).op == Opcode::kWait) {
        const auto lo = static_cast<std::size_t>(
            wait_pair_off[static_cast<std::size_t>(id)]);
        const auto hi = static_cast<std::size_t>(
            wait_pair_off[static_cast<std::size_t>(id) + 1]);
        for (std::size_t p = lo; p < hi; ++p) {
          const auto& info =
              pairs[static_cast<std::size_t>(wait_pair_idx[p])];
          if (filler.placed(info.pair.send_instr)) {
            min_slot = std::max(min_slot,
                                filler.slot(info.pair.send_instr) + 1);
          }
        }
      }
      filler.place_ancestors_asap(id);
      filler.place_earliest(id, min_slot);
    }
  }

  // Phase 4: everything else (plain components, Sig components when LFD
  // conversion is disabled, and any free node not yet pulled in as an
  // ancestor).
  for (int c = 0; c < dfg.num_components(); ++c)
    place_component_asap(filler, dfg, c);
  for (int id = 1; id <= tac.size(); ++id) {
    if (!filler.placed(id)) {
      filler.place_ancestors_asap(id);
      filler.place_earliest(id, 0);
    }
  }

  return filler.take();
}

}  // namespace sbmp
